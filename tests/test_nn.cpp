// NN engine: finite-difference gradient checks for every layer and loss,
// optimizer convergence on analytic objectives, and schedules.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "nn/losses.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/schedule.hpp"
#include "util/rng.hpp"

namespace surro::nn {
namespace {

linalg::Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng,
                             float scale = 1.0f) {
  linalg::Matrix m(r, c);
  for (float& v : m.flat()) v = static_cast<float>(rng.normal()) * scale;
  return m;
}

// Scalar objective used by gradient checks: weighted sum of the outputs so
// dL/dout is a fixed matrix of weights.
float weighted_sum(const linalg::Matrix& out, const linalg::Matrix& w) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < out.size(); ++i) {
    acc += out.flat()[i] * w.flat()[i];
  }
  return acc;
}

// Central-difference check of dL/din for a layer (deterministic layers only).
void check_input_gradient(Layer& layer, const linalg::Matrix& input,
                          float tol = 2e-2f) {
  util::Rng rng(99);
  linalg::Matrix out;
  layer.forward(input, out, /*train=*/false);
  const linalg::Matrix w = random_matrix(out.rows(), out.cols(), rng);
  linalg::Matrix grad_in;
  layer.backward(w, grad_in);

  const float eps = 1e-3f;
  linalg::Matrix perturbed = input;
  linalg::Matrix out2;
  for (std::size_t i = 0; i < input.size(); i += std::max<std::size_t>(input.size() / 24, 1)) {
    const float orig = perturbed.flat()[i];
    perturbed.flat()[i] = orig + eps;
    layer.forward(perturbed, out2, false);
    const float up = weighted_sum(out2, w);
    perturbed.flat()[i] = orig - eps;
    layer.forward(perturbed, out2, false);
    const float down = weighted_sum(out2, w);
    perturbed.flat()[i] = orig;
    const float fd = (up - down) / (2.0f * eps);
    // Re-forward at the original point so the cached state matches.
    layer.forward(perturbed, out2, false);
    EXPECT_NEAR(grad_in.flat()[i], fd,
                tol * std::max(1.0f, std::abs(fd)))
        << "flat index " << i;
  }
  // Restore cache for any further use.
  layer.forward(input, out, false);
  layer.backward(w, grad_in);
}

TEST(Linear, ForwardMatchesManual) {
  util::Rng rng(1);
  Linear layer(2, 3, rng);
  layer.weight().value(0, 0) = 1.0f;
  layer.weight().value(0, 1) = 2.0f;
  layer.weight().value(0, 2) = 3.0f;
  layer.weight().value(1, 0) = -1.0f;
  layer.weight().value(1, 1) = 0.5f;
  layer.weight().value(1, 2) = 0.0f;
  layer.bias().value(0, 0) = 10.0f;
  layer.bias().value(0, 1) = 0.0f;
  layer.bias().value(0, 2) = -1.0f;
  linalg::Matrix in(1, 2);
  in(0, 0) = 2.0f;
  in(0, 1) = 4.0f;
  linalg::Matrix out;
  layer.forward(in, out, false);
  EXPECT_FLOAT_EQ(out(0, 0), 2.0f - 4.0f + 10.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 4.0f + 2.0f);
  EXPECT_FLOAT_EQ(out(0, 2), 6.0f - 1.0f);
}

TEST(Linear, InputGradient) {
  util::Rng rng(2);
  Linear layer(5, 4, rng);
  const auto in = random_matrix(6, 5, rng);
  check_input_gradient(layer, in);
}

TEST(Linear, ParamGradients) {
  util::Rng rng(3);
  Linear layer(3, 2, rng);
  const auto in = random_matrix(4, 3, rng);
  linalg::Matrix out;
  layer.forward(in, out, false);
  const auto wgt = random_matrix(out.rows(), out.cols(), rng);
  linalg::Matrix grad_in;
  for (Param* p : layer.params()) p->zero_grad();
  layer.backward(wgt, grad_in);

  const float eps = 1e-3f;
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->value.size();
         i += std::max<std::size_t>(p->value.size() / 8, 1)) {
      const float orig = p->value.flat()[i];
      p->value.flat()[i] = orig + eps;
      layer.forward(in, out, false);
      const float up = weighted_sum(out, wgt);
      p->value.flat()[i] = orig - eps;
      layer.forward(in, out, false);
      const float down = weighted_sum(out, wgt);
      p->value.flat()[i] = orig;
      const float fd = (up - down) / (2.0f * eps);
      EXPECT_NEAR(p->grad.flat()[i], fd,
                  2e-2f * std::max(1.0f, std::abs(fd)));
    }
  }
}

class ActivationGradient : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGradient, MatchesFiniteDifference) {
  util::Rng rng(4);
  ActivationLayer layer(GetParam());
  // Avoid the ReLU kink by nudging values away from zero.
  linalg::Matrix in = random_matrix(5, 7, rng);
  for (float& v : in.flat()) {
    if (std::abs(v) < 0.05f) v += 0.1f;
  }
  check_input_gradient(layer, in);
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGradient,
                         ::testing::Values(Activation::kReLU,
                                           Activation::kLeakyReLU,
                                           Activation::kTanh,
                                           Activation::kSigmoid,
                                           Activation::kSiLU));

TEST(ActivationLayer, ReluClampsNegative) {
  ActivationLayer relu(Activation::kReLU);
  linalg::Matrix in(1, 3);
  in(0, 0) = -1.0f;
  in(0, 1) = 0.0f;
  in(0, 2) = 2.0f;
  linalg::Matrix out;
  relu.forward(in, out, false);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out(0, 2), 2.0f);
}

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm ln(8);
  util::Rng rng(5);
  const auto in = random_matrix(4, 8, rng, 3.0f);
  linalg::Matrix out;
  ln.forward(in, out, false);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    float mean = 0.0f;
    for (std::size_t j = 0; j < 8; ++j) mean += out(r, j);
    mean /= 8.0f;
    float var = 0.0f;
    for (std::size_t j = 0; j < 8; ++j) {
      var += (out(r, j) - mean) * (out(r, j) - mean);
    }
    var /= 8.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(LayerNormTest, InputGradient) {
  LayerNorm ln(6);
  util::Rng rng(6);
  const auto in = random_matrix(3, 6, rng);
  check_input_gradient(ln, in, 5e-2f);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  util::Rng rng(7);
  Dropout drop(0.5f, rng);
  const auto in = random_matrix(3, 4, rng);
  linalg::Matrix out;
  drop.forward(in, out, /*train=*/false);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(out.flat()[i], in.flat()[i]);
  }
}

TEST(DropoutTest, TrainModePreservesExpectation) {
  util::Rng rng(8);
  Dropout drop(0.3f, rng);
  linalg::Matrix in(200, 50, 1.0f);
  linalg::Matrix out;
  drop.forward(in, out, /*train=*/true);
  double sum = 0.0;
  for (const float v : out.flat()) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(out.size()), 1.0, 0.05);
}

TEST(MlpTest, ForwardBackwardShapes) {
  util::Rng rng(9);
  Mlp mlp = make_mlp(10, {16, 8}, 4, Activation::kReLU, rng);
  const auto in = random_matrix(5, 10, rng);
  const auto& out = mlp.forward(in, true);
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_EQ(out.cols(), 4u);
  const auto grad = random_matrix(5, 4, rng);
  const auto& grad_in = mlp.backward(grad);
  EXPECT_EQ(grad_in.rows(), 5u);
  EXPECT_EQ(grad_in.cols(), 10u);
  EXPECT_GT(mlp.num_parameters(), 0u);
}

TEST(MlpTest, GradientCheckThroughStack) {
  util::Rng rng(10);
  Mlp mlp;
  mlp.linear(4, 6, rng).activation(Activation::kTanh).linear(6, 3, rng);
  const auto in = random_matrix(2, 4, rng);
  const auto& out = mlp.forward(in, false);
  const auto w = random_matrix(2, 3, rng);
  mlp.zero_grad();
  const auto& grad_in = mlp.backward(w);

  linalg::Matrix perturbed = in;
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float orig = perturbed.flat()[i];
    perturbed.flat()[i] = orig + eps;
    const float up = weighted_sum(mlp.forward(perturbed, false), w);
    perturbed.flat()[i] = orig - eps;
    const float down = weighted_sum(mlp.forward(perturbed, false), w);
    perturbed.flat()[i] = orig;
    const float fd = (up - down) / (2.0f * eps);
    EXPECT_NEAR(grad_in.flat()[i], fd, 2e-2f * std::max(1.0f, std::abs(fd)));
  }
  (void)out;
}

// ------------------------------------------------------------------ losses --

TEST(Losses, MseValueAndGradient) {
  linalg::Matrix pred(1, 2);
  pred(0, 0) = 1.0f;
  pred(0, 1) = 3.0f;
  linalg::Matrix target(1, 2, 1.0f);
  linalg::Matrix grad;
  const float loss = mse_loss(pred, target, grad);
  EXPECT_NEAR(loss, (0.0f + 4.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(grad(0, 1), 2.0f * 2.0f / 2.0f, 1e-6f);
}

TEST(Losses, BceWithLogitsMatchesFiniteDifference) {
  util::Rng rng(11);
  linalg::Matrix logits = random_matrix(3, 2, rng);
  linalg::Matrix targets(3, 2);
  for (float& v : targets.flat()) v = rng.bernoulli(0.5) ? 1.0f : 0.0f;
  linalg::Matrix grad;
  const float base = bce_with_logits(logits, targets, grad);
  EXPECT_GT(base, 0.0f);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    linalg::Matrix tmp_grad;
    logits.flat()[i] += eps;
    const float up = bce_with_logits(logits, targets, tmp_grad);
    logits.flat()[i] -= 2 * eps;
    const float down = bce_with_logits(logits, targets, tmp_grad);
    logits.flat()[i] += eps;
    EXPECT_NEAR(grad.flat()[i], (up - down) / (2 * eps), 2e-3f);
  }
}

TEST(Losses, GaussianKlZeroAtStandardNormal) {
  linalg::Matrix mu(4, 3, 0.0f);
  linalg::Matrix logvar(4, 3, 0.0f);
  linalg::Matrix gm;
  linalg::Matrix gv;
  EXPECT_NEAR(gaussian_kl(mu, logvar, gm, gv), 0.0f, 1e-6f);
  for (const float g : gm.flat()) EXPECT_NEAR(g, 0.0f, 1e-7f);
  for (const float g : gv.flat()) EXPECT_NEAR(g, 0.0f, 1e-7f);
}

TEST(Losses, GaussianKlPositiveElsewhere) {
  linalg::Matrix mu(2, 2, 1.0f);
  linalg::Matrix logvar(2, 2, 0.5f);
  linalg::Matrix gm;
  linalg::Matrix gv;
  EXPECT_GT(gaussian_kl(mu, logvar, gm, gv), 0.0f);
}

TEST(Losses, BlockwiseSoftmaxCeGradientSumsToZero) {
  // Softmax CE gradient within each block must sum to zero per row.
  util::Rng rng(12);
  const std::vector<preprocess::CategoricalBlock> blocks = {
      {1, 2, 3}, {3, 5, 4}};
  linalg::Matrix logits = random_matrix(6, 9, rng);
  linalg::Matrix onehot(6, 9, 0.0f);
  for (std::size_t r = 0; r < 6; ++r) {
    onehot(r, 2 + rng.uniform_index(3)) = 1.0f;
    onehot(r, 5 + rng.uniform_index(4)) = 1.0f;
  }
  linalg::Matrix grad;
  const float loss = blockwise_softmax_ce(logits, onehot, blocks, 2, grad);
  EXPECT_GT(loss, 0.0f);
  for (std::size_t r = 0; r < 6; ++r) {
    for (const auto& b : blocks) {
      float sum = 0.0f;
      for (std::size_t j = 0; j < b.cardinality; ++j) {
        sum += grad(r, b.offset + j);
      }
      EXPECT_NEAR(sum, 0.0f, 1e-5f);
    }
    // Numerical slice untouched.
    EXPECT_FLOAT_EQ(grad(r, 0), 0.0f);
    EXPECT_FLOAT_EQ(grad(r, 1), 0.0f);
  }
}

TEST(Losses, GanLossesPushExpectedDirections) {
  linalg::Matrix fake(4, 1, -2.0f);  // discriminator says fake
  linalg::Matrix grad;
  const float g_loss = gan_generator_loss(fake, grad);
  EXPECT_GT(g_loss, 0.5f);
  // Generator gradient on fooled-down logits is negative (push up).
  for (const float g : grad.flat()) EXPECT_LT(g, 0.0f);

  linalg::Matrix real(4, 1, 2.0f);
  linalg::Matrix gr;
  linalg::Matrix gf;
  const float d_loss = gan_discriminator_loss(real, fake, gr, gf);
  EXPECT_LT(d_loss, 0.5f);  // discriminator already winning
}

// --------------------------------------------------------------- optimizer --

TEST(Optimizers, SgdConvergesOnQuadratic) {
  Param p;
  p.resize(1, 1);
  p.value(0, 0) = 5.0f;
  Sgd opt(0.1f, 0.9f);
  opt.add_params({&p});
  for (int i = 0; i < 200; ++i) {
    p.grad(0, 0) = 2.0f * p.value(0, 0);  // d/dx x²
    opt.step();
  }
  EXPECT_NEAR(p.value(0, 0), 0.0f, 1e-3f);
}

TEST(Optimizers, AdamConvergesOnQuadratic) {
  Param p;
  p.resize(2, 2);
  p.value.fill(3.0f);
  Adam opt(0.05f);
  opt.add_params({&p});
  for (int i = 0; i < 600; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      p.grad.flat()[j] = 2.0f * p.value.flat()[j];
    }
    opt.step();
  }
  for (const float v : p.value.flat()) EXPECT_NEAR(v, 0.0f, 1e-2f);
}

TEST(Optimizers, AdamWDecaysWeights) {
  Param p;
  p.resize(1, 1);
  p.value(0, 0) = 1.0f;
  AdamW opt(0.01f, /*weight_decay=*/0.5f);
  opt.add_params({&p});
  // Zero gradient: only decay acts.
  p.grad(0, 0) = 0.0f;
  opt.step();
  EXPECT_LT(p.value(0, 0), 1.0f);
}

TEST(Optimizers, StepZeroesGradients) {
  Param p;
  p.resize(1, 2);
  p.grad.fill(1.0f);
  Adam opt(0.01f);
  opt.add_params({&p});
  opt.step();
  for (const float g : p.grad.flat()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(Optimizers, GradClipBoundsNorm) {
  Param p;
  p.resize(1, 4);
  p.grad.fill(10.0f);  // norm 20
  Sgd opt(0.1f);
  opt.add_params({&p});
  opt.clip_grad_norm(1.0f);
  float norm_sq = 0.0f;
  for (const float g : p.grad.flat()) norm_sq += g * g;
  EXPECT_NEAR(std::sqrt(norm_sq), 1.0f, 1e-4f);
}

TEST(Optimizers, ClipNoopWhenSmall) {
  Param p;
  p.resize(1, 1);
  p.grad(0, 0) = 0.1f;
  Sgd opt(0.1f);
  opt.add_params({&p});
  opt.clip_grad_norm(1.0f);
  EXPECT_FLOAT_EQ(p.grad(0, 0), 0.1f);
}

// --------------------------------------------------------------- schedules --

TEST(Schedules, CosineEndpoints) {
  const CosineSchedule s(1.0f, 100);
  EXPECT_NEAR(s.at(0), 1.0f, 1e-6f);
  EXPECT_NEAR(s.at(50), 0.5f, 0.02f);
  EXPECT_NEAR(s.at(100), 0.0f, 1e-6f);
  EXPECT_NEAR(s.at(1000), 0.0f, 1e-6f);  // clamped past the end
}

TEST(Schedules, CosineWithWarmup) {
  const CosineSchedule s(1.0f, 100, 10);
  EXPECT_LT(s.at(0), 0.2f);
  EXPECT_NEAR(s.at(9), 1.0f, 1e-5f);
  EXPECT_NEAR(s.at(10), 1.0f, 1e-5f);
}

TEST(Schedules, CosineMinLr) {
  const CosineSchedule s(1.0f, 10, 0, 0.1f);
  EXPECT_NEAR(s.at(10), 0.1f, 1e-6f);
}

TEST(Schedules, InvalidConfigThrows) {
  EXPECT_THROW(CosineSchedule(1.0f, 0), std::invalid_argument);
  EXPECT_THROW(CosineSchedule(1.0f, 10, 10), std::invalid_argument);
}

TEST(Schedules, ConstantIsConstant) {
  const ConstantSchedule s(0.3f);
  EXPECT_FLOAT_EQ(s.at(0), 0.3f);
  EXPECT_FLOAT_EQ(s.at(999), 0.3f);
}

// -------------------------------------------------------------------- init --

TEST(Init, XavierBounds) {
  util::Rng rng(13);
  linalg::Matrix w(64, 64);
  xavier_uniform(w, 64, 64, rng);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (const float v : w.flat()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(Init, KaimingNonDegenerate) {
  util::Rng rng(14);
  linalg::Matrix w(32, 32);
  kaiming_uniform(w, 32, rng);
  float min_v = 1e9f;
  float max_v = -1e9f;
  for (const float v : w.flat()) {
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  EXPECT_LT(min_v, 0.0f);
  EXPECT_GT(max_v, 0.0f);
}

}  // namespace
}  // namespace surro::nn
