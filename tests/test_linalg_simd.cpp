// SIMD kernel layer: scalar-vs-vectorized agreement for every kernel in the
// dispatch table (bitwise for the axpy family, documented-ULP for the
// dot/transcendental families), ragged tail sizes, backend selection API,
// and per-backend thread-count bitwise determinism end to end.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/ops.hpp"
#include "linalg/simd.hpp"
#include "models/generator.hpp"
#include "serve/replay.hpp"
#include "tabular/table.hpp"
#include "util/rng.hpp"

namespace surro::linalg::simd {
namespace {

// Tail coverage: 1, primes, vector width +/- 1 for both 4- and 8-lane
// backends, and a couple of larger composite sizes.
const std::size_t kSizes[] = {1, 2, 3, 5, 7, 8, 9, 13, 16, 17, 31, 64, 67};

std::vector<float> random_f32(std::size_t n, util::Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal());
  return v;
}

std::vector<double> random_f64(std::size_t n, util::Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal();
  return v;
}

std::vector<Backend> vector_backends() {
  std::vector<Backend> out;
  for (const Backend b : available_backends()) {
    if (b != Backend::kScalar) out.push_back(b);
  }
  return out;
}

// Restores the startup backend when a test that forces backends exits.
struct BackendGuard {
  Backend saved = active_backend();
  ~BackendGuard() { force_backend(saved); }
};

// ------------------------------------------------------------ selection API

TEST(SimdBackend, NamesRoundTrip) {
  EXPECT_STREQ(backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(backend_name(Backend::kAvx2), "avx2");
  EXPECT_STREQ(backend_name(Backend::kNeon), "neon");
  EXPECT_EQ(parse_backend("scalar"), Backend::kScalar);
  EXPECT_EQ(parse_backend("avx2"), Backend::kAvx2);
  EXPECT_EQ(parse_backend("neon"), Backend::kNeon);
  EXPECT_THROW((void)parse_backend("sse9"), std::invalid_argument);
}

TEST(SimdBackend, ScalarAlwaysAvailable) {
  EXPECT_TRUE(backend_available(Backend::kScalar));
  const auto all = available_backends();
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front(), Backend::kScalar);
  // "auto" resolves to something available.
  EXPECT_TRUE(backend_available(parse_backend("auto")));
  // The active backend is available and its table is reachable.
  EXPECT_TRUE(backend_available(active_backend()));
  EXPECT_STREQ(active_backend_name(), backend_name(active_backend()));
  (void)kernels_for(Backend::kScalar);
}

TEST(SimdBackend, ForceBackendSwitchesAndThrows) {
  BackendGuard guard;
  for (const Backend b : available_backends()) {
    force_backend(b);
    EXPECT_EQ(active_backend(), b);
    EXPECT_EQ(&kernels(), &kernels_for(b));
  }
  for (const Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (!backend_available(b)) {
      EXPECT_THROW(force_backend(b), std::invalid_argument);
      EXPECT_THROW((void)kernels_for(b), std::invalid_argument);
    }
  }
}

// -------------------------------------------- axpy family: bitwise-vs-scalar

TEST(SimdKernels, AxpyFamilyBitwise) {
  const Kernels& ref = kernels_for(Backend::kScalar);
  util::Rng rng(11);
  for (const Backend backend : vector_backends()) {
    const Kernels& k = kernels_for(backend);
    for (const std::size_t n : kSizes) {
      const auto a = random_f32(n, rng);
      const auto b = random_f32(n, rng);
      const float alpha = static_cast<float>(rng.normal());

      auto y0 = random_f32(n, rng);
      auto y1 = y0;
      ref.axpy_f32(alpha, a.data(), y0.data(), n);
      k.axpy_f32(alpha, a.data(), y1.data(), n);
      ASSERT_EQ(0, std::memcmp(y0.data(), y1.data(), n * sizeof(float)))
          << "axpy n=" << n << " backend=" << backend_name(backend);

      auto z0 = b;
      auto z1 = b;
      ref.acc_f32(a.data(), z0.data(), n);
      k.acc_f32(a.data(), z1.data(), n);
      ASSERT_EQ(0, std::memcmp(z0.data(), z1.data(), n * sizeof(float)));

      std::vector<float> o0(n), o1(n);
      ref.add_f32(a.data(), b.data(), o0.data(), n);
      k.add_f32(a.data(), b.data(), o1.data(), n);
      ASSERT_EQ(0, std::memcmp(o0.data(), o1.data(), n * sizeof(float)));
      ref.sub_f32(a.data(), b.data(), o0.data(), n);
      k.sub_f32(a.data(), b.data(), o1.data(), n);
      ASSERT_EQ(0, std::memcmp(o0.data(), o1.data(), n * sizeof(float)));
      ref.mul_f32(a.data(), b.data(), o0.data(), n);
      k.mul_f32(a.data(), b.data(), o1.data(), n);
      ASSERT_EQ(0, std::memcmp(o0.data(), o1.data(), n * sizeof(float)));

      auto s0 = a;
      auto s1 = a;
      ref.scale_f32(alpha, s0.data(), n);
      k.scale_f32(alpha, s1.data(), n);
      ASSERT_EQ(0, std::memcmp(s0.data(), s1.data(), n * sizeof(float)));
    }
  }
}

// gemm_block is in the dot family: vector backends fuse multiply-add, so
// agreement with scalar is close-with-tolerance, not bitwise. What IS
// bitwise is thread-chunk independence, checked below: splitting the same
// row panel at any tile-misaligned boundary must reproduce the unsplit
// bytes exactly (the m-tail and the 4-row tile compute identical chains).
TEST(SimdKernels, GemmBlockCloseToScalarAndChunkInvariant) {
  const Kernels& ref = kernels_for(Backend::kScalar);
  util::Rng rng(23);
  const std::size_t ms[] = {1, 3, 4, 5, 9};
  const std::size_t ns[] = {1, 7, 8, 9, 17, 33};
  const std::size_t ks[] = {1, 5, 64};
  for (const Backend backend : vector_backends()) {
    const Kernels& kern = kernels_for(backend);
    for (const std::size_t m : ms) {
      for (const std::size_t n : ns) {
        for (const std::size_t k : ks) {
          auto a = random_f32(m * k, rng);
          const auto b = random_f32(k * n, rng);
          // Exercise the sparsity skip: zero out a fraction of A.
          for (float& v : a) {
            if (rng.uniform() < 0.3) v = 0.0f;
          }
          const auto cinit = random_f32(m * n, rng);
          auto c0 = cinit;
          auto c1 = cinit;
          ref.gemm_block_f32(a.data(), k, b.data(), n, c0.data(), n, m, k, n);
          kern.gemm_block_f32(a.data(), k, b.data(), n, c1.data(), n, m, k,
                              n);
          for (std::size_t e = 0; e < m * n; ++e) {
            ASSERT_NEAR(c0[e], c1[e], 1e-4f * (1.0f + std::abs(c0[e])))
                << "gemm_block m=" << m << " n=" << n << " k=" << k
                << " backend=" << backend_name(backend);
          }
          // Chunk invariance: process rows [0,split) and [split,m) as two
          // calls — how parallel callers hand out row ranges — and require
          // bytes identical to the single-call result.
          for (const std::size_t split : {std::size_t{1}, m / 2, m - 1}) {
            if (split == 0 || split >= m) continue;
            auto parts = cinit;
            kern.gemm_block_f32(a.data(), k, b.data(), n, parts.data(), n,
                                split, k, n);
            kern.gemm_block_f32(a.data() + split * k, k, b.data(), n,
                                parts.data() + split * n, n, m - split, k,
                                n);
            ASSERT_EQ(0, std::memcmp(c1.data(), parts.data(),
                                     m * n * sizeof(float)))
                << "split=" << split << " m=" << m << " n=" << n
                << " k=" << k << " backend=" << backend_name(backend);
          }
        }
      }
    }
  }
}

TEST(SimdKernels, F64ElementwiseBitwise) {
  const Kernels& ref = kernels_for(Backend::kScalar);
  util::Rng rng(31);
  for (const Backend backend : vector_backends()) {
    const Kernels& k = kernels_for(backend);
    for (const std::size_t n : kSizes) {
      const auto x = random_f64(n, rng);
      const double shift = rng.normal();
      const double denom = 1.0 + std::abs(rng.normal());
      std::vector<double> o0(n), o1(n);
      ref.normalize_f64(x.data(), shift, denom, o0.data(), n);
      k.normalize_f64(x.data(), shift, denom, o1.data(), n);
      ASSERT_EQ(0, std::memcmp(o0.data(), o1.data(), n * sizeof(double)))
          << "normalize n=" << n;
      ref.madd_f64(x.data(), denom, shift, o0.data(), n);
      k.madd_f64(x.data(), denom, shift, o1.data(), n);
      ASSERT_EQ(0, std::memcmp(o0.data(), o1.data(), n * sizeof(double)))
          << "madd n=" << n;
    }
  }
}

TEST(SimdKernels, InterpGridBitwise) {
  const Kernels& ref = kernels_for(Backend::kScalar);
  util::Rng rng(37);
  // Ascending quantile grid, probabilities covering interior, clamped
  // (<0, >1), and exact-boundary values.
  for (const Backend backend : vector_backends()) {
    const Kernels& k = kernels_for(backend);
    for (const std::size_t grid_n : {2u, 5u, 100u, 1000u}) {
      std::vector<double> q(grid_n);
      double acc = -3.0;
      for (double& v : q) {
        acc += std::abs(rng.normal());
        v = acc;
      }
      for (const std::size_t n : kSizes) {
        std::vector<double> p(n);
        for (std::size_t i = 0; i < n; ++i) {
          const double u = rng.uniform();
          p[i] = u < 0.1 ? -0.5 : (u > 0.9 ? 1.5 : rng.uniform());
        }
        if (n > 2) {
          p[0] = 0.0;
          p[1] = 1.0;
          p[2] = 0.5;
        }
        std::vector<double> o0(n), o1(n);
        ref.interp_grid_f64(q.data(), grid_n, p.data(), o0.data(), n);
        k.interp_grid_f64(q.data(), grid_n, p.data(), o1.data(), n);
        ASSERT_EQ(0, std::memcmp(o0.data(), o1.data(), n * sizeof(double)))
            << "interp grid_n=" << grid_n << " n=" << n;
      }
    }
  }
}

// ------------------------------- dot/transcendental: documented-ULP classes

TEST(SimdKernels, DotFamilyClose) {
  const Kernels& ref = kernels_for(Backend::kScalar);
  util::Rng rng(41);
  for (const Backend backend : vector_backends()) {
    const Kernels& k = kernels_for(backend);
    for (const std::size_t n : kSizes) {
      const auto a = random_f32(n, rng);
      const auto b = random_f32(n, rng);
      const float d0 = ref.dot_f32(a.data(), b.data(), n);
      const float d1 = k.dot_f32(a.data(), b.data(), n);
      EXPECT_NEAR(d0, d1, 1e-4f * (1.0f + std::abs(d0))) << "dot n=" << n;
      const float s0 = ref.sq_l2_f32(a.data(), b.data(), n);
      const float s1 = k.sq_l2_f32(a.data(), b.data(), n);
      EXPECT_NEAR(s0, s1, 1e-4f * (1.0f + s0)) << "sq_l2 n=" << n;
      EXPECT_GE(s1, 0.0f);
    }
  }
}

TEST(SimdKernels, SoftmaxRowCloseAndNormalized) {
  const Kernels& ref = kernels_for(Backend::kScalar);
  util::Rng rng(43);
  for (const Backend backend : vector_backends()) {
    const Kernels& k = kernels_for(backend);
    for (const std::size_t n : kSizes) {
      auto r0 = random_f32(n, rng);
      for (float& v : r0) v *= 5.0f;  // spread the exponent range
      auto r1 = r0;
      ref.softmax_row_f32(r0.data(), n);
      k.softmax_row_f32(r1.data(), n);
      float sum = 0.0f;
      for (std::size_t i = 0; i < n; ++i) {
        // Documented-ULP class: polynomial exp vs libm expf.
        EXPECT_NEAR(r0[i], r1[i], 2e-6f) << "softmax n=" << n << " i=" << i;
        sum += r1[i];
      }
      EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
  }
}

TEST(SimdKernels, JsdAccClose) {
  const Kernels& ref = kernels_for(Backend::kScalar);
  util::Rng rng(47);
  for (const Backend backend : vector_backends()) {
    const Kernels& k = kernels_for(backend);
    for (const std::size_t n : kSizes) {
      std::vector<double> p(n), q(n);
      double ps = 0.0, qs = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        // Sparse histograms: exercise the p>0 / q>0 masking.
        p[i] = rng.uniform() < 0.3 ? 0.0 : rng.uniform();
        q[i] = rng.uniform() < 0.3 ? 0.0 : rng.uniform();
        ps += p[i];
        qs += q[i];
      }
      if (ps > 0.0) {
        for (double& v : p) v /= ps;
      }
      if (qs > 0.0) {
        for (double& v : q) v /= qs;
      }
      const double j0 = ref.jsd_acc_f64(p.data(), q.data(), n);
      const double j1 = k.jsd_acc_f64(p.data(), q.data(), n);
      // Documented-ULP class: polynomial log vs libm log.
      EXPECT_NEAR(j0, j1, 1e-12 * (1.0 + std::abs(j0))) << "jsd n=" << n;
    }
  }
}

// ---------------------------------------- ops layer: backends stay in sync

TEST(SimdOps, GemmFamilyMatchesScalarBackend) {
  BackendGuard guard;
  util::Rng rng(53);
  Matrix a(13, 37), b(37, 21), at(13, 37);
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = rng.uniform() < 0.2 ? 0.0f
                                 : static_cast<float>(rng.normal());
  for (float& v : at.flat()) v = static_cast<float>(rng.normal());

  force_backend(Backend::kScalar);
  Matrix g0, tn0;
  gemm(a, b, g0);
  gemm_tn(at, b, tn0);
  for (const Backend backend : vector_backends()) {
    force_backend(backend);
    Matrix g1, tn1;
    gemm(a, b, g1);
    gemm_tn(at, b, tn1);
    // gemm dispatches gemm_block (dot family: FMA, close not bitwise);
    // gemm_tn dispatches axpy (bitwise across backends).
    for (std::size_t e = 0; e < g0.size(); ++e) {
      ASSERT_NEAR(g0.data()[e], g1.data()[e],
                  1e-4f * (1.0f + std::abs(g0.data()[e])))
          << "gemm vs scalar, backend=" << backend_name(backend);
    }
    ASSERT_EQ(0, std::memcmp(tn0.data(), tn1.data(),
                             tn0.size() * sizeof(float)))
        << "gemm_tn vs scalar, backend=" << backend_name(backend);
  }
}

// ------------------------------- thread-count determinism, per backend, e2e

TEST(SimdDeterminism, SampledBytesIdenticalAcrossThreadCounts) {
  BackendGuard guard;
  // Tiny mixed training table.
  tabular::Schema schema({{"x", tabular::ColumnKind::kNumerical},
                          {"site", tabular::ColumnKind::kCategorical},
                          {"y", tabular::ColumnKind::kNumerical}});
  tabular::Table train(schema);
  util::Rng rng(61);
  for (std::size_t i = 0; i < 300; ++i) {
    auto row = train.make_row();
    row.set(0, rng.normal());
    row.set(1, std::string(rng.bernoulli(0.5) ? "BNL" : "CERN"));
    row.set(2, rng.normal(3.0, 0.5));
    train.append_row(row);
  }
  models::TrainBudget budget;
  budget.epochs = 2;
  budget.batch_size = 64;

  for (const Backend backend : available_backends()) {
    force_backend(backend);
    for (const char* key : {"tvae", "smote"}) {
      auto model = models::make_generator(key, budget, 7);
      model->fit(train);
      std::uint64_t digests[3] = {};
      std::size_t idx = 0;
      for (const std::size_t threads : {1u, 2u, 4u}) {
        models::SampleRequest req;
        req.rows = 257;  // non-multiple of chunk size
        req.seed = 99;
        req.chunk_rows = 64;
        req.threads = threads;
        tabular::Table out;
        model->sample_into(out, req);
        digests[idx++] = serve::hash_table(out);
      }
      EXPECT_EQ(digests[0], digests[1])
          << key << " backend=" << backend_name(backend);
      EXPECT_EQ(digests[0], digests[2])
          << key << " backend=" << backend_name(backend);
    }
  }
}

}  // namespace
}  // namespace surro::linalg::simd
