// Digital-twin subsystem invariants: outage-mask semantics, starvation
// arithmetic, the workload bridge's determinism contract, scenario
// perturbations, decision fidelity, and the bitwise cross-thread
// determinism of the full ScenarioTwin sweep.

#include <gtest/gtest.h>

#include <cmath>

#include "models/smote.hpp"
#include "panda/filters.hpp"
#include "panda/generator.hpp"
#include "serve/model_host.hpp"
#include "serve/replay.hpp"
#include "serve/sample_service.hpp"
#include "twin/twin.hpp"
#include "util/json_parse.hpp"

namespace surro::twin {
namespace {

panda::SiteCatalog small_catalog() {
  std::vector<panda::Site> sites = {
      {"A", 20.0, 25.0, 1000, 10.0, 1.0, "X"},
      {"B", 20.0, 25.0, 1000, 5.0, 1.0, "X"},
      {"C", 10.0, 13.0, 500, 1.0, 1.0, "Y"},
  };
  return panda::SiteCatalog(std::move(sites));
}

panda::SiteCatalog single_site_catalog() {
  std::vector<panda::Site> sites = {
      {"A", 20.0, 25.0, 1000, 1.0, 1.0, "X"},
  };
  return panda::SiteCatalog(std::move(sites));
}

sched::SimJob one_job(double submit_day, double cpu_hours = 0.1) {
  sched::SimJob j;
  j.submit_time = submit_day;
  j.cpu_hours = cpu_hours;
  j.cores = 1;
  j.home_site = 0;
  j.input_bytes = 0.0;
  return j;
}

tabular::Table small_table(double days = 4.0, double rate = 120.0,
                           std::uint64_t seed = 3) {
  panda::GeneratorConfig cfg;
  cfg.model.days = days;
  cfg.model.base_jobs_per_day = rate;
  cfg.seed = seed;
  panda::RecordGenerator gen(cfg);
  return panda::build_job_table(gen.generate(), gen.catalog());
}

// ---------------------------------------------------------------- outages --

TEST(OutageMask, JobQueuedDuringOutageStartsExactlyAtWindowEnd) {
  // Single site, single core: the only wake-up can be the outage-end
  // event itself (no completion follows the queued job).
  const auto catalog = single_site_catalog();
  sched::SimConfig cfg;
  cfg.capacity_scale = 0.001;  // 1 core
  sched::ClusterSimulator sim(catalog, cfg);
  sched::DataLocalityPolicy policy;

  const std::vector<sched::Outage> outages = {{0, 0.25, 1.0}};
  const auto m = sim.run({one_job(0.5)}, policy, 1, outages);
  EXPECT_EQ(m.completed_jobs, 1u);
  // Queued at day 0.5 inside [0.25, 1.0): starts at day 1.0 sharp.
  EXPECT_DOUBLE_EQ(m.mean_wait_hours, (1.0 - 0.5) * 24.0);
}

TEST(OutageMask, WindowIsHalfOpen) {
  const auto catalog = single_site_catalog();
  sched::SimConfig cfg;
  cfg.capacity_scale = 0.001;
  sched::ClusterSimulator sim(catalog, cfg);
  sched::DataLocalityPolicy policy;
  const std::vector<sched::Outage> outages = {{0, 0.25, 0.5}};

  // Submission exactly at end_day is outside the window: no wait.
  const auto at_end = sim.run({one_job(0.5)}, policy, 1, outages);
  EXPECT_DOUBLE_EQ(at_end.mean_wait_hours, 0.0);

  // Submission exactly at start_day is inside: waits for the lift.
  const auto at_start = sim.run({one_job(0.25)}, policy, 1, outages);
  EXPECT_DOUBLE_EQ(at_start.mean_wait_hours, (0.5 - 0.25) * 24.0);
}

TEST(OutageMask, RunningJobsDrainQueuedJobsWait) {
  const auto catalog = single_site_catalog();
  sched::SimConfig cfg;
  cfg.capacity_scale = 0.001;
  sched::ClusterSimulator sim(catalog, cfg);
  sched::DataLocalityPolicy policy;

  // Job A starts at day 0 and runs ~10 days, far past the outage start —
  // an outage drains, it never kills. Job B arrives inside the window and
  // must wait for BOTH the lift and A's completion.
  const std::vector<sched::Outage> outages = {{0, 0.1, 0.5}};
  const auto m =
      sim.run({one_job(0.0, 240.0), one_job(0.2, 0.1)}, policy, 1, outages);
  EXPECT_EQ(m.completed_jobs, 2u);
  const double a_runtime_days = 240.0 / 24.0;  // 1 core, speed 1.0
  const double b_wait_hours = (a_runtime_days - 0.2) * 24.0;
  // Waits are {0, b_wait_hours}: job A never stopped, job B waited for
  // A's completion (well past the lift at day 0.5).
  EXPECT_NEAR(m.mean_wait_hours, b_wait_hours / 2.0, 1e-9);
  EXPECT_NEAR(m.max_site_mean_wait_hours, b_wait_hours / 2.0, 1e-9);
}

TEST(OutageMask, UnknownSiteThrows) {
  const auto catalog = single_site_catalog();
  sched::SimConfig cfg;
  cfg.capacity_scale = 0.001;
  sched::ClusterSimulator sim(catalog, cfg);
  sched::DataLocalityPolicy policy;
  EXPECT_THROW((void)sim.run({one_job(0.0)}, policy, 1, {{7, 0.0, 1.0}}),
               std::out_of_range);
}

// ------------------------------------------------------------- starvation --

TEST(Starvation, HandCheckedArithmetic) {
  // Site means {1h, 5h} with counts {2, 1}: overall = 7/3, max = 5.
  const std::vector<double> means = {1.0, 5.0};
  const std::vector<std::size_t> counts = {2, 1};
  EXPECT_DOUBLE_EQ(sched::starvation_index(means, counts), 15.0 / 7.0);
}

TEST(Starvation, EdgeCases) {
  // No completions anywhere -> 0.
  const std::vector<double> z = {0.0, 0.0};
  const std::vector<std::size_t> none = {0, 0};
  EXPECT_DOUBLE_EQ(sched::starvation_index(z, none), 0.0);
  // Completions but nobody waited -> 1 (perfectly fair).
  const std::vector<std::size_t> some = {3, 2};
  EXPECT_DOUBLE_EQ(sched::starvation_index(z, some), 1.0);
  // Perfectly even waits -> 1. Idle sites are excluded from the mean.
  const std::vector<double> even = {2.0, 2.0};
  EXPECT_DOUBLE_EQ(sched::starvation_index(even, some), 1.0);
  const std::vector<double> idle_site = {4.0, 9.0};
  const std::vector<std::size_t> only_first = {5, 0};
  EXPECT_DOUBLE_EQ(sched::starvation_index(idle_site, only_first), 1.0);
  // Length mismatch is a caller bug.
  const std::vector<std::size_t> short_counts = {1};
  EXPECT_THROW((void)sched::starvation_index(even, short_counts),
               std::invalid_argument);
}

// ----------------------------------------------------------------- bridge --

TEST(Bridge, RowDeriveIsPerRowStable) {
  // Same (seed, row, salt) -> same value; any coordinate change moves it.
  EXPECT_EQ(row_derive(1, 42, 0), row_derive(1, 42, 0));
  EXPECT_NE(row_derive(1, 42, 0), row_derive(2, 42, 0));
  EXPECT_NE(row_derive(1, 42, 0), row_derive(1, 43, 0));
  EXPECT_NE(row_derive(1, 42, 0), row_derive(1, 42, 1));
  const double u = row_uniform(9, 7, 3);
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
}

TEST(Bridge, JobsAreDeterministicAndPrefixStable) {
  const auto table = small_table();
  const auto catalog = panda::SiteCatalog::make_default();
  const WorkloadBridge bridge(catalog, {});

  const auto a = bridge.jobs(table);
  const auto b = bridge.jobs(table);
  ASSERT_EQ(a.size(), table.num_rows());
  ASSERT_EQ(a.size(), b.size());
  // Per-row derived streams: a row's job depends on nothing but its own
  // bytes and index, so a head-slice bridges to a prefix of the full run
  // (the shared-RNG legacy path jobs_from_table cannot promise this).
  const auto head = bridge.jobs(table.head(table.num_rows() / 2));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].cores, b[i].cores);
    EXPECT_EQ(a[i].home_site, b[i].home_site);
    EXPECT_DOUBLE_EQ(a[i].cpu_hours, b[i].cpu_hours);
    if (i < head.size()) {
      EXPECT_EQ(a[i].cores, head[i].cores);
      EXPECT_EQ(a[i].home_site, head[i].home_site);
      EXPECT_DOUBLE_EQ(a[i].cpu_hours, head[i].cpu_hours);
    }
  }
}

// -------------------------------------------------------------- scenarios --

TEST(Scenario, PlanOutagesDarkensMostPopularSites) {
  const auto catalog = small_catalog();  // popularity {10, 5, 1}
  DisruptionConfig cfg;
  cfg.kind = DisruptionKind::kSiteOutage;
  cfg.outage_sites = 2;
  const TimeSpan span{10.0, 20.0};
  const auto outages = plan_outages(span, catalog, cfg);
  ASSERT_EQ(outages.size(), 2u);
  EXPECT_EQ(outages[0].site, 0u);
  EXPECT_EQ(outages[1].site, 1u);
  for (const auto& o : outages) {
    EXPECT_DOUBLE_EQ(o.start_day, 10.0 + 0.25 * 10.0);
    EXPECT_DOUBLE_EQ(o.end_day, 10.0 + 0.55 * 10.0);
  }
  // Non-outage scenarios impose no mask.
  cfg.kind = DisruptionKind::kCampaignBurst;
  EXPECT_TRUE(plan_outages(span, catalog, cfg).empty());
}

TEST(Scenario, BurstMovesOnlyAffectedRowsIntoWindow) {
  const auto table = small_table();
  const TimeSpan span = table_time_span(table);
  DisruptionConfig cfg;
  cfg.kind = DisruptionKind::kCampaignBurst;
  cfg.intensity = 0.5;
  const auto result = apply_disruption(table, span, cfg);
  ASSERT_EQ(result.table.num_rows(), table.num_rows());
  EXPECT_GT(result.affected_rows, 0u);
  EXPECT_LT(result.affected_rows, table.num_rows());

  const std::size_t c_time =
      table.schema().index_of(panda::features::kCreationTime);
  const auto before = table.numerical(c_time);
  const auto after = result.table.numerical(c_time);
  const double center = span.t0 + cfg.burst_center_frac * span.length();
  std::size_t moved = 0;
  for (std::size_t r = 0; r < before.size(); ++r) {
    if (before[r] == after[r]) continue;
    ++moved;
    EXPECT_NEAR(after[r], center, cfg.burst_width_days / 2.0 + 1e-12);
  }
  EXPECT_EQ(moved, result.affected_rows);
}

TEST(Scenario, StormCorruptsOnlyRowsInsideTheWindow) {
  const auto table = small_table();
  const TimeSpan span = table_time_span(table);
  DisruptionConfig cfg;
  cfg.kind = DisruptionKind::kAnomalyStorm;
  cfg.intensity = 0.8;
  const auto result = apply_disruption(table, span, cfg);
  ASSERT_EQ(result.table.num_rows(), table.num_rows());
  EXPECT_GT(result.affected_rows, 0u);

  const auto& schema = table.schema();
  const std::size_t c_time =
      schema.index_of(panda::features::kCreationTime);
  const std::size_t c_workload =
      schema.index_of(panda::features::kWorkload);
  const std::size_t c_bytes =
      schema.index_of(panda::features::kInputFileBytes);
  const auto times = table.numerical(c_time);
  const auto w_before = table.numerical(c_workload);
  const auto w_after = result.table.numerical(c_workload);
  const auto b_before = table.numerical(c_bytes);
  const auto b_after = result.table.numerical(c_bytes);
  const double start = span.t0 + cfg.storm_start_frac * span.length();
  const double end = span.t0 + cfg.storm_end_frac * span.length();
  for (std::size_t r = 0; r < times.size(); ++r) {
    if (times[r] >= start && times[r] <= end) continue;
    // Outside the storm window nothing may change.
    EXPECT_DOUBLE_EQ(w_before[r], w_after[r]);
    EXPECT_DOUBLE_EQ(b_before[r], b_after[r]);
  }
}

TEST(Scenario, KindNamesRoundTrip) {
  for (const DisruptionKind kind : all_disruption_kinds()) {
    EXPECT_EQ(parse_disruption_kind(disruption_kind_name(kind)), kind);
  }
  EXPECT_EQ(parse_disruption_kind("outage"), DisruptionKind::kSiteOutage);
  EXPECT_THROW((void)parse_disruption_kind("meteor"), std::invalid_argument);
}

// ---------------------------------------------------------- decision layer --

TEST(DecisionFidelity, RankAgreementArithmetic) {
  EXPECT_DOUBLE_EQ(rank_agreement({1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}), 1.0);
  EXPECT_DOUBLE_EQ(rank_agreement({1.0, 2.0, 3.0}, {3.0, 2.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(rank_agreement({1.0, 2.0, 3.0}, {1.0, 3.0, 2.0}),
                   2.0 / 3.0);
  EXPECT_DOUBLE_EQ(rank_agreement({5.0}, {9.0}), 1.0);
  EXPECT_THROW((void)rank_agreement({1.0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(DecisionFidelity, OutcomeGapIsZeroForIdenticalMetrics) {
  sched::SimMetrics m;
  m.mean_wait_hours = 3.0;
  m.p95_wait_hours = 9.0;
  m.mean_utilization = 0.4;
  m.transferred_bytes = 1e12;
  m.starvation_index = 1.5;
  EXPECT_DOUBLE_EQ(outcome_gap(m, m), 0.0);
  sched::SimMetrics n = m;
  n.mean_wait_hours = 6.0;  // one metric off by 2x -> gap 0.5 / 5
  EXPECT_DOUBLE_EQ(outcome_gap(m, n), 0.1);
}

TEST(MakePolicy, ResolvesNamesAndRejectsTypos) {
  EXPECT_EQ(make_policy("random")->name(), "random");
  EXPECT_EQ(make_policy("locality")->name(), "locality");
  EXPECT_EQ(make_policy("least-loaded")->name(), "least-loaded");
  EXPECT_EQ(make_policy("hybrid")->name(), "hybrid");
  EXPECT_EQ(make_policy("hybrid:0.5")->name(), "hybrid");
  EXPECT_THROW((void)make_policy("fifo"), std::invalid_argument);
  EXPECT_THROW((void)make_policy("hybrid:nope"), std::invalid_argument);
}

// ---------------------------------------------------------------- the twin --

TwinConfig quick_twin_config() {
  TwinConfig cfg;
  cfg.sim.capacity_scale = 0.0005;
  cfg.policies = {"locality", "least-loaded", "hybrid"};
  cfg.disruptions = all_disruption_kinds();
  cfg.drifts = {stream::DriftKind::kNone, stream::DriftKind::kMeanShift};
  return cfg;
}

TEST(ScenarioTwinRun, IdenticalStreamsScorePerfectFidelity) {
  const auto real = small_table();
  const auto catalog = panda::SiteCatalog::make_default();
  TwinConfig cfg = quick_twin_config();
  cfg.threads = 1;
  const ScenarioTwin runner(catalog, cfg);
  const auto result = runner.run(real, real);
  ASSERT_EQ(result.cells.size(),
            cfg.disruptions.size() * cfg.drifts.size());
  EXPECT_DOUBLE_EQ(result.mean_decision_fidelity, 1.0);
  EXPECT_DOUBLE_EQ(result.mean_outcome_gap, 0.0);
  for (const auto& cell : result.cells) {
    EXPECT_TRUE(cell.top1_match);
    EXPECT_EQ(cell.affected_rows_real, cell.affected_rows_synth);
  }
}

TEST(ScenarioTwinRun, DigestIsBitwiseIdenticalAcrossThreadCounts) {
  const auto real = small_table();
  models::Smote surrogate;
  surrogate.fit(real);
  const auto synth = surrogate.sample(real.num_rows() / 2, 99);
  const auto catalog = panda::SiteCatalog::make_default();

  TwinConfig serial_cfg = quick_twin_config();
  serial_cfg.threads = 1;
  TwinConfig fanout_cfg = quick_twin_config();
  fanout_cfg.threads = 4;

  const auto serial = ScenarioTwin(catalog, serial_cfg).run(real, synth);
  const auto fanout = ScenarioTwin(catalog, fanout_cfg).run(real, synth);
  const auto again = ScenarioTwin(catalog, fanout_cfg).run(real, synth);
  EXPECT_EQ(serial.outcome_digest, fanout.outcome_digest);
  EXPECT_EQ(fanout.outcome_digest, again.outcome_digest);
  ASSERT_EQ(serial.cells.size(), fanout.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].id, fanout.cells[i].id);
    EXPECT_DOUBLE_EQ(serial.cells[i].decision_fidelity,
                     fanout.cells[i].decision_fidelity);
    for (std::size_t p = 0; p < serial.cells[i].outcomes.size(); ++p) {
      EXPECT_EQ(sched::metrics_digest(serial.cells[i].outcomes[p].real),
                sched::metrics_digest(fanout.cells[i].outcomes[p].real));
      EXPECT_EQ(sched::metrics_digest(serial.cells[i].outcomes[p].synth),
                sched::metrics_digest(fanout.cells[i].outcomes[p].synth));
    }
  }
}

TEST(ScenarioTwinRun, SampleViaBackendMatchesDirectSampling) {
  const auto real = small_table();
  auto direct = std::make_shared<models::Smote>();
  direct->fit(real);

  // Direct chunked sampling vs the same job through the serving tier: the
  // SampleBackend determinism contract makes them byte-identical, so the
  // twin loop may source its surrogate stream from a running service.
  models::SampleRequest request;
  request.rows = 500;
  request.seed = 77;
  request.chunk_rows = 128;
  tabular::Table direct_synth;
  direct->sample_into(direct_synth, request);

  serve::ModelHost host;
  host.register_fitted("smote", direct);
  serve::SampleService service(host);
  const auto served_synth =
      sample_via_backend(service, "smote", 500, 77, 128);
  EXPECT_EQ(serve::hash_table(direct_synth), serve::hash_table(served_synth));

  const auto catalog = panda::SiteCatalog::make_default();
  TwinConfig cfg = quick_twin_config();
  cfg.threads = 1;
  const ScenarioTwin runner(catalog, cfg);
  EXPECT_EQ(runner.run(real, direct_synth).outcome_digest,
            runner.run(real, served_synth).outcome_digest);
}

TEST(ScenarioTwinRun, JsonArtifactParsesWithRequiredKeys) {
  const auto real = small_table();
  const auto catalog = panda::SiteCatalog::make_default();
  TwinConfig cfg = quick_twin_config();
  cfg.threads = 1;
  const ScenarioTwin runner(catalog, cfg);
  const auto result = runner.run(real, real);

  const auto doc =
      util::parse_json(twin_to_json(cfg, result, "smote", real.num_rows(),
                                    real.num_rows()));
  EXPECT_EQ(doc.at("kind").as_string(), "twin_matrix");
  EXPECT_EQ(doc.at("model").as_string(), "smote");
  EXPECT_EQ(doc.at("outcome_digest").as_string().size(), 16u);
  EXPECT_GE(doc.at("mean_decision_fidelity").as_number(), 0.0);
  const auto& cells = doc.at("cells").array;
  ASSERT_EQ(cells.size(), result.cells.size());
  for (const auto& cell : cells) {
    EXPECT_TRUE(cell.has("disruption"));
    EXPECT_TRUE(cell.has("drift"));
    EXPECT_TRUE(cell.has("decision_fidelity"));
    const auto& outcomes = cell.at("policies").array;
    ASSERT_EQ(outcomes.size(), cfg.policies.size());
    for (const auto& o : outcomes) {
      EXPECT_TRUE(o.at("real").has("starvation_index"));
      EXPECT_TRUE(o.at("synth").has("mean_wait_hours"));
      EXPECT_TRUE(o.has("outcome_gap"));
    }
  }
}

TEST(ScenarioTwinRun, BadConfigurationThrowsEarly) {
  const auto catalog = panda::SiteCatalog::make_default();
  TwinConfig no_policies = quick_twin_config();
  no_policies.policies.clear();
  EXPECT_THROW(ScenarioTwin(catalog, no_policies), std::invalid_argument);
  TwinConfig typo = quick_twin_config();
  typo.policies = {"locality", "fifo"};
  EXPECT_THROW(ScenarioTwin(catalog, typo), std::invalid_argument);
  TwinConfig no_axis = quick_twin_config();
  no_axis.disruptions.clear();
  EXPECT_THROW(ScenarioTwin(catalog, no_axis), std::invalid_argument);
}

}  // namespace
}  // namespace surro::twin
