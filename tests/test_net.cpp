// Network front end: the incremental RequestParser (split feeds, pipelining,
// the 400/413/431/501/505 error taxonomy), token-bucket quotas and the key
// registry, the REST API's validation/error bodies/pagination, and the full
// socket path — an HttpEndpoint on an ephemeral loopback port driven by
// HttpClient/ApiClient, including the headline contract: rows reassembled
// from paginated pages over the wire hash identically to a local
// sample_into() of the same (model, rows, seed, chunk_rows) identity.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "models/generator.hpp"
#include "net/auth.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/rest.hpp"
#include "net/server.hpp"
#include "serve/model_host.hpp"
#include "serve/replay.hpp"
#include "serve/sample_service.hpp"
#include "util/json_parse.hpp"
#include "util/rng.hpp"

namespace surro::net {
namespace {

// ------------------------------------------------------------- fixtures --

// Tiny mixed table with clear structure (mirrors test_serve.cpp).
tabular::Table cluster_table(std::size_t n, std::uint64_t seed) {
  tabular::Schema schema({{"x", tabular::ColumnKind::kNumerical},
                          {"site", tabular::ColumnKind::kCategorical},
                          {"y", tabular::ColumnKind::kNumerical},
                          {"status", tabular::ColumnKind::kCategorical}});
  tabular::Table t(schema);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool cluster_a = rng.bernoulli(0.65);
    auto row = t.make_row();
    if (cluster_a) {
      row.set(0, rng.normal(0.0, 0.4));
      row.set(1, std::string(rng.bernoulli(0.9) ? "BNL" : "CERN"));
      row.set(2, rng.normal(-2.0, 0.3));
      row.set(3, std::string(rng.bernoulli(0.85) ? "finished" : "failed"));
    } else {
      row.set(0, rng.normal(5.0, 0.4));
      row.set(1, std::string(rng.bernoulli(0.8) ? "RAL" : "CERN"));
      row.set(2, rng.normal(3.0, 0.3));
      row.set(3, std::string(rng.bernoulli(0.6) ? "finished" : "failed"));
    }
    t.append_row(row);
  }
  return t;
}

models::TrainBudget tiny_budget() {
  models::TrainBudget b;
  b.epochs = 4;
  b.batch_size = 64;
  b.learning_rate = 1e-3f;
  return b;
}

/// Per-test scratch directory for model archives, removed on destruction.
struct TempDir {
  TempDir() {
    static std::atomic<std::uint64_t> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("surro_net_test_" + std::to_string(++counter) + "_" +
            std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
  std::filesystem::path path;
};

/// One fitted smote archive + host + service + RestApi, ready to route.
struct RestFixture {
  explicit RestFixture(RestConfig cfg = {}) {
    auto model = models::make_generator("smote", tiny_budget(), 7);
    model->fit(cluster_table(300, 21));
    models::save_model_file(*model, dir.file("smote.bin"));
    host.register_archive("smote", dir.file("smote.bin"));
    service.emplace(host);
    api.emplace(*service, cfg);
  }

  TempDir dir;
  serve::ModelHost host{serve::HostConfig{}};
  std::optional<serve::SampleService> service;
  std::optional<RestApi> api;
};

/// Run a raw wire request through the real parser so RestApi tests exercise
/// the same HttpRequest shape the server produces.
HttpRequest parse_request(const std::string& wire) {
  RequestParser parser;
  const auto state = parser.feed(wire);
  EXPECT_EQ(state, RequestParser::State::kComplete)
      << "fixture request failed to parse: " << wire;
  return parser.request();
}

HttpRequest simple_get(const std::string& target,
                       const std::string& api_key = "") {
  std::string wire = "GET " + target + " HTTP/1.1\r\nhost: t\r\n";
  if (!api_key.empty()) wire += "x-api-key: " + api_key + "\r\n";
  wire += "\r\n";
  return parse_request(wire);
}

HttpRequest json_post(const std::string& target, const std::string& body,
                      const std::string& api_key = "") {
  std::string wire = "POST " + target + " HTTP/1.1\r\nhost: t\r\n";
  if (!api_key.empty()) wire += "x-api-key: " + api_key + "\r\n";
  wire += "content-type: application/json\r\ncontent-length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body;
  return parse_request(wire);
}

/// The structured {"error":{"code",...}} code of an error response.
std::string error_code_of(const HttpResponse& response) {
  const auto doc = util::parse_json(response.body);
  return doc.at("error").at("code").as_string();
}

// ------------------------------------------------------- request parser --

TEST(RequestParser, ParsesCompleteRequestWithBodyAndQuery) {
  RequestParser parser;
  const std::string wire =
      "POST /v1/sample?debug=1&name=a%20b+c HTTP/1.1\r\n"
      "Host: example\r\n"
      "X-API-Key: k1\r\n"
      "Content-Length: 4\r\n"
      "\r\n"
      "abcd";
  ASSERT_EQ(parser.feed(wire), RequestParser::State::kComplete);
  const auto& req = parser.request();
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.path, "/v1/sample");
  EXPECT_EQ(req.target, "/v1/sample?debug=1&name=a%20b+c");
  EXPECT_EQ(req.query_or("debug"), "1");
  EXPECT_EQ(req.query_or("name"), "a b c");  // %20 and '+' both decode
  EXPECT_EQ(req.header("x-api-key"), "k1");  // names lowercased
  EXPECT_EQ(req.body, "abcd");
  EXPECT_TRUE(req.keep_alive);  // HTTP/1.1 default
}

TEST(RequestParser, ByteAtATimeFeedAcrossEveryBoundary) {
  const std::string wire =
      "POST /x HTTP/1.1\r\ncontent-length: 3\r\n\r\nxyz";
  RequestParser parser;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const auto state = parser.feed(wire.substr(i, 1));
    if (i + 1 < wire.size()) {
      ASSERT_EQ(state, RequestParser::State::kNeedMore) << "at byte " << i;
    } else {
      ASSERT_EQ(state, RequestParser::State::kComplete);
    }
  }
  EXPECT_EQ(parser.request().body, "xyz");
}

TEST(RequestParser, SplitExactlyAtHeaderBoundary) {
  // The blank line arrives in a separate feed from the header block.
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET /healthz HTTP/1.1\r\nhost: a\r\n\r"),
            RequestParser::State::kNeedMore);
  ASSERT_EQ(parser.feed("\n"), RequestParser::State::kComplete);
  EXPECT_EQ(parser.request().path, "/healthz");
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(RequestParser, PipelinedRequestsSurviveReset) {
  RequestParser parser;
  // Two full requests in one TCP segment: the second must be retained
  // through reset() and complete without further feeds.
  const std::string two =
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi";
  ASSERT_EQ(parser.feed(two), RequestParser::State::kComplete);
  EXPECT_EQ(parser.request().path, "/a");
  parser.reset();
  ASSERT_EQ(parser.state(), RequestParser::State::kComplete);
  EXPECT_EQ(parser.request().path, "/b");
  EXPECT_EQ(parser.request().body, "hi");
  parser.reset();
  EXPECT_EQ(parser.state(), RequestParser::State::kNeedMore);
}

TEST(RequestParser, KeepAliveResolution) {
  EXPECT_TRUE(parse_request("GET / HTTP/1.1\r\n\r\n").keep_alive);
  EXPECT_FALSE(
      parse_request("GET / HTTP/1.1\r\nconnection: close\r\n\r\n")
          .keep_alive);
  EXPECT_FALSE(parse_request("GET / HTTP/1.0\r\n\r\n").keep_alive);
  EXPECT_TRUE(
      parse_request("GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n")
          .keep_alive);
}

TEST(RequestParser, ErrorTaxonomy) {
  {  // malformed request line -> 400
    RequestParser p;
    EXPECT_EQ(p.feed("NONSENSE\r\n\r\n"), RequestParser::State::kError);
    EXPECT_EQ(p.error_status(), 400);
  }
  {  // non-origin-form target -> 400
    RequestParser p;
    EXPECT_EQ(p.feed("GET example.com HTTP/1.1\r\n\r\n"),
              RequestParser::State::kError);
    EXPECT_EQ(p.error_status(), 400);
  }
  {  // unsupported version -> 505
    RequestParser p;
    EXPECT_EQ(p.feed("GET / HTTP/2.0\r\n\r\n"),
              RequestParser::State::kError);
    EXPECT_EQ(p.error_status(), 505);
  }
  {  // transfer-encoding framing -> 501
    RequestParser p;
    EXPECT_EQ(
        p.feed("POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
        RequestParser::State::kError);
    EXPECT_EQ(p.error_status(), 501);
  }
  {  // declared body past the cap -> 413, judged before any body arrives
    HttpLimits limits;
    limits.max_body_bytes = 16;
    RequestParser p(limits);
    EXPECT_EQ(p.feed("POST / HTTP/1.1\r\ncontent-length: 17\r\n\r\n"),
              RequestParser::State::kError);
    EXPECT_EQ(p.error_status(), 413);
  }
  {  // header block past the cap -> 431, failed mid-stream
    HttpLimits limits;
    limits.max_header_bytes = 64;
    RequestParser p(limits);
    std::string wire = "GET / HTTP/1.1\r\nx-padding: ";
    wire += std::string(128, 'a');
    EXPECT_EQ(p.feed(wire), RequestParser::State::kError);
    EXPECT_EQ(p.error_status(), 431);
  }
  {  // a terminal error is sticky: further feeds do not resurrect it
    RequestParser p;
    ASSERT_EQ(p.feed("BAD\r\n\r\n"), RequestParser::State::kError);
    EXPECT_EQ(p.feed("GET / HTTP/1.1\r\n\r\n"),
              RequestParser::State::kError);
  }
}

TEST(RequestParser, MalformedContentLengthIs400) {
  RequestParser p;
  EXPECT_EQ(p.feed("POST / HTTP/1.1\r\ncontent-length: ten\r\n\r\n"),
            RequestParser::State::kError);
  EXPECT_EQ(p.error_status(), 400);
}

TEST(RequestParser, RandomizedSplitReadFuzz) {
  // The parser contract: the final parse of a byte stream depends only on
  // the BYTES, never on how the transport chunked them. For every corpus
  // request — valid, error-terminal, and edge-shaped — the whole-feed
  // outcome is the reference, and then (a) every two-part split at all
  // 1..len-1 boundaries and (b) a seeded storm of random multi-chunk
  // splits must land on the identical terminal state, request fields, and
  // error status.
  const std::vector<std::string> corpus = {
      // Plain GET, query decoding, keep-alive default.
      "GET /v1/models?cursor=3&k=a%20b HTTP/1.1\r\nhost: t\r\n\r\n",
      // POST with a body (the body-phase boundary is the classic bug site).
      "POST /v1/sample HTTP/1.1\r\nhost: t\r\ncontent-type: application/"
      "json\r\ncontent-length: 26\r\n\r\n{\"model\":\"smote\","
      "\"rows\":9}",
      // Zero-length body, explicit close.
      "POST /v1/sample HTTP/1.1\r\nhost: t\r\nconnection: close\r\n"
      "content-length: 0\r\n\r\n",
      // Header folding hazards: padded values, mixed case names.
      "GET / HTTP/1.1\r\nHost: t\r\nX-API-Key:   spaced-key  \r\n"
      "Accept: */*\r\n\r\n",
      // HTTP/1.0 (keep_alive resolves false).
      "GET /healthz HTTP/1.0\r\nhost: t\r\n\r\n",
      // Error-terminal shapes: bad request line, bad version, framing.
      "NONSENSE\r\n\r\n",
      "GET / HTTP/2.0\r\n\r\n",
      "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
      "POST / HTTP/1.1\r\ncontent-length: ten\r\n\r\n",
  };

  struct Outcome {
    RequestParser::State state = RequestParser::State::kNeedMore;
    int error_status = 0;
    HttpRequest request;
  };
  const auto run = [](const std::string& wire,
                      const std::vector<std::size_t>& cuts) {
    RequestParser parser;
    std::size_t begin = 0;
    for (const std::size_t cut : cuts) {
      (void)parser.feed(std::string_view(wire).substr(begin, cut - begin));
      begin = cut;
    }
    (void)parser.feed(std::string_view(wire).substr(begin));
    Outcome out;
    out.state = parser.state();
    if (out.state == RequestParser::State::kError) {
      out.error_status = parser.error_status();
    } else if (out.state == RequestParser::State::kComplete) {
      out.request = parser.request();
    }
    return out;
  };
  const auto expect_same = [](const Outcome& got, const Outcome& want) {
    ASSERT_EQ(got.state, want.state);
    ASSERT_EQ(got.error_status, want.error_status);
    ASSERT_EQ(got.request.method, want.request.method);
    ASSERT_EQ(got.request.target, want.request.target);
    ASSERT_EQ(got.request.path, want.request.path);
    ASSERT_EQ(got.request.body, want.request.body);
    ASSERT_TRUE(got.request.headers == want.request.headers);
    ASSERT_TRUE(got.request.query == want.request.query);
    ASSERT_EQ(got.request.keep_alive, want.request.keep_alive);
  };

  util::Rng rng(0xF5A5u);  // seeded: failures reproduce exactly
  for (const auto& wire : corpus) {
    const Outcome want = run(wire, {});
    // Exhaustive two-part splits: every boundary, including mid-CRLF and
    // mid-body.
    for (std::size_t cut = 1; cut < wire.size(); ++cut) {
      SCOPED_TRACE("two-part cut at " + std::to_string(cut) + " of " +
                   wire.substr(0, 24));
      expect_same(run(wire, {cut}), want);
    }
    // Random multi-chunk splits (1-6 cuts, anywhere).
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::size_t> cuts;
      const auto n = static_cast<std::size_t>(rng.uniform_int(1, 6));
      for (std::size_t i = 0; i < n; ++i) {
        cuts.push_back(static_cast<std::size_t>(rng.uniform_int(
            1, static_cast<std::int64_t>(wire.size()) - 1)));
      }
      std::sort(cuts.begin(), cuts.end());
      cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
      SCOPED_TRACE("trial " + std::to_string(trial) + " of " +
                   wire.substr(0, 24));
      expect_same(run(wire, cuts), want);
    }
  }
}

// ---------------------------------------------------------------- quotas --

TEST(TokenBucket, BurstThenRefill) {
  TokenBucket bucket(/*rps=*/2.0, /*burst=*/0.0);  // burst defaults to 2
  double retry = 0.0;
  EXPECT_TRUE(bucket.try_take(0.0, &retry));
  EXPECT_TRUE(bucket.try_take(0.0, &retry));
  EXPECT_FALSE(bucket.try_take(0.0, &retry));
  EXPECT_GT(retry, 0.0);
  EXPECT_LE(retry, 0.5 + 1e-9);  // one token accrues in 1/rps seconds
  // Replay time forward past the refusal's own advice: a token is back.
  EXPECT_TRUE(bucket.try_take(0.6, &retry));
  EXPECT_FALSE(bucket.try_take(0.6, &retry));
}

TEST(TokenBucket, NonPositiveRateIsUnlimited) {
  TokenBucket bucket(0.0, 0.0);
  double retry = 0.0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(bucket.try_take(0.0, &retry));
  }
}

TEST(QuotaLedger, OpenAccessVersusKeyedAccess) {
  QuotaLedger open_ledger(/*default_rps=*/0.0);
  EXPECT_TRUE(open_ledger.open_access());
  EXPECT_TRUE(open_ledger.authorized(""));
  EXPECT_TRUE(open_ledger.authorized("anything"));

  QuotaLedger keyed(/*default_rps=*/0.0);
  keyed.add_key("k1");
  EXPECT_FALSE(keyed.open_access());
  EXPECT_TRUE(keyed.authorized("k1"));
  EXPECT_FALSE(keyed.authorized(""));
  EXPECT_FALSE(keyed.authorized("k2"));
}

TEST(QuotaLedger, PerKeyRateOverridesDefault) {
  QuotaLedger ledger(/*default_rps=*/100.0);
  ledger.add_key("fast");
  ledger.add_key("slow", 1.0);
  double retry = 0.0;
  // "slow" drains after its burst of one...
  EXPECT_TRUE(ledger.charge("slow", 0.0, &retry));
  EXPECT_FALSE(ledger.charge("slow", 0.0, &retry));
  EXPECT_GT(retry, 0.0);
  // ...while "fast" still has default-rate headroom at the same instant.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ledger.charge("fast", 0.0, &retry));
  }
}

TEST(QuotaLedger, LoadFileParsesKeysRatesAndComments) {
  TempDir dir;
  const std::string path = dir.file("keys.txt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# comment line\n\nprod-key-1 200\n  ci-key\t\n", f);
    std::fclose(f);
  }
  QuotaLedger ledger(0.0);
  ledger.load_file(path);
  EXPECT_EQ(ledger.num_keys(), 2u);
  EXPECT_TRUE(ledger.authorized("prod-key-1"));
  EXPECT_TRUE(ledger.authorized("ci-key"));
  EXPECT_FALSE(ledger.authorized("# comment line"));

  EXPECT_THROW(ledger.load_file(dir.file("missing.txt")),
               std::runtime_error);
  {
    std::FILE* f = std::fopen(dir.file("bad.txt").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("key twohundred\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(ledger.load_file(dir.file("bad.txt")), std::runtime_error);
}

// ---------------------------------------------------------- REST routing --

TEST(RestApi, HealthzAndModels) {
  RestFixture fx;
  const auto health = fx.api->handle(simple_get("/healthz"));
  EXPECT_EQ(health.status, 200);

  const auto models = fx.api->handle(simple_get("/v1/models"));
  ASSERT_EQ(models.status, 200);
  const auto doc = util::parse_json(models.body);
  ASSERT_EQ(doc.at("models").array.size(), 1u);
  EXPECT_EQ(doc.at("models").array[0].at("key").as_string(), "smote");
}

TEST(RestApi, RoutingErrors) {
  RestFixture fx;
  const auto missing = fx.api->handle(simple_get("/v1/nope"));
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(error_code_of(missing), "unknown_route");

  const auto wrong_method =
      fx.api->handle(parse_request("DELETE /v1/models HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(wrong_method.status, 405);
  EXPECT_EQ(error_code_of(wrong_method), "method_not_allowed");
  EXPECT_FALSE(wrong_method.headers.at("allow").empty());
}

TEST(RestApi, SubmitValidation) {
  RestFixture fx;
  const auto bad_json =
      fx.api->handle(json_post("/v1/sample", "{not json"));
  EXPECT_EQ(bad_json.status, 400);
  EXPECT_EQ(error_code_of(bad_json), "bad_json");

  const auto typo = fx.api->handle(json_post(
      "/v1/sample", R"({"model":"smote","rows":10,"chnk_rows":64})"));
  EXPECT_EQ(typo.status, 400);
  EXPECT_EQ(error_code_of(typo), "unknown_field");

  const auto no_model =
      fx.api->handle(json_post("/v1/sample", R"({"rows":10})"));
  EXPECT_EQ(no_model.status, 400);

  const auto unknown_model = fx.api->handle(
      json_post("/v1/sample", R"({"model":"tabddpm","rows":10})"));
  EXPECT_EQ(unknown_model.status, 404);
  EXPECT_EQ(error_code_of(unknown_model), "unknown_model");

  const auto no_rows =
      fx.api->handle(json_post("/v1/sample", R"({"model":"smote"})"));
  EXPECT_EQ(no_rows.status, 400);
}

TEST(RestApi, SubmitPaginateReassembleMatchesLocalDigest) {
  RestFixture fx;
  const std::size_t rows = 257;  // deliberately not a page multiple
  const auto submit = fx.api->handle(json_post(
      "/v1/sample",
      R"({"model":"smote","rows":257,"seed":"987654321098765432",)"
      R"("chunk_rows":64})"));
  ASSERT_EQ(submit.status, 202) << submit.body;
  const auto handle_doc = util::parse_json(submit.body);
  const std::string job_id = handle_doc.at("job_id").as_string();
  EXPECT_EQ(handle_doc.at("seed").as_string(), "987654321098765432");

  // Page the rows back 100 at a time and rebuild the table.
  std::optional<tabular::Table> out;
  std::size_t cursor = 0;
  std::size_t pages = 0;
  for (;;) {
    const auto page = fx.api->handle(
        simple_get("/v1/jobs/" + job_id + "?cursor=" +
                   std::to_string(cursor) + "&limit=100&wait_ms=10000"));
    ASSERT_EQ(page.status, 200) << page.body;
    const auto doc = util::parse_json(page.body);
    ASSERT_EQ(doc.at("status").as_string(), "done");
    if (!out) {
      std::vector<tabular::ColumnSpec> specs;
      for (const auto& col : doc.at("schema").array) {
        specs.push_back({col.at("name").as_string(),
                         col.at("kind").as_string() == "numerical"
                             ? tabular::ColumnKind::kNumerical
                             : tabular::ColumnKind::kCategorical});
      }
      out.emplace(tabular::Schema(specs));
    }
    for (const auto& row : doc.at("data").array) {
      auto builder = out->make_row();
      for (std::size_t c = 0; c < row.array.size(); ++c) {
        const auto& cell = row.array[c];
        if (out->schema().columns()[c].kind ==
            tabular::ColumnKind::kNumerical) {
          builder.set(c, cell.is_null()
                             ? std::numeric_limits<double>::quiet_NaN()
                             : cell.as_number());
        } else {
          builder.set(c, cell.as_string());
        }
      }
      out->append_row(builder);
    }
    ++pages;
    if (doc.at("next_cursor").is_null()) break;
    cursor = static_cast<std::size_t>(doc.at("next_cursor").as_number());
  }
  EXPECT_EQ(pages, 3u);  // 100 + 100 + 57
  ASSERT_EQ(out->num_rows(), rows);

  // The wire bytes must hash identically to a direct local sample.
  tabular::Table local(out->schema());
  models::SampleRequest request;
  request.rows = rows;
  request.seed = 987654321098765432ull;
  request.chunk_rows = 64;
  fx.host.acquire("smote")->sample_into(local, request);
  EXPECT_EQ(serve::hash_table(*out), serve::hash_table(local));

  // Cursor past the end is a typed 400.
  const auto bad = fx.api->handle(
      simple_get("/v1/jobs/" + job_id + "?cursor=9999"));
  EXPECT_EQ(bad.status, 400);
  EXPECT_EQ(error_code_of(bad), "bad_cursor");
}

TEST(RestApi, JobLifecycleUnknownDeleteAndPurge) {
  RestFixture fx;
  const auto missing = fx.api->handle(simple_get("/v1/jobs/424242"));
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(error_code_of(missing), "unknown_job");

  const auto submit = fx.api->handle(
      json_post("/v1/sample", R"({"model":"smote","rows":50})"));
  ASSERT_EQ(submit.status, 202);
  const std::string job_id =
      util::parse_json(submit.body).at("job_id").as_string();
  EXPECT_EQ(fx.api->tracked_jobs(), 1u);

  const auto deleted =
      fx.api->handle(parse_request("DELETE /v1/jobs/" + job_id +
                                   " HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(deleted.status, 200);
  EXPECT_EQ(util::parse_json(deleted.body).at("status").as_string(),
            "deleted");
  EXPECT_EQ(fx.api->tracked_jobs(), 0u);

  const auto gone = fx.api->handle(simple_get("/v1/jobs/" + job_id));
  EXPECT_EQ(gone.status, 404);
}

TEST(RestApi, AuthRequiredWhenKeysRegistered) {
  RestFixture fx;
  fx.api->quotas().add_key("secret");

  const auto anonymous = fx.api->handle(simple_get("/v1/models"));
  EXPECT_EQ(anonymous.status, 401);
  EXPECT_EQ(error_code_of(anonymous), "unauthorized");

  const auto wrong = fx.api->handle(simple_get("/v1/models", "guess"));
  EXPECT_EQ(wrong.status, 401);

  const auto keyed = fx.api->handle(simple_get("/v1/models", "secret"));
  EXPECT_EQ(keyed.status, 200);

  // Bearer tokens are an equivalent spelling of the same key.
  const auto bearer = fx.api->handle(parse_request(
      "GET /v1/models HTTP/1.1\r\nauthorization: Bearer secret\r\n\r\n"));
  EXPECT_EQ(bearer.status, 200);

  // /healthz stays key-free for load balancers.
  EXPECT_EQ(fx.api->handle(simple_get("/healthz")).status, 200);
}

TEST(RestApi, QuotaExhaustionAnswers429WithRetryAfter) {
  RestConfig cfg;
  cfg.quota_rps = 1.0;  // burst defaults to 1
  RestFixture fx(cfg);
  EXPECT_EQ(fx.api->handle(simple_get("/v1/models")).status, 200);
  const auto limited = fx.api->handle(simple_get("/v1/models"));
  EXPECT_EQ(limited.status, 429);
  EXPECT_EQ(error_code_of(limited), "quota_exhausted");
  ASSERT_TRUE(limited.headers.contains("retry-after"));
  EXPECT_GE(std::stod(limited.headers.at("retry-after")), 1.0);
  // /healthz is never metered.
  EXPECT_EQ(fx.api->handle(simple_get("/healthz")).status, 200);
}

TEST(RestApi, StatsDocumentShape) {
  RestFixture fx;
  (void)fx.api->handle(simple_get("/v1/models"));
  const auto response = fx.api->handle(simple_get("/v1/stats"));
  ASSERT_EQ(response.status, 200);
  const auto doc = util::parse_json(response.body);
  EXPECT_EQ(doc.at("kind").as_string(), "serve_http_stats");
  EXPECT_EQ(doc.at("schema_version").as_number(), 1.0);
  EXPECT_TRUE(doc.has("service"));
  EXPECT_TRUE(doc.has("admission"));
  EXPECT_TRUE(doc.has("cache"));
  EXPECT_TRUE(doc.has("quota"));
  ASSERT_TRUE(doc.has("http"));
  const auto& routes = doc.at("http").at("routes").array;
  bool saw_models = false;
  for (const auto& route : routes) {
    if (route.at("route").as_string() == "GET /v1/models") {
      saw_models = true;
      EXPECT_GE(route.at("requests").as_number(), 1.0);
    }
  }
  EXPECT_TRUE(saw_models);
}

// ------------------------------------------------------------ socket e2e --

TEST(HttpEndpointSocket, FullProtocolOverLoopback) {
  RestFixture fx;
  RestConfig rest_cfg;
  ServerConfig server_cfg;
  server_cfg.worker_threads = 4;
  HttpEndpoint endpoint(*fx.service, rest_cfg, server_cfg);
  endpoint.server.start();
  ASSERT_NE(endpoint.server.port(), 0);

  ApiClient client("127.0.0.1", endpoint.server.port());
  EXPECT_TRUE(client.healthy());
  EXPECT_EQ(client.models(), std::vector<std::string>{"smote"});

  // Submit, paginate back, digest: the socket path must land on the same
  // bytes as a local sample of the same identity.
  const std::uint64_t seed = 0xDEADBEEFCAFEF00Dull;
  const std::uint64_t job = client.submit("smote", 120, seed, 32);
  const auto remote = client.wait_result(job, /*page_rows=*/50);
  EXPECT_EQ(remote.pages, 3u);
  ASSERT_EQ(remote.table.num_rows(), 120u);

  tabular::Table local(remote.table.schema());
  models::SampleRequest request;
  request.rows = 120;
  request.seed = seed;
  request.chunk_rows = 32;
  fx.host.acquire("smote")->sample_into(local, request);
  EXPECT_EQ(serve::hash_table(remote.table), serve::hash_table(local));

  // Unknown model is refused before submit, as a typed ApiError.
  try {
    (void)client.submit("tabddpm", 10, 1);
    FAIL() << "expected ApiError";
  } catch (const ApiError& e) {
    EXPECT_EQ(e.status(), 404);
    EXPECT_EQ(e.code(), "unknown_model");
  }

  // cancel() on an already-resolved job reports nothing live to cancel.
  const std::uint64_t done_job = client.submit("smote", 10, 1);
  (void)client.wait_result(done_job);
  EXPECT_FALSE(client.cancel(done_job));

  const auto stats = util::parse_json(client.stats_json());
  EXPECT_EQ(stats.at("kind").as_string(), "serve_http_stats");
  ASSERT_TRUE(stats.has("server"));
  EXPECT_GE(stats.at("server").at("requests").as_number(), 1.0);

  endpoint.server.stop();
  EXPECT_FALSE(endpoint.server.running());
}

TEST(HttpEndpointSocket, AuthAndQuotaOverTheWire) {
  RestConfig rest_cfg;
  rest_cfg.quota_rps = 2.0;
  RestFixture fx(rest_cfg);
  // RestFixture built its own api; the endpoint wraps the same service
  // with the quota config and its own key registry.
  HttpEndpoint endpoint(*fx.service, rest_cfg);
  endpoint.api.quotas().add_key("good-key");
  endpoint.server.start();

  ApiClient anonymous("127.0.0.1", endpoint.server.port());
  try {
    (void)anonymous.models();
    FAIL() << "expected 401";
  } catch (const ApiError& e) {
    EXPECT_EQ(e.status(), 401);
    EXPECT_EQ(e.code(), "unauthorized");
  }
  EXPECT_TRUE(anonymous.healthy());  // liveness needs no key

  ApiClient keyed("127.0.0.1", endpoint.server.port(), "good-key");
  EXPECT_EQ(keyed.models(), std::vector<std::string>{"smote"});
  // Drain the bucket (burst = max(1, rps) = 2; one token already spent).
  bool saw_quota_error = false;
  for (int i = 0; i < 4 && !saw_quota_error; ++i) {
    try {
      (void)keyed.models();
    } catch (const ApiError& e) {
      EXPECT_EQ(e.status(), 429);
      EXPECT_EQ(e.code(), "quota_exhausted");
      EXPECT_GE(e.retry_after(), 1.0);
      saw_quota_error = true;
    }
  }
  EXPECT_TRUE(saw_quota_error);
  endpoint.server.stop();
}

TEST(HttpEndpointSocket, KeepAliveServesManyRequestsOnOneConnection) {
  RestFixture fx;
  HttpEndpoint endpoint(*fx.service);
  endpoint.server.start();

  HttpClient client("127.0.0.1", endpoint.server.port());
  for (int i = 0; i < 16; ++i) {
    const auto response = client.request("GET", "/healthz");
    ASSERT_EQ(response.status, 200);
  }
  const auto stats = endpoint.server.stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.requests, 16u);

  // A parse-error response closes the connection and is tallied.
  const auto bad = client.request("BAD METHOD", "/healthz");
  EXPECT_EQ(bad.status, 400);
  EXPECT_GE(endpoint.server.stats().parse_errors, 1u);
  endpoint.server.stop();
}

}  // namespace
}  // namespace surro::net
