// Anomaly extension: injection, ROC-AUC, precision@k, and the TabDDPM
// diffusion anomaly score separating corrupted from normal jobs.

#include <gtest/gtest.h>

#include "anomaly/inject.hpp"
#include "eval/experiment.hpp"
#include "models/tabddpm.hpp"
#include "panda/filters.hpp"
#include "panda/generator.hpp"

namespace surro::anomaly {
namespace {

tabular::Table small_job_table() {
  panda::GeneratorConfig cfg;
  cfg.model.days = 6.0;
  cfg.model.base_jobs_per_day = 250.0;
  panda::RecordGenerator gen(cfg);
  return panda::build_job_table(gen.generate(), gen.catalog());
}

TEST(Inject, LabelsMatchCorruptionCount) {
  const auto table = small_job_table();
  InjectionConfig cfg;
  cfg.fraction = 0.1;
  const auto result = inject_anomalies(table, cfg);
  EXPECT_EQ(result.table.num_rows(), table.num_rows());
  std::size_t labeled = 0;
  for (const auto l : result.labels) labeled += l;
  EXPECT_EQ(labeled, result.num_anomalies);
  EXPECT_NEAR(static_cast<double>(labeled) /
                  static_cast<double>(table.num_rows()),
              0.1, 0.01);
}

TEST(Inject, CorruptedRowsActuallyDiffer) {
  const auto table = small_job_table();
  InjectionConfig cfg;
  cfg.fraction = 0.2;
  cfg.kinds = {AnomalyKind::kRunawayWorkload};
  const auto result = inject_anomalies(table, cfg);
  const std::size_t wl = table.schema().index_of(panda::features::kWorkload);
  const auto before = table.numerical(wl);
  const auto after = result.table.numerical(wl);
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    if (result.labels[r] != 0) {
      EXPECT_GT(after[r], before[r] * 10.0);
    } else {
      EXPECT_DOUBLE_EQ(after[r], before[r]);
    }
  }
}

TEST(Inject, DeterministicForSeed) {
  const auto table = small_job_table();
  InjectionConfig cfg;
  const auto a = inject_anomalies(table, cfg);
  const auto b = inject_anomalies(table, cfg);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Inject, InvalidConfigThrows) {
  const auto table = small_job_table();
  InjectionConfig cfg;
  cfg.fraction = 0.0;
  EXPECT_THROW(inject_anomalies(table, cfg), std::invalid_argument);
  cfg.fraction = 0.5;
  cfg.kinds.clear();
  EXPECT_THROW(inject_anomalies(table, cfg), std::invalid_argument);
}

TEST(RocAuc, PerfectSeparation) {
  const std::vector<double> scores = {0.1, 0.2, 0.9, 0.8};
  const std::vector<std::uint8_t> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 1.0);
}

TEST(RocAuc, PerfectInversion) {
  const std::vector<double> scores = {0.9, 0.8, 0.1, 0.2};
  const std::vector<std::uint8_t> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.0);
}

TEST(RocAuc, RandomScoresNearHalf) {
  util::Rng rng(1);
  std::vector<double> scores(4000);
  std::vector<std::uint8_t> labels(4000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(roc_auc(scores, labels), 0.5, 0.03);
}

TEST(RocAuc, TiesGetMidrank) {
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const std::vector<std::uint8_t> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.5);
}

TEST(RocAuc, DegenerateLabels) {
  const std::vector<double> scores = {0.1, 0.9};
  const std::vector<std::uint8_t> all_pos = {1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, all_pos), 0.5);
}

TEST(PrecisionAtK, TopScoresHit) {
  const std::vector<double> scores = {0.9, 0.1, 0.8, 0.2};
  const std::vector<std::uint8_t> labels = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 2), 1.0);
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 4), 0.5);
}

TEST(DiffusionDetector, SeparatesInjectedAnomalies) {
  // Train TabDDPM on clean data, score a contaminated copy: injected rows
  // must rank clearly above normal rows (AUC well above chance).
  auto cfg = eval::quick_experiment_config();
  cfg.data.model.days = 12.0;
  cfg.data.model.base_jobs_per_day = 180.0;
  const auto data = eval::prepare_data(cfg);

  models::TabDdpmConfig mcfg;
  mcfg.budget.epochs = 20;
  mcfg.budget.learning_rate = 1.5e-3f;
  mcfg.timesteps = 30;
  models::TabDdpm model(mcfg);
  model.fit(data.train);

  InjectionConfig icfg;
  icfg.fraction = 0.08;
  const auto injected = inject_anomalies(data.test, icfg);
  const auto scores = model.anomaly_scores(injected.table, 3, 3);
  const double auc = roc_auc(scores, injected.labels);
  EXPECT_GT(auc, 0.7) << "diffusion anomaly score barely better than chance";
}

TEST(DiffusionDetector, ScoresBeforeFitThrows) {
  models::TabDdpm model;
  const auto table = small_job_table();
  EXPECT_THROW(model.anomaly_scores(table), std::logic_error);
}

}  // namespace
}  // namespace surro::anomaly
