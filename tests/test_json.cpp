// util::JsonWriter ⇄ util::parse_json round-trip sanity: the product JSON
// reader (src/util/json_parse.hpp, added for serve request scripts)
// re-reads everything the writer emits, so escaping, separators, nesting,
// number formatting, and the non-finite→null degradation are all checked
// end to end — against the parser the serving layer actually ships.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

namespace surro::util {
namespace {

JsonValue parse(const std::string& text) { return parse_json(text); }

// ------------------------------------------------------------------- tests --

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonNumber, RoundTripsExactly) {
  for (const double v : {0.0, -1.5, 3.141592653589793, 1e-300, 6.02e23,
                         0.1 + 0.2}) {
    const double back = std::stod(json_number(v));
    EXPECT_EQ(back, v) << json_number(v);
  }
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(INFINITY), "null");
  EXPECT_EQ(json_number(-INFINITY), "null");
}

TEST(JsonWriter, NonFiniteKvDegradesToNullAndRoundTrips) {
  // Latency percentiles are legitimately ±inf on an empty window; the
  // artifact must still be valid JSON with null in those slots.
  JsonWriter w;
  w.begin_object();
  w.kv("p50", INFINITY);
  w.kv("p95", -INFINITY);
  w.kv("nan", std::nan(""));
  w.kv("finite", 12.5);
  w.end_object();
  const auto doc = parse(w.str());
  EXPECT_TRUE(doc.at("p50").is_null());
  EXPECT_TRUE(doc.at("p95").is_null());
  EXPECT_TRUE(doc.at("nan").is_null());
  EXPECT_EQ(doc.at("finite").as_number(), 12.5);
}

TEST(JsonParse, ScalarsAndStructure) {
  EXPECT_EQ(parse("42").as_number(), 42.0);
  EXPECT_EQ(parse("-1.25e2").as_number(), -125.0);
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("\"a\\u0041b\"").as_string(), "aAb");
  const auto doc = parse("  {\"k\": [1, {\"n\": null}]}  ");
  ASSERT_EQ(doc.at("k").array.size(), 2u);
  EXPECT_EQ(doc.at("k").array[0].as_number(), 1.0);
  EXPECT_TRUE(doc.at("k").array[1].at("n").is_null());
  EXPECT_TRUE(doc.has("k"));
  EXPECT_FALSE(doc.has("missing"));
  EXPECT_EQ(doc.number_or("absent", 7.0), 7.0);
  EXPECT_EQ(doc.string_or("absent", "dflt"), "dflt");
}

TEST(JsonParse, UnicodeEscapesIncludingSurrogatePairs) {
  EXPECT_EQ(parse("\"\\u00e9\"").as_string(), "\xC3\xA9");        // é
  EXPECT_EQ(parse("\"\\u20ac\"").as_string(), "\xE2\x82\xAC");    // €
  EXPECT_EQ(parse("\"\\ud83d\\ude00\"").as_string(),
            "\xF0\x9F\x98\x80");                                  // 😀
  for (const char* bad : {"\"\\ud83d\"", "\"\\ud83d\\u0041\"",
                          "\"\\udc00\"", "\"\\ud83dx\""}) {
    EXPECT_THROW(static_cast<void>(parse(bad)), std::runtime_error) << bad;
  }
}

TEST(JsonParse, MalformedInputThrows) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "nul", "tru", "1 2",
        "{\"a\":1,}", "\"unterminated", "{1: 2}", "--3", "1e"}) {
    EXPECT_THROW(static_cast<void>(parse(bad)), std::runtime_error) << bad;
  }
}

TEST(JsonParse, DeepNestingFailsParseInsteadOfOverflowingTheStack) {
  // A hostile --script input can nest arbitrarily deep; the recursive-
  // descent parser must reject it as a parse error, never crash. 10k
  // levels would blow the stack without the depth cap.
  for (const std::size_t depth : {std::size_t{10'000}, std::size_t{129}}) {
    std::string deep;
    deep.reserve(2 * depth);
    deep.append(depth, '[');
    deep.append(depth, ']');
    EXPECT_THROW(static_cast<void>(parse(deep)), std::runtime_error)
        << "depth " << depth;
    // Mixed object/array nesting hits the same cap.
    std::string mixed;
    for (std::size_t i = 0; i < depth; ++i) mixed += "{\"k\":[";
    mixed += "1";
    for (std::size_t i = 0; i < depth; ++i) mixed += "]}";
    EXPECT_THROW(static_cast<void>(parse(mixed)), std::runtime_error)
        << "depth " << depth;
  }
  // At the cap itself the document still parses (the limit is generous,
  // not load-bearing for real scripts).
  std::string ok;
  ok.append(128, '[');
  ok.append(128, ']');
  const auto doc = parse(ok);
  EXPECT_EQ(doc.kind, JsonValue::Kind::kArray);
}

TEST(JsonParse, EveryControlCharacterRoundTripsThroughWriterEscapes) {
  // The writer escapes the full C0 range as \u00XX (or the short \n-style
  // forms); the parser must rebuild the exact byte for all 32 of them —
  // this is what lets categorical labels with embedded control bytes
  // survive the HTTP wire format losslessly.
  for (int c = 0; c < 0x20; ++c) {
    const std::string original(1, static_cast<char>(c));
    JsonWriter w;
    w.begin_object();
    w.kv("s", original);
    w.end_object();
    const auto doc = parse(w.str());
    EXPECT_EQ(doc.at("s").as_string(), original) << "control char " << c;
  }
  // And a raw (unescaped) control character is rejected as malformed.
  for (int c = 0; c < 0x20; ++c) {
    if (c == '\t' || c == '\n' || c == '\r') continue;  // ws outside strings
    const std::string raw = std::string("\"a") +
                            static_cast<char>(c) + "b\"";
    EXPECT_THROW(static_cast<void>(parse(raw)), JsonParseError)
        << "raw control char " << c;
  }
  EXPECT_THROW(static_cast<void>(parse("\"a\nb\"")), JsonParseError);
}

TEST(JsonParse, ByteCapRefusesOversizedDocuments) {
  JsonLimits limits;
  limits.max_bytes = 16;
  EXPECT_EQ(parse_json("[1,2,3]", limits).array.size(), 3u);
  const std::string big = "[" + std::string(64, ' ') + "1]";
  try {
    static_cast<void>(parse_json(big, limits));
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 0u);  // refused before parsing, not mid-way
    EXPECT_NE(std::string(e.what()).find("16-byte limit"),
              std::string::npos);
  }
  // max_bytes = 0 stays unlimited (trusted local input).
  EXPECT_EQ(parse_json(big, JsonLimits{}).array.size(), 1u);
}

TEST(JsonParse, ParseErrorCarriesTheFailureOffset) {
  try {
    static_cast<void>(parse("{\"ok\": 1, \"bad\": tru}"));
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 17u);  // where the bad literal starts
  }
}

TEST(JsonParse, ValidUtf8PassesThroughByteForByte) {
  for (const std::string s :
       {std::string("caf\xC3\xA9"),                      // 2-byte é
        std::string("\xE2\x82\xAC" "1.50"),              // 3-byte €
        std::string("\xF0\x9F\x98\x80"),                 // 4-byte emoji
        std::string("\xEF\xBF\xBD"),                     // U+FFFD
        std::string("\xF4\x8F\xBF\xBF")}) {              // U+10FFFF
    const auto doc = parse("\"" + s + "\"");
    EXPECT_EQ(doc.as_string(), s);
  }
}

TEST(JsonParse, InvalidUtf8IsRejectedWithATypedError) {
  const std::vector<std::string> bad = {
      "\x80",              // stray continuation byte
      "\xC0\xAF",          // overlong 2-byte encoding of '/'
      "\xC1\xBF",          // overlong 2-byte
      "\xE0\x9F\xBF",      // overlong 3-byte (below U+0800)
      "\xED\xA0\x80",      // UTF-16 high surrogate as raw bytes
      "\xED\xBF\xBF",      // UTF-16 low surrogate as raw bytes
      "\xF0\x8F\xBF\xBF",  // overlong 4-byte (below U+10000)
      "\xF4\x90\x80\x80",  // past U+10FFFF
      "\xF5\x80\x80\x80",  // 0xF5 is never a valid lead byte
      "\xFF",              // ditto 0xFF
      "\xC3",              // truncated 2-byte sequence
      "\xE2\x82",          // truncated 3-byte sequence
      "\xC3\x28",          // continuation byte replaced by ASCII
  };
  for (const auto& s : bad) {
    const std::string doc = "\"a" + s + "b\"";
    EXPECT_THROW(static_cast<void>(parse(doc)), JsonParseError)
        << "bytes:" << [&] {
             std::string hex;
             for (const unsigned char c : s) {
               char buf[8];
               std::snprintf(buf, sizeof buf, " %02X", c);
               hex += buf;
             }
             return hex;
           }();
  }
}

TEST(JsonParse, KindMismatchThrows) {
  const auto doc = parse("{\"s\": \"x\", \"n\": 3}");
  EXPECT_THROW(static_cast<void>(doc.at("s").as_number()),
               std::runtime_error);
  EXPECT_THROW(static_cast<void>(doc.at("n").as_string()),
               std::runtime_error);
  EXPECT_THROW(static_cast<void>(doc.at("n").as_bool()), std::runtime_error);
  EXPECT_THROW(static_cast<void>(doc.at("nope")), std::runtime_error);
  EXPECT_THROW(static_cast<void>(parse("[1]").at("k")), std::runtime_error);
}

TEST(JsonWriter, NestedDocumentRoundTrips) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "scenario \"quoted\"\n");
  w.kv("count", 42);
  w.kv("ratio", 0.375);
  w.kv("ok", true);
  w.key("missing").null();
  w.key("list").begin_array();
  w.value(1).value(2.5).value("three");
  w.begin_object().kv("nested", -7).end_object();
  w.end_array();
  w.key("empty_obj").begin_object().end_object();
  w.key("empty_arr").begin_array().end_array();
  w.end_object();

  const auto doc = parse(w.str());
  EXPECT_EQ(doc.at("name").string, "scenario \"quoted\"\n");
  EXPECT_EQ(doc.at("count").number, 42.0);
  EXPECT_EQ(doc.at("ratio").number, 0.375);
  EXPECT_TRUE(doc.at("ok").boolean);
  EXPECT_EQ(doc.at("missing").kind, JsonValue::Kind::kNull);
  ASSERT_EQ(doc.at("list").array.size(), 4u);
  EXPECT_EQ(doc.at("list").array[1].number, 2.5);
  EXPECT_EQ(doc.at("list").array[3].at("nested").number, -7.0);
  EXPECT_TRUE(doc.at("empty_obj").object.empty());
  EXPECT_TRUE(doc.at("empty_arr").array.empty());
}

TEST(JsonWriter, RawSplicesDocuments) {
  JsonWriter inner;
  inner.begin_object().kv("a", 1).end_object();
  JsonWriter outer;
  outer.begin_object();
  outer.kv("first", 0);
  outer.key("inner").raw(inner.str());
  outer.kv("last", 2);
  outer.end_object();
  const auto doc = parse(outer.str());
  EXPECT_EQ(doc.at("inner").at("a").number, 1.0);
  EXPECT_EQ(doc.at("last").number, 2.0);
}

TEST(ScoresJson, RoundTripsThroughParser) {
  std::vector<metrics::ModelScore> scores = {
      {"TVAE", 0.25, 0.1, 0.05, 1.5, -0.25},
      {"SMOTE", 0.004, 0.001, 0.03, 0.32, 0.08},
  };
  const auto doc = parse(metrics::scores_to_json(scores));
  ASSERT_EQ(doc.array.size(), 2u);
  EXPECT_EQ(doc.array[0].at("model").string, "TVAE");
  EXPECT_EQ(doc.array[0].at("wd").number, 0.25);
  EXPECT_EQ(doc.array[1].at("dcr").number, 0.32);
  EXPECT_EQ(doc.array[1].at("diff_mlef").number, 0.08);
}

}  // namespace
}  // namespace surro::util
