// util::JsonWriter round-trip sanity: a minimal recursive-descent JSON
// parser (test-only) re-reads everything the writer emits, so escaping,
// separators, nesting, and number formatting are all checked end to end.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "util/json.hpp"

namespace surro::util {
namespace {

// ------------------------------------------------------- mini JSON parser --

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
};

class MiniParser {
 public:
  explicit MiniParser(std::string_view text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "'");
    }
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (consume('}')) return v;
    do {
      JsonValue key = string_value();
      expect(':');
      v.object.emplace(std::move(key.string), value());
    } while (consume(','));
    expect('}');
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (consume(']')) return v;
    do {
      v.array.push_back(value());
    } while (consume(','));
    expect(']');
    return v;
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u");
            const std::string hex(s_.substr(pos_, 4));
            pos_ += 4;
            c = static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
            break;
          }
          default: throw std::runtime_error("unknown escape");
        }
      }
      v.string += c;
    }
    expect('"');
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (s_.substr(pos_, 4) == "true") {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.substr(pos_, 5) == "false") {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  JsonValue null() {
    if (s_.substr(pos_, 4) != "null") throw std::runtime_error("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(std::string(s_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

JsonValue parse(const std::string& text) { return MiniParser(text).parse(); }

// ------------------------------------------------------------------- tests --

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonNumber, RoundTripsExactly) {
  for (const double v : {0.0, -1.5, 3.141592653589793, 1e-300, 6.02e23,
                         0.1 + 0.2}) {
    const double back = std::stod(json_number(v));
    EXPECT_EQ(back, v) << json_number(v);
  }
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(INFINITY), "null");
}

TEST(JsonWriter, NestedDocumentRoundTrips) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "scenario \"quoted\"\n");
  w.kv("count", 42);
  w.kv("ratio", 0.375);
  w.kv("ok", true);
  w.key("missing").null();
  w.key("list").begin_array();
  w.value(1).value(2.5).value("three");
  w.begin_object().kv("nested", -7).end_object();
  w.end_array();
  w.key("empty_obj").begin_object().end_object();
  w.key("empty_arr").begin_array().end_array();
  w.end_object();

  const auto doc = parse(w.str());
  EXPECT_EQ(doc.at("name").string, "scenario \"quoted\"\n");
  EXPECT_EQ(doc.at("count").number, 42.0);
  EXPECT_EQ(doc.at("ratio").number, 0.375);
  EXPECT_TRUE(doc.at("ok").boolean);
  EXPECT_EQ(doc.at("missing").kind, JsonValue::Kind::kNull);
  ASSERT_EQ(doc.at("list").array.size(), 4u);
  EXPECT_EQ(doc.at("list").array[1].number, 2.5);
  EXPECT_EQ(doc.at("list").array[3].at("nested").number, -7.0);
  EXPECT_TRUE(doc.at("empty_obj").object.empty());
  EXPECT_TRUE(doc.at("empty_arr").array.empty());
}

TEST(JsonWriter, RawSplicesDocuments) {
  JsonWriter inner;
  inner.begin_object().kv("a", 1).end_object();
  JsonWriter outer;
  outer.begin_object();
  outer.kv("first", 0);
  outer.key("inner").raw(inner.str());
  outer.kv("last", 2);
  outer.end_object();
  const auto doc = parse(outer.str());
  EXPECT_EQ(doc.at("inner").at("a").number, 1.0);
  EXPECT_EQ(doc.at("last").number, 2.0);
}

TEST(ScoresJson, RoundTripsThroughParser) {
  std::vector<metrics::ModelScore> scores = {
      {"TVAE", 0.25, 0.1, 0.05, 1.5, -0.25},
      {"SMOTE", 0.004, 0.001, 0.03, 0.32, 0.08},
  };
  const auto doc = parse(metrics::scores_to_json(scores));
  ASSERT_EQ(doc.array.size(), 2u);
  EXPECT_EQ(doc.array[0].at("model").string, "TVAE");
  EXPECT_EQ(doc.array[0].at("wd").number, 0.25);
  EXPECT_EQ(doc.array[1].at("dcr").number, 0.32);
  EXPECT_EQ(doc.array[1].at("diff_mlef").number, 0.08);
}

}  // namespace
}  // namespace surro::util
