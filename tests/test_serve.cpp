// Serving layer: ModelHost LRU cache semantics (load-on-miss, pinning,
// eviction, counters, fault injection), SampleService batching/priority/
// stats plus the overload-control layer (admission policies, deadlines,
// cancellation), request script parsing, replay determinism, and the
// SurrogatePipeline thin client — including the headline contract: a job's
// bytes are identical across client concurrency and cache eviction/reload
// cycles, for all four models.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/latency_window.hpp"
#include "serve/model_host.hpp"
#include "serve/replay.hpp"
#include "serve/sample_service.hpp"
#include "util/json_parse.hpp"
#include "util/rng.hpp"

namespace surro::serve {
namespace {

// Tiny mixed table with clear structure (mirrors test_generator_api.cpp).
tabular::Table cluster_table(std::size_t n, std::uint64_t seed) {
  tabular::Schema schema({{"x", tabular::ColumnKind::kNumerical},
                          {"site", tabular::ColumnKind::kCategorical},
                          {"y", tabular::ColumnKind::kNumerical},
                          {"status", tabular::ColumnKind::kCategorical}});
  tabular::Table t(schema);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool cluster_a = rng.bernoulli(0.65);
    auto row = t.make_row();
    if (cluster_a) {
      row.set(0, rng.normal(0.0, 0.4));
      row.set(1, std::string(rng.bernoulli(0.9) ? "BNL" : "CERN"));
      row.set(2, rng.normal(-2.0, 0.3));
      row.set(3, std::string(rng.bernoulli(0.85) ? "finished" : "failed"));
    } else {
      row.set(0, rng.normal(5.0, 0.4));
      row.set(1, std::string(rng.bernoulli(0.8) ? "RAL" : "CERN"));
      row.set(2, rng.normal(3.0, 0.3));
      row.set(3, std::string(rng.bernoulli(0.6) ? "finished" : "failed"));
    }
    t.append_row(row);
  }
  return t;
}

models::TrainBudget tiny_budget() {
  models::TrainBudget b;
  b.epochs = 4;
  b.batch_size = 64;
  b.learning_rate = 1e-3f;
  return b;
}

void expect_tables_identical(const tabular::Table& a,
                             const tabular::Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_TRUE(a.schema() == b.schema());
  for (const std::size_t col : a.schema().numerical_indices()) {
    const auto va = a.numerical(col);
    const auto vb = b.numerical(col);
    for (std::size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(va[r], vb[r]) << "numerical col " << col << " row " << r;
    }
  }
  for (const std::size_t col : a.schema().categorical_indices()) {
    for (std::size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(a.label_at(col, r), b.label_at(col, r))
          << "categorical col " << col << " row " << r;
    }
  }
}

/// Per-test scratch directory for model archives, removed on destruction.
struct TempDir {
  TempDir() {
    static std::atomic<std::uint64_t> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("surro_serve_test_" + std::to_string(++counter) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
  std::filesystem::path path;
};

/// Fit `key` on a small cluster table and persist the archive.
std::string fit_and_archive(const TempDir& dir, const std::string& key,
                            std::uint64_t data_seed = 21) {
  auto model = models::make_generator(key, tiny_budget(), 7);
  model->fit(cluster_table(300, data_seed));
  const std::string path = dir.file(key + ".bin");
  models::save_model_file(*model, path);
  return path;
}

// ---------------------------------------------------------- script parsing --

TEST(ReplayScript, InlineSpecParsesAllFields) {
  const auto script = parse_script_inline(
      "model=smote,rows=500,seed=7,chunk_rows=128,threads=2,priority=3,"
      "deadline_ms=250,repeat=4,seed_stride=2; model=tvae,rows=200");
  ASSERT_EQ(script.requests.size(), 2u);
  const auto& first = script.requests[0];
  EXPECT_EQ(first.job.model_key, "smote");
  EXPECT_EQ(first.job.rows, 500u);
  EXPECT_EQ(first.job.seed, 7u);
  EXPECT_EQ(first.job.chunk_rows, 128u);
  EXPECT_EQ(first.job.threads, 2u);
  EXPECT_EQ(first.job.priority, 3);
  EXPECT_EQ(first.job.deadline_ms, 250.0);
  EXPECT_EQ(first.repeat, 4u);
  EXPECT_EQ(first.seed_stride, 2u);
  const auto& second = script.requests[1];
  EXPECT_EQ(second.job.model_key, "tvae");
  EXPECT_EQ(second.repeat, 1u);      // defaults
  EXPECT_EQ(second.job.seed, 1234u);
  EXPECT_EQ(second.job.deadline_ms, 0.0);  // none
}

TEST(ReplayScript, InlineSpecRejectsBadInput) {
  EXPECT_THROW((void)parse_script_inline("rows=10"), std::runtime_error);
  EXPECT_THROW((void)parse_script_inline("model=smote"), std::runtime_error);
  EXPECT_THROW((void)parse_script_inline("model=smote,rows=0"),
               std::runtime_error);
  EXPECT_THROW((void)parse_script_inline("model=smote,rows=ten"),
               std::runtime_error);
  EXPECT_THROW((void)parse_script_inline("model=smote,rows=5,zorp=1"),
               std::runtime_error);
  EXPECT_THROW((void)parse_script_inline("model=smote rows=5"),
               std::runtime_error);
  // Out-of-range numerics must fail parsing, never wrap through a cast.
  EXPECT_THROW((void)parse_script_inline("model=smote,rows=-1"),
               std::runtime_error);
  EXPECT_THROW((void)parse_script_inline("model=smote,rows=1e30"),
               std::runtime_error);
  EXPECT_THROW((void)parse_script_inline("model=smote,rows=5,repeat=-2"),
               std::runtime_error);
  EXPECT_THROW((void)parse_script_inline("model=smote,rows=5,seed=-7"),
               std::runtime_error);
  EXPECT_THROW((void)parse_script_inline("model=smote,rows=5,priority=1e9"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_script_inline("model=smote,rows=5,deadline_ms=-1"),
      std::runtime_error);
}

TEST(ReplayScript, JsonlParsesAndReportsLineNumbers) {
  std::istringstream script_text(
      "# a comment\n"
      "{\"model\": \"smote\", \"rows\": 500, \"seed\": 9, \"repeat\": 2}\n"
      "\n"
      "{\"model\": \"tvae\", \"rows\": 100, \"priority\": -1}\n");
  const auto script = parse_script_jsonl(script_text);
  ASSERT_EQ(script.requests.size(), 2u);
  EXPECT_EQ(script.requests[0].job.model_key, "smote");
  EXPECT_EQ(script.requests[0].repeat, 2u);
  EXPECT_EQ(script.requests[1].job.priority, -1);

  std::istringstream bad("{\"model\": \"smote\", \"rows\": 10}\n{oops\n");
  try {
    (void)parse_script_jsonl(bad);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

// -------------------------------------------------------------- model host --

TEST(ModelHost, LoadOnMissHitOnResidentAndLruEviction) {
  TempDir dir;
  const auto smote_path = fit_and_archive(dir, "smote");
  HostConfig cfg;
  cfg.capacity = 1;
  ModelHost host(cfg);
  host.register_archive("a", smote_path);
  host.register_archive("b", smote_path);
  EXPECT_TRUE(host.contains("a"));
  EXPECT_FALSE(host.resident("a"));
  EXPECT_EQ(host.keys(), (std::vector<std::string>{"a", "b"}));

  auto lease_a = host.acquire("a");  // miss -> load
  ASSERT_NE(lease_a, nullptr);
  EXPECT_TRUE(host.resident("a"));
  (void)host.acquire("a");           // hit
  auto lease_b = host.acquire("b");  // miss -> load -> evicts a (LRU)
  EXPECT_FALSE(host.resident("a"));
  EXPECT_TRUE(host.resident("b"));

  const auto stats = host.stats();
  EXPECT_EQ(stats.registered, 2u);
  EXPECT_EQ(stats.resident, 1u);
  EXPECT_EQ(stats.capacity, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.loads, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_NEAR(stats.hit_rate(), 1.0 / 3.0, 1e-12);

  // The evicted model's lease stays alive and sampling through it works.
  EXPECT_EQ(lease_a->sample(50, 5).num_rows(), 50u);
  // Reload after eviction is transparent.
  (void)host.acquire("a");
  EXPECT_EQ(host.stats().loads, 3u);

  EXPECT_THROW((void)host.acquire("nope"), std::invalid_argument);
  EXPECT_THROW(host.register_archive("a", smote_path),
               std::invalid_argument);
}

TEST(ModelHost, LruPrefersLeastRecentlyTouched) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  HostConfig cfg;
  cfg.capacity = 2;
  ModelHost host(cfg);
  for (const char* key : {"a", "b", "c"}) host.register_archive(key, path);

  (void)host.acquire("a");
  (void)host.acquire("b");
  (void)host.acquire("a");  // refresh a: b is now LRU
  (void)host.acquire("c");
  EXPECT_TRUE(host.resident("a"));
  EXPECT_FALSE(host.resident("b"));
  EXPECT_TRUE(host.resident("c"));
}

TEST(ModelHost, PinningExemptsFromEvictionAndMayExceedCapacity) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  HostConfig cfg;
  cfg.capacity = 1;
  ModelHost host(cfg);
  host.register_archive("a", path);
  host.register_archive("b", path);

  host.pin("a");
  (void)host.acquire("b");  // nothing evictable: runs over capacity
  EXPECT_TRUE(host.resident("a"));
  EXPECT_TRUE(host.resident("b"));
  EXPECT_EQ(host.stats().pinned, 1u);
  EXPECT_EQ(host.stats().resident, 2u);

  host.unpin("a");
  host.evict_idle();  // drops every unpinned resident model
  EXPECT_FALSE(host.resident("a"));
  EXPECT_FALSE(host.resident("b"));
  EXPECT_THROW(host.unpin("nope"), std::invalid_argument);
}

TEST(ModelHost, InMemoryEntriesNeedNoArchiveButCannotReload) {
  auto model = models::make_generator("smote", tiny_budget(), 7);
  model->fit(cluster_table(200, 31));
  ModelHost host;
  EXPECT_THROW(host.register_fitted("m", nullptr), std::invalid_argument);
  host.register_fitted("m", std::move(model), /*pin=*/false);
  EXPECT_TRUE(host.resident("m"));
  EXPECT_EQ(host.acquire("m")->key(), "smote");

  host.evict_idle();
  EXPECT_THROW((void)host.acquire("m"), std::runtime_error);
  host.unregister("m");
  EXPECT_FALSE(host.contains("m"));
  host.unregister("m");  // unknown keys are ignored
}

// ---------------------------------------------------------- sample service --

class ServeAllModels : public ::testing::TestWithParam<std::string> {};

TEST_P(ServeAllModels, ServiceBytesMatchDirectAcrossConcurrencyAndEviction) {
  const std::string key = GetParam();
  TempDir dir;
  auto model = models::make_generator(key, tiny_budget(), 7);
  model->fit(cluster_table(300, 21));
  const std::string path = dir.file(key + ".bin");
  models::save_model_file(*model, path);

  models::SampleRequest request;
  request.rows = 300;
  request.seed = 4242;
  request.chunk_rows = 64;
  request.threads = 1;
  tabular::Table direct;
  model->sample_into(direct, request);

  SampleJob job;
  job.model_key = key;
  job.rows = request.rows;
  job.seed = request.seed;
  job.chunk_rows = request.chunk_rows;

  {
    // Lone job, default threading.
    HostConfig host_cfg;
    host_cfg.capacity = 2;
    ModelHost host(host_cfg);
    host.register_archive(key, path);
    SampleService service(host);
    expect_tables_identical(direct, service.sample(job));
  }
  {
    // The same job submitted from four concurrent clients amid decoy
    // traffic with other seeds and priorities: every copy must equal the
    // direct bytes.
    HostConfig host_cfg;
    host_cfg.capacity = 2;
    ModelHost host(host_cfg);
    host.register_archive(key, path);
    SampleService service(host);
    std::vector<std::thread> clients;
    std::vector<tabular::Table> results(4);
    for (std::size_t c = 0; c < 4; ++c) {
      clients.emplace_back([&, c] {
        SampleJob decoy = job;
        decoy.seed = 9000 + c;
        decoy.priority = static_cast<int>(c);
        auto decoy_future = service.submit(decoy);
        results[c] = service.sample(job);
        (void)decoy_future.get();
      });
    }
    for (auto& t : clients) t.join();
    for (const auto& result : results) {
      expect_tables_identical(direct, result);
    }
    const auto stats = service.stats();
    EXPECT_EQ(stats.completed, 8u);
    EXPECT_EQ(stats.failed, 0u);
  }
  {
    // Eviction/reload cycle: capacity 1 with a second key behind the same
    // archive; alternating jobs force evict+reload between repeats.
    HostConfig host_cfg;
    host_cfg.capacity = 1;
    ModelHost host(host_cfg);
    host.register_archive(key, path);
    host.register_archive("other", path);
    SampleService service(host);
    expect_tables_identical(direct, service.sample(job));
    SampleJob other = job;
    other.model_key = "other";
    (void)service.sample(other);
    expect_tables_identical(direct, service.sample(job));
    EXPECT_GE(service.stats().host.evictions, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Keys, ServeAllModels,
                         ::testing::Values("tvae", "ctabgan", "smote",
                                           "tabddpm"),
                         [](const auto& info) { return info.param; });

TEST(SampleService, CoalescesByModelAndDispatchesByPriority) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  HostConfig host_cfg;
  host_cfg.capacity = 2;
  ModelHost host(host_cfg);
  host.register_archive("a", path);
  host.register_archive("b", path);
  SampleService service(host);

  service.pause();
  std::vector<std::future<SampleResult>> low, high;
  for (std::size_t i = 0; i < 3; ++i) {
    SampleJob job{"a", 100, 10 + i};
    low.push_back(service.submit(std::move(job)));
  }
  for (std::size_t i = 0; i < 2; ++i) {
    SampleJob job{"b", 100, 20 + i};
    job.priority = 5;
    high.push_back(service.submit(std::move(job)));
  }
  service.resume();
  service.drain();

  std::vector<SampleResult> low_results, high_results;
  for (auto& f : low) low_results.push_back(f.get());
  for (auto& f : high) high_results.push_back(f.get());

  for (const auto& r : high_results) {
    EXPECT_EQ(r.batch_jobs, 2u);       // both "b" jobs in one batch
    EXPECT_FALSE(r.cache_hit);         // first touch loads from archive
    for (const auto& l : low_results) {
      EXPECT_LT(r.batch_index, l.batch_index);  // priority 5 went first
    }
  }
  for (const auto& r : low_results) {
    EXPECT_EQ(r.batch_jobs, 3u);       // all "a" jobs coalesced
    EXPECT_EQ(r.table.num_rows(), 100u);
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_NEAR(stats.mean_batch_jobs, 2.5, 1e-12);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_LE(stats.p50_latency_ms, stats.p95_latency_ms);
  EXPECT_TRUE(std::isfinite(stats.p50_latency_ms));

  // Round two on resident models: every batch is a cache hit now.
  auto again = service.submit(SampleJob{"a", 50, 1});
  EXPECT_TRUE(again.get().cache_hit);
}

TEST(SampleService, ErrorsSurfaceOnTheFutureNotTheService) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  SampleService service(host);

  auto bad = service.submit(SampleJob{"unknown", 100, 1});
  EXPECT_THROW((void)bad.get(), std::invalid_argument);
  // The service keeps serving afterwards.
  EXPECT_EQ(service.sample(SampleJob{"a", 80, 2}).num_rows(), 80u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);

  // A zero-row job resolves to an empty table rather than erroring.
  auto empty = service.submit(SampleJob{"a", 0, 3});
  EXPECT_EQ(empty.get().table.num_rows(), 0u);
}

TEST(SampleService, FreshServiceReportsInfinitePercentilesAsJsonNull) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  SampleService service(host);

  const auto stats = service.stats();
  EXPECT_TRUE(std::isinf(stats.p50_latency_ms));
  EXPECT_TRUE(std::isinf(stats.p95_latency_ms));

  ReplayResult result;
  result.stats = stats;
  const auto doc =
      util::parse_json(serve_stats_to_json(service, ReplayOptions{}, result));
  EXPECT_EQ(doc.at("kind").as_string(), "serve_stats");
  EXPECT_TRUE(doc.at("latency_ms").at("p50").is_null());
  EXPECT_TRUE(doc.at("latency_ms").at("p95").is_null());
  EXPECT_TRUE(doc.at("latency_ms").at("p99").is_null());
  EXPECT_EQ(doc.at("cache").at("hit_rate").as_number(), 1.0);
  // Overload-control fields ride along in the artifact.
  EXPECT_EQ(doc.at("config").at("admission").as_string(), "block");
  EXPECT_EQ(doc.at("service").at("rejected").as_number(), 0.0);
  EXPECT_EQ(doc.at("service").at("shed").as_number(), 0.0);
  EXPECT_EQ(doc.at("service").at("deadline_missed").as_number(), 0.0);
  EXPECT_EQ(doc.at("service").at("cancelled").as_number(), 0.0);
  EXPECT_EQ(doc.at("cache").at("load_failures").as_number(), 0.0);
}

TEST(SampleService, ShutdownDrainsQueuedJobs) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  std::future<SampleResult> pending;
  {
    SampleService service(host);
    service.pause();
    pending = service.submit(SampleJob{"a", 120, 4});
    // Destructor stops the dispatcher; stop overrides pause and drains.
  }
  EXPECT_EQ(pending.get().table.num_rows(), 120u);
}

// ------------------------------------------------------------------ replay --

TEST(Replay, OutputHashIsClientCountAndCapacityInvariant) {
  TempDir dir;
  const auto smote_path = fit_and_archive(dir, "smote");
  const auto tvae_path = fit_and_archive(dir, "tvae");
  const auto script = parse_script_inline(
      "model=smote,rows=150,seed=5,repeat=3,seed_stride=1;"
      "model=tvae,rows=90,seed=11,repeat=2,seed_stride=1");

  const auto run = [&](std::size_t clients, std::size_t capacity) {
    HostConfig host_cfg;
    host_cfg.capacity = capacity;
    ModelHost host(host_cfg);
    host.register_archive("smote", smote_path);
    host.register_archive("tvae", tvae_path);
    SampleService service(host);
    ReplayOptions opts;
    opts.clients = clients;
    return run_replay(service, script, opts);
  };

  const auto serial = run(1, 2);
  EXPECT_EQ(serial.jobs, 5u);
  EXPECT_EQ(serial.rows, 3u * 150u + 2u * 90u);
  EXPECT_EQ(serial.failures, 0u);
  EXPECT_NE(serial.output_hash, 0u);

  const auto concurrent = run(4, 2);
  const auto thrashing = run(3, 1);  // capacity 1: every model swap evicts
  EXPECT_EQ(concurrent.output_hash, serial.output_hash);
  EXPECT_EQ(thrashing.output_hash, serial.output_hash);
  EXPECT_EQ(concurrent.failures, 0u);
  EXPECT_EQ(thrashing.failures, 0u);
  EXPECT_GE(thrashing.stats.host.evictions, 1u);

  // Distinct traffic hashes differently (the probe can actually fail).
  const auto other_script =
      parse_script_inline("model=smote,rows=150,seed=6");
  HostConfig host_cfg;
  ModelHost host(host_cfg);
  host.register_archive("smote", smote_path);
  SampleService service(host);
  const auto other = run_replay(service, other_script, ReplayOptions{});
  EXPECT_NE(other.output_hash, serial.output_hash);
}

// ---------------------------------------------------------- latency window --

TEST(LatencyWindowTest, EmptyWindowReportsInfinity) {
  LatencyWindow window(8);
  EXPECT_EQ(window.size(), 0u);
  const auto sorted = window.snapshot_sorted();
  EXPECT_TRUE(std::isinf(LatencyWindow::percentile(sorted, 0.50)));
  EXPECT_TRUE(std::isinf(LatencyWindow::percentile(sorted, 0.99)));
}

TEST(LatencyWindowTest, SingleSampleIsEveryPercentile) {
  LatencyWindow window(8);
  window.record(42.0);
  const auto sorted = window.snapshot_sorted();
  for (const double p : {0.0, 0.50, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(LatencyWindow::percentile(sorted, p), 42.0) << p;
  }
}

TEST(LatencyWindowTest, ExactlyFullWindowIsSortedWhateverInsertionOrder) {
  LatencyWindow window(4);
  for (const double ms : {9.0, 1.0, 7.0, 3.0}) window.record(ms);
  EXPECT_EQ(window.size(), 4u);
  EXPECT_EQ(window.recorded(), 4u);
  const auto sorted = window.snapshot_sorted();
  EXPECT_EQ(sorted, (std::vector<double>{1.0, 3.0, 7.0, 9.0}));
  EXPECT_EQ(LatencyWindow::percentile(sorted, 0.50), 3.0);
  EXPECT_EQ(LatencyWindow::percentile(sorted, 0.95), 9.0);
}

TEST(LatencyWindowTest, WrappedWindowKeepsNewestAndStaysSorted) {
  // Capacity 4, 7 samples: the ring has wrapped — its *insertion order* is
  // rotated ([5, 6, 2, 4] internally), which is exactly the case where an
  // unsorted percentile read would be wrong.
  LatencyWindow window(4);
  for (const double ms : {9.0, 1.0, 2.0, 4.0, 5.0, 6.0}) window.record(ms);
  window.record(3.0);
  EXPECT_EQ(window.size(), 4u);
  EXPECT_EQ(window.recorded(), 7u);
  const auto sorted = window.snapshot_sorted();
  EXPECT_EQ(sorted, (std::vector<double>{3.0, 4.0, 5.0, 6.0}));
  EXPECT_EQ(LatencyWindow::percentile(sorted, 0.50), 4.0);
  EXPECT_EQ(LatencyWindow::percentile(sorted, 1.0), 6.0);
}

// --------------------------------------------------------- overload control --

TEST(AdmissionControl, PolicyNamesRoundTrip) {
  for (const auto policy : {AdmissionPolicy::kBlock, AdmissionPolicy::kReject,
                            AdmissionPolicy::kShed}) {
    EXPECT_EQ(parse_admission_policy(admission_policy_name(policy)), policy);
  }
  EXPECT_THROW((void)parse_admission_policy("drop"), std::invalid_argument);
}

TEST(AdmissionControl, RejectPolicyThrowsOverloadedAndKeepsServing) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  ServiceConfig cfg;
  cfg.admission = AdmissionPolicy::kReject;
  cfg.max_queue_depth = 2;
  SampleService service(host, cfg);

  service.pause();  // queue fills deterministically
  auto f1 = service.submit(SampleJob{"a", 50, 1});
  auto f2 = service.submit(SampleJob{"a", 50, 2});
  try {
    (void)service.submit(SampleJob{"a", 50, 3});
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceError::Code::kOverloaded);
  }
  EXPECT_EQ(service.stats().rejected, 1u);
  service.resume();
  service.drain();
  EXPECT_EQ(f1.get().table.num_rows(), 50u);
  EXPECT_EQ(f2.get().table.num_rows(), 50u);
  // Space freed: the service admits again.
  EXPECT_EQ(service.sample(SampleJob{"a", 50, 3}).num_rows(), 50u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(AdmissionControl, RowBoundAppliesButEmptyQueueAlwaysAdmits) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  ServiceConfig cfg;
  cfg.admission = AdmissionPolicy::kReject;
  cfg.max_queued_rows = 100;
  SampleService service(host, cfg);

  service.pause();
  // 400 rows > the 100-row bound, but the queue is empty: admitted.
  auto big = service.submit(SampleJob{"a", 400, 1});
  // Now the backlog is over the row bound: the next job is rejected.
  EXPECT_THROW((void)service.submit(SampleJob{"a", 10, 2}), ServiceError);
  EXPECT_EQ(service.stats().queued_rows, 400u);
  service.resume();
  EXPECT_EQ(big.get().table.num_rows(), 400u);
  EXPECT_EQ(service.stats().queued_rows, 0u);
}

TEST(AdmissionControl, BlockPolicyBackpressuresUntilSpaceFrees) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  ServiceConfig cfg;
  cfg.admission = AdmissionPolicy::kBlock;
  cfg.max_queue_depth = 1;
  SampleService service(host, cfg);

  service.pause();
  auto f1 = service.submit(SampleJob{"a", 60, 1});
  std::atomic<bool> admitted{false};
  std::future<SampleResult> f2;
  std::thread submitter([&] {
    f2 = service.submit(SampleJob{"a", 60, 2});  // blocks: queue is full
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());  // still blocked while paused
  service.resume();  // dispatcher pops f1 -> space frees -> f2 admitted
  submitter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(f1.get().table.num_rows(), 60u);
  EXPECT_EQ(f2.get().table.num_rows(), 60u);
  EXPECT_GE(service.stats().blocked, 1u);
}

TEST(AdmissionControl, CancelWhileBlockedAtAdmissionResolvesCancelled) {
  // A kBlock submitter parked at the admission gate already has a job id
  // (submit_job published it before blocking), so cancel() must reach it
  // *there*: wake the waiter, resolve its future with kCancelled, and
  // never enqueue it — not hang, and not misfile it as admitted work.
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  ServiceConfig cfg;
  cfg.admission = AdmissionPolicy::kBlock;
  cfg.max_queue_depth = 1;
  SampleService service(host, cfg);

  service.pause();
  auto occupying = service.submit_job(SampleJob{"a", 60, 1});
  std::atomic<bool> returned{false};
  Submitted blocked;
  std::thread submitter([&] {
    blocked = service.submit_job(SampleJob{"a", 60, 2});  // queue is full
    returned.store(true);
  });
  // submit_job publishes the id + cancel flag under the lock *before*
  // parking, so once the waiter shows up in the stats its id — sequential,
  // occupying + 1 — is already cancellable.
  while (service.stats().blocked == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(returned.load());
  EXPECT_TRUE(service.cancel(occupying.job_id + 1));

  // The service stays paused, so space never frees: only the cancel can
  // have released the submitter.
  submitter.join();
  ASSERT_TRUE(returned.load());
  EXPECT_EQ(blocked.job_id, occupying.job_id + 1);
  try {
    (void)blocked.future.get();
    FAIL() << "expected cancellation";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceError::Code::kCancelled);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.queue_depth, 1u);  // the cancelled job was never enqueued
  service.resume();
  EXPECT_EQ(occupying.future.get().table.num_rows(), 60u);
}

TEST(AdmissionControl, ShedPolicyDropsLowestPriorityIncludingIncoming) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  ServiceConfig cfg;
  cfg.admission = AdmissionPolicy::kShed;
  cfg.max_queue_depth = 2;
  SampleService service(host, cfg);

  service.pause();
  SampleJob low{"a", 40, 1};
  low.priority = 0;
  auto low_future = service.submit(low);
  SampleJob mid{"a", 40, 2};
  mid.priority = 3;
  auto mid_future = service.submit(mid);

  // Queue full. A higher-priority job displaces the weakest queued one.
  SampleJob high{"a", 40, 3};
  high.priority = 5;
  auto high_future = service.submit(high);
  try {
    (void)low_future.get();
    FAIL() << "expected the low-priority job to be shed";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceError::Code::kShed);
  }

  // An incoming job weaker than everything queued is itself shed — ties
  // shed the newcomer too.
  SampleJob weak{"a", 40, 4};
  weak.priority = 3;  // ties mid's priority -> newcomer loses
  try {
    (void)service.submit(weak);
    FAIL() << "expected the incoming job to be shed";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceError::Code::kShed);
  }

  service.resume();
  EXPECT_EQ(mid_future.get().table.num_rows(), 40u);
  EXPECT_EQ(high_future.get().table.num_rows(), 40u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.shed, 1u);      // the queued victim
  EXPECT_EQ(stats.rejected, 1u);  // the refused newcomer: never admitted
  EXPECT_EQ(stats.completed, 2u);
  // The outcome partition holds: every admitted job resolved once.
  EXPECT_EQ(stats.submitted, stats.completed + stats.failed + stats.shed +
                                 stats.cancelled + stats.deadline_missed);
}

TEST(AdmissionControl, VictimsShedBeforeIncomingLosesStillGetShedError) {
  // Rows-bound shedding can evict a victim and *then* discover the
  // remaining weakest outranks the incoming job. The already-evicted
  // victim must still see ServiceError{kShed} — not a broken promise.
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  ServiceConfig cfg;
  cfg.admission = AdmissionPolicy::kShed;
  cfg.max_queued_rows = 100;
  SampleService service(host, cfg);

  service.pause();
  SampleJob a{"a", 10, 1};
  a.priority = 1;
  auto fa = service.submit(a);
  SampleJob b{"a", 80, 2};
  b.priority = 5;
  auto fb = service.submit(b);  // 90 rows queued: under the bound
  SampleJob c{"a", 80, 3};
  c.priority = 3;  // outranks a, loses to b
  try {
    (void)service.submit(c);  // sheds a, then b blocks c -> c is shed
    FAIL() << "expected the incoming job to be shed";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceError::Code::kShed);
  }
  try {
    (void)fa.get();
    FAIL() << "expected the evicted victim to be shed";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceError::Code::kShed);
  }
  service.resume();
  EXPECT_EQ(fb.get().table.num_rows(), 80u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.shed, 1u);      // the evicted victim
  EXPECT_EQ(stats.rejected, 1u);  // the refused incoming job
}

TEST(Deadlines, QueuedJobPastDeadlineFailsAtDispatch) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  SampleService service(host);

  service.pause();
  SampleJob doomed{"a", 80, 1};
  doomed.deadline_ms = 5.0;
  auto doomed_future = service.submit(doomed);
  auto fine_future = service.submit(SampleJob{"a", 80, 2});  // no deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  service.resume();
  try {
    (void)doomed_future.get();
    FAIL() << "expected a deadline miss";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceError::Code::kDeadline);
  }
  EXPECT_EQ(fine_future.get().table.num_rows(), 80u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.deadline_missed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);  // a deadline miss is not an execution error
}

TEST(Deadlines, MidSamplingExpiryUnwindsAtChunkBoundary) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  SampleService service(host);

  // Serial chunks (threads=1) with a progress hook that burns past the
  // deadline after the first chunk: the next chunk-boundary check must
  // kill the job and discard its partial output.
  SampleJob job{"a", 200, 7};
  job.chunk_rows = 50;  // 4 chunks
  job.threads = 1;
  job.deadline_ms = 40.0;
  job.on_progress = [](std::size_t done, std::size_t /*total*/) {
    if (done <= 50) {
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
    }
  };
  auto future = service.submit(job);
  try {
    (void)future.get();
    FAIL() << "expected a mid-sampling deadline miss";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceError::Code::kDeadline);
  }
  EXPECT_EQ(service.stats().deadline_missed, 1u);
  // The service keeps serving (the batch unwound cleanly).
  EXPECT_EQ(service.sample(SampleJob{"a", 60, 8}).num_rows(), 60u);
}

TEST(Cancellation, QueuedJobCancelsImmediately) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  SampleService service(host);

  service.pause();
  auto submitted = service.submit_job(SampleJob{"a", 80, 1});
  EXPECT_TRUE(service.cancel(submitted.job_id));
  try {
    (void)submitted.future.get();
    FAIL() << "expected cancellation";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceError::Code::kCancelled);
  }
  EXPECT_FALSE(service.cancel(submitted.job_id));  // already resolved
  EXPECT_FALSE(service.cancel(12345));             // never existed
  service.resume();
  const auto stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(Cancellation, InFlightJobStopsAtNextChunkBoundary) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  SampleService service(host);

  // The job cancels *itself* from its progress hook — by then it is
  // definitely mid-batch, so this exercises the chunk-boundary path, not
  // the queued-removal path. threads=1 serializes chunks so at least one
  // boundary check runs after the flag is set.
  std::atomic<std::uint64_t> job_id{0};
  std::atomic<bool> requested{false};
  SampleJob job{"a", 400, 9};
  job.chunk_rows = 50;  // 8 chunks
  job.threads = 1;
  job.on_progress = [&](std::size_t /*done*/, std::size_t /*total*/) {
    const std::uint64_t id = job_id.load();
    if (id != 0 && !requested.exchange(true)) {
      EXPECT_TRUE(service.cancel(id));
    }
  };
  service.pause();  // the id is stored before sampling can begin
  auto submitted = service.submit_job(std::move(job));
  job_id.store(submitted.job_id);
  service.resume();
  try {
    (void)submitted.future.get();
    FAIL() << "expected cancellation";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceError::Code::kCancelled);
  }
  EXPECT_EQ(service.stats().cancelled, 1u);
  // Later jobs are untouched.
  EXPECT_EQ(service.sample(SampleJob{"a", 70, 10}).num_rows(), 70u);
}

TEST(OverloadShutdown, DestructionMidOverloadReleasesBlockedSubmitters) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);

  std::future<SampleResult> queued;
  std::thread blocked;
  std::atomic<bool> threw{false};
  {
    ServiceConfig cfg;
    cfg.admission = AdmissionPolicy::kBlock;
    cfg.max_queue_depth = 1;
    SampleService service(host, cfg);
    service.pause();
    queued = service.submit(SampleJob{"a", 90, 1});
    blocked = std::thread([&] {
      try {
        (void)service.submit(SampleJob{"a", 90, 2});
      } catch (const std::logic_error&) {
        threw.store(true);  // shutdown released the blocked submit
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // Destructor: stop overrides pause, drains the queue, and wakes the
    // blocked submitter — no deadlock.
  }
  blocked.join();
  EXPECT_TRUE(threw.load());
  EXPECT_EQ(queued.get().table.num_rows(), 90u);
}

// ----------------------------------------------------- host fault injection --

TEST(HostFaultInjection, InjectedLoadFailureSurfacesAndThenRecovers) {
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  ModelHost host;
  host.register_archive("a", path);
  host.inject_faults({.load_delay_ms = 0.0, .fail_loads = 1});

  EXPECT_THROW((void)host.acquire("a"), std::runtime_error);
  EXPECT_EQ(host.stats().load_failures, 1u);
  // The loading flag was reset: the next acquire retries and succeeds.
  EXPECT_NE(host.acquire("a"), nullptr);
  EXPECT_EQ(host.stats().loads, 1u);

  // Through the service: the failure lands on the job's future as an
  // execution error, and the service keeps serving afterwards.
  host.evict_idle();
  host.inject_faults({.load_delay_ms = 0.0, .fail_loads = 1});
  SampleService service(host);
  auto doomed = service.submit(SampleJob{"a", 50, 1});
  EXPECT_THROW((void)doomed.get(), std::runtime_error);
  EXPECT_EQ(service.stats().failed, 1u);
  EXPECT_EQ(service.sample(SampleJob{"a", 50, 2}).num_rows(), 50u);
}

TEST(HostFaultInjection, LeaseStaysDeterministicAcrossEvictReloadEvict) {
  // The eviction-vs-lease race, widened with injected slow loads: a
  // sampler holds a lease on "a" while other threads force a's entry
  // through evict -> slow reload -> evict cycles. The lease must keep
  // sampling bitwise-identically throughout, and post-race acquires must
  // match too.
  TempDir dir;
  const auto path = fit_and_archive(dir, "smote");
  HostConfig cfg;
  cfg.capacity = 1;
  ModelHost host(cfg);
  host.register_archive("a", path);
  host.register_archive("b", path);

  models::SampleRequest request;
  request.rows = 120;
  request.seed = 77;
  request.chunk_rows = 32;
  request.threads = 1;
  tabular::Table direct;
  host.acquire("a")->sample_into(direct, request);
  host.evict_idle();

  host.inject_faults({.load_delay_ms = 10.0, .fail_loads = 0});
  auto lease = host.acquire("a");  // slow load, then held across the race
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    // Alternating acquires at capacity 1: every switch evicts the other
    // key and reloads it slowly.
    while (!stop.load()) {
      (void)host.acquire("b");
      (void)host.acquire("a");
    }
  });
  // Sample through the held lease until the churn thread has demonstrably
  // pushed a's entry through evict -> reload -> evict again.
  for (int i = 0; i < 200 && host.stats().evictions < 3; ++i) {
    tabular::Table via_lease;
    lease->sample_into(via_lease, request);
    expect_tables_identical(direct, via_lease);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  churn.join();
  host.inject_faults({});

  EXPECT_GE(host.stats().evictions, 2u);
  tabular::Table after;
  host.acquire("a")->sample_into(after, request);
  expect_tables_identical(direct, after);
}

// ------------------------------------------------- pipeline as thin client --

TEST(PipelineThinClient, SampleRoutesThroughGlobalServiceBitwise) {
  core::PipelineConfig cfg;
  cfg.experiment = eval::quick_experiment_config();
  cfg.experiment.data.model.days = 8.0;
  cfg.experiment.data.model.base_jobs_per_day = 120.0;
  cfg.experiment.budget.epochs = 4;
  cfg.model = "smote";

  const auto served_before = global_serving().service.stats().completed;
  std::string key;
  {
    core::SurrogatePipeline pipe(cfg);
    pipe.fit();
    key = pipe.host_key();
    EXPECT_FALSE(global_serving().host.contains(key));  // lazy registration

    models::SampleRequest request;
    request.rows = 250;
    request.seed = 77;
    request.chunk_rows = 64;
    request.threads = 2;
    const auto via_service = pipe.sample(request);
    EXPECT_TRUE(global_serving().host.contains(key));

    request.threads = 1;
    tabular::Table direct;
    pipe.model().sample_into(direct, request);
    expect_tables_identical(direct, via_service);

    EXPECT_GE(global_serving().service.stats().completed,
              served_before + 1);
    models::SampleRequest bad;
    bad.rows = 10;
    bad.chunk_rows = 0;
    EXPECT_THROW((void)pipe.sample(bad), std::invalid_argument);
  }
  // Destruction unregisters the pipeline's model.
  EXPECT_FALSE(global_serving().host.contains(key));
}

}  // namespace
}  // namespace surro::serve
