#!/usr/bin/env bash
# Executes every `surro_cli` invocation shown in docs/CLI.md, in document
# order, inside a scratch directory — the executable proof that documented
# commands cannot rot. Registered as the `test_docs_examples` ctest.
#
# Usage: run_docs_examples.sh <path-to-surro_cli> <path-to-CLI.md>
set -euo pipefail

CLI="$(readlink -f "${1:?usage: run_docs_examples.sh <surro_cli> <CLI.md>}")"
DOC="$(readlink -f "${2:?usage: run_docs_examples.sh <surro_cli> <CLI.md>}")"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

# Pull the command lines out of the ```sh fences, joining backslash
# continuations; anything not starting with `surro_cli` is prose/output.
awk '/^```sh$/{f=1;next} /^```$/{f=0} f' "$DOC" |
  awk '
    BEGIN { cmd = "" }
    {
      line = $0
      if (cmd != "") { sub(/^[[:space:]]+/, "", line); cmd = cmd " " line }
      else if (line ~ /^surro_cli /) { cmd = line }
      else { next }
      if (cmd ~ /\\$/) { sub(/[[:space:]]*\\$/, "", cmd); next }
      print cmd
      cmd = ""
    }
  ' > commands.txt

if ! [ -s commands.txt ]; then
  echo "error: no surro_cli examples found in $DOC" >&2
  exit 1
fi

n=0
while IFS= read -r cmd; do
  n=$((n + 1))
  echo "== [$n] $cmd"
  eval "${cmd/#surro_cli/\"$CLI\"}"
done < commands.txt

echo "ok: $n documented commands ran clean"
