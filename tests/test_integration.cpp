// Cross-module integration: the full generate -> filter -> split -> train ->
// sample -> score pipeline at a scale that runs in tens of seconds, plus the
// SurrogatePipeline façade and figure builders.

#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "eval/experiment.hpp"
#include "eval/figures.hpp"
#include "metrics/report.hpp"
#include "tabular/table_io.hpp"

namespace surro {
namespace {

eval::ExperimentConfig tiny_config() {
  auto cfg = eval::quick_experiment_config();
  // Shrink further: integration tests must stay fast.
  cfg.data.model.days = 10.0;
  cfg.data.model.base_jobs_per_day = 150.0;
  cfg.data.model.campaigns_per_day = 0.8;
  cfg.data.extra_tier2_sites = 12;
  cfg.budget.epochs = 4;
  cfg.synth_rows = 600;
  cfg.dcr.max_train_rows = 1200;
  cfg.dcr.max_synth_rows = 500;
  cfg.mlef.boosting.iterations = 25;
  cfg.mlef.boosting.tree.max_depth = 5;
  return cfg;
}

TEST(Integration, PrepareDataProducesPaperSchema) {
  const auto data = eval::prepare_data(tiny_config());
  EXPECT_GT(data.train.num_rows(), 200u);
  EXPECT_GT(data.test.num_rows(), 50u);
  EXPECT_EQ(data.full.num_columns(), 9u);
  EXPECT_EQ(data.funnel.complete,
            data.train.num_rows() + data.test.num_rows());
  // 80/20 split within rounding.
  const double frac =
      static_cast<double>(data.train.num_rows()) /
      static_cast<double>(data.funnel.complete);
  EXPECT_NEAR(frac, 0.8, 0.01);
}

TEST(Integration, SmoteOnlyExperimentScoresSanely) {
  auto cfg = tiny_config();
  cfg.model_keys = {"smote"};
  const auto result = eval::run_experiment(cfg);
  ASSERT_EQ(result.scores.size(), 1u);
  const auto& s = result.scores.front();
  EXPECT_EQ(s.model, "SMOTE");
  // SMOTE tracks the training distribution closely and nearly memorizes.
  EXPECT_LT(s.wd, 0.05);
  EXPECT_LT(s.jsd, 0.05);
  EXPECT_LT(s.diff_corr, 0.1);
  EXPECT_LT(s.dcr, 0.5);
  EXPECT_LT(std::abs(s.diff_mlef), 1.5);
}

TEST(Integration, ExperimentKeepsSamplesPerModel) {
  auto cfg = tiny_config();
  cfg.model_keys = {"smote", "tvae"};
  const auto result = eval::run_experiment(cfg);
  EXPECT_EQ(result.samples.size(), 2u);
  EXPECT_TRUE(result.samples.contains("SMOTE"));
  EXPECT_TRUE(result.samples.contains("TVAE"));
  EXPECT_EQ(result.samples.at("SMOTE").num_rows(), cfg.synth_rows);
}

TEST(Integration, PipelineFacadeEndToEnd) {
  core::PipelineConfig cfg;
  cfg.experiment = tiny_config();
  cfg.model = "smote";
  core::SurrogatePipeline pipe(cfg);
  EXPECT_FALSE(pipe.fitted());
  pipe.fit();
  EXPECT_TRUE(pipe.fitted());
  const auto synth = pipe.sample(500, 77);
  EXPECT_EQ(synth.num_rows(), 500u);
  const auto score = pipe.evaluate(synth);
  EXPECT_EQ(score.model, "SMOTE");
  EXPECT_LT(score.wd, 0.1);
  EXPECT_THROW(pipe.fit(), std::logic_error);
}

TEST(Integration, PipelineThrowsBeforeFit) {
  core::SurrogatePipeline pipe;
  EXPECT_THROW(static_cast<void>(pipe.sample(10)), std::logic_error);
  EXPECT_THROW(static_cast<void>(pipe.train_table()), std::logic_error);
}

TEST(Integration, FigureBuildersProduceConsistentSeries) {
  auto cfg = tiny_config();
  cfg.model_keys = {"smote"};
  const auto result = eval::run_experiment(cfg);
  const std::map<std::string, tabular::Table> samples(
      result.samples.begin(), result.samples.end());

  const auto marginals = eval::fig4a_numerical_marginals(result.train,
                                                         samples, 24);
  ASSERT_EQ(marginals.size(), 4u);  // four numerical features
  for (const auto& m : marginals) {
    ASSERT_TRUE(m.mass.contains("GT"));
    ASSERT_TRUE(m.mass.contains("SMOTE"));
    double gt_mass = 0.0;
    double synth_mass = 0.0;
    for (const double v : m.mass.at("GT")) gt_mass += v;
    for (const double v : m.mass.at("SMOTE")) synth_mass += v;
    EXPECT_NEAR(gt_mass, 1.0, 1e-9);
    EXPECT_NEAR(synth_mass, 1.0, 1e-9);
  }

  const auto cats = eval::fig4b_categorical_tops(result.train, samples, 5);
  ASSERT_EQ(cats.size(), 5u);  // five categorical features
  for (const auto& c : cats) {
    EXPECT_FALSE(c.top_labels.empty());
    // SMOTE frequencies of top labels should be close to GT.
    const auto& gt = c.freq.at("GT");
    const auto& sm = c.freq.at("SMOTE");
    for (std::size_t i = 0; i < gt.size(); ++i) {
      EXPECT_NEAR(gt[i], sm[i], 0.12) << c.feature << " label "
                                      << c.top_labels[i];
    }
  }

  const auto fig5 = eval::fig5_correlations(result.train, samples);
  EXPECT_EQ(fig5.ground_truth.n, 9u);
  ASSERT_TRUE(fig5.differences.contains("SMOTE"));
  // SMOTE's difference matrix should be small everywhere.
  for (const double d : fig5.differences.at("SMOTE").values) {
    EXPECT_LT(std::abs(d), 0.35);
  }
}

TEST(Integration, Fig1GrowthIsMonotoneAndExabyteBound) {
  const auto growth = eval::fig1_data_growth(2015.0, 2024.0);
  ASSERT_GE(growth.size(), 9u);
  for (std::size_t i = 1; i < growth.size(); ++i) {
    EXPECT_GT(growth[i].disk_petabytes, growth[i - 1].disk_petabytes);
    EXPECT_GT(growth[i].tape_petabytes, growth[i - 1].tape_petabytes);
  }
  // Ends in the hundreds-of-PB / EB regime like the paper's Fig. 1.
  EXPECT_GT(growth.back().disk_petabytes + growth.back().tape_petabytes,
            1000.0);
}

TEST(Integration, TableCsvRoundTripThroughPipeline) {
  const auto data = eval::prepare_data(tiny_config());
  const std::string csv = tabular::to_csv(data.train);
  const auto back = tabular::from_csv(data.train.schema(), csv);
  ASSERT_EQ(back.num_rows(), data.train.num_rows());
  const std::size_t wl = data.train.schema().index_of("workload");
  for (std::size_t r = 0; r < back.num_rows(); r += 211) {
    EXPECT_DOUBLE_EQ(back.numerical(wl)[r], data.train.numerical(wl)[r]);
  }
}

TEST(Integration, ExperimentIsDeterministic) {
  auto cfg = tiny_config();
  cfg.model_keys = {"smote"};
  const auto a = eval::run_experiment(cfg);
  const auto b = eval::run_experiment(cfg);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  EXPECT_DOUBLE_EQ(a.scores[0].wd, b.scores[0].wd);
  EXPECT_DOUBLE_EQ(a.scores[0].dcr, b.scores[0].dcr);
  EXPECT_DOUBLE_EQ(a.train_mlef, b.train_mlef);
}

}  // namespace
}  // namespace surro
