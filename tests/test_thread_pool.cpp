// Thread pool correctness: completion, coverage, and reuse.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace surro::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, CountersTrackQueueAndActiveTasks) {
  ThreadPool pool(1);
  const auto idle = pool.counters();
  EXPECT_EQ(idle.workers, 1u);
  EXPECT_EQ(idle.queued, 0u);
  EXPECT_EQ(idle.active, 0u);
  EXPECT_EQ(idle.submitted, 0u);
  EXPECT_EQ(idle.completed, 0u);

  // Gate the single worker on a blocker task, then stack three more: the
  // snapshot must show exactly 1 active and 3 queued.
  std::promise<void> release;
  std::promise<void> started;
  auto release_future = release.get_future().share();
  pool.submit([&started, release_future] {
    started.set_value();
    release_future.wait();
  });
  started.get_future().wait();
  for (int i = 0; i < 3; ++i) pool.submit([] {});

  const auto busy = pool.counters();
  EXPECT_EQ(busy.queued, 3u);
  EXPECT_EQ(busy.active, 1u);
  EXPECT_EQ(busy.submitted, 4u);

  release.set_value();
  pool.wait_idle();
  const auto done = pool.counters();
  EXPECT_EQ(done.queued, 0u);
  EXPECT_EQ(done.active, 0u);
  EXPECT_EQ(done.submitted, 4u);
  EXPECT_EQ(done.completed, 4u);
}

TEST(ThreadPool, CountersIncludeGroupedAndThrowingTasks) {
  ThreadPool pool(2);
  TaskGroup group;
  for (int i = 0; i < 4; ++i) {
    pool.submit(group, [i] {
      if (i == 2) throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(pool.wait(group), std::runtime_error);
  const auto c = pool.counters();
  EXPECT_EQ(c.submitted, 4u);
  EXPECT_EQ(c.completed, 4u);  // a thrown task still completes
  EXPECT_EQ(c.queued, 0u);
  EXPECT_EQ(c.active, 0u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(
      0, n,
      [&hits](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      /*grain=*/64);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&called](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRangeRunsSerial) {
  std::vector<int> hits(10, 0);  // no atomics needed if serial
  parallel_for(
      0, 10,
      [&hits](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i]++;
      },
      /*grain=*/1024);
  const int total = std::accumulate(hits.begin(), hits.end(), 0);
  EXPECT_EQ(total, 10);
}

TEST(ParallelForEach, MatchesSerialSum) {
  const std::size_t n = 5000;
  std::vector<double> out(n, 0.0);
  parallel_for_each(
      0, n,
      [&out](std::size_t i) { out[i] = static_cast<double>(i) * 2.0; },
      /*grain=*/16);
  double sum = 0.0;
  for (const double v : out) sum += v;
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(n) * (n - 1));
}

TEST(TaskGroup, WaitCoversOnlyOwnTasks) {
  ThreadPool pool(2);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  TaskGroup group_a;
  TaskGroup group_b;
  for (int i = 0; i < 50; ++i) {
    pool.submit(group_a, [&a] { a.fetch_add(1); });
    pool.submit(group_b, [&b] { b.fetch_add(1); });
  }
  pool.wait(group_a);
  EXPECT_EQ(a.load(), 50);
  pool.wait(group_b);
  EXPECT_EQ(b.load(), 50);
  pool.wait_idle();
}

TEST(TaskGroup, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  TaskGroup group;
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 25; ++i) {
      pool.submit(group, [&counter] { counter.fetch_add(1); });
    }
    pool.wait(group);
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(TaskGroup, StopTokenIsCooperativeAndResetsOnWait) {
  ThreadPool pool(2);
  TaskGroup group;
  EXPECT_FALSE(group.stop_requested());

  // Tasks poll the flag and bail; the flag never prevents queued tasks
  // from *running* — cancellation is cooperative.
  std::atomic<int> ran{0};
  std::atomic<int> bailed{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit(group, [&] {
      if (group.stop_requested()) {
        bailed.fetch_add(1);
      } else {
        ran.fetch_add(1);
        if (ran.load() >= 4) group.request_stop();
      }
    });
  }
  pool.wait(group);
  EXPECT_EQ(ran.load() + bailed.load(), 32);
  EXPECT_GE(ran.load(), 4);

  // wait() reset the flag, so the group is reusable for a fresh batch.
  EXPECT_FALSE(group.stop_requested());
  std::atomic<int> second{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit(group, [&] {
      if (!group.stop_requested()) second.fetch_add(1);
    });
  }
  pool.wait(group);
  EXPECT_EQ(second.load(), 8);
}

TEST(TaskGroup, ThrowingTaskPropagatesWithoutWedgingPool) {
  ThreadPool pool(2);
  TaskGroup group;
  std::atomic<int> survivors{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit(group, [&survivors, i] {
      if (i == 3) throw std::runtime_error("boom");
      survivors.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.wait(group), std::runtime_error);
  EXPECT_EQ(survivors.load(), 9);
  // Bookkeeping survived: the pool accepts and completes new batches.
  std::atomic<int> after{0};
  for (int i = 0; i < 5; ++i) {
    pool.submit(group, [&after] { after.fetch_add(1); });
  }
  pool.wait(group);
  EXPECT_EQ(after.load(), 5);
  pool.wait_idle();
}

TEST(TaskGroup, NestedWaitFromWorkerDoesNotDeadlock) {
  // A pool task that itself fans out over the same pool and waits — the
  // pattern of parallel model sampling whose chunks call parallel_for
  // (GEMM). The helping wait must drain subtasks instead of deadlocking.
  ThreadPool& pool = ThreadPool::global();
  std::atomic<int> inner_sum{0};
  TaskGroup outer;
  const int outer_n = 8;
  for (int o = 0; o < outer_n; ++o) {
    pool.submit(outer, [&pool, &inner_sum] {
      TaskGroup inner;
      for (int i = 0; i < 16; ++i) {
        pool.submit(inner, [&inner_sum] { inner_sum.fetch_add(1); });
      }
      pool.wait(inner);
    });
  }
  pool.wait(outer);
  EXPECT_EQ(inner_sum.load(), outer_n * 16);
}

TEST(TaskGroup, NestedParallelForFromWorkerCompletes) {
  ThreadPool& pool = ThreadPool::global();
  TaskGroup group;
  std::vector<std::atomic<int>> hits(4096);
  for (int w = 0; w < 4; ++w) {
    pool.submit(group, [&hits] {
      parallel_for(
          0, hits.size(),
          [&hits](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
          },
          /*grain=*/64);
    });
  }
  pool.wait(group);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 4);
  }
}

TEST(ParallelFor, NestedBodiesComputeCorrectly) {
  // Exercise concurrent parallel_for calls from multiple submitting threads.
  ThreadPool& pool = ThreadPool::global();
  (void)pool;
  std::vector<long long> results(4, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t, &results] {
      long long local = 0;
      for (std::size_t i = 0; i < 1000; ++i) local += static_cast<long long>(i);
      results[t] = local;
    });
  }
  for (auto& t : threads) t.join();
  for (const long long r : results) EXPECT_EQ(r, 499500);
}

}  // namespace
}  // namespace surro::util
