// Streaming collection-window subsystem: window/delta extraction, drift
// scenario families, warm-start model refresh for all four surrogates
// (including the cold-vs-warm cost asymmetry and thread-count determinism
// of warm-refreshed sampling), refresher stats, stream-matrix runs, and
// the JSON artifact.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "eval/experiment.hpp"
#include "panda/filters.hpp"
#include "panda/generator.hpp"
#include "stream/drift.hpp"
#include "stream/refresh.hpp"
#include "stream/stream_eval.hpp"
#include "stream/window.hpp"
#include "util/timer.hpp"

namespace surro::stream {
namespace {

// ------------------------------------------------------------- fixtures --

/// Hand-built temporal table: events at the given times, one numerical
/// feature following the time, one 3-ary categorical cycling.
tabular::Table make_temporal_table(const std::vector<double>& times) {
  tabular::Schema schema({{"creationtime", tabular::ColumnKind::kNumerical},
                          {"load", tabular::ColumnKind::kNumerical},
                          {"site", tabular::ColumnKind::kCategorical}});
  tabular::Table t(schema);
  const char* sites[] = {"A", "B", "C"};
  for (std::size_t i = 0; i < times.size(); ++i) {
    auto row = t.make_row();
    row.set(0, times[i]);
    row.set(1, 10.0 + static_cast<double>(i));
    row.set(2, std::string(sites[i % 3]));
    t.append_row(row);
  }
  return t;
}

/// Small PanDA job table (the schema the drift families and models target).
tabular::Table make_job_table(double days = 6.0, double rate = 150.0) {
  panda::GeneratorConfig cfg;
  cfg.model.days = days;
  cfg.model.base_jobs_per_day = rate;
  cfg.model.campaigns_per_day = 0.8;
  cfg.extra_tier2_sites = 12;
  panda::RecordGenerator gen(cfg);
  return panda::build_job_table(gen.generate(), gen.catalog());
}

eval::ExperimentConfig tiny_config() {
  auto cfg = eval::quick_experiment_config();
  cfg.data.model.days = 8.0;
  cfg.data.model.base_jobs_per_day = 150.0;
  cfg.data.model.campaigns_per_day = 0.8;
  cfg.data.extra_tier2_sites = 12;
  cfg.budget.epochs = 4;
  return cfg;
}

models::TrainBudget tiny_budget() {
  models::TrainBudget budget;
  budget.epochs = 4;
  budget.batch_size = 128;
  return budget;
}

// -------------------------------------------------------- window stream --

TEST(WindowStream, TumblingWindowsPartitionTheStream) {
  const auto table = make_temporal_table({0.5, 1.5, 2.5, 3.5, 4.5, 5.5});
  WindowConfig cfg;
  cfg.window_days = 2.0;
  cfg.stride_days = 2.0;
  const WindowStream ws(table, cfg);

  ASSERT_EQ(ws.num_windows(), 3u);
  EXPECT_DOUBLE_EQ(ws.horizon_days(), 5.5);
  std::size_t total = 0;
  for (const auto& win : ws.windows()) {
    EXPECT_DOUBLE_EQ(win.t_end - win.t_begin, 2.0);
    // Tumbling: every row of the window is also a delta row.
    EXPECT_EQ(win.rows, win.delta_rows);
    total += win.rows.size();
  }
  EXPECT_EQ(total, table.num_rows());
}

TEST(WindowStream, SlidingWindowsOverlapAndDeltaIsSuffix) {
  const auto table =
      make_temporal_table({0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5});
  WindowConfig cfg;
  cfg.window_days = 4.0;
  cfg.stride_days = 2.0;
  const WindowStream ws(table, cfg);

  ASSERT_GE(ws.num_windows(), 2u);
  const auto& w0 = ws.window(0);
  EXPECT_EQ(w0.rows, w0.delta_rows);  // the first window is all-new
  for (std::size_t i = 1; i < ws.num_windows(); ++i) {
    const auto& win = ws.window(i);
    const auto& prev = ws.window(i - 1);
    ASSERT_LE(win.delta_rows.size(), win.rows.size());
    // The delta is exactly the suffix of the time-ordered row list that
    // starts where the previous window ended.
    const std::size_t start = win.rows.size() - win.delta_rows.size();
    for (std::size_t k = 0; k < win.delta_rows.size(); ++k) {
      EXPECT_EQ(win.delta_rows[k], win.rows[start + k]);
      EXPECT_GE(table.numerical(0)[win.delta_rows[k]], prev.t_end);
    }
  }
}

TEST(WindowStream, EventOnTheHorizonBoundaryStillLandsInAWindow) {
  // Day-aligned timestamps where the natural last window ends exactly on
  // the horizon: the max-time event must still be covered (regression for
  // the half-open boundary dropping it).
  const auto table = make_temporal_table({0.0, 7.0, 14.0});
  WindowConfig cfg;
  cfg.window_days = 7.0;
  cfg.stride_days = 7.0;
  const WindowStream ws(table, cfg);
  std::size_t covered = 0;
  for (const auto& win : ws.windows()) covered += win.rows.size();
  EXPECT_EQ(covered, table.num_rows());
  EXPECT_EQ(ws.windows().back().rows.size(), 1u);  // the t=14 event
}

TEST(WindowStream, MaterializePreservesSchemaAndVocabulary) {
  const auto table = make_temporal_table({0.5, 1.0, 2.5});
  WindowConfig cfg;
  cfg.window_days = 2.0;
  cfg.stride_days = 2.0;
  const WindowStream ws(table, cfg);
  const auto window = ws.materialize(ws.window(0).rows);
  EXPECT_EQ(window.num_rows(), 2u);
  EXPECT_EQ(window.schema(), table.schema());
  EXPECT_EQ(window.vocabulary(2), table.vocabulary(2));
}

TEST(WindowStream, RejectsBadConfigs) {
  const auto table = make_temporal_table({0.5});
  EXPECT_THROW(WindowStream(table, {.window_days = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(WindowStream(table, {.window_days = 1.0, .stride_days = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(WindowStream(table, {.window_days = 1.0,
                                    .stride_days = 1.0,
                                    .time_column = "no-such-column"}),
               std::out_of_range);
}

// ----------------------------------------------------------------- drift --

TEST(Drift, NamesRoundTripForEveryFamily) {
  for (const DriftKind kind : all_drift_kinds()) {
    EXPECT_EQ(parse_drift_kind(drift_kind_name(kind)), kind);
  }
  EXPECT_THROW((void)parse_drift_kind("sideways"), std::invalid_argument);
}

TEST(Drift, SeverityRampsToIntensityAndPlateaus) {
  DriftConfig cfg;
  cfg.kind = DriftKind::kMeanShift;
  cfg.intensity = 0.4;
  cfg.full_strength_window = 4;
  EXPECT_DOUBLE_EQ(drift_severity(cfg, 0), 0.1);
  EXPECT_DOUBLE_EQ(drift_severity(cfg, 3), 0.4);
  EXPECT_DOUBLE_EQ(drift_severity(cfg, 9), 0.4);
  cfg.kind = DriftKind::kNone;
  EXPECT_DOUBLE_EQ(drift_severity(cfg, 9), 0.0);
}

TEST(Drift, NoneLeavesTheWindowUntouched) {
  const auto window = make_job_table();
  DriftConfig cfg;  // kNone
  const auto out = apply_drift(window, 3, cfg);
  EXPECT_EQ(out.affected_rows, 0u);
  ASSERT_EQ(out.table.num_rows(), window.num_rows());
  EXPECT_EQ(out.table.numerical(0)[0], window.numerical(0)[0]);
}

TEST(Drift, MeanShiftMovesFeaturesButNotTime) {
  const auto window = make_job_table();
  DriftConfig cfg;
  cfg.kind = DriftKind::kMeanShift;
  cfg.intensity = 0.5;
  cfg.full_strength_window = 1;  // full strength immediately
  const auto out = apply_drift(window, 0, cfg);
  ASSERT_EQ(out.table.num_rows(), window.num_rows());

  const auto& schema = window.schema();
  const std::size_t c_time = schema.index_of(panda::features::kCreationTime);
  const std::size_t c_load = schema.index_of(panda::features::kWorkload);
  double time_diff = 0.0;
  double load_diff = 0.0;
  for (std::size_t r = 0; r < window.num_rows(); ++r) {
    time_diff += std::abs(out.table.numerical(c_time)[r] -
                          window.numerical(c_time)[r]);
    load_diff += out.table.numerical(c_load)[r] -
                 window.numerical(c_load)[r];
  }
  EXPECT_EQ(time_diff, 0.0);   // the windowing axis never drifts
  EXPECT_GT(load_diff, 0.0);   // the workload shifted upward
}

TEST(Drift, CategoryChurnStaysInsideTheVocabulary) {
  const auto window = make_job_table();
  DriftConfig cfg;
  cfg.kind = DriftKind::kCategoryChurn;
  cfg.intensity = 0.5;
  cfg.full_strength_window = 1;
  const auto out = apply_drift(window, 2, cfg);
  EXPECT_GT(out.affected_rows, 0u);
  EXPECT_LT(out.affected_rows, window.num_rows());
  for (const std::size_t c : window.schema().categorical_indices()) {
    EXPECT_EQ(out.table.cardinality(c), window.cardinality(c));
    for (const auto code : out.table.categorical(c)) {
      ASSERT_GE(code, 0);
      ASSERT_LT(code, static_cast<std::int32_t>(window.cardinality(c)));
    }
  }
}

TEST(Drift, RateRampAppendsRows) {
  const auto window = make_job_table();
  DriftConfig cfg;
  cfg.kind = DriftKind::kRateRamp;
  cfg.intensity = 0.3;
  cfg.full_strength_window = 1;
  const auto out = apply_drift(window, 0, cfg);
  EXPECT_EQ(out.table.num_rows(), window.num_rows() + out.affected_rows);
  EXPECT_NEAR(static_cast<double>(out.affected_rows),
              0.3 * static_cast<double>(window.num_rows()), 2.0);
}

TEST(Drift, AnomalyBurstCorruptsALabeledFraction) {
  const auto window = make_job_table();
  DriftConfig cfg;
  cfg.kind = DriftKind::kAnomalyBurst;
  cfg.intensity = 0.2;
  cfg.full_strength_window = 1;
  const auto out = apply_drift(window, 0, cfg);
  EXPECT_GT(out.affected_rows, 0u);
  EXPECT_EQ(out.table.num_rows(), window.num_rows());
}

TEST(Drift, DeterministicInSeedAndWindow) {
  const auto window = make_job_table();
  DriftConfig cfg;
  cfg.kind = DriftKind::kMeanShift;
  cfg.intensity = 0.5;
  const auto a = apply_drift(window, 3, cfg);
  const auto b = apply_drift(window, 3, cfg);
  ASSERT_EQ(a.table.num_rows(), b.table.num_rows());
  for (const std::size_t c : window.schema().numerical_indices()) {
    for (std::size_t r = 0; r < a.table.num_rows(); ++r) {
      ASSERT_EQ(a.table.numerical(c)[r], b.table.numerical(c)[r]);
    }
  }
}

// ------------------------------------------------- warm-start model layer --

/// Split a table into [0, pivot) and [pivot, n) halves.
std::pair<tabular::Table, tabular::Table> split_at(const tabular::Table& t,
                                                   std::size_t pivot) {
  std::vector<std::size_t> head, tail;
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    (r < pivot ? head : tail).push_back(r);
  }
  return {t.select_rows(head), t.select_rows(tail)};
}

const char* kAllModels[] = {"tvae", "ctabgan", "smote", "tabddpm"};

TEST(WarmFit, AllModelsAbsorbDeltasAndStaySampleable) {
  const auto table = make_job_table();
  const auto [base, delta] = split_at(table, table.num_rows() / 2);
  for (const std::string key : kAllModels) {
    auto model = models::make_generator(key, tiny_budget(), 7);
    EXPECT_FALSE(model->warm_startable()) << key;
    model->fit(base);
    ASSERT_TRUE(model->warm_startable()) << key;
    model->warm_fit(delta);
    EXPECT_TRUE(model->fitted()) << key;
    const auto sample = model->sample(300, 11);
    EXPECT_EQ(sample.num_rows(), 300u) << key;
    EXPECT_EQ(sample.schema(), table.schema()) << key;
  }
}

TEST(WarmFit, ThrowsBeforeFit) {
  for (const std::string key : kAllModels) {
    auto model = models::make_generator(key, tiny_budget(), 7);
    EXPECT_THROW(model->warm_fit(make_job_table()), std::logic_error) << key;
  }
}

TEST(WarmFit, EmptyDeltaIsANoOp) {
  const auto table = make_job_table();
  const auto empty = table.select_rows(std::vector<std::size_t>{});
  for (const std::string key : kAllModels) {
    auto model = models::make_generator(key, tiny_budget(), 7);
    model->fit(table);
    const auto before = model->sample(100, 5);
    model->warm_fit(empty);
    const auto after = model->sample(100, 5);
    for (const std::size_t c : table.schema().numerical_indices()) {
      for (std::size_t r = 0; r < 100; ++r) {
        ASSERT_EQ(before.numerical(c)[r], after.numerical(c)[r]) << key;
      }
    }
  }
}

TEST(WarmFit, SaveLoadRoundTripPreservesTrainingState) {
  const auto table = make_job_table();
  const auto [base, delta] = split_at(table, table.num_rows() / 2);
  for (const std::string key : kAllModels) {
    auto original = models::make_generator(key, tiny_budget(), 7);
    original->fit(base);

    std::stringstream archive;
    models::save_model(*original, archive);
    auto restored = models::load_model(archive);
    ASSERT_TRUE(restored->warm_startable()) << key;

    // Identical warm refreshes from identical checkpoints must produce
    // identical models — optimizer moments, step clock, and training RNG
    // all round-trip through the archive.
    original->warm_fit(delta);
    restored->warm_fit(delta);
    const auto a = original->sample(400, 13);
    const auto b = restored->sample(400, 13);
    for (const std::size_t c : table.schema().numerical_indices()) {
      for (std::size_t r = 0; r < 400; ++r) {
        ASSERT_EQ(a.numerical(c)[r], b.numerical(c)[r]) << key;
      }
    }
    for (const std::size_t c : table.schema().categorical_indices()) {
      for (std::size_t r = 0; r < 400; ++r) {
        ASSERT_EQ(a.categorical(c)[r], b.categorical(c)[r]) << key;
      }
    }
  }
}

TEST(WarmFit, CloneDropsTrainingStateButSamples) {
  const auto table = make_job_table();
  for (const std::string key : kAllModels) {
    auto model = models::make_generator(key, tiny_budget(), 7);
    model->fit(table);
    const auto replica = model->clone();
    ASSERT_TRUE(replica->fitted()) << key;
    if (key == "smote") {
      // SMOTE's whole fitted state is its index — clones stay refreshable.
      EXPECT_TRUE(replica->warm_startable()) << key;
    } else {
      EXPECT_FALSE(replica->warm_startable()) << key;
      EXPECT_THROW(replica->warm_fit(table), std::logic_error) << key;
    }
  }
}

TEST(WarmFit, RefusesRowsOutsideTheFittedVocabularyWithoutCorruption) {
  const auto table = make_job_table();
  const auto cats = table.schema().categorical_indices();
  // A delta whose *last* categorical block has an out-of-vocabulary code —
  // the rejection must fire before any per-block state mutated (regression
  // for half-applied deltas leaving a fitted model inconsistent).
  auto bad_delta = table.select_rows(std::vector<std::size_t>{0, 1});
  auto codes = bad_delta.categorical_mut(cats.back());
  codes[0] = static_cast<std::int32_t>(table.cardinality(cats.back()));

  for (const std::string key : {"smote", "ctabgan"}) {
    auto model = models::make_generator(key, tiny_budget(), 7);
    model->fit(table);
    const auto before = model->sample(200, 5);
    EXPECT_THROW(model->warm_fit(bad_delta), std::invalid_argument) << key;
    // The rejected refresh left the fitted state untouched.
    const auto after = model->sample(200, 5);
    for (const std::size_t c : table.schema().numerical_indices()) {
      for (std::size_t r = 0; r < 200; ++r) {
        ASSERT_EQ(before.numerical(c)[r], after.numerical(c)[r]) << key;
      }
    }
    for (const std::size_t c : cats) {
      for (std::size_t r = 0; r < 200; ++r) {
        ASSERT_EQ(before.categorical(c)[r], after.categorical(c)[r]) << key;
      }
    }
  }
}

// The acceptance contract: a warm-refreshed model samples bitwise
// identically for any thread count, exactly like a cold-fitted one.
TEST(WarmFit, WarmRefreshedSamplingIsThreadCountDeterministic) {
  const auto table = make_job_table();
  const auto [base, delta] = split_at(table, table.num_rows() / 2);
  for (const std::string key : kAllModels) {
    auto model = models::make_generator(key, tiny_budget(), 7);
    model->fit(base);
    model->warm_fit(delta);

    models::SampleRequest serial;
    serial.rows = 600;
    serial.seed = 21;
    serial.chunk_rows = 128;
    serial.threads = 1;
    models::SampleRequest parallel = serial;
    parallel.threads = 0;  // every pool worker

    tabular::Table a;
    model->sample_into(a, serial);
    tabular::Table b;
    model->sample_into(b, parallel);
    ASSERT_EQ(a.num_rows(), b.num_rows()) << key;
    for (const std::size_t c : table.schema().numerical_indices()) {
      for (std::size_t r = 0; r < a.num_rows(); ++r) {
        ASSERT_EQ(a.numerical(c)[r], b.numerical(c)[r]) << key;
      }
    }
    for (const std::size_t c : table.schema().categorical_indices()) {
      for (std::size_t r = 0; r < a.num_rows(); ++r) {
        ASSERT_EQ(a.categorical(c)[r], b.categorical(c)[r]) << key;
      }
    }
  }
}

// --------------------------------------------------------- ModelRefresher --

TEST(ModelRefresher, ColdRefitsEveryWindowWarmConsumesDeltas) {
  const auto table = make_job_table(8.0);
  WindowConfig wcfg;
  wcfg.window_days = 4.0;
  wcfg.stride_days = 4.0;
  const WindowStream ws(table, wcfg);
  ASSERT_GE(ws.num_windows(), 2u);

  for (const auto mode : {RefreshMode::kCold, RefreshMode::kWarm}) {
    RefresherConfig cfg;
    cfg.model_key = "smote";
    cfg.budget = tiny_budget();
    cfg.mode = mode;
    ModelRefresher refresher(cfg);
    for (const auto& win : ws.windows()) {
      if (win.rows.size() < 2) continue;
      const auto stats = refresher.refresh(ws.materialize(win.rows),
                                           ws.materialize(win.delta_rows),
                                           win.index);
      EXPECT_EQ(stats.mode, mode);
      if (mode == RefreshMode::kCold || win.index == 0) {
        EXPECT_TRUE(stats.cold_start);
        EXPECT_EQ(stats.trained_rows, win.rows.size());
      } else {
        EXPECT_FALSE(stats.cold_start);
        EXPECT_EQ(stats.trained_rows, win.delta_rows.size());
      }
    }
    EXPECT_TRUE(refresher.model().fitted());
  }
}

TEST(ModelRefresher, RejectsUnknownModelKey) {
  RefresherConfig cfg;
  cfg.model_key = "no-such-model";
  EXPECT_THROW(ModelRefresher{cfg}, std::invalid_argument);
}

// The acceptance contract: warm refresh is measurably faster than cold fit
// for every surrogate. Compare post-cold-start windows only (window 0 cold-
// starts in both regimes by construction).
TEST(ModelRefresher, WarmRefreshFasterThanColdFitForAllModels) {
  const auto table = make_job_table(8.0, 220.0);
  WindowConfig wcfg;
  wcfg.window_days = 4.0;
  wcfg.stride_days = 2.0;  // sliding: deltas are half a window
  const WindowStream ws(table, wcfg);

  for (const std::string key : kAllModels) {
    double cold_seconds = 0.0;
    double warm_seconds = 0.0;
    for (const auto mode : {RefreshMode::kCold, RefreshMode::kWarm}) {
      RefresherConfig cfg;
      cfg.model_key = key;
      cfg.budget = tiny_budget();
      cfg.mode = mode;
      ModelRefresher refresher(cfg);
      double seconds = 0.0;
      for (const auto& win : ws.windows()) {
        if (win.rows.size() < 2) continue;
        const auto stats = refresher.refresh(ws.materialize(win.rows),
                                             ws.materialize(win.delta_rows),
                                             win.index);
        if (win.index > 0) seconds += stats.seconds;
      }
      (mode == RefreshMode::kCold ? cold_seconds : warm_seconds) = seconds;
    }
    EXPECT_LT(warm_seconds, cold_seconds)
        << key << ": warm " << warm_seconds << "s vs cold " << cold_seconds
        << "s";
  }
}

// ----------------------------------------------------------- stream matrix --

TEST(ExpandStreamScenarios, DefaultsAndDedup) {
  StreamOptions opts;
  opts.window_days = 7.0;
  // Empty axes: tumbling stride, no drift, both refresh regimes.
  const auto defaults = expand_stream_scenarios({}, opts);
  ASSERT_EQ(defaults.size(), 2u);
  EXPECT_EQ(defaults[0].stride_days, 7.0);
  EXPECT_EQ(defaults[0].drift, DriftKind::kNone);
  EXPECT_EQ(defaults[0].refresh, RefreshMode::kCold);
  EXPECT_EQ(defaults[1].refresh, RefreshMode::kWarm);

  StreamAxes axes;
  axes.stride_days = {1.0, 7.0, 1.0};
  axes.drifts = {DriftKind::kNone, DriftKind::kMeanShift, DriftKind::kNone};
  axes.refresh = {RefreshMode::kCold};
  const auto expanded = expand_stream_scenarios(axes, opts);
  EXPECT_EQ(expanded.size(), 2u * 2u * 1u);
  EXPECT_EQ(expanded.front().id, "s1_none_cold");
  EXPECT_EQ(expanded.back().id, "s7_mean_shift_cold");
}

TEST(ExpandStreamScenarios, RejectsBadValues) {
  StreamOptions opts;
  StreamAxes axes;
  axes.stride_days = {-1.0};
  EXPECT_THROW((void)expand_stream_scenarios(axes, opts),
               std::invalid_argument);
  opts.window_days = 0.0;
  EXPECT_THROW((void)expand_stream_scenarios({}, opts),
               std::invalid_argument);
}

TEST(RunStreamMatrix, CoversEveryCellAndEmitsJson) {
  auto base = tiny_config();
  StreamAxes axes;
  axes.stride_days = {4.0};
  axes.drifts = {DriftKind::kNone, DriftKind::kMeanShift};
  axes.refresh = {RefreshMode::kCold, RefreshMode::kWarm};
  axes.model_keys = {"smote"};
  StreamOptions opts;
  opts.window_days = 4.0;
  opts.synth_rows = 400;

  const auto result = run_stream_matrix(base, axes, opts);
  ASSERT_EQ(result.runs.size(), 4u);
  EXPECT_GT(result.source_rows, 100u);
  for (const auto& run : result.runs) {
    ASSERT_EQ(run.tracks.size(), 1u);
    const auto& track = run.tracks.front();
    EXPECT_EQ(track.model_key, "smote");
    ASSERT_EQ(track.windows.size(), run.num_windows);
    for (const auto& cell : track.windows) {
      if (cell.skipped) continue;
      EXPECT_GE(cell.window_rows, 2u);
      EXPECT_EQ(cell.synth_rows, 400u);
      EXPECT_TRUE(std::isfinite(cell.wd));
      EXPECT_TRUE(std::isfinite(cell.jsd));
      EXPECT_TRUE(std::isfinite(cell.diff_corr));
      EXPECT_TRUE(std::isnan(cell.dcr));  // score_dcr off
      EXPECT_GT(cell.sample_rows_per_sec, 0.0);
      if (run.scenario.drift == DriftKind::kMeanShift) {
        EXPECT_GT(cell.drift_severity, 0.0);
      } else {
        EXPECT_EQ(cell.drift_severity, 0.0);
      }
    }
    EXPECT_GT(track.total_refresh_seconds, 0.0);
  }

  const auto json = stream_to_json(base, opts, result);
  EXPECT_NE(json.find("\"kind\":\"stream_matrix\""), std::string::npos);
  for (const auto& run : result.runs) {
    EXPECT_NE(json.find("\"id\":\"" + run.scenario.id + "\""),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"refresh_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"wd\":"), std::string::npos);
  // NaN degrades to null (dcr was skipped).
  EXPECT_NE(json.find("\"dcr\":null"), std::string::npos);
}

TEST(RunStreamMatrix, ConcurrentScoringMatchesSerialBitwise) {
  auto base = tiny_config();
  base.metric_threads = 1;
  StreamAxes axes;
  axes.stride_days = {4.0};
  axes.refresh = {RefreshMode::kWarm};
  axes.model_keys = {"smote"};
  StreamOptions serial;
  serial.window_days = 4.0;
  serial.synth_rows = 300;
  serial.concurrent_scoring = false;
  StreamOptions concurrent = serial;
  concurrent.concurrent_scoring = true;

  const auto a = run_stream_matrix(base, axes, serial);
  const auto b = run_stream_matrix(base, axes, concurrent);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t s = 0; s < a.runs.size(); ++s) {
    ASSERT_EQ(a.runs[s].tracks.size(), b.runs[s].tracks.size());
    for (std::size_t t = 0; t < a.runs[s].tracks.size(); ++t) {
      const auto& ta = a.runs[s].tracks[t];
      const auto& tb = b.runs[s].tracks[t];
      ASSERT_EQ(ta.windows.size(), tb.windows.size());
      for (std::size_t w = 0; w < ta.windows.size(); ++w) {
        EXPECT_EQ(ta.windows[w].wd, tb.windows[w].wd);
        EXPECT_EQ(ta.windows[w].jsd, tb.windows[w].jsd);
        EXPECT_EQ(ta.windows[w].diff_corr, tb.windows[w].diff_corr);
      }
    }
  }
}

}  // namespace
}  // namespace surro::stream
