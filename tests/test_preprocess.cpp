// Quantile transform properties, scalers, one-hot, and the mixed encoder's
// Table ⇄ Matrix round trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "preprocess/mixed_encoder.hpp"
#include "preprocess/one_hot.hpp"
#include "preprocess/quantile_transformer.hpp"
#include "preprocess/scalers.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace surro::preprocess {
namespace {

std::vector<double> lognormal_sample(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.lognormal(2.0, 1.0);
  return v;
}

// --------------------------------------------------- quantile transformer --

TEST(QuantileTransformer, OutputIsApproximatelyStandardNormal) {
  const auto data = lognormal_sample(20000, 1);
  QuantileTransformer qt(1000);
  qt.fit(data);
  const auto z = qt.transform(data);
  double mean = 0.0;
  for (const double v : z) mean += v;
  mean /= static_cast<double>(z.size());
  double var = 0.0;
  for (const double v : z) var += (v - mean) * (v - mean);
  var /= static_cast<double>(z.size());
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(QuantileTransformer, RoundTripOnTrainingRange) {
  const auto data = lognormal_sample(5000, 2);
  QuantileTransformer qt(1000);
  qt.fit(data);
  for (std::size_t i = 0; i < data.size(); i += 97) {
    const double z = qt.transform_one(data[i]);
    const double back = qt.inverse_one(z);
    EXPECT_NEAR(back, data[i], std::abs(data[i]) * 0.05 + 1e-6);
  }
}

TEST(QuantileTransformer, MonotoneTransform) {
  const auto data = lognormal_sample(2000, 3);
  QuantileTransformer qt(500);
  qt.fit(data);
  double prev = qt.transform_one(0.01);
  for (double v = 0.1; v < 100.0; v *= 1.5) {
    const double z = qt.transform_one(v);
    EXPECT_GE(z, prev - 1e-12);
    prev = z;
  }
}

TEST(QuantileTransformer, ClampsOutOfRange) {
  const std::vector<double> data = {1.0, 2.0, 3.0, 4.0, 5.0};
  QuantileTransformer qt(10);
  qt.fit(data);
  EXPECT_TRUE(std::isfinite(qt.transform_one(-1000.0)));
  EXPECT_TRUE(std::isfinite(qt.transform_one(1000.0)));
  EXPECT_LT(qt.transform_one(-1000.0), qt.transform_one(3.0));
}

TEST(QuantileTransformer, ConstantColumn) {
  const std::vector<double> data(100, 42.0);
  QuantileTransformer qt(10);
  qt.fit(data);
  const double z = qt.transform_one(42.0);
  EXPECT_TRUE(std::isfinite(z));
  EXPECT_NEAR(qt.inverse_one(0.0), 42.0, 1e-9);
}

TEST(QuantileTransformer, ThrowsOnEmptyAndUnfitted) {
  QuantileTransformer qt;
  EXPECT_THROW(qt.fit({}), std::invalid_argument);
  EXPECT_THROW(qt.transform_one(1.0), std::logic_error);
  EXPECT_THROW(qt.inverse_one(0.0), std::logic_error);
}

TEST(QuantileTransformer, InverseOfExtremeZHitsRangeEnds) {
  const std::vector<double> data = {1.0, 2.0, 3.0, 10.0};
  QuantileTransformer qt(10);
  qt.fit(data);
  EXPECT_NEAR(qt.inverse_one(-10.0), 1.0, 1e-9);
  EXPECT_NEAR(qt.inverse_one(10.0), 10.0, 1e-9);
}

class QuantileGridSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuantileGridSizes, CdfInverseConsistency) {
  const auto data = lognormal_sample(3000, 17);
  QuantileTransformer qt(GetParam());
  qt.fit(data);
  // transform then inverse must be near-identity at interior quantiles.
  std::vector<double> sorted(data);
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double v = util::quantile_sorted(sorted, q);
    EXPECT_NEAR(qt.inverse_one(qt.transform_one(v)), v,
                std::abs(v) * 0.1 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, QuantileGridSizes,
                         ::testing::Values(10, 100, 1000, 5000));

// ------------------------------------------------------------------ scalers --

TEST(StandardScaler, NormalizesMoments) {
  const auto data = lognormal_sample(10000, 4);
  StandardScaler s;
  s.fit(data);
  const auto z = s.transform(data);
  EXPECT_NEAR(util::mean(z), 0.0, 1e-9);
  EXPECT_NEAR(util::stddev(z), 1.0, 1e-6);
  EXPECT_NEAR(s.inverse_one(s.transform_one(7.7)), 7.7, 1e-9);
}

TEST(StandardScaler, ConstantColumnSafe) {
  const std::vector<double> data(10, 5.0);
  StandardScaler s;
  s.fit(data);
  EXPECT_DOUBLE_EQ(s.transform_one(5.0), 0.0);
}

TEST(MinMaxScaler, MapsToUnitInterval) {
  const std::vector<double> data = {-2.0, 0.0, 2.0};
  MinMaxScaler s;
  s.fit(data);
  EXPECT_DOUBLE_EQ(s.transform_one(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(s.transform_one(2.0), 1.0);
  EXPECT_DOUBLE_EQ(s.transform_one(0.0), 0.5);
  EXPECT_DOUBLE_EQ(s.inverse_one(0.25), -1.0);
}

TEST(MinMaxScaler, ConstantColumnMapsToHalf) {
  const std::vector<double> data(5, 3.0);
  MinMaxScaler s;
  s.fit(data);
  EXPECT_DOUBLE_EQ(s.transform_one(3.0), 0.5);
}

TEST(Scalers, ThrowOnEmpty) {
  StandardScaler a;
  MinMaxScaler b;
  EXPECT_THROW(a.fit({}), std::invalid_argument);
  EXPECT_THROW(b.fit({}), std::invalid_argument);
}

// ------------------------------------------------------------------ one-hot --

TEST(OneHot, EncodeDecode) {
  OneHotEncoder enc(4);
  std::vector<float> buf(4, -1.0f);
  enc.encode_into(2, buf);
  EXPECT_FLOAT_EQ(buf[2], 1.0f);
  EXPECT_FLOAT_EQ(buf[0], 0.0f);
  EXPECT_EQ(enc.decode(buf), 2);
}

TEST(OneHot, EncodeWithOffset) {
  OneHotEncoder enc(3);
  std::vector<float> buf(6, 9.0f);
  enc.encode_into(1, buf, 3);
  EXPECT_FLOAT_EQ(buf[4], 1.0f);
  EXPECT_FLOAT_EQ(buf[3], 0.0f);
  EXPECT_FLOAT_EQ(buf[0], 9.0f);  // untouched before offset
}

TEST(OneHot, EncodeColumnMatrix) {
  OneHotEncoder enc(3);
  const std::vector<std::int32_t> codes = {0, 2, 1};
  const auto m = enc.encode_column(codes);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m(1, 2), 1.0f);
  EXPECT_FLOAT_EQ(m(2, 1), 1.0f);
}

TEST(OneHot, Errors) {
  EXPECT_THROW(OneHotEncoder(0), std::invalid_argument);
  OneHotEncoder enc(2);
  std::vector<float> buf(2);
  EXPECT_THROW(enc.encode_into(5, buf), std::out_of_range);
  const std::vector<float> wrong(3);
  EXPECT_THROW(enc.decode(wrong), std::invalid_argument);
}

// ------------------------------------------------------------ mixed encoder --

tabular::Table mixed_table(std::size_t n, std::uint64_t seed) {
  tabular::Schema schema({{"v", tabular::ColumnKind::kNumerical},
                          {"site", tabular::ColumnKind::kCategorical},
                          {"w", tabular::ColumnKind::kNumerical},
                          {"type", tabular::ColumnKind::kCategorical}});
  tabular::Table t(schema);
  util::Rng rng(seed);
  static constexpr const char* kSites[] = {"BNL", "CERN", "RAL"};
  static constexpr const char* kTypes[] = {"PHYS", "LITE"};
  for (std::size_t i = 0; i < n; ++i) {
    auto row = t.make_row();
    row.set(0, rng.lognormal(1.0, 0.5));
    row.set(1, std::string(kSites[rng.uniform_index(3)]));
    row.set(2, rng.normal(5.0, 2.0));
    row.set(3, std::string(kTypes[rng.uniform_index(2)]));
    t.append_row(row);
  }
  return t;
}

TEST(MixedEncoder, LayoutIsCompact) {
  const auto t = mixed_table(500, 5);
  MixedEncoder enc;
  enc.fit(t);
  EXPECT_EQ(enc.num_numerical(), 2u);
  ASSERT_EQ(enc.blocks().size(), 2u);
  EXPECT_EQ(enc.blocks()[0].offset, 2u);
  EXPECT_EQ(enc.encoded_width(),
            2u + enc.blocks()[0].cardinality + enc.blocks()[1].cardinality);
}

TEST(MixedEncoder, EncodeProducesValidOneHots) {
  const auto t = mixed_table(200, 6);
  MixedEncoder enc;
  enc.fit(t);
  const auto m = enc.encode(t);
  EXPECT_EQ(m.rows(), t.num_rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (const auto& b : enc.blocks()) {
      float sum = 0.0f;
      for (std::size_t j = 0; j < b.cardinality; ++j) {
        sum += m(r, b.offset + j);
      }
      EXPECT_FLOAT_EQ(sum, 1.0f);
    }
  }
}

TEST(MixedEncoder, RoundTripRecoversTable) {
  const auto t = mixed_table(1000, 7);
  MixedEncoder enc;
  enc.fit(t, 2000);
  const auto m = enc.encode(t);
  const auto back = enc.decode(m);
  ASSERT_EQ(back.num_rows(), t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); r += 37) {
    EXPECT_NEAR(back.numerical(0)[r], t.numerical(0)[r],
                std::abs(t.numerical(0)[r]) * 0.05 + 1e-6);
    EXPECT_EQ(back.label_at(1, r), t.label_at(1, r));
    EXPECT_EQ(back.label_at(3, r), t.label_at(3, r));
  }
}

TEST(MixedEncoder, DecodeSamplesCategoricalBlocks) {
  const auto t = mixed_table(100, 8);
  MixedEncoder enc;
  enc.fit(t);
  // A soft block: 70/30 over first two site categories.
  linalg::Matrix m(4000, enc.encoded_width(), 0.0f);
  const auto& b = enc.blocks()[0];
  for (std::size_t r = 0; r < m.rows(); ++r) {
    m(r, b.offset + 0) = 0.7f;
    m(r, b.offset + 1) = 0.3f;
    m(r, enc.blocks()[1].offset) = 1.0f;
  }
  util::Rng rng(9);
  const auto out = enc.decode(m, &rng);
  std::size_t zero_count = 0;
  const auto codes = out.categorical(1);
  for (const auto c : codes) zero_count += c == 0;
  EXPECT_NEAR(static_cast<double>(zero_count) / 4000.0, 0.7, 0.03);
}

TEST(MixedEncoder, SchemaMismatchThrows) {
  const auto t = mixed_table(50, 10);
  MixedEncoder enc;
  enc.fit(t);
  tabular::Table other{tabular::Schema({{"q", tabular::ColumnKind::kNumerical}})};
  EXPECT_THROW(enc.encode(other), std::invalid_argument);
  linalg::Matrix wrong(3, 2);
  EXPECT_THROW(enc.decode(wrong), std::invalid_argument);
}

TEST(MixedEncoder, UnfittedThrows) {
  MixedEncoder enc;
  const auto t = mixed_table(10, 11);
  EXPECT_THROW(enc.encode(t), std::logic_error);
  linalg::Matrix m(1, 1);
  EXPECT_THROW(enc.decode(m), std::logic_error);
}

}  // namespace
}  // namespace surro::preprocess
