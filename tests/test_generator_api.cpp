// Surrogate Model API v2: registry lookup/enumeration, fitted-model
// persistence (save -> load -> sample round trips), chunked parallel
// sampling equivalence, and fit progress/cancellation — for all four
// built-in models.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "models/generator.hpp"
#include "models/tvae.hpp"
#include "util/rng.hpp"

namespace surro::models {
namespace {

// Tiny mixed table with clear structure (mirrors test_models.cpp).
tabular::Table cluster_table(std::size_t n, std::uint64_t seed) {
  tabular::Schema schema({{"x", tabular::ColumnKind::kNumerical},
                          {"site", tabular::ColumnKind::kCategorical},
                          {"y", tabular::ColumnKind::kNumerical},
                          {"status", tabular::ColumnKind::kCategorical}});
  tabular::Table t(schema);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool cluster_a = rng.bernoulli(0.65);
    auto row = t.make_row();
    if (cluster_a) {
      row.set(0, rng.normal(0.0, 0.4));
      row.set(1, std::string(rng.bernoulli(0.9) ? "BNL" : "CERN"));
      row.set(2, rng.normal(-2.0, 0.3));
      row.set(3, std::string(rng.bernoulli(0.85) ? "finished" : "failed"));
    } else {
      row.set(0, rng.normal(5.0, 0.4));
      row.set(1, std::string(rng.bernoulli(0.8) ? "RAL" : "CERN"));
      row.set(2, rng.normal(3.0, 0.3));
      row.set(3, std::string(rng.bernoulli(0.6) ? "finished" : "failed"));
    }
    t.append_row(row);
  }
  return t;
}

TrainBudget tiny_budget() {
  TrainBudget b;
  b.epochs = 4;
  b.batch_size = 64;
  b.learning_rate = 1e-3f;
  return b;
}

/// Bitwise table equality: schema, numerical doubles, categorical labels.
void expect_tables_identical(const tabular::Table& a,
                             const tabular::Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_TRUE(a.schema() == b.schema());
  for (const std::size_t col : a.schema().numerical_indices()) {
    const auto va = a.numerical(col);
    const auto vb = b.numerical(col);
    for (std::size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(va[r], vb[r]) << "numerical col " << col << " row " << r;
    }
  }
  for (const std::size_t col : a.schema().categorical_indices()) {
    for (std::size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(a.label_at(col, r), b.label_at(col, r))
          << "categorical col " << col << " row " << r;
    }
  }
}

// ---------------------------------------------------------------- registry --

TEST(GeneratorRegistry, EnumeratesAllBuiltinModels) {
  const auto keys = GeneratorRegistry::instance().keys();
  const std::vector<std::string> expected{"ctabgan", "smote", "tabddpm",
                                          "tvae"};
  EXPECT_EQ(keys, expected);  // sorted enumeration
}

TEST(GeneratorRegistry, InfoIsComplete) {
  auto& registry = GeneratorRegistry::instance();
  for (const auto& key : registry.keys()) {
    const auto& info = registry.info(key);
    EXPECT_EQ(info.key, key);
    EXPECT_FALSE(info.display_name.empty());
    EXPECT_FALSE(info.description.empty());
    auto model = registry.create(key, tiny_budget(), 3);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->key(), key);
    EXPECT_EQ(model->name(), info.display_name);
    EXPECT_FALSE(model->fitted());
  }
}

TEST(GeneratorRegistry, UnknownKeyThrows) {
  auto& registry = GeneratorRegistry::instance();
  EXPECT_FALSE(registry.contains("copulagan"));
  EXPECT_THROW(static_cast<void>(registry.info("copulagan")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(registry.create("copulagan", tiny_budget(),
                                                 1)),
               std::invalid_argument);
  EXPECT_THROW(make_generator("", tiny_budget(), 1), std::invalid_argument);
}

TEST(GeneratorRegistry, DuplicateRegistrationThrows) {
  GeneratorInfo dup;
  dup.key = "smote";
  dup.display_name = "SMOTE2";
  dup.description = "duplicate";
  dup.factory = [](const TrainBudget&, std::uint64_t) {
    return std::unique_ptr<TabularGenerator>{};
  };
  EXPECT_THROW(GeneratorRegistry::instance().register_generator(dup),
               std::invalid_argument);
}

// ------------------------------------------------- fit options / progress --

TEST(FitOptions, ProgressReportsEveryEpoch) {
  const auto train = cluster_table(200, 11);
  TvaeConfig cfg;
  cfg.budget = tiny_budget();
  Tvae model(cfg);
  std::vector<FitProgress> seen;
  FitOptions opts;
  opts.on_progress = [&seen](const FitProgress& p) { seen.push_back(p); };
  model.fit(train, opts);
  ASSERT_EQ(seen.size(), cfg.budget.epochs);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].epoch, i + 1);
    EXPECT_EQ(seen[i].total_epochs, cfg.budget.epochs);
  }
}

TEST(FitOptions, CancellationAbortsTraining) {
  const auto train = cluster_table(200, 12);
  TvaeConfig cfg;
  cfg.budget = tiny_budget();
  Tvae model(cfg);
  std::atomic<bool> cancel{false};
  FitOptions opts;
  opts.cancel = &cancel;
  std::size_t epochs_seen = 0;
  opts.on_progress = [&](const FitProgress& p) {
    ++epochs_seen;
    if (p.epoch == 2) cancel.store(true);
  };
  EXPECT_THROW(model.fit(train, opts), FitCancelled);
  EXPECT_FALSE(model.fitted());
  EXPECT_EQ(epochs_seen, 2u);
}

// ------------------------------------------------- per-model API contract --

class AllGeneratorsV2 : public ::testing::TestWithParam<std::string> {};

TEST_P(AllGeneratorsV2, SaveLoadSampleRoundTripIsExact) {
  const auto train = cluster_table(300, 21);
  auto model = make_generator(GetParam(), tiny_budget(), 7);
  model->fit(train);
  const auto original = model->sample(120, 99);

  std::stringstream archive;
  save_model(*model, archive);
  auto reloaded = load_model(archive);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->key(), GetParam());
  EXPECT_TRUE(reloaded->fitted());

  const auto replayed = reloaded->sample(120, 99);
  expect_tables_identical(original, replayed);
}

TEST_P(AllGeneratorsV2, ParallelSamplingMatchesSerialBitwise) {
  const auto train = cluster_table(300, 22);
  auto model = make_generator(GetParam(), tiny_budget(), 7);
  model->fit(train);

  SampleRequest request;
  request.rows = 500;
  request.seed = 4242;
  request.chunk_rows = 128;

  request.threads = 1;
  tabular::Table serial;
  model->sample_into(serial, request);

  request.threads = 4;
  tabular::Table parallel4;
  model->sample_into(parallel4, request);

  request.threads = 0;  // every pool worker
  tabular::Table parallel_all;
  model->sample_into(parallel_all, request);

  EXPECT_EQ(serial.num_rows(), 500u);
  expect_tables_identical(serial, parallel4);
  expect_tables_identical(serial, parallel_all);
}

TEST_P(AllGeneratorsV2, SampleIntoReportsProgressAndAppends) {
  const auto train = cluster_table(250, 23);
  auto model = make_generator(GetParam(), tiny_budget(), 7);
  model->fit(train);

  SampleRequest request;
  request.rows = 200;
  request.seed = 5;
  request.chunk_rows = 64;
  request.threads = 2;
  std::size_t last_done = 0;
  request.on_progress = [&](std::size_t done, std::size_t total) {
    EXPECT_LE(done, total);
    EXPECT_GT(done, last_done);
    last_done = done;
  };
  tabular::Table out;
  model->sample_into(out, request);
  EXPECT_EQ(out.num_rows(), 200u);
  EXPECT_EQ(last_done, 200u);

  // A second request appends to the same table.
  request.on_progress = nullptr;
  model->sample_into(out, request);
  EXPECT_EQ(out.num_rows(), 400u);
}

TEST(SampleInto, ThrowingProgressCallbackDoesNotWedgeThePool) {
  const auto train = cluster_table(200, 25);
  auto model = make_generator("smote", tiny_budget(), 7);
  model->fit(train);
  SampleRequest request;
  request.rows = 300;
  request.seed = 6;
  request.chunk_rows = 64;
  request.threads = 4;
  request.on_progress = [](std::size_t, std::size_t) {
    throw std::runtime_error("abort sampling");
  };
  tabular::Table out;
  EXPECT_THROW(model->sample_into(out, request), std::runtime_error);
  // The pool stays serviceable afterwards.
  request.on_progress = nullptr;
  tabular::Table retry;
  model->sample_into(retry, request);
  EXPECT_EQ(retry.num_rows(), 300u);
}

TEST_P(AllGeneratorsV2, CloneSamplesIdentically) {
  const auto train = cluster_table(250, 24);
  auto model = make_generator(GetParam(), tiny_budget(), 7);
  model->fit(train);
  const auto copy = model->clone();
  expect_tables_identical(model->sample(80, 17), copy->sample(80, 17));
}

TEST_P(AllGeneratorsV2, SaveBeforeFitThrows) {
  auto model = make_generator(GetParam(), tiny_budget(), 7);
  std::stringstream buffer;
  EXPECT_THROW(save_model(*model, buffer), std::logic_error);
  EXPECT_THROW(model->save(buffer), std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(Keys, AllGeneratorsV2,
                         ::testing::Values("tvae", "ctabgan", "smote",
                                           "tabddpm"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------- archive --

TEST(ModelArchive, CorruptStreamIsRejected) {
  std::stringstream garbage("not a model archive at all");
  EXPECT_THROW(load_model(garbage), std::runtime_error);
}

TEST(ModelArchive, TruncatedStreamIsRejected) {
  const auto train = cluster_table(200, 31);
  auto model = make_generator("smote", tiny_budget(), 7);
  model->fit(train);
  std::stringstream archive;
  save_model(*model, archive);
  const std::string full = archive.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_model(truncated), std::runtime_error);
}

TEST(ModelArchive, PipelinePersistsFittedModel) {
  core::PipelineConfig cfg;
  cfg.experiment = eval::quick_experiment_config();
  cfg.experiment.data.model.days = 8.0;
  cfg.experiment.data.model.base_jobs_per_day = 120.0;
  cfg.model = "smote";
  core::SurrogatePipeline pipe(cfg);
  pipe.fit();

  std::stringstream archive;
  pipe.save_model(archive);

  core::SurrogatePipeline served(cfg);
  EXPECT_FALSE(served.fitted());
  served.load_model(archive);
  EXPECT_TRUE(served.fitted());
  expect_tables_identical(pipe.sample(300, 77), served.sample(300, 77));
  // Loaded pipelines can sample but have no train/test partitions.
  EXPECT_THROW(static_cast<void>(served.train_table()), std::logic_error);
}

}  // namespace
}  // namespace surro::models
