// Metric correctness on analytic cases: W1, JSD, association measures,
// DCR, MLEF, and the Table I report.

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/correlation.hpp"
#include "metrics/dcr.hpp"
#include "metrics/jsd.hpp"
#include "metrics/mlef.hpp"
#include "metrics/report.hpp"
#include "metrics/wasserstein.hpp"
#include "util/rng.hpp"

namespace surro::metrics {
namespace {

// ------------------------------------------------------------- wasserstein --

TEST(Wasserstein, ZeroForIdenticalSamples) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_NEAR(wasserstein1(x, x), 0.0, 1e-12);
}

TEST(Wasserstein, ShiftEqualsDistance) {
  // W1 between X and X + c is exactly |c|.
  util::Rng rng(1);
  std::vector<double> x(1000);
  for (auto& v : x) v = rng.normal();
  std::vector<double> y(x);
  for (auto& v : y) v += 2.5;
  EXPECT_NEAR(wasserstein1(x, y), 2.5, 1e-9);
}

TEST(Wasserstein, KnownTwoPointValue) {
  // {0} vs {1}: mass 1 moved distance 1.
  EXPECT_NEAR(wasserstein1(std::vector<double>{0.0},
                           std::vector<double>{1.0}),
              1.0, 1e-12);
}

TEST(Wasserstein, UnequalSampleSizes) {
  // {0,1} vs {0.5}: each half of the mass moves 0.5.
  const std::vector<double> x = {0.0, 1.0};
  const std::vector<double> y = {0.5};
  EXPECT_NEAR(wasserstein1(x, y), 0.5, 1e-12);
}

TEST(Wasserstein, SymmetricAndNonNegative) {
  util::Rng rng(2);
  std::vector<double> x(300);
  std::vector<double> y(200);
  for (auto& v : x) v = rng.lognormal(0.0, 1.0);
  for (auto& v : y) v = rng.lognormal(0.5, 0.8);
  const double d1 = wasserstein1(x, y);
  const double d2 = wasserstein1(y, x);
  EXPECT_GT(d1, 0.0);
  EXPECT_NEAR(d1, d2, 1e-9);
}

TEST(Wasserstein, TriangleInequalitySampled) {
  util::Rng rng(3);
  std::vector<double> x(200);
  std::vector<double> y(200);
  std::vector<double> z(200);
  for (auto& v : x) v = rng.normal(0.0, 1.0);
  for (auto& v : y) v = rng.normal(1.0, 1.5);
  for (auto& v : z) v = rng.normal(-1.0, 0.5);
  EXPECT_LE(wasserstein1(x, z),
            wasserstein1(x, y) + wasserstein1(y, z) + 1e-9);
}

TEST(Wasserstein, EmptyThrows) {
  EXPECT_THROW(wasserstein1({}, std::vector<double>{1.0}),
               std::invalid_argument);
}

// -------------------------------------------------------------------- jsd --

TEST(Jsd, ZeroForIdenticalDistributions) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(jensen_shannon(p, p), 0.0, 1e-12);
}

TEST(Jsd, OneForDisjointSupport) {
  const std::vector<double> p = {1.0, 0.0};
  const std::vector<double> q = {0.0, 1.0};
  EXPECT_NEAR(jensen_shannon(p, q), 1.0, 1e-12);  // base-2 log
}

TEST(Jsd, SymmetricAndBounded) {
  const std::vector<double> p = {0.7, 0.2, 0.1};
  const std::vector<double> q = {0.1, 0.6, 0.3};
  const double d = jensen_shannon(p, q);
  EXPECT_NEAR(d, jensen_shannon(q, p), 1e-12);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
}

TEST(Jsd, LengthMismatchThrows) {
  EXPECT_THROW(jensen_shannon(std::vector<double>{1.0},
                              std::vector<double>{0.5, 0.5}),
               std::invalid_argument);
}

// ------------------------------------------------------------- correlation --

TEST(CorrelationRatio, PerfectSeparationIsOne) {
  const std::vector<std::int32_t> codes = {0, 0, 1, 1};
  const std::vector<double> values = {1.0, 1.0, 5.0, 5.0};
  EXPECT_NEAR(correlation_ratio(codes, values, 2), 1.0, 1e-12);
}

TEST(CorrelationRatio, NoAssociationIsZero) {
  const std::vector<std::int32_t> codes = {0, 1, 0, 1};
  const std::vector<double> values = {1.0, 1.0, 5.0, 5.0};
  EXPECT_NEAR(correlation_ratio(codes, values, 2), 0.0, 1e-12);
}

TEST(TheilsU, DeterministicRelationIsOne) {
  // x fully determined by y.
  const std::vector<std::int32_t> y = {0, 1, 2, 0, 1, 2};
  const std::vector<std::int32_t> x = {0, 1, 0, 0, 1, 0};
  EXPECT_NEAR(theils_u(x, 2, y, 3), 1.0, 1e-12);
}

TEST(TheilsU, IndependentIsZero) {
  std::vector<std::int32_t> x;
  std::vector<std::int32_t> y;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int rep = 0; rep < 25; ++rep) {
        x.push_back(a);
        y.push_back(b);
      }
    }
  }
  EXPECT_NEAR(theils_u(x, 2, y, 2), 0.0, 1e-12);
}

TEST(TheilsU, AsymmetricInGeneral) {
  // y refines x: knowing y determines x, but not vice versa.
  const std::vector<std::int32_t> y = {0, 1, 2, 3, 0, 1, 2, 3};
  const std::vector<std::int32_t> x = {0, 0, 1, 1, 0, 0, 1, 1};
  const double u_x_given_y = theils_u(x, 2, y, 4);
  const double u_y_given_x = theils_u(y, 4, x, 2);
  EXPECT_NEAR(u_x_given_y, 1.0, 1e-12);
  EXPECT_LT(u_y_given_x, 1.0);
}

tabular::Table correlated_table(std::size_t n, std::uint64_t seed,
                                bool correlated) {
  tabular::Schema schema({{"a", tabular::ColumnKind::kNumerical},
                          {"g", tabular::ColumnKind::kCategorical},
                          {"b", tabular::ColumnKind::kNumerical}});
  tabular::Table t(schema);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.normal();
    const double b = correlated ? a * 2.0 + rng.normal() * 0.1
                                : rng.normal();
    const std::size_t g =
        correlated ? (a > 0 ? 0u : 1u) : rng.uniform_index(2);
    auto row = t.make_row();
    row.set(0, a);
    row.set(1, std::string(g == 0 ? "hi" : "lo"));
    row.set(2, b);
    t.append_row(row);
  }
  return t;
}

TEST(AssociationMatrix, DetectsStructure) {
  const auto t = correlated_table(2000, 4, true);
  const auto m = association_matrix(t);
  EXPECT_EQ(m.n, 3u);
  EXPECT_NEAR(m.at(0, 0), 1.0, 1e-12);           // diagonal
  EXPECT_GT(m.at(0, 2), 0.95);                   // a-b Pearson
  EXPECT_GT(m.at(1, 0), 0.7);                    // g-a correlation ratio
}

TEST(AssociationMatrix, NearZeroWhenIndependent) {
  const auto t = correlated_table(3000, 5, false);
  const auto m = association_matrix(t);
  EXPECT_LT(std::abs(m.at(0, 2)), 0.08);
  EXPECT_LT(m.at(1, 0), 0.08);
}

TEST(DiffCorr, ZeroForSameTable) {
  const auto t = correlated_table(500, 6, true);
  EXPECT_NEAR(diff_corr(t, t), 0.0, 1e-12);
}

TEST(DiffCorr, LargeForStructureLoss) {
  const auto real = correlated_table(2000, 7, true);
  const auto fake = correlated_table(2000, 8, false);
  EXPECT_GT(diff_corr(real, fake), 0.3);
}

// -------------------------------------------------------------------- dcr --

tabular::Table dcr_table(const std::vector<double>& xs,
                         const std::vector<std::string>& labels) {
  tabular::Schema schema({{"x", tabular::ColumnKind::kNumerical},
                          {"c", tabular::ColumnKind::kCategorical}});
  tabular::Table t(schema);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    auto row = t.make_row();
    row.set(0, xs[i]);
    row.set(1, labels[i]);
    t.append_row(row);
  }
  return t;
}

TEST(Dcr, ZeroForCopiedRows) {
  const auto train = dcr_table({0.0, 1.0, 2.0}, {"a", "b", "a"});
  EXPECT_NEAR(mean_dcr(train, train), 0.0, 1e-9);
}

TEST(Dcr, CategoricalMismatchCostsOne) {
  const auto train = dcr_table({0.0}, {"a"});
  auto synth = dcr_table({0.0}, {"a"});
  synth.intern(1, "b");
  // Build a synthetic row with same x but different label.
  tabular::Table synth2 = dcr_table({0.0, 0.0}, {"a", "b"});
  const std::vector<std::size_t> last = {1};
  const auto only_b = synth2.select_rows(last);
  EXPECT_NEAR(mean_dcr(train, only_b), 1.0, 1e-6);
}

TEST(Dcr, NumericDistanceScaled) {
  // Train range [0, 10]; synthetic point at 5 has nearest 0 or 10 -> scaled
  // distance 0.5.
  const auto train = dcr_table({0.0, 10.0}, {"a", "a"});
  const auto synth = dcr_table({5.0}, {"a"});
  EXPECT_NEAR(mean_dcr(train, synth), 0.5, 1e-6);
}

TEST(Dcr, CapsAreRespected) {
  util::Rng rng(9);
  std::vector<double> xs(100);
  std::vector<std::string> labels(100, "a");
  for (auto& x : xs) x = rng.uniform();
  const auto train = dcr_table(xs, labels);
  DcrConfig cfg;
  cfg.max_train_rows = 10;
  cfg.max_synth_rows = 7;
  const auto d = dcr_distances(train, train, cfg);
  EXPECT_EQ(d.size(), 7u);
}

TEST(Dcr, UnseenLabelNeverMatches) {
  const auto train = dcr_table({0.5}, {"a"});
  tabular::Table synth = dcr_table({0.5, 0.5}, {"a", "ZZZ"});
  const std::vector<std::size_t> last = {1};
  EXPECT_NEAR(mean_dcr(train, synth.select_rows(last)), 1.0, 1e-6);
}

// ------------------------------------------------------------------- mlef --

tabular::Table mlef_table(std::size_t n, std::uint64_t seed) {
  tabular::Schema schema({{"f", tabular::ColumnKind::kNumerical},
                          {"c", tabular::ColumnKind::kCategorical},
                          {"workload", tabular::ColumnKind::kNumerical}});
  tabular::Table t(schema);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double f = rng.uniform(0.0, 4.0);
    const std::size_t c = rng.uniform_index(2);
    const double w = std::exp(f + (c == 0 ? 0.0 : 1.0)) *
                     rng.lognormal(0.0, 0.05);
    auto row = t.make_row();
    row.set(0, f);
    row.set(1, std::string(c == 0 ? "s" : "l"));
    row.set(2, w);
    t.append_row(row);
  }
  return t;
}

TEST(Mlef, LogTransformApplied) {
  const auto t = mlef_table(10, 10);
  MlefConfig cfg;
  const auto logt = with_log_target(t, cfg);
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_NEAR(logt.numerical(2)[r], std::log1p(t.numerical(2)[r]), 1e-12);
  }
}

TEST(Mlef, InformativeTrainingBeatsNoise) {
  const auto train = mlef_table(2000, 11);
  const auto test = mlef_table(500, 12);
  // Noise table: same schema, shuffled target.
  tabular::Table noise = mlef_table(2000, 13);
  {
    util::Rng rng(14);
    auto target = noise.numerical_mut(2);
    for (std::size_t i = target.size(); i > 1; --i) {
      std::swap(target[i - 1], target[rng.uniform_index(i)]);
    }
  }
  MlefConfig cfg;
  cfg.boosting.iterations = 40;
  cfg.boosting.tree.max_depth = 5;
  const double good = mlef_mse(train, test, cfg);
  const double bad = mlef_mse(noise, test, cfg);
  EXPECT_LT(good, bad * 0.5);
}

TEST(Mlef, DiffIsSimpleSubtraction) {
  EXPECT_DOUBLE_EQ(diff_mlef(5.0, 2.0), 3.0);
}

// ------------------------------------------------------------------ report --

std::vector<ModelScore> paper_scores() {
  return {{"TVAE", 0.961, 0.806, 0.653, 0.143, 5.875},
          {"CTABGAN+", 1.0, 0.820, 0.658, 0.105, 10.464},
          {"SMOTE", 0.871, 0.799, 0.011, 0.001, 0.058},
          {"TabDDPM", 0.874, 0.799, 0.036, 0.025, 0.826}};
}

TEST(Report, RendersAllModels) {
  const auto table = render_table1(paper_scores());
  EXPECT_NE(table.find("TVAE"), std::string::npos);
  EXPECT_NE(table.find("TabDDPM"), std::string::npos);
  EXPECT_NE(table.find("diff-MLEF"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndRows) {
  const auto csv = scores_to_csv(paper_scores());
  EXPECT_EQ(csv.find("model,wd,jsd"), 0u);
  EXPECT_NE(csv.find("SMOTE"), std::string::npos);
}

TEST(Report, PaperShapeChecksPassOnPaperNumbers) {
  const auto lines = check_paper_shape(paper_scores());
  for (const auto& line : lines) {
    EXPECT_EQ(line.rfind("[PASS]", 0), 0u) << line;
  }
}

TEST(Report, ShapeCheckFailsWhenSmoteLeaksDcr) {
  auto scores = paper_scores();
  scores[2].dcr = 99.0;  // SMOTE suddenly "private"
  const auto lines = check_paper_shape(scores);
  bool any_fail = false;
  for (const auto& line : lines) any_fail |= line.rfind("[FAIL]", 0) == 0;
  EXPECT_TRUE(any_fail);
}

TEST(Report, MissingModelThrows) {
  std::vector<ModelScore> incomplete = {{"SMOTE", 0, 0, 0, 0, 0}};
  EXPECT_THROW(check_paper_shape(incomplete), std::invalid_argument);
}

TEST(Report, JsonListsEveryModel) {
  const auto json = scores_to_json(paper_scores());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"model\":\"SMOTE\""), std::string::npos);
  EXPECT_NE(json.find("\"diff_mlef\":"), std::string::npos);
}

// ------------------------------------------- parallel-vs-serial equivalence --
// The metric hot paths fan out over util::ThreadPool; every column / matrix
// cell / query writes its own slot, so `threads` must never change a bit of
// the result. These tests pin that contract (the scenario-matrix engine and
// the CI benchmark trajectories rely on it).

/// Mixed table with several numerical and categorical columns, sized so the
/// parallel paths actually split work.
tabular::Table mixed_table(std::size_t n, std::uint64_t seed) {
  tabular::Schema schema({{"n0", tabular::ColumnKind::kNumerical},
                          {"c0", tabular::ColumnKind::kCategorical},
                          {"n1", tabular::ColumnKind::kNumerical},
                          {"c1", tabular::ColumnKind::kCategorical},
                          {"n2", tabular::ColumnKind::kNumerical},
                          {"c2", tabular::ColumnKind::kCategorical}});
  tabular::Table t(schema);
  util::Rng rng(seed);
  const char* c0[] = {"a", "b", "c"};
  const char* c1[] = {"x", "y"};
  const char* c2[] = {"p", "q", "r", "s"};
  for (std::size_t i = 0; i < n; ++i) {
    auto row = t.make_row();
    row.set(0, rng.normal());
    row.set(1, std::string(c0[rng.uniform_index(3)]));
    row.set(2, rng.lognormal(0.0, 1.0));
    row.set(3, std::string(c1[rng.uniform_index(2)]));
    row.set(4, rng.uniform() * 100.0);
    row.set(5, std::string(c2[rng.uniform_index(4)]));
    t.append_row(row);
  }
  return t;
}

TEST(ParallelEquivalence, WassersteinBitwise) {
  const auto real = mixed_table(3000, 21);
  const auto synth = mixed_table(2500, 22);
  const auto serial = per_feature_wasserstein(real, synth, /*threads=*/1);
  const auto parallel = per_feature_wasserstein(real, synth, /*threads=*/0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "column " << i;
  }
  EXPECT_EQ(mean_wasserstein(real, synth, 1),
            mean_wasserstein(real, synth, 4));
}

TEST(ParallelEquivalence, JsdBitwise) {
  const auto real = mixed_table(3000, 23);
  const auto synth = mixed_table(2500, 24);
  const auto serial = per_feature_jsd(real, synth, /*threads=*/1);
  const auto parallel = per_feature_jsd(real, synth, /*threads=*/0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "column " << i;
  }
}

TEST(ParallelEquivalence, AssociationMatrixBitwise) {
  const auto t = mixed_table(2000, 25);
  const auto serial = association_matrix(t, /*threads=*/1);
  const auto parallel = association_matrix(t, /*threads=*/0);
  ASSERT_EQ(serial.values.size(), parallel.values.size());
  for (std::size_t i = 0; i < serial.values.size(); ++i) {
    EXPECT_EQ(serial.values[i], parallel.values[i]) << "cell " << i;
  }
  EXPECT_EQ(diff_corr(t, mixed_table(2000, 26), 1),
            diff_corr(t, mixed_table(2000, 26), 3));
}

TEST(ParallelEquivalence, DcrBitwisePerBackend) {
  const auto train = mixed_table(1500, 27);
  const auto synth = mixed_table(800, 28);
  for (const auto backend : {DcrBackend::kBruteForce, DcrBackend::kKdTree}) {
    DcrConfig serial_cfg;
    serial_cfg.backend = backend;
    serial_cfg.threads = 1;
    DcrConfig parallel_cfg = serial_cfg;
    parallel_cfg.threads = 0;
    const auto serial = dcr_distances(train, synth, serial_cfg);
    const auto parallel = dcr_distances(train, synth, parallel_cfg);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t q = 0; q < serial.size(); ++q) {
      EXPECT_EQ(serial[q], parallel[q]) << "query " << q;
    }
  }
}

TEST(Dcr, KdTreeAgreesWithBruteForce) {
  const auto train = mixed_table(1200, 29);
  const auto synth = mixed_table(700, 30);
  DcrConfig brute;
  brute.backend = DcrBackend::kBruteForce;
  DcrConfig kd;
  kd.backend = DcrBackend::kKdTree;
  const auto db = dcr_distances(train, synth, brute);
  const auto dk = dcr_distances(train, synth, kd);
  ASSERT_EQ(db.size(), dk.size());
  for (std::size_t q = 0; q < db.size(); ++q) {
    // Same metric, different accumulation (one-hot embedding vs. code
    // compare) — agree to float precision.
    EXPECT_NEAR(db[q], dk[q], 1e-4) << "query " << q;
  }
}

TEST(Dcr, AutoBackendFollowsDimensionality) {
  // 3 numericals + one-hot widths (3+1)+(2+1)+(4+1) = 15 dims <= 16.
  const auto low_card = mixed_table(100, 31);
  EXPECT_EQ(dcr_backend_for(low_card), DcrBackend::kKdTree);

  DcrConfig tight;
  tight.kdtree_max_dims = 8;
  EXPECT_EQ(dcr_backend_for(low_card, tight), DcrBackend::kBruteForce);

  DcrConfig forced;
  forced.backend = DcrBackend::kBruteForce;
  EXPECT_EQ(dcr_backend_for(low_card, forced), DcrBackend::kBruteForce);
}

}  // namespace
}  // namespace surro::metrics
