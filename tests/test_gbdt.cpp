// GBDT substrate: binning, single trees, boosting convergence, and
// target-statistic encoding.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gbdt/binning.hpp"
#include "gbdt/boosting.hpp"
#include "gbdt/target_stats.hpp"
#include "gbdt/tree.hpp"
#include "util/rng.hpp"

namespace surro::gbdt {
namespace {

// ----------------------------------------------------------------- binning --

TEST(Binning, CodesRespectThresholds) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0,
                                      6.0, 7.0, 8.0, 9.0, 10.0};
  const auto f = bin_feature(values, 4);
  EXPECT_GE(f.num_bins(), 2u);
  // Codes are monotone in the value.
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_LE(bin_code(f, values[i - 1]), bin_code(f, values[i]));
  }
}

TEST(Binning, ConstantColumnSingleBin) {
  const std::vector<double> values(50, 3.0);
  const auto f = bin_feature(values, 8);
  EXPECT_EQ(f.num_bins(), 1u);
  for (const auto c : f.codes) EXPECT_EQ(c, 0);
}

TEST(Binning, NewValuesBinnedConsistently) {
  const std::vector<double> values = {0.0, 1.0, 2.0, 3.0, 4.0};
  const auto f = bin_feature(values, 4);
  EXPECT_EQ(bin_code(f, -100.0), 0);
  EXPECT_EQ(bin_code(f, 100.0), f.num_bins() - 1);
}

TEST(Binning, DatasetRejectsRagged) {
  EXPECT_THROW(bin_dataset({{1.0, 2.0}, {1.0}}), std::invalid_argument);
  EXPECT_THROW(bin_dataset({}), std::invalid_argument);
}

// ------------------------------------------------------------ target stats --

TEST(TargetStats, EncodesSmoothedMeans) {
  //                              A    A    B
  const std::vector<std::int32_t> codes = {0, 0, 1};
  const std::vector<double> targets = {1.0, 3.0, 10.0};
  TargetStatEncoder enc(/*smoothing=*/0.0);
  enc.fit(codes, targets, 2);
  EXPECT_NEAR(enc.encode_one(0), 2.0, 1e-12);
  EXPECT_NEAR(enc.encode_one(1), 10.0, 1e-12);
}

TEST(TargetStats, SmoothingPullsTowardPrior) {
  const std::vector<std::int32_t> codes = {0, 1};
  const std::vector<double> targets = {0.0, 10.0};
  TargetStatEncoder enc(/*smoothing=*/100.0);
  enc.fit(codes, targets, 2);
  // Prior is 5.0; heavy smoothing keeps encodings near it.
  EXPECT_NEAR(enc.encode_one(0), 5.0, 0.2);
  EXPECT_NEAR(enc.encode_one(1), 5.0, 0.2);
}

TEST(TargetStats, UnseenCodeGetsPrior) {
  const std::vector<std::int32_t> codes = {0, 0};
  const std::vector<double> targets = {2.0, 4.0};
  TargetStatEncoder enc;
  enc.fit(codes, targets, 1);
  EXPECT_DOUBLE_EQ(enc.encode_one(99), enc.prior());
  EXPECT_DOUBLE_EQ(enc.encode_one(-1), enc.prior());
}

TEST(TargetStats, Errors) {
  TargetStatEncoder enc;
  EXPECT_THROW(enc.fit({}, {}, 1), std::invalid_argument);
  EXPECT_THROW(TargetStatEncoder(-1.0), std::invalid_argument);
}

// -------------------------------------------------------------------- tree --

TEST(RegressionTree, FitsAStepFunction) {
  // y = 10 for x < 0.5, else -10: one split suffices.
  std::vector<double> x(200);
  std::vector<double> y(200);
  util::Rng rng(1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform();
    y[i] = x[i] < 0.5 ? 10.0 : -10.0;
  }
  const auto data = bin_dataset({x}, 64);
  std::vector<std::size_t> rows(x.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  RegressionTree tree;
  TreeConfig cfg;
  cfg.max_depth = 2;
  cfg.min_samples_leaf = 5;
  cfg.l2_reg = 0.0;
  tree.fit(data, y, rows, cfg);
  std::vector<double> preds(x.size(), 0.0);
  tree.predict_dataset(data, 1.0, preds);
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err += std::abs(preds[i] - y[i]);
  }
  EXPECT_LT(err / static_cast<double>(x.size()), 0.5);
}

TEST(RegressionTree, RespectsMaxDepth) {
  util::Rng rng(2);
  std::vector<double> x(500);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform();
    y[i] = std::sin(10.0 * x[i]);
  }
  const auto data = bin_dataset({x}, 128);
  std::vector<std::size_t> rows(x.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  RegressionTree tree;
  TreeConfig cfg;
  cfg.max_depth = 3;
  tree.fit(data, y, rows, cfg);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(RegressionTree, PureLeafWhenNoGain) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {5.0, 5.0, 5.0, 5.0};
  const auto data = bin_dataset({x}, 4);
  std::vector<std::size_t> rows = {0, 1, 2, 3};
  RegressionTree tree;
  TreeConfig cfg;
  cfg.min_samples_leaf = 1;
  cfg.l2_reg = 0.0;
  tree.fit(data, y, rows, cfg);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

// ---------------------------------------------------------------- boosting --

tabular::Table regression_table(std::size_t n, std::uint64_t seed) {
  tabular::Schema schema({{"x1", tabular::ColumnKind::kNumerical},
                          {"group", tabular::ColumnKind::kCategorical},
                          {"x2", tabular::ColumnKind::kNumerical},
                          {"target", tabular::ColumnKind::kNumerical}});
  tabular::Table t(schema);
  util::Rng rng(seed);
  static constexpr const char* kGroups[] = {"g0", "g1", "g2"};
  static constexpr double kGroupEffect[] = {0.0, 5.0, -3.0};
  for (std::size_t i = 0; i < n; ++i) {
    const double x1 = rng.uniform(-2.0, 2.0);
    const double x2 = rng.uniform(0.0, 1.0);
    const std::size_t g = rng.uniform_index(3);
    const double y = 3.0 * x1 + kGroupEffect[g] + x2 * x2 +
                     rng.normal(0.0, 0.05);
    auto row = t.make_row();
    row.set(0, x1);
    row.set(1, std::string(kGroups[g]));
    row.set(2, x2);
    row.set(3, y);
    t.append_row(row);
  }
  return t;
}

TEST(GbdtRegressor, LearnsMixedSignal) {
  const auto train = regression_table(3000, 3);
  const auto test = regression_table(600, 4);
  BoostingConfig cfg;
  cfg.iterations = 60;
  cfg.learning_rate = 0.3;
  cfg.tree.max_depth = 5;
  GbdtRegressor model(cfg);
  model.fit(train, "target");
  // Signal stddev is ~4; a fitted model should be far below that.
  EXPECT_LT(model.rmse(test), 1.0);
  EXPECT_EQ(model.num_trees(), 60u);
}

TEST(GbdtRegressor, BetterThanMeanBaseline) {
  const auto train = regression_table(1500, 5);
  const auto test = regression_table(400, 6);
  BoostingConfig cfg;
  cfg.iterations = 30;
  cfg.learning_rate = 0.3;
  GbdtRegressor model(cfg);
  model.fit(train, "target");

  // Mean-only baseline MSE on test.
  const auto target = test.numerical(3);
  double mean = 0.0;
  for (const double v : target) mean += v;
  mean /= static_cast<double>(target.size());
  double base_mse = 0.0;
  for (const double v : target) base_mse += (v - mean) * (v - mean);
  base_mse /= static_cast<double>(target.size());

  EXPECT_LT(model.mse(test), base_mse * 0.2);
}

TEST(GbdtRegressor, DeterministicForSeed) {
  const auto train = regression_table(800, 7);
  BoostingConfig cfg;
  cfg.iterations = 10;
  GbdtRegressor m1(cfg);
  GbdtRegressor m2(cfg);
  m1.fit(train, "target");
  m2.fit(train, "target");
  const auto p1 = m1.predict(train);
  const auto p2 = m2.predict(train);
  for (std::size_t i = 0; i < p1.size(); i += 53) {
    EXPECT_DOUBLE_EQ(p1[i], p2[i]);
  }
}

TEST(GbdtRegressor, Errors) {
  GbdtRegressor model;
  const auto t = regression_table(10, 8);
  EXPECT_THROW(model.predict(t), std::logic_error);
  EXPECT_THROW(model.fit(t, "group"), std::invalid_argument);
  EXPECT_THROW(model.fit(t, "nope"), std::out_of_range);
}

TEST(GbdtRegressor, PredictOnUnseenCategories) {
  const auto train = regression_table(500, 9);
  BoostingConfig cfg;
  cfg.iterations = 5;
  GbdtRegressor model(cfg);
  model.fit(train, "target");

  // Table with an extra unseen group label.
  tabular::Table test = regression_table(5, 10);
  auto row = test.make_row();
  row.set(0, 0.0);
  row.set(1, std::string("UNSEEN"));
  row.set(2, 0.5);
  row.set(3, 0.0);
  test.append_row(row);
  const auto preds = model.predict(test);
  EXPECT_EQ(preds.size(), 6u);
  EXPECT_TRUE(std::isfinite(preds.back()));
}

}  // namespace
}  // namespace surro::gbdt
