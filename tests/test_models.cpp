// Generative models: schema preservation, determinism, and model-specific
// invariants (SMOTE interpolation, VAE/GAN/DDPM training smoke) on small
// synthetic tables so the whole file runs in seconds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "models/ctabgan.hpp"
#include "models/generator.hpp"
#include "models/smote.hpp"
#include "models/tabddpm.hpp"
#include "models/tvae.hpp"
#include "util/rng.hpp"

namespace surro::models {
namespace {

// Tiny mixed table with clear structure: two clusters that differ in both
// numerical location and dominant category.
tabular::Table cluster_table(std::size_t n, std::uint64_t seed) {
  tabular::Schema schema({{"x", tabular::ColumnKind::kNumerical},
                          {"site", tabular::ColumnKind::kCategorical},
                          {"y", tabular::ColumnKind::kNumerical},
                          {"status", tabular::ColumnKind::kCategorical}});
  tabular::Table t(schema);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool cluster_a = rng.bernoulli(0.65);
    auto row = t.make_row();
    if (cluster_a) {
      row.set(0, rng.normal(0.0, 0.4));
      row.set(1, std::string(rng.bernoulli(0.9) ? "BNL" : "CERN"));
      row.set(2, rng.normal(-2.0, 0.3));
      row.set(3, std::string(rng.bernoulli(0.85) ? "finished" : "failed"));
    } else {
      row.set(0, rng.normal(5.0, 0.4));
      row.set(1, std::string(rng.bernoulli(0.8) ? "RAL" : "CERN"));
      row.set(2, rng.normal(3.0, 0.3));
      row.set(3, std::string(rng.bernoulli(0.6) ? "finished" : "failed"));
    }
    t.append_row(row);
  }
  return t;
}

TrainBudget tiny_budget() {
  TrainBudget b;
  b.epochs = 8;
  b.batch_size = 64;
  b.learning_rate = 1e-3f;
  return b;
}

// ------------------------------------------------------------------ common --

class AllGenerators : public ::testing::TestWithParam<std::string> {};

TEST_P(AllGenerators, SamplePreservesSchemaAndVocab) {
  const auto train = cluster_table(400, 1);
  auto model = make_generator(GetParam(), tiny_budget(), 7);
  model->fit(train);
  const auto synth = model->sample(100, 99);
  EXPECT_EQ(synth.num_rows(), 100u);
  EXPECT_TRUE(synth.schema() == train.schema());
  // All labels must come from the training vocabulary.
  for (const std::size_t col : train.schema().categorical_indices()) {
    for (std::size_t r = 0; r < synth.num_rows(); ++r) {
      EXPECT_TRUE(train.code_of(col, synth.label_at(col, r)).has_value())
          << "unknown label " << synth.label_at(col, r);
    }
  }
}

TEST_P(AllGenerators, SamplingIsDeterministicPerSeed) {
  const auto train = cluster_table(300, 2);
  auto model = make_generator(GetParam(), tiny_budget(), 7);
  model->fit(train);
  const auto a = model->sample(50, 42);
  const auto b = model->sample(50, 42);
  for (std::size_t r = 0; r < 50; ++r) {
    EXPECT_DOUBLE_EQ(a.numerical(0)[r], b.numerical(0)[r]);
    EXPECT_EQ(a.label_at(1, r), b.label_at(1, r));
  }
}

TEST_P(AllGenerators, DifferentSeedsGiveDifferentSamples) {
  const auto train = cluster_table(300, 3);
  auto model = make_generator(GetParam(), tiny_budget(), 7);
  model->fit(train);
  const auto a = model->sample(50, 1);
  const auto b = model->sample(50, 2);
  int identical = 0;
  for (std::size_t r = 0; r < 50; ++r) {
    identical += a.numerical(0)[r] == b.numerical(0)[r];
  }
  EXPECT_LT(identical, 50);
}

TEST_P(AllGenerators, SampleBeforeFitThrows) {
  auto model = make_generator(GetParam(), tiny_budget(), 7);
  EXPECT_THROW(model->sample(10, 1), std::logic_error);
}

TEST_P(AllGenerators, NumericalValuesWithinTrainingRange) {
  // Quantile-based decoding clamps synthetic numericals to the observed
  // training range — an invariant of the shared preprocessing.
  const auto train = cluster_table(400, 4);
  auto model = make_generator(GetParam(), tiny_budget(), 7);
  model->fit(train);
  const auto synth = model->sample(200, 5);
  for (const std::size_t col : train.schema().numerical_indices()) {
    const auto tr = train.numerical(col);
    const double lo = *std::min_element(tr.begin(), tr.end());
    const double hi = *std::max_element(tr.begin(), tr.end());
    for (const double v : synth.numerical(col)) {
      EXPECT_GE(v, lo - 1e-9);
      EXPECT_LE(v, hi + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Keys, AllGenerators,
                         ::testing::Values("tvae", "ctabgan", "smote",
                                           "tabddpm"),
                         [](const auto& info) { return info.param; });

TEST(GeneratorFactory, RegistryNamesMatch) {
  auto& registry = GeneratorRegistry::instance();
  EXPECT_EQ(registry.info("tvae").display_name, "TVAE");
  EXPECT_EQ(registry.info("smote").display_name, "SMOTE");
  auto m = make_generator("tabddpm", tiny_budget(), 1);
  EXPECT_EQ(m->name(), "TabDDPM");
  EXPECT_EQ(m->key(), "tabddpm");
}

// ------------------------------------------------------------------- SMOTE --

TEST(SmoteModel, RecoverClusterProportions) {
  const auto train = cluster_table(600, 5);
  Smote model;
  model.fit(train);
  const auto synth = model.sample(2000, 6);
  // Cluster A has x near 0, cluster B near 5; interpolation between k=5
  // neighbours stays within clusters, so the mix is preserved.
  int cluster_a = 0;
  for (const double v : synth.numerical(0)) cluster_a += v < 2.5;
  EXPECT_NEAR(cluster_a / 2000.0, 0.65, 0.06);
}

TEST(SmoteModel, FitRequiresTwoRows) {
  Smote model;
  const auto t = cluster_table(1, 7);
  EXPECT_THROW(model.fit(t), std::invalid_argument);
}

TEST(SmoteModel, InvalidKThrows) {
  SmoteConfig cfg;
  cfg.k_neighbors = 0;
  EXPECT_THROW(Smote{cfg}, std::invalid_argument);
}

TEST(SmoteModel, SamplesStayNearTrainingManifold) {
  // With two tight, well-separated clusters, no interpolated sample can
  // appear between them (neighbours never straddle the gap).
  const auto train = cluster_table(600, 8);
  Smote model;
  model.fit(train);
  const auto synth = model.sample(1500, 9);
  for (const double v : synth.numerical(0)) {
    EXPECT_TRUE(v < 2.0 || v > 3.0) << "mid-gap sample at " << v;
  }
}

// -------------------------------------------------------------------- TVAE --

TEST(TvaeModel, LossDecreasesOverTraining) {
  const auto train = cluster_table(500, 10);
  TvaeConfig cfg;
  cfg.budget = tiny_budget();
  cfg.budget.epochs = 2;
  Tvae short_run(cfg);
  short_run.fit(train);
  const float early = short_run.last_epoch_loss();

  cfg.budget.epochs = 25;
  Tvae long_run(cfg);
  long_run.fit(train);
  EXPECT_LT(long_run.last_epoch_loss(), early);
}

TEST(TvaeModel, DoubleFitThrows) {
  const auto train = cluster_table(100, 11);
  TvaeConfig cfg;
  cfg.budget = tiny_budget();
  cfg.budget.epochs = 1;
  Tvae model(cfg);
  model.fit(train);
  EXPECT_THROW(model.fit(train), std::logic_error);
}

// ---------------------------------------------------------------- CTABGAN+ --

TEST(CtabganModel, RequiresCategoricalColumns) {
  tabular::Schema schema({{"x", tabular::ColumnKind::kNumerical}});
  tabular::Table t(schema);
  for (int i = 0; i < 50; ++i) {
    auto row = t.make_row();
    row.set(0, static_cast<double>(i));
    t.append_row(row);
  }
  CtabganConfig cfg;
  cfg.budget = tiny_budget();
  CtabganPlus model(cfg);
  EXPECT_THROW(model.fit(t), std::invalid_argument);
}

TEST(CtabganModel, TrainingProducesFiniteLosses) {
  const auto train = cluster_table(400, 12);
  CtabganConfig cfg;
  cfg.budget = tiny_budget();
  CtabganPlus model(cfg);
  model.fit(train);
  EXPECT_TRUE(std::isfinite(model.last_disc_loss()));
  EXPECT_TRUE(std::isfinite(model.last_gen_loss()));
}

// ----------------------------------------------------------------- TabDDPM --

TEST(TabDdpmModel, AlphaBarScheduleIsMonotoneDecreasing) {
  const auto train = cluster_table(200, 13);
  TabDdpmConfig cfg;
  cfg.budget = tiny_budget();
  cfg.budget.epochs = 1;
  cfg.timesteps = 20;
  TabDdpm model(cfg);
  model.fit(train);
  const auto& ab = model.alpha_bar();
  ASSERT_EQ(ab.size(), 21u);
  EXPECT_NEAR(ab[0], 1.0, 1e-9);
  for (std::size_t t = 1; t < ab.size(); ++t) {
    EXPECT_LT(ab[t], ab[t - 1]);
    EXPECT_GT(ab[t], 0.0);
  }
}

TEST(TabDdpmModel, TooFewTimestepsThrows) {
  TabDdpmConfig cfg;
  cfg.timesteps = 1;
  EXPECT_THROW(TabDdpm{cfg}, std::invalid_argument);
}

TEST(TabDdpmModel, LearnsBimodalStructure) {
  // After a modest training run the model should place most mass in the two
  // true clusters rather than the empty gap.
  const auto train = cluster_table(600, 14);
  TabDdpmConfig cfg;
  cfg.budget.epochs = 30;
  cfg.budget.batch_size = 128;
  cfg.budget.learning_rate = 1.5e-3f;
  cfg.timesteps = 30;
  TabDdpm model(cfg);
  model.fit(train);
  const auto synth = model.sample(600, 15);
  int in_gap = 0;
  for (const double v : synth.numerical(0)) {
    in_gap += v > 1.8 && v < 3.2;
  }
  EXPECT_LT(in_gap, 90) << "too much probability mass between clusters";
}

}  // namespace
}  // namespace surro::models
