// Temporal-analysis module: binning, autocorrelation, DFT/periodogram,
// dominant-period recovery, and weekly/diurnal profiles.

#include <gtest/gtest.h>

#include <cmath>

#include "temporal/series.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace surro::temporal {
namespace {

TEST(BinCounts, CountsEventsPerBin) {
  const std::vector<double> times = {0.1, 0.2, 1.5, 2.9};
  const auto counts = bin_counts(times, 3.0, 1.0);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_DOUBLE_EQ(counts[0], 2.0);
  EXPECT_DOUBLE_EQ(counts[1], 1.0);
  EXPECT_DOUBLE_EQ(counts[2], 1.0);
}

TEST(BinCounts, IgnoresOutOfRange) {
  const std::vector<double> times = {-1.0, 5.0, 0.5};
  const auto counts = bin_counts(times, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(counts[0] + counts[1], 1.0);
}

TEST(BinCounts, InvalidArgsThrow) {
  const std::vector<double> times = {0.5};
  EXPECT_THROW(bin_counts(times, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(bin_counts(times, 1.0, 0.0), std::invalid_argument);
}

TEST(Autocorrelation, LagZeroIsOne) {
  const std::vector<double> series = {1.0, 3.0, 2.0, 5.0, 4.0};
  const auto acf = autocorrelation(series, 3);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
}

TEST(Autocorrelation, PeriodicSignalPeaksAtPeriod) {
  std::vector<double> series(128);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = std::sin(2.0 * util::kPi * static_cast<double>(i) / 8.0);
  }
  const auto acf = autocorrelation(series, 16);
  EXPECT_GT(acf[8], 0.8);  // one full period
  EXPECT_LT(acf[4], -0.8);  // half period anti-correlates
}

TEST(Autocorrelation, ConstantSeriesIsZeroBeyondLagZero) {
  const std::vector<double> series(32, 7.0);
  const auto acf = autocorrelation(series, 4);
  for (std::size_t lag = 1; lag < acf.size(); ++lag) {
    EXPECT_DOUBLE_EQ(acf[lag], 0.0);
  }
}

TEST(Dft, MatchesAnalyticSingleTone) {
  // x[t] = cos(2π·3t/32): spectrum concentrates at bin 3 (and n-3).
  std::vector<double> series(32);
  for (std::size_t t = 0; t < 32; ++t) {
    series[t] = std::cos(2.0 * util::kPi * 3.0 * static_cast<double>(t) / 32.0);
  }
  const auto spectrum = dft(series);
  EXPECT_NEAR(std::abs(spectrum[3]), 16.0, 1e-9);
  EXPECT_NEAR(std::abs(spectrum[29]), 16.0, 1e-9);
  EXPECT_NEAR(std::abs(spectrum[5]), 0.0, 1e-9);
}

TEST(Dft, NonPowerOfTwoFallbackMatchesFft) {
  // Same signal evaluated with n=30 (naive) and checked against a direct
  // analytic inner product.
  util::Rng rng(1);
  std::vector<double> series(30);
  for (auto& v : series) v = rng.normal();
  const auto spectrum = dft(series);
  // Parseval: sum |X|^2 = n * sum x^2.
  double lhs = 0.0;
  for (const auto& c : spectrum) lhs += std::norm(c);
  double rhs = 0.0;
  for (const double v : series) rhs += v * v;
  EXPECT_NEAR(lhs, 30.0 * rhs, 1e-6 * std::abs(rhs) * 30.0);
}

TEST(Dft, ParsevalHoldsForFftPath) {
  util::Rng rng(2);
  std::vector<double> series(64);
  for (auto& v : series) v = rng.normal();
  const auto spectrum = dft(series);
  double lhs = 0.0;
  for (const auto& c : spectrum) lhs += std::norm(c);
  double rhs = 0.0;
  for (const double v : series) rhs += v * v;
  EXPECT_NEAR(lhs, 64.0 * rhs, 1e-6 * std::abs(rhs) * 64.0);
}

TEST(Periodogram, FlatForWhiteNoiseOnAverage) {
  util::Rng rng(3);
  std::vector<double> series(256);
  for (auto& v : series) v = rng.normal();
  const auto power = periodogram(series);
  // No bin should dominate overwhelmingly.
  double total = 0.0;
  double peak = 0.0;
  for (const double p : power) {
    total += p;
    peak = std::max(peak, p);
  }
  EXPECT_LT(peak, 0.2 * total);
}

TEST(DominantPeriod, RecoversWeeklyCycle) {
  // 6-hour bins over 56 days with a 7-day sinusoidal rate.
  const double bin = 0.25;
  std::vector<double> series;
  for (double t = 0.0; t < 56.0; t += bin) {
    series.push_back(100.0 +
                     30.0 * std::sin(2.0 * util::kPi * t / 7.0));
  }
  const double period = dominant_period_days(series, bin);
  EXPECT_NEAR(period, 7.0, 0.5);
}

TEST(DominantPeriod, ZeroForAperiodicSeries) {
  util::Rng rng(4);
  std::vector<double> series(224);
  for (auto& v : series) v = rng.normal(100.0, 1.0);
  const double period = dominant_period_days(series, 0.25);
  // White noise has no stable in-band peak carrying >1% of mass... the
  // threshold makes this usually zero; allow either zero or an in-band
  // value (randomness), but never out of band.
  if (period != 0.0) {
    EXPECT_GE(period, 2.0);
    EXPECT_LE(period, 14.0);
  }
}

TEST(WeekProfile, DetectsQuietWeekends) {
  // Synthetic events: weekdays get 3x the weekend rate.
  util::Rng rng(5);
  std::vector<double> times;
  for (double day = 0.0; day < 70.0; day += 1.0) {
    const bool weekend = std::fmod(day, 7.0) >= 5.0;
    const std::size_t n = weekend ? 40 : 120;
    for (std::size_t i = 0; i < n; ++i) {
      times.push_back(day + rng.uniform());
    }
  }
  const auto profile = day_of_week_profile(times, 70.0);
  ASSERT_EQ(profile.size(), 7u);
  EXPECT_LT(profile[5], 0.6);  // Saturday below average
  EXPECT_LT(profile[6], 0.6);  // Sunday below average
  EXPECT_GT(profile[1], 1.0);  // weekday above average
}

TEST(HourProfile, DetectsDiurnalPeak) {
  util::Rng rng(6);
  std::vector<double> times;
  for (double day = 0.0; day < 30.0; day += 1.0) {
    for (int i = 0; i < 200; ++i) {
      // Rejection-sample a diurnal peak at midday.
      for (;;) {
        const double frac = rng.uniform();
        const double rate =
            1.0 - 0.8 * std::cos(2.0 * util::kPi * frac);
        if (rng.uniform() * 1.8 < rate) {
          times.push_back(day + frac);
          break;
        }
      }
    }
  }
  const auto profile = hour_of_day_profile(times, 30.0);
  ASSERT_EQ(profile.size(), 24u);
  EXPECT_GT(profile[12], profile[0]);
}

TEST(ProfileDistance, ZeroForIdentical) {
  const std::vector<double> p = {1.0, 0.5, 1.5};
  EXPECT_DOUBLE_EQ(profile_distance(p, p), 0.0);
}

TEST(ProfileDistance, MismatchedLengthThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(profile_distance(a, b), std::invalid_argument);
}

TEST(CompareTemporal, IdenticalStreamsScorePerfect) {
  util::Rng rng(7);
  std::vector<double> times;
  for (int i = 0; i < 5000; ++i) times.push_back(rng.uniform(0.0, 28.0));
  const auto f = compare_temporal(times, times, 28.0);
  EXPECT_DOUBLE_EQ(f.weekly_profile_distance, 0.0);
  EXPECT_DOUBLE_EQ(f.diurnal_profile_distance, 0.0);
  EXPECT_DOUBLE_EQ(f.acf_rmse, 0.0);
}

TEST(CompareTemporal, DetectsLostWeeklyStructure) {
  // Real: strong weekday/weekend modulation. Synthetic: uniform.
  util::Rng rng(8);
  std::vector<double> real_times;
  std::vector<double> synth_times;
  for (double day = 0.0; day < 56.0; day += 1.0) {
    const bool weekend = std::fmod(day, 7.0) >= 5.0;
    const std::size_t n = weekend ? 30 : 130;
    for (std::size_t i = 0; i < n; ++i) {
      real_times.push_back(day + rng.uniform());
    }
    for (std::size_t i = 0; i < 100; ++i) {
      synth_times.push_back(day + rng.uniform());
    }
  }
  const auto f = compare_temporal(real_times, synth_times, 56.0);
  EXPECT_GT(f.weekly_profile_distance, 0.2);
  EXPECT_NEAR(f.real_dominant_period, 7.0, 1.0);
}

}  // namespace
}  // namespace surro::temporal
