// Multi-process shard transport: the cross-process conformance sweep.
//
//   * Error-map round trip — the one shared ServiceError <-> wire-code <->
//     HTTP-status table (src/net/error_map) maps every code there and back.
//   * Transport-error taxonomy — connection refused, a server closing
//     mid-response, a malformed 2xx body, and a timeout each surface as a
//     typed net::TransportError of the right Kind; none hang or crash.
//   * Graceful shutdown order — stop accepts first, then drain: every job
//     admitted before the stop still completes (the serve --worker SIGTERM
//     path, exercised here through the same loopback endpoint).
//   * RemoteShard conformance — a worker behind the HTTP wire protocol,
//     driven through the SampleBackend face, returns bytes bitwise
//     identical to a direct in-process sample of the same identity,
//     including paginated reassembly and local-matching error semantics.
//   * Mixed pools — ShardPool over local AND remote shards lands on the
//     same bytes as a direct unsharded ModelHost for all four models, and
//     a dead remote replica re-routes (counted in rerouted_transport) with
//     bytes unchanged.
//   * True multi-process (when SURRO_CLI_PATH is defined) — a WorkerFleet
//     of real `surro_cli serve --worker` processes behind the same pool,
//     including a SIGKILLed worker mid-sweep and a graceful fleet
//     shutdown asserting exit 0.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/error_map.hpp"
#include "net/rest.hpp"
#include "serve/model_host.hpp"
#include "serve/sample_service.hpp"
#include "serve/shard_pool.hpp"
#include "serve/worker_fleet.hpp"
#include "util/rng.hpp"

namespace surro::serve {
namespace {

// Tiny mixed table with clear structure (mirrors test_shard.cpp).
tabular::Table cluster_table(std::size_t n, std::uint64_t seed) {
  tabular::Schema schema({{"x", tabular::ColumnKind::kNumerical},
                          {"site", tabular::ColumnKind::kCategorical},
                          {"y", tabular::ColumnKind::kNumerical},
                          {"status", tabular::ColumnKind::kCategorical}});
  tabular::Table t(schema);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool cluster_a = rng.bernoulli(0.65);
    auto row = t.make_row();
    if (cluster_a) {
      row.set(0, rng.normal(0.0, 0.4));
      row.set(1, std::string(rng.bernoulli(0.9) ? "BNL" : "CERN"));
      row.set(2, rng.normal(-2.0, 0.3));
      row.set(3, std::string(rng.bernoulli(0.85) ? "finished" : "failed"));
    } else {
      row.set(0, rng.normal(5.0, 0.4));
      row.set(1, std::string(rng.bernoulli(0.8) ? "RAL" : "CERN"));
      row.set(2, rng.normal(3.0, 0.3));
      row.set(3, std::string(rng.bernoulli(0.6) ? "finished" : "failed"));
    }
    t.append_row(row);
  }
  return t;
}

void expect_tables_identical(const tabular::Table& a,
                             const tabular::Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_TRUE(a.schema() == b.schema());
  for (const std::size_t col : a.schema().numerical_indices()) {
    const auto va = a.numerical(col);
    const auto vb = b.numerical(col);
    for (std::size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(va[r], vb[r]) << "numerical col " << col << " row " << r;
    }
  }
  for (const std::size_t col : a.schema().categorical_indices()) {
    for (std::size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(a.label_at(col, r), b.label_at(col, r))
          << "categorical col " << col << " row " << r;
    }
  }
}

/// All four paper models, fitted once and archived into one
/// process-lifetime scratch directory (the test_shard.cpp pattern): one
/// set of bytes behind every placement this file sweeps.
struct SharedArchives {
  std::filesystem::path dir;
  std::vector<std::string> keys{"smote", "tvae", "ctabgan", "tabddpm"};

  SharedArchives() {
    dir = std::filesystem::temp_directory_path() /
          ("surro_remote_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    models::TrainBudget budget;
    budget.epochs = 4;
    budget.batch_size = 64;
    budget.learning_rate = 1e-3f;
    const auto train = cluster_table(300, 21);
    for (const auto& key : keys) {
      auto model = models::make_generator(key, budget, 7);
      model->fit(train);
      models::save_model_file(*model, path(key));
    }
  }
  ~SharedArchives() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  [[nodiscard]] std::string path(const std::string& key) const {
    return (dir / (key + ".bin")).string();
  }
};

const SharedArchives& archives() {
  static SharedArchives shared;
  return shared;
}

constexpr std::size_t kRows = 120;
constexpr std::size_t kChunkRows = 48;  // 3 chunks per job

struct JobId {
  std::string model;
  std::uint64_t seed = 0;
};

std::vector<JobId> job_grid() {
  std::vector<JobId> grid;
  for (const auto& key : archives().keys) {
    grid.push_back({key, 3000 + key.size()});
    grid.push_back({key, 4000 + key.size() * 3});
  }
  return grid;
}

/// Reference bytes: a direct, unsharded sample of the same identity.
tabular::Table direct_sample(const JobId& id) {
  ModelHost host;
  host.register_archive(id.model, archives().path(id.model));
  models::SampleRequest request;
  request.rows = kRows;
  request.seed = id.seed;
  request.chunk_rows = kChunkRows;
  tabular::Table out;
  host.acquire(id.model)->sample_into(out, request);
  return out;
}

SampleJob make_job(const JobId& id) {
  SampleJob job;
  job.model_key = id.model;
  job.rows = kRows;
  job.seed = id.seed;
  job.chunk_rows = kChunkRows;
  return job;
}

/// An in-process "worker": its own ModelHost + SampleService behind a real
/// HttpEndpoint on an ephemeral loopback port — the same wire surface a
/// `surro_cli serve --worker` process exposes, minus the fork/exec, so the
/// protocol conformance tests stay fast and sanitizer-friendly.
struct LoopbackWorker {
  explicit LoopbackWorker(const std::vector<std::string>& keys,
                          net::RestConfig rest_cfg = {}) {
    HostConfig host_cfg;
    host_cfg.capacity = std::max<std::size_t>(keys.size(), 1);
    host.emplace(host_cfg);
    for (const auto& key : keys) {
      host->register_archive(key, archives().path(key));
    }
    service.emplace(*host);
    endpoint.emplace(*service, rest_cfg);
    endpoint->server.start();
  }
  ~LoopbackWorker() {
    if (endpoint) endpoint->server.stop();
  }
  [[nodiscard]] std::uint16_t port() const { return endpoint->server.port(); }

  std::optional<ModelHost> host;
  std::optional<SampleService> service;
  std::optional<net::HttpEndpoint> endpoint;
};

/// RemoteShardConfig tuned for tests: fail fast instead of retrying for
/// seconds, so dead-worker paths resolve quickly.
RemoteShardConfig quick_remote(std::uint16_t port) {
  RemoteShardConfig cfg;
  cfg.port = port;
  cfg.http = net::ClientConfig{5.0, 1, 0.0, 0.0};
  cfg.poll_wait_ms = 100.0;
  return cfg;
}

/// A single-shot fake server: binds an ephemeral port, accepts ONE
/// connection, optionally reads the request, writes `response` verbatim,
/// optionally lingers, then closes. Just enough socket to script the
/// transport failure modes a real worker can exhibit.
class OneShotServer {
 public:
  explicit OneShotServer(std::string response, double linger_seconds = 0.0)
      : response_(std::move(response)), linger_seconds_(linger_seconds) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd_, 4) != 0) {
      throw std::runtime_error("OneShotServer: bind/listen failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ::ntohs(addr.sin_port);
    thread_ = std::thread([this] { serve(); });
  }

  ~OneShotServer() {
    if (fd_ >= 0) ::close(fd_);
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  void serve() {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) return;
    char sink[4096];
    (void)::recv(conn, sink, sizeof(sink), 0);  // drain the request line
    if (!response_.empty()) {
      (void)::send(conn, response_.data(), response_.size(), MSG_NOSIGNAL);
    }
    if (linger_seconds_ > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(linger_seconds_));
    }
    ::close(conn);
  }

  std::string response_;
  double linger_seconds_ = 0.0;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

/// An ephemeral port with nothing listening on it: bind, read, close.
/// (The port COULD be reused before the test connects; in practice the
/// race window is microseconds on a loopback-only test host.)
std::uint16_t closed_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t port = ::ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

// ------------------------------------------------------- error-map table --

TEST(ErrorMap, RoundTripsEveryServiceErrorCode) {
  const auto& table = net::service_error_table();
  ASSERT_EQ(table.size(), 4u);  // one row per ServiceError::Code
  std::set<std::string> wires;
  for (const auto& row : table) {
    // code -> wire -> code is the identity.
    EXPECT_STREQ(net::service_error_code(row.code), row.wire);
    ServiceError::Code parsed;
    ASSERT_TRUE(net::parse_service_error_code(row.wire, parsed)) << row.wire;
    EXPECT_EQ(parsed, row.code) << row.wire;
    // Statuses are real client/server error codes, one per row.
    EXPECT_EQ(net::service_error_status(row.code), row.http_status);
    EXPECT_GE(row.http_status, 400);
    EXPECT_LT(row.http_status, 600);
    wires.insert(row.wire);
  }
  EXPECT_EQ(wires.size(), table.size());  // wire codes are distinct

  ServiceError::Code ignored;
  EXPECT_FALSE(net::parse_service_error_code("unknown_model", ignored));
  EXPECT_FALSE(net::parse_service_error_code("", ignored));
  EXPECT_FALSE(net::parse_service_error_code("OVERLOADED", ignored));
}

// -------------------------------------------------- transport-error taxonomy

TEST(TransportErrors, ConnectionRefusedIsTypedConnect) {
  net::ApiClient api("127.0.0.1", closed_port(), "",
                     net::ClientConfig{1.0, 2, 5.0, 10.0});
  try {
    (void)api.models();
    FAIL() << "expected TransportError";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::TransportError::Kind::kConnect);
    EXPECT_NE(std::string(e.what()).find("attempt"), std::string::npos);
  }
  EXPECT_FALSE(api.healthy(0.5));  // healthz probes never throw
}

TEST(TransportErrors, ServerClosingMidResponseIsTypedClosed) {
  // Headers promise 64 body bytes; the server sends 5 and hangs up.
  OneShotServer server(
      "HTTP/1.1 200 OK\r\ncontent-length: 64\r\n\r\nhello");
  net::ApiClient api("127.0.0.1", server.port(), "",
                     net::ClientConfig{2.0, 1, 0.0, 0.0});
  try {
    (void)api.models();
    FAIL() << "expected TransportError";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::TransportError::Kind::kClosed);
  }
}

TEST(TransportErrors, MalformedBodyIsTypedMalformed) {
  // A confident 200 whose body is not the JSON the API promised.
  const std::string body = "this is not json";
  OneShotServer server("HTTP/1.1 200 OK\r\ncontent-length: " +
                       std::to_string(body.size()) + "\r\n\r\n" + body);
  net::ApiClient api("127.0.0.1", server.port(), "",
                     net::ClientConfig{2.0, 1, 0.0, 0.0});
  try {
    (void)api.models();
    FAIL() << "expected TransportError";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::TransportError::Kind::kMalformed);
  }
}

TEST(TransportErrors, SilentServerIsTypedTimeoutNotAHang) {
  // Accepts, never answers. The per-request timeout must fire well before
  // the server's linger ends — a hang here is the bug being tested for.
  OneShotServer server("", /*linger_seconds=*/2.0);
  net::ApiClient api("127.0.0.1", server.port(), "",
                     net::ClientConfig{0.3, 1, 0.0, 0.0});
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)api.models();
    FAIL() << "expected TransportError";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::TransportError::Kind::kTimeout);
  }
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited, 1.5);  // typed error well before the 2-second linger
}

TEST(TransportErrors, TimedOutRequestNeverLeaksItsLateReplyIntoTheNext) {
  // A reply that lands after the client gave up must not be readable as
  // the answer to the NEXT request on the same keep-alive connection: the
  // timed-out request tears the connection down, so the follow-up call
  // reconnects and reads reply B — never the stale reply A (which, on a
  // RemoteShard control connection, would be another job's job_id).
  const std::string body_a = "{\"which\":\"A\"}";
  const std::string body_b = "{\"which\":\"B\"}";
  const auto wire = [](const std::string& body) {
    return "HTTP/1.1 200 OK\r\ncontent-length: " + std::to_string(body.size()) +
           "\r\n\r\n" + body;
  };

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);  // reuse for dummy connect

  std::thread server([&] {
    char sink[4096];
    const int conn1 = ::accept(listen_fd, nullptr, nullptr);
    if (conn1 < 0) return;
    (void)::recv(conn1, sink, sizeof(sink), 0);
    // Answer request 1 well after the client's 250ms budget expired.
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    const std::string late_a = wire(body_a);
    (void)::send(conn1, late_a.data(), late_a.size(), MSG_NOSIGNAL);
    const int conn2 = ::accept(listen_fd, nullptr, nullptr);
    if (conn2 >= 0) {
      (void)::recv(conn2, sink, sizeof(sink), 0);
      const std::string b = wire(body_b);
      (void)::send(conn2, b.data(), b.size(), MSG_NOSIGNAL);
      ::close(conn2);
    }
    ::close(conn1);
  });

  net::HttpClient http("127.0.0.1", ::ntohs(addr.sin_port),
                       net::ClientConfig{0.25, 1, 0.0, 0.0});
  try {
    (void)http.request("GET", "/v1/stats");
    ADD_FAILURE() << "expected TransportError";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::TransportError::Kind::kTimeout);
  }
  net::HttpResponse second;
  try {
    second = http.request("GET", "/v1/stats", "", {}, /*timeout_seconds=*/5.0);
  } catch (const net::TransportError& e) {
    ADD_FAILURE() << "second request failed: " << e.what();
  }
  EXPECT_EQ(second.body, body_b);  // the stale reply A never surfaces

  // If a regression kept the client on conn1, nothing ever dials conn2;
  // feed the server's pending accept so the thread can exit either way.
  const int dummy = ::socket(AF_INET, SOCK_STREAM, 0);
  (void)::connect(dummy, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  ::close(dummy);
  server.join();
  ::close(listen_fd);
}

TEST(TransportErrors, KindNamesAreStable) {
  using Kind = net::TransportError::Kind;
  EXPECT_STREQ(net::transport_error_kind_name(Kind::kConnect), "connect");
  EXPECT_STREQ(net::transport_error_kind_name(Kind::kTimeout), "timeout");
  EXPECT_STREQ(net::transport_error_kind_name(Kind::kClosed), "closed");
  EXPECT_STREQ(net::transport_error_kind_name(Kind::kMalformed), "malformed");
}

// ----------------------------------------------------- graceful shutdown --

TEST(GracefulShutdown, StopAcceptsThenDrainCompletesEveryAdmittedJob) {
  // The serve --worker SIGTERM contract, minus the signal: stop the accept
  // loop FIRST, then drain — every job admitted before the stop completes,
  // and drain() returns instead of deadlocking.
  LoopbackWorker worker({"smote", "tvae"});
  net::ApiClient api("127.0.0.1", worker.port());
  std::vector<std::uint64_t> ids;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    ids.push_back(api.submit(s % 2 == 0 ? "smote" : "tvae", 64, s, 32));
  }
  worker.endpoint->server.stop();
  worker.service->drain();
  const auto stats = worker.service->stats();
  EXPECT_EQ(stats.completed, ids.size());
  EXPECT_EQ(stats.queue_depth, 0u);
  // New connections are refused once accepts stopped.
  net::ApiClient late("127.0.0.1", worker.port(), "",
                      net::ClientConfig{0.5, 1, 0.0, 0.0});
  EXPECT_FALSE(late.healthy(0.5));
}

// ------------------------------------------------ RemoteShard conformance --

TEST(RemoteShardConformance, BytesMatchDirectSampleIncludingPagination) {
  net::RestConfig rest_cfg;
  rest_cfg.page_rows = 50;  // kRows = 120 -> 3 pages per result
  LoopbackWorker worker(archives().keys, rest_cfg);
  RemoteShard shard(quick_remote(worker.port()));

  for (const auto& id : job_grid()) {
    SCOPED_TRACE(id.model + " seed " + std::to_string(id.seed));
    const auto table = shard.sample(make_job(id));
    expect_tables_identical(table, direct_sample(id));
  }
  shard.drain();
  EXPECT_EQ(shard.queue_depth(), 0u);
}

TEST(RemoteShardConformance, BackendSurfaceReflectsTheWorker) {
  LoopbackWorker worker(archives().keys);
  RemoteShard shard(quick_remote(worker.port()));

  EXPECT_TRUE(shard.healthy());
  const auto keys = shard.model_keys();
  EXPECT_EQ(std::set<std::string>(keys.begin(), keys.end()),
            std::set<std::string>(archives().keys.begin(),
                                  archives().keys.end()));
  EXPECT_TRUE(shard.has_model("smote"));
  EXPECT_FALSE(shard.has_model("no-such-model"));
  EXPECT_FALSE(shard.model_resident("smote"));  // nothing sampled yet

  (void)shard.sample(make_job({"smote", 77}));
  EXPECT_TRUE(shard.model_resident("smote"));

  const auto stats = shard.stats();
  EXPECT_GE(stats.submitted, 1u);
  EXPECT_GE(stats.completed, 1u);
  EXPECT_GE(stats.host.loads, 1u);
  EXPECT_FALSE(shard.cancel(0));        // the no-job sentinel
  EXPECT_FALSE(shard.cancel(999999));   // unknown remote id
}

TEST(RemoteShardConformance, UnknownModelFailsTheFutureNotTheSubmit) {
  // Mirrors the local SampleService: the submit is accepted and the error
  // arrives on the future, so pool routing treats both shards alike.
  LoopbackWorker worker({"smote"});
  RemoteShard shard(quick_remote(worker.port()));
  auto submitted = shard.submit_job(make_job({"no-such-model", 1}));
  EXPECT_THROW((void)submitted.future.get(), std::invalid_argument);
}

TEST(RemoteShardConformance, DeadWorkerSubmitIsTypedTransportError) {
  RemoteShard shard(quick_remote(closed_port()));
  EXPECT_THROW((void)shard.submit_job(make_job({"smote", 1})),
               net::TransportError);
  EXPECT_FALSE(shard.healthy(0.5));
  // Stats degrade to zeros instead of throwing (pool aggregation must
  // survive a dead worker).
  const auto stats = shard.stats();
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// ------------------------------------------------------------ mixed pools --

std::unique_ptr<ShardPool> make_mixed_pool(
    std::size_t local_shards, const std::vector<std::uint16_t>& worker_ports,
    std::size_t replicas) {
  ShardPoolConfig cfg;
  cfg.shards = local_shards;
  cfg.replication = replicas;
  cfg.host.capacity = archives().keys.size();
  for (const std::uint16_t port : worker_ports) {
    cfg.remotes.push_back(quick_remote(port));
  }
  auto pool = std::make_unique<ShardPool>(cfg);
  for (const auto& key : archives().keys) {
    pool->register_archive(key, archives().path(key));
  }
  return pool;
}

TEST(MixedPool, LocalAndRemoteShardsAreBitwiseIdenticalToDirectHost) {
  LoopbackWorker worker_a(archives().keys);
  LoopbackWorker worker_b(archives().keys);
  auto pool =
      make_mixed_pool(1, {worker_a.port(), worker_b.port()}, /*replicas=*/2);
  ASSERT_EQ(pool->shards(), 3u);
  ASSERT_EQ(pool->local_shards(), 1u);
  EXPECT_TRUE(pool->shard_is_local(0));
  EXPECT_FALSE(pool->shard_is_local(1));
  EXPECT_FALSE(pool->shard_is_local(2));
  EXPECT_THROW((void)pool->service(1), std::logic_error);
  EXPECT_THROW((void)pool->host(2), std::logic_error);

  for (const auto& id : job_grid()) {
    SCOPED_TRACE(id.model + " seed " + std::to_string(id.seed));
    expect_tables_identical(pool->sample(make_job(id)), direct_sample(id));
  }
  const ShardStats ss = pool->shard_stats();
  EXPECT_EQ(ss.routed, job_grid().size());
  EXPECT_EQ(ss.rerouted_transport, 0u);  // everyone was alive
}

TEST(MixedPool, RegisterFittedWithARemoteOwnerThrows) {
  LoopbackWorker worker(archives().keys);
  // Replication spans every shard, so some owner of any key is remote.
  ShardPoolConfig cfg;
  cfg.shards = 1;
  cfg.replication = 2;
  cfg.host.capacity = 2;
  cfg.remotes.push_back(quick_remote(worker.port()));
  ShardPool pool(cfg);

  models::TrainBudget budget;
  budget.epochs = 2;
  auto model = models::make_generator("smote", budget, 7);
  model->fit(cluster_table(120, 5));
  EXPECT_THROW(
      pool.register_fitted("smote",
                           std::shared_ptr<models::TabularGenerator>(
                               std::move(model))),
      std::invalid_argument);
}

TEST(MixedPool, RegisterArchiveVerifiesARemoteOwnerServesTheKey) {
  // The worker only serves smote; registering tvae on a pool whose every
  // key is replicated onto that worker must fail loudly at registration,
  // not at first submit.
  LoopbackWorker worker({"smote"});
  ShardPoolConfig cfg;
  cfg.shards = 1;
  cfg.replication = 2;
  cfg.host.capacity = 2;
  cfg.remotes.push_back(quick_remote(worker.port()));
  ShardPool pool(cfg);
  EXPECT_NO_THROW(pool.register_archive("smote", archives().path("smote")));
  EXPECT_THROW(pool.register_archive("tvae", archives().path("tvae")),
               std::runtime_error);
}

// ------------------------------------------------------ transport reroute --

TEST(TransportReroute, DeadRemoteReroutesToLocalReplicaWithSameBytes) {
  // Register against a live worker, then stop it: the pool now holds a
  // dead remote replica for every key (replication 2 over 2 shards).
  auto worker = std::make_unique<LoopbackWorker>(archives().keys);
  auto pool = make_mixed_pool(1, {worker->port()}, /*replicas=*/2);
  worker->endpoint->server.stop();

  // Sculpt the lease order: park a job on the paused local shard so its
  // depth (1) exceeds the dead remote's (0) — the router must try the dead
  // shard FIRST, eat the typed transport failure, and re-route.
  pool->service(0).pause();
  SampleJob filler = make_job({"smote", 501});
  auto filler_future = pool->service(0).submit(filler);

  const JobId id{"tvae", 99};
  auto submitted = pool->submit_job(make_job(id));
  const auto [shard, local_id] = pool->decode_job_id(submitted.job_id);
  EXPECT_EQ(shard, 0u);  // landed on the live local replica
  EXPECT_GT(local_id, 0u);
  const ShardStats ss = pool->shard_stats();
  EXPECT_EQ(ss.rerouted_transport, 1u);
  EXPECT_EQ(ss.rerouted, 0u);  // transport failures are counted apart

  pool->service(0).resume();
  EXPECT_EQ(filler_future.get().table.num_rows(), kRows);
  expect_tables_identical(submitted.future.get().table, direct_sample(id));
}

TEST(TransportReroute, EveryReplicaDeadSurfacesTheTransportError) {
  auto worker = std::make_unique<LoopbackWorker>(archives().keys);
  ShardPoolConfig cfg;
  cfg.shards = 0;  // remote-only pool
  cfg.replication = 1;
  cfg.host.capacity = 2;
  cfg.remotes.push_back(quick_remote(worker->port()));
  ShardPool pool(cfg);
  pool.register_archive("smote", archives().path("smote"));
  worker->endpoint->server.stop();
  EXPECT_THROW((void)pool.submit_job(make_job({"smote", 1})),
               net::TransportError);
  EXPECT_EQ(pool.shard_stats().rerouted_transport, 0u);  // nowhere to go
}

// -------------------------------------------------- true multi-process --

#ifdef SURRO_CLI_PATH
TEST(MultiProcess, FleetConformanceKillOneRerouteAndGracefulExit) {
  WorkerFleetConfig fleet_cfg;
  fleet_cfg.cli_path = SURRO_CLI_PATH;
  fleet_cfg.workers = 2;
  fleet_cfg.serve_args = {"--models-dir", archives().dir.string(),
                          "--capacity",
                          std::to_string(archives().keys.size()),
                          "--serve-seconds", "300"};
  WorkerFleet fleet(fleet_cfg);
  fleet.start();
  ASSERT_EQ(fleet.size(), 2u);
  EXPECT_TRUE(fleet.alive(0));
  EXPECT_TRUE(fleet.alive(1));

  // Mixed pool across REAL process boundaries: 1 local + 2 workers,
  // replication 2 — every key has owners in at least two processes.
  auto pool =
      make_mixed_pool(1, {fleet.port(0), fleet.port(1)}, /*replicas=*/2);
  for (const auto& id : job_grid()) {
    SCOPED_TRACE(id.model + " seed " + std::to_string(id.seed));
    expect_tables_identical(pool->sample(make_job(id)), direct_sample(id));
  }

  // Fault injection: SIGKILL one worker, then run the whole grid again.
  // Keys owned by the dead worker re-route (counted in
  // rerouted_transport); nobody's bytes change.
  fleet.kill_one(1);
  EXPECT_FALSE(fleet.alive(1));
  for (const auto& id : job_grid()) {
    SCOPED_TRACE("post-kill " + id.model + " seed " +
                 std::to_string(id.seed));
    expect_tables_identical(pool->sample(make_job(id)), direct_sample(id));
  }
  const ShardStats ss = pool->shard_stats();
  EXPECT_EQ(ss.routed, 2 * job_grid().size());

  // The surviving worker dies by SIGTERM and must exit 0 — the graceful
  // drain path. (The SIGKILLed one reports 137; shutdown() returns the
  // worst, so assert on the survivor directly via a fresh fleet-wide
  // shutdown accounting.)
  pool.reset();  // close client connections before tearing workers down
  const int worst = fleet.shutdown(30.0);
  EXPECT_EQ(worst, 137) << "SIGKILLed worker dominates the worst status";
}

TEST(MultiProcess, FleetShutdownAloneIsCleanExitZero) {
  WorkerFleetConfig fleet_cfg;
  fleet_cfg.cli_path = SURRO_CLI_PATH;
  fleet_cfg.workers = 2;
  fleet_cfg.serve_args = {"--models-dir", archives().dir.string(),
                          "--serve-seconds", "300"};
  WorkerFleet fleet(fleet_cfg);
  fleet.start();
  // A couple of real jobs through a remote-only pool first, so the drain
  // path has actually seen traffic.
  auto pool = make_mixed_pool(0, {fleet.port(0), fleet.port(1)},
                              /*replicas=*/2);
  expect_tables_identical(pool->sample(make_job({"smote", 11})),
                          direct_sample({"smote", 11}));
  pool.reset();
  EXPECT_EQ(fleet.shutdown(30.0), 0);  // every worker exited 0 on SIGTERM
}
#endif  // SURRO_CLI_PATH

}  // namespace
}  // namespace surro::serve
