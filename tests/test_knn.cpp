// Exact-NN correctness: KD-tree vs. brute force on random point sets.

#include <gtest/gtest.h>

#include <cmath>

#include "knn/brute.hpp"
#include "knn/kdtree.hpp"
#include "util/rng.hpp"

namespace surro::knn {
namespace {

linalg::Matrix random_points(std::size_t n, std::size_t d,
                             util::Rng& rng) {
  linalg::Matrix m(n, d);
  for (float& v : m.flat()) v = static_cast<float>(rng.normal());
  return m;
}

TEST(BruteKnn, FindsExactNearest) {
  linalg::Matrix data(3, 1);
  data(0, 0) = 0.0f;
  data(1, 0) = 10.0f;
  data(2, 0) = 3.0f;
  const std::vector<float> q = {2.5f};
  const auto nn = brute_knn(data, q, 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].index, 2u);
  EXPECT_EQ(nn[1].index, 0u);
  EXPECT_NEAR(nn[0].dist_sq, 0.25f, 1e-6f);
}

TEST(BruteKnn, ExcludeSkipsSelf) {
  linalg::Matrix data(3, 1);
  data(0, 0) = 0.0f;
  data(1, 0) = 1.0f;
  data(2, 0) = 5.0f;
  const auto nn = brute_knn(data, data.row(0), 1, /*exclude=*/0);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].index, 1u);
}

TEST(BruteKnn, KClampedToAvailable) {
  util::Rng rng(1);
  const auto data = random_points(5, 2, rng);
  const auto nn = brute_knn(data, data.row(0), 100);
  EXPECT_EQ(nn.size(), 5u);
}

TEST(BruteKnn, ResultsSortedAscending) {
  util::Rng rng(2);
  const auto data = random_points(200, 4, rng);
  const auto q = random_points(1, 4, rng);
  const auto nn = brute_knn(data, q.row(0), 10);
  for (std::size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(nn[i - 1].dist_sq, nn[i].dist_sq);
  }
}

TEST(BruteKnn, ErrorsOnBadInput) {
  linalg::Matrix empty;
  const std::vector<float> q = {1.0f};
  EXPECT_THROW(brute_knn(empty, q, 1), std::invalid_argument);
  util::Rng rng(3);
  const auto data = random_points(4, 3, rng);
  const std::vector<float> wrong = {1.0f};
  EXPECT_THROW(brute_knn(data, wrong, 1), std::invalid_argument);
}

TEST(BruteKnnBatch, SelfModeExcludesOwnRow) {
  util::Rng rng(4);
  const auto data = random_points(50, 3, rng);
  const auto all = brute_knn_batch(data, data, 3, /*self_mode=*/true);
  ASSERT_EQ(all.size(), 50u);
  for (std::size_t q = 0; q < all.size(); ++q) {
    for (const auto& n : all[q]) EXPECT_NE(n.index, q);
  }
}

TEST(NearestDistances, ZeroForIdenticalSets) {
  util::Rng rng(5);
  const auto data = random_points(30, 4, rng);
  const auto d = nearest_distances(data, data);
  for (const float v : d) EXPECT_NEAR(v, 0.0f, 1e-6f);
}

class KdTreeVsBrute
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KdTreeVsBrute, SameNeighborsAsBruteForce) {
  const auto [n, d, k] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n * 100 + d * 10 + k));
  const auto data = random_points(n, d, rng);
  const KdTree tree(data);
  const auto queries = random_points(20, d, rng);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    const auto expected = brute_knn(data, queries.row(q), k);
    const auto actual = tree.query(queries.row(q), k);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      // Indices may differ under exact distance ties; distances must match.
      EXPECT_NEAR(actual[i].dist_sq, expected[i].dist_sq, 1e-5f)
          << "query " << q << " neighbor " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KdTreeVsBrute,
    ::testing::Values(std::make_tuple(10, 2, 3), std::make_tuple(100, 3, 5),
                      std::make_tuple(500, 4, 1),
                      std::make_tuple(1000, 2, 10),
                      std::make_tuple(257, 8, 7),
                      std::make_tuple(64, 1, 64)));

TEST(KdTree, ExcludeMatchesBrute) {
  util::Rng rng(6);
  const auto data = random_points(100, 3, rng);
  const KdTree tree(data);
  for (std::size_t q = 0; q < 10; ++q) {
    const auto expected = brute_knn(data, data.row(q), 4,
                                    static_cast<std::ptrdiff_t>(q));
    const auto actual = tree.query(data.row(q), 4,
                                   static_cast<std::ptrdiff_t>(q));
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_NEAR(actual[i].dist_sq, expected[i].dist_sq, 1e-5f);
    }
    for (const auto& nbr : actual) EXPECT_NE(nbr.index, q);
  }
}

TEST(KdTree, NearestDistanceMatchesQuery) {
  util::Rng rng(7);
  const auto data = random_points(300, 3, rng);
  const KdTree tree(data);
  const auto q = random_points(1, 3, rng);
  const auto nn = tree.query(q.row(0), 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_NEAR(tree.nearest_distance(q.row(0)),
              std::sqrt(nn[0].dist_sq), 1e-5f);
}

TEST(KdTree, SmallLeafSizes) {
  util::Rng rng(8);
  const auto data = random_points(128, 2, rng);
  const KdTree tree(data, /*leaf_size=*/1);
  const auto q = random_points(1, 2, rng);
  const auto expected = brute_knn(data, q.row(0), 5);
  const auto actual = tree.query(q.row(0), 5);
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i].dist_sq, expected[i].dist_sq, 1e-5f);
  }
}

TEST(KdTree, ThrowsOnEmptyOrMismatched) {
  linalg::Matrix empty;
  EXPECT_THROW(KdTree tree(empty), std::invalid_argument);
  util::Rng rng(9);
  const auto data = random_points(10, 3, rng);
  const KdTree tree(data);
  const std::vector<float> wrong = {0.0f};
  EXPECT_THROW(tree.query(wrong, 1), std::invalid_argument);
}

TEST(KdTree, DuplicatePointsHandled) {
  linalg::Matrix data(6, 2, 1.0f);  // all identical
  const KdTree tree(data);
  const auto nn = tree.query(data.row(0), 3);
  ASSERT_EQ(nn.size(), 3u);
  for (const auto& n : nn) EXPECT_NEAR(n.dist_sq, 0.0f, 1e-9f);
}

TEST(KdTree, BatchDistancesMatchSingleQueries) {
  util::Rng rng(11);
  const auto data = random_points(500, 4, rng);
  const auto queries = random_points(300, 4, rng);
  const KdTree tree(data);
  const auto batch = tree.nearest_distances(queries);
  ASSERT_EQ(batch.size(), queries.rows());
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    EXPECT_EQ(batch[q], tree.nearest_distance(queries.row(q)))
        << "query " << q;
  }
}

TEST(KdTree, BatchDistancesThreadCountInvariant) {
  util::Rng rng(12);
  const auto data = random_points(800, 3, rng);
  const auto queries = random_points(600, 3, rng);
  const KdTree tree(data);
  const auto serial = tree.nearest_distances(queries, /*threads=*/1);
  // Tiny chunks force many tasks; results must not move a bit.
  const auto parallel =
      tree.nearest_distances(queries, /*threads=*/0, /*chunk_rows=*/16);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t q = 0; q < serial.size(); ++q) {
    EXPECT_EQ(serial[q], parallel[q]) << "query " << q;
  }
}

TEST(KdTree, BatchDistancesDimensionMismatchThrows) {
  util::Rng rng(13);
  const auto data = random_points(10, 3, rng);
  const KdTree tree(data);
  const auto queries = random_points(4, 2, rng);
  EXPECT_THROW((void)tree.nearest_distances(queries), std::invalid_argument);
}

}  // namespace
}  // namespace surro::knn
