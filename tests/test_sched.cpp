// Cluster simulator invariants and allocation-policy behaviour.

#include <gtest/gtest.h>

#include "panda/filters.hpp"
#include "panda/generator.hpp"
#include "sched/policies.hpp"
#include "sched/simulator.hpp"

namespace surro::sched {
namespace {

std::vector<SimJob> simple_jobs(std::size_t n, std::size_t home,
                                double cpu_hours = 1.0) {
  std::vector<SimJob> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    SimJob j;
    j.submit_time = static_cast<double>(i) * 0.001;
    j.cpu_hours = cpu_hours;
    j.cores = 1;
    j.home_site = home;
    j.input_bytes = 1e9;
    jobs.push_back(j);
  }
  return jobs;
}

panda::SiteCatalog small_catalog() {
  std::vector<panda::Site> sites = {
      {"A", 20.0, 25.0, 1000, 10.0, 1.0, "X"},
      {"B", 20.0, 25.0, 1000, 5.0, 1.0, "X"},
      {"C", 10.0, 13.0, 500, 1.0, 1.0, "Y"},
  };
  return panda::SiteCatalog(std::move(sites));
}

TEST(Simulator, CompletesAllJobs) {
  const auto catalog = small_catalog();
  SimConfig cfg;
  cfg.capacity_scale = 0.01;  // 10, 10, 5 cores
  ClusterSimulator sim(catalog, cfg);
  DataLocalityPolicy policy;
  const auto metrics = sim.run(simple_jobs(200, 0), policy, 1);
  EXPECT_EQ(metrics.completed_jobs, 200u);
  EXPECT_GT(metrics.makespan_days, 0.0);
}

TEST(Simulator, LocalityPolicyNeverTransfers) {
  const auto catalog = small_catalog();
  ClusterSimulator sim(catalog, {});
  DataLocalityPolicy policy;
  const auto metrics = sim.run(simple_jobs(100, 1), policy, 2);
  EXPECT_DOUBLE_EQ(metrics.transferred_bytes, 0.0);
}

TEST(Simulator, RandomPolicyTransfersMostInputs) {
  const auto catalog = small_catalog();
  ClusterSimulator sim(catalog, {});
  RandomPolicy policy;
  const auto metrics = sim.run(simple_jobs(300, 0), policy, 3);
  // ~2/3 of jobs land away from home -> ~2e11 bytes transferred.
  EXPECT_GT(metrics.transferred_bytes, 1e11);
}

TEST(Simulator, HotspotQueuesUnderLocality) {
  // Everything homes at the small site C: locality queues hard, while
  // least-loaded spreads and finishes sooner.
  const auto catalog = small_catalog();
  SimConfig cfg;
  cfg.capacity_scale = 0.004;  // 4, 4, 2 cores
  ClusterSimulator sim(catalog, cfg);
  DataLocalityPolicy locality;
  LeastLoadedPolicy least;
  const auto jobs = simple_jobs(400, 2, 4.0);
  const auto m_loc = sim.run(jobs, locality, 4);
  const auto m_ll = sim.run(jobs, least, 4);
  EXPECT_GT(m_loc.mean_wait_hours, m_ll.mean_wait_hours);
}

TEST(Simulator, HybridSpillsOnlyUnderPressure) {
  const auto catalog = small_catalog();
  SimConfig cfg;
  cfg.capacity_scale = 0.004;
  ClusterSimulator sim(catalog, cfg);
  RandomPolicy random;
  HybridPolicy hybrid(0.75);

  // Uncongested home (large site A): hybrid stays home, transferring far
  // less than random placement.
  const auto light = simple_jobs(100, 0, 0.5);
  const auto m_hyb_light = sim.run(light, hybrid, 5);
  const auto m_rand_light = sim.run(light, random, 5);
  EXPECT_LT(m_hyb_light.transferred_bytes,
            m_rand_light.transferred_bytes * 0.5);

  // Hot spot (small site C overloaded): hybrid spills and finishes with
  // shorter queues than pure locality.
  DataLocalityPolicy locality;
  const auto heavy = simple_jobs(400, 2, 4.0);
  const auto m_loc = sim.run(heavy, locality, 5);
  const auto m_hyb = sim.run(heavy, hybrid, 5);
  EXPECT_LT(m_hyb.mean_wait_hours, m_loc.mean_wait_hours);
}

TEST(Simulator, UtilizationWithinBounds) {
  const auto catalog = small_catalog();
  ClusterSimulator sim(catalog, {});
  LeastLoadedPolicy policy;
  const auto metrics = sim.run(simple_jobs(500, 0), policy, 6);
  EXPECT_GE(metrics.mean_utilization, 0.0);
  EXPECT_LE(metrics.mean_utilization, 1.0 + 1e-9);
}

TEST(Simulator, MultiCoreJobsFitCapacity) {
  const auto catalog = small_catalog();
  SimConfig cfg;
  cfg.capacity_scale = 0.008;  // site A: 8 cores
  ClusterSimulator sim(catalog, cfg);
  DataLocalityPolicy policy;
  auto jobs = simple_jobs(50, 0, 2.0);
  for (auto& j : jobs) j.cores = 8;
  const auto metrics = sim.run(jobs, policy, 7);
  EXPECT_EQ(metrics.completed_jobs, 50u);
}

TEST(Simulator, InvalidConfigThrows) {
  const auto catalog = small_catalog();
  SimConfig cfg;
  cfg.capacity_scale = 0.0;
  EXPECT_THROW(ClusterSimulator(catalog, cfg), std::invalid_argument);
}

TEST(JobsFromTable, ConvertsWorkloadTable) {
  panda::GeneratorConfig cfg;
  cfg.model.days = 4.0;
  cfg.model.base_jobs_per_day = 150.0;
  panda::RecordGenerator gen(cfg);
  const auto table = panda::build_job_table(gen.generate(), gen.catalog());
  const auto jobs = jobs_from_table(table, gen.catalog(), 8);
  ASSERT_EQ(jobs.size(), table.num_rows());
  for (const auto& j : jobs) {
    EXPECT_GE(j.submit_time, 0.0);
    EXPECT_GE(j.cpu_hours, 0.0);
    EXPECT_LT(j.home_site, gen.catalog().size());
    EXPECT_GE(j.input_bytes, 0.0);
  }
}

// Always returns a fixed site — the adversarial probe for the simulator's
// feasibility guard (real policies are feasibility-aware and never pick an
// unplaceable site themselves).
class StubbornPolicy final : public AllocationPolicy {
 public:
  explicit StubbornPolicy(std::size_t site) : site_(site) {}
  [[nodiscard]] std::size_t place(const SimJob&, const ClusterState&,
                                  util::Rng&) override {
    return site_;
  }
  [[nodiscard]] std::string name() const override { return "stubborn"; }

 private:
  std::size_t site_;
};

TEST(FeasibilityGuard, ZeroCapacitySiteIsNeverAPlacementTarget) {
  // capacity_scale 0.001 floors site C (500 cores) to zero: {1, 1, 0}.
  const auto catalog = small_catalog();
  SimConfig cfg;
  cfg.capacity_scale = 0.001;
  ClusterSimulator sim(catalog, cfg);
  ASSERT_EQ(sim.capacity()[2], 0u);

  // A feasibility-aware policy routes around the dead site on its own...
  DataLocalityPolicy locality;
  const auto m = sim.run(simple_jobs(60, 2), locality, 11);
  EXPECT_EQ(m.completed_jobs, 60u);
  EXPECT_EQ(m.site_completed[2], 0u);

  // ...and an adversarial policy that insists on it is redirected
  // deterministically instead of stalling the stream forever.
  StubbornPolicy stubborn(2);
  const auto m2 = sim.run(simple_jobs(60, 2), stubborn, 11);
  EXPECT_EQ(m2.completed_jobs, 60u);
  EXPECT_EQ(m2.site_completed[2], 0u);
  EXPECT_EQ(m2.redirected_jobs, 60u);
}

TEST(FeasibilityGuard, AllSitesZeroCapacityThrows) {
  const auto catalog = small_catalog();
  SimConfig cfg;
  cfg.capacity_scale = 1e-6;  // every site floors to zero
  EXPECT_THROW(ClusterSimulator(catalog, cfg), std::invalid_argument);
}

TEST(FeasibilityGuard, OversizeCoreRequestIsClampedNotStalled) {
  // Caps {1, 1, 0}: an 8-core request fits nowhere and must be clamped to
  // the widest feasible site so the job still completes.
  const auto catalog = small_catalog();
  SimConfig cfg;
  cfg.capacity_scale = 0.001;
  ClusterSimulator sim(catalog, cfg);
  auto jobs = simple_jobs(20, 0, 0.5);
  for (auto& j : jobs) j.cores = 8;
  DataLocalityPolicy policy;
  const auto m = sim.run(jobs, policy, 12);
  EXPECT_EQ(m.completed_jobs, 20u);
  EXPECT_EQ(m.clamped_jobs, 20u);
  EXPECT_EQ(m.redirected_jobs, 20u);
}

TEST(SiteLoad, ReflectsBusyAndQueued) {
  const auto catalog = small_catalog();
  ClusterState state;
  state.catalog = &catalog;
  state.busy_cores = {100, 0, 0};
  state.queued_jobs = {0, 25, 0};
  EXPECT_GT(site_load(state, 0), 0.0);
  EXPECT_GT(site_load(state, 1), 0.0);
  EXPECT_DOUBLE_EQ(site_load(state, 2), 0.0);
}

}  // namespace
}  // namespace surro::sched
