// String helpers, CSV round trips, stable math, and histograms.

#include <gtest/gtest.h>

#include <cmath>

#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/mathx.hpp"
#include "util/stringx.hpp"

namespace surro::util {
namespace {

// ----------------------------------------------------------------- stringx --

TEST(Stringx, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Stringx, SplitPreservesEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Stringx, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Stringx, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Stringx, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"x"}, "."), "x");
}

TEST(Stringx, StartsEndsWith) {
  EXPECT_TRUE(starts_with("DAOD_PHYS", "DAOD"));
  EXPECT_FALSE(starts_with("AOD", "DAOD"));
  EXPECT_TRUE(ends_with("file.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", "file.csv"));
}

TEST(Stringx, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("3.25", v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(parse_double("  -1e3 ", v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(parse_double("12x", v));
  EXPECT_FALSE(parse_double("", v));
}

TEST(Stringx, ParseInt64) {
  long long v = 0;
  EXPECT_TRUE(parse_int64("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(parse_int64("4.2", v));
}

TEST(Stringx, FormatBytes) {
  EXPECT_EQ(format_bytes(512.0), "512.00 B");
  EXPECT_EQ(format_bytes(2048.0), "2.00 KB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024 * 1024), "3.50 GB");
}

// --------------------------------------------------------------------- csv --

TEST(Csv, RoundTripSimple) {
  CsvDocument doc;
  doc.header = {"a", "b"};
  doc.rows = {{"1", "x"}, {"2", "y"}};
  const auto parsed = parse_csv(to_csv(doc));
  EXPECT_EQ(parsed.header, doc.header);
  EXPECT_EQ(parsed.rows, doc.rows);
}

TEST(Csv, QuotedFieldsWithCommasAndNewlines) {
  CsvDocument doc;
  doc.header = {"name", "note"};
  doc.rows = {{"a,b", "line1\nline2"}, {"with \"quote\"", "plain"}};
  const auto parsed = parse_csv(to_csv(doc));
  EXPECT_EQ(parsed.rows, doc.rows);
}

TEST(Csv, RaggedRowThrows) {
  EXPECT_THROW(parse_csv("a,b\n1,2,3\n"), std::runtime_error);
}

TEST(Csv, UnclosedQuoteThrows) {
  EXPECT_THROW(parse_csv("a\n\"oops\n"), std::runtime_error);
}

TEST(Csv, NoHeaderMode) {
  const auto doc = parse_csv("1,2\n3,4\n", /*has_header=*/false);
  EXPECT_EQ(doc.header.size(), 2u);
  EXPECT_EQ(doc.num_rows(), 2u);
}

TEST(Csv, ColumnIndex) {
  const auto doc = parse_csv("x,y,z\n1,2,3\n");
  EXPECT_EQ(doc.column_index("y"), 1u);
  EXPECT_EQ(doc.column_index("nope"), CsvDocument::npos);
}

TEST(Csv, CrlfLineEndings) {
  const auto doc = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(doc.num_rows(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

// ------------------------------------------------------------------- mathx --

TEST(Mathx, NormalCdfSymmetry) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0) + normal_cdf(-1.0), 1.0, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
}

TEST(Mathx, NormalQuantileInvertsCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(Mathx, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-10);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-7);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963985, 1e-7);
}

TEST(Mathx, NormalQuantileClampsExtremes) {
  EXPECT_TRUE(std::isfinite(normal_quantile(0.0)));
  EXPECT_TRUE(std::isfinite(normal_quantile(1.0)));
  EXPECT_LT(normal_quantile(0.0), -6.0);
  EXPECT_GT(normal_quantile(1.0), 6.0);
}

TEST(Mathx, LogSumExp) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const double expected =
      std::log(std::exp(1.0) + std::exp(2.0) + std::exp(3.0));
  EXPECT_NEAR(logsumexp(x), expected, 1e-12);
}

TEST(Mathx, LogSumExpHandlesLargeValues) {
  const std::vector<double> x = {1000.0, 1000.0};
  EXPECT_NEAR(logsumexp(x), 1000.0 + std::log(2.0), 1e-9);
}

TEST(Mathx, SoftmaxSumsToOne) {
  std::vector<double> x = {1.0, -2.0, 0.5, 100.0};
  softmax_inplace(x);
  double sum = 0.0;
  for (const double v : x) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Mathx, MeanVarianceStddev) {
  const std::vector<double> x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(x), 5.0);
  EXPECT_NEAR(variance(x), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(x), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Mathx, QuantileSorted) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(x, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(x, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(x, 0.25), 2.0);
}

TEST(Mathx, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Mathx, PearsonConstantColumnIsZero) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Mathx, Digitize) {
  const std::vector<double> edges = {0.0, 1.0, 2.0, 3.0};
  EXPECT_EQ(digitize(-5.0, edges), 0u);
  EXPECT_EQ(digitize(0.5, edges), 0u);
  EXPECT_EQ(digitize(1.5, edges), 1u);
  EXPECT_EQ(digitize(2.5, edges), 2u);
  EXPECT_EQ(digitize(99.0, edges), 2u);
}

TEST(Mathx, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Mathx, ClampFinite) {
  EXPECT_DOUBLE_EQ(clamp_finite(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp_finite(std::nan(""), 0.0, 1.0), 0.0);
}

// --------------------------------------------------------------- histogram --

TEST(Histogram, CountsAndNormalization) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  const auto mass = h.normalized();
  for (const double m : mass) EXPECT_NEAR(m, 0.1, 1e-12);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-10.0);
  h.add(10.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, LogBinning) {
  Histogram h(1.0, 1e4, 4, BinScale::kLog10);
  h.add(5.0);     // decade [1,10)
  h.add(50.0);    // decade [10,100)
  h.add(5000.0);  // decade [1e3,1e4)
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, FromDataCoversRange) {
  const std::vector<double> data = {1.0, 2.0, 3.0, 10.0};
  const auto h = Histogram::from_data(data, 8);
  EXPECT_EQ(h.total(), 4u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < h.num_bins(); ++i) total += h.count(i);
  EXPECT_EQ(total, 4u);
}

TEST(Histogram, ConstantDataDoesNotThrow) {
  const std::vector<double> data = {5.0, 5.0, 5.0};
  const auto h = Histogram::from_data(data, 4);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(-1.0, 1.0, 4, BinScale::kLog10),
               std::invalid_argument);
}

TEST(Histogram, CentersAreMonotone) {
  Histogram h(1.0, 1000.0, 6, BinScale::kLog10);
  const auto centers = h.centers();
  for (std::size_t i = 1; i < centers.size(); ++i) {
    EXPECT_GT(centers[i], centers[i - 1]);
  }
}

}  // namespace
}  // namespace surro::util
