// Scenario-matrix engine: axis expansion (count + dedup), shared-window
// runs with anomaly injection, concurrent-vs-serial scoring equivalence,
// and the JSON artifact covering every scenario × model cell.

#include <gtest/gtest.h>

#include <cmath>

#include "eval/scenario.hpp"

namespace surro::eval {
namespace {

/// Base config small enough that a matrix of scenarios stays in test-suite
/// budget (mirrors test_integration's tiny profile).
ExperimentConfig tiny_config() {
  auto cfg = quick_experiment_config();
  cfg.data.model.days = 8.0;
  cfg.data.model.base_jobs_per_day = 150.0;
  cfg.data.model.campaigns_per_day = 0.8;
  cfg.data.extra_tier2_sites = 12;
  cfg.budget.epochs = 4;
  cfg.synth_rows = 600;
  cfg.dcr.max_train_rows = 1200;
  cfg.dcr.max_synth_rows = 500;
  cfg.mlef.boosting.iterations = 25;
  cfg.mlef.boosting.tree.max_depth = 5;
  return cfg;
}

// -------------------------------------------------------------- expansion --

TEST(ExpandScenarios, CartesianCount) {
  ScenarioAxes axes;
  axes.window_days = {10.0, 21.0};
  axes.anomaly_fractions = {0.0, 0.02, 0.05};
  axes.synth_rows = {500, 1000};
  const auto scenarios = expand_scenarios(tiny_config(), axes);
  EXPECT_EQ(scenarios.size(), 2u * 3u * 2u);
  // Expansion order: windows outermost, rows innermost.
  EXPECT_EQ(scenarios.front().id, "w10_a0_r500");
  EXPECT_EQ(scenarios.back().id, "w21_a0.05_r1000");
}

TEST(ExpandScenarios, DeduplicatesRepeatedValues) {
  ScenarioAxes axes;
  axes.window_days = {10.0, 10.0, 21.0};
  axes.anomaly_fractions = {0.0, 0.05, 0.0};
  axes.synth_rows = {500};
  const auto scenarios = expand_scenarios(tiny_config(), axes);
  // 3 × 3 × 1 = 9 raw combos collapse to 2 windows × 2 fractions.
  EXPECT_EQ(scenarios.size(), 4u);
}

TEST(ExpandScenarios, EmptyAxesPinBaseConfig) {
  const auto base = tiny_config();
  const auto scenarios = expand_scenarios(base, ScenarioAxes{});
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(scenarios[0].window_days, base.data.model.days);
  EXPECT_EQ(scenarios[0].anomaly_fraction, 0.0);
  EXPECT_EQ(scenarios[0].synth_rows, base.synth_rows);
}

TEST(ExpandScenarios, RejectsBadAxisValues) {
  ScenarioAxes axes;
  axes.window_days = {-1.0};
  EXPECT_THROW((void)expand_scenarios(tiny_config(), axes),
               std::invalid_argument);
  axes.window_days = {10.0};
  axes.anomaly_fractions = {1.5};
  EXPECT_THROW((void)expand_scenarios(tiny_config(), axes),
               std::invalid_argument);
}

TEST(RunScenarioMatrix, RejectsUnknownModel) {
  ScenarioAxes axes;
  axes.model_keys = {"no-such-model"};
  EXPECT_THROW((void)run_scenario_matrix(tiny_config(), axes, {}),
               std::invalid_argument);
}

// -------------------------------------------------------------- full runs --

TEST(RunScenarioMatrix, CoversEveryCellAndInjectsAnomalies) {
  ScenarioAxes axes;
  axes.window_days = {6.0, 8.0};
  axes.anomaly_fractions = {0.0, 0.05};
  axes.model_keys = {"smote"};
  ScenarioMatrixOptions opts;
  const auto result = run_scenario_matrix(tiny_config(), axes, opts);

  ASSERT_EQ(result.runs.size(), 4u);
  ASSERT_EQ(result.model_keys, axes.model_keys);
  for (const auto& run : result.runs) {
    EXPECT_GT(run.train_rows, 100u);
    EXPECT_GT(run.test_rows, 20u);
    if (run.scenario.anomaly_fraction > 0.0) {
      EXPECT_GT(run.injected_anomalies, 0u);
    } else {
      EXPECT_EQ(run.injected_anomalies, 0u);
    }
    ASSERT_EQ(run.cells.size(), 1u);
    const auto& cell = run.cells.front();
    EXPECT_EQ(cell.model_key, "smote");
    EXPECT_EQ(cell.score.model, "SMOTE");
    EXPECT_TRUE(std::isfinite(cell.score.wd));
    EXPECT_TRUE(std::isfinite(cell.score.dcr));
    EXPECT_GT(cell.timing.rows_per_sec, 0.0);
    EXPECT_EQ(cell.timing.synth_rows, 600u);
  }

  // The JSON artifact names every scenario × model cell.
  const auto json = matrix_to_json(tiny_config(), result);
  EXPECT_NE(json.find("\"kind\":\"scenario_matrix\""), std::string::npos);
  for (const auto& run : result.runs) {
    EXPECT_NE(json.find("\"id\":\"" + run.scenario.id + "\""),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"model_key\":\"smote\""), std::string::npos);
  EXPECT_NE(json.find("\"rows_per_sec\":"), std::string::npos);
}

TEST(RunScenarioMatrix, ConcurrentScoringMatchesSerialBitwise) {
  ScenarioAxes axes;
  axes.window_days = {6.0};
  axes.synth_rows = {400, 700};
  axes.model_keys = {"smote"};

  ScenarioMatrixOptions serial;
  serial.concurrent_scoring = false;
  ScenarioMatrixOptions concurrent;
  concurrent.concurrent_scoring = true;

  auto base = tiny_config();
  base.metric_threads = 1;  // serial metric internals on both sides
  const auto a = run_scenario_matrix(base, axes, serial);
  const auto b = run_scenario_matrix(base, axes, concurrent);

  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t s = 0; s < a.runs.size(); ++s) {
    ASSERT_EQ(a.runs[s].cells.size(), b.runs[s].cells.size());
    for (std::size_t c = 0; c < a.runs[s].cells.size(); ++c) {
      const auto& sa = a.runs[s].cells[c].score;
      const auto& sb = b.runs[s].cells[c].score;
      EXPECT_EQ(sa.wd, sb.wd);
      EXPECT_EQ(sa.jsd, sb.jsd);
      EXPECT_EQ(sa.diff_corr, sb.diff_corr);
      EXPECT_EQ(sa.dcr, sb.dcr);
      EXPECT_EQ(sa.diff_mlef, sb.diff_mlef);
    }
  }
}

// The acceptance contract: threaded metric scoring is bitwise identical to
// serial for every surrogate model's synthetic output.
TEST(ScoreModel, ParallelBitwiseIdenticalForAllModels) {
  auto cfg = tiny_config();
  const auto data = prepare_data(cfg);
  const double train_mlef =
      metrics::mlef_mse(data.train, data.test, cfg.mlef);

  for (const std::string key : {"tvae", "ctabgan", "smote", "tabddpm"}) {
    const auto sample = train_and_sample(key, cfg, data.train, 500);

    auto serial_cfg = cfg;
    serial_cfg.metric_threads = 1;
    auto parallel_cfg = cfg;
    parallel_cfg.metric_threads = 0;

    const auto serial = score_model(key, sample, data.train, data.test,
                                    train_mlef, serial_cfg);
    const auto parallel = score_model(key, sample, data.train, data.test,
                                      train_mlef, parallel_cfg);
    EXPECT_EQ(serial.wd, parallel.wd) << key;
    EXPECT_EQ(serial.jsd, parallel.jsd) << key;
    EXPECT_EQ(serial.diff_corr, parallel.diff_corr) << key;
    EXPECT_EQ(serial.dcr, parallel.dcr) << key;
    EXPECT_EQ(serial.diff_mlef, parallel.diff_mlef) << key;
  }
}

}  // namespace
}  // namespace surro::eval
