// Sharded & replicated model tier: the cross-layer conformance sweep.
//
//   * ShardRouter ring stability — adding a shard moves only ~K/N keys,
//     and every moved key moves TO the new shard (point addition never
//     reshuffles survivors); owners() returns R distinct shards.
//   * Routing invariance, the headline contract — a job's bytes are
//     bitwise-identical for every (shards, replicas) placement, for all
//     four models, and within every available SIMD backend.
//   * Replica re-route — an owner refusing at admission (injected row-bound
//     overload) transparently re-routes to the next replica, counted in
//     ShardStats::rerouted, and the re-routed job's bytes are unchanged.
//   * Archive-cache staleness — per-entry TTL expiry reloads (counted in
//     stale_reloads) and invalidate() fan-out drops every replica's
//     resident copy; bytes identical before and after either event.
//   * Aggregate stats arithmetic — ShardPool::stats() counters are the
//     strict sums of the per-shard counters, machine-checked, and the
//     "shards" stats JSON section carries the same numbers.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "linalg/simd.hpp"
#include "serve/model_host.hpp"
#include "serve/replay.hpp"
#include "serve/sample_service.hpp"
#include "serve/shard_pool.hpp"
#include "serve/shard_router.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"
#include "util/rng.hpp"

namespace surro::serve {
namespace {

// Tiny mixed table with clear structure (mirrors test_serve.cpp).
tabular::Table cluster_table(std::size_t n, std::uint64_t seed) {
  tabular::Schema schema({{"x", tabular::ColumnKind::kNumerical},
                          {"site", tabular::ColumnKind::kCategorical},
                          {"y", tabular::ColumnKind::kNumerical},
                          {"status", tabular::ColumnKind::kCategorical}});
  tabular::Table t(schema);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool cluster_a = rng.bernoulli(0.65);
    auto row = t.make_row();
    if (cluster_a) {
      row.set(0, rng.normal(0.0, 0.4));
      row.set(1, std::string(rng.bernoulli(0.9) ? "BNL" : "CERN"));
      row.set(2, rng.normal(-2.0, 0.3));
      row.set(3, std::string(rng.bernoulli(0.85) ? "finished" : "failed"));
    } else {
      row.set(0, rng.normal(5.0, 0.4));
      row.set(1, std::string(rng.bernoulli(0.8) ? "RAL" : "CERN"));
      row.set(2, rng.normal(3.0, 0.3));
      row.set(3, std::string(rng.bernoulli(0.6) ? "finished" : "failed"));
    }
    t.append_row(row);
  }
  return t;
}

void expect_tables_identical(const tabular::Table& a,
                             const tabular::Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_TRUE(a.schema() == b.schema());
  for (const std::size_t col : a.schema().numerical_indices()) {
    const auto va = a.numerical(col);
    const auto vb = b.numerical(col);
    for (std::size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(va[r], vb[r]) << "numerical col " << col << " row " << r;
    }
  }
  for (const std::size_t col : a.schema().categorical_indices()) {
    for (std::size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(a.label_at(col, r), b.label_at(col, r))
          << "categorical col " << col << " row " << r;
    }
  }
}

/// All four paper models, fitted once on the shared cluster table and
/// archived into one process-lifetime scratch directory. Every test in
/// this file routes the same archives, so the sweep really is cross-layer:
/// one set of bytes, many placements.
struct SharedArchives {
  std::filesystem::path dir;
  std::vector<std::string> keys{"smote", "tvae", "ctabgan", "tabddpm"};

  SharedArchives() {
    dir = std::filesystem::temp_directory_path() /
          ("surro_shard_test_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(dir);
    models::TrainBudget budget;
    budget.epochs = 4;
    budget.batch_size = 64;
    budget.learning_rate = 1e-3f;
    const auto train = cluster_table(300, 21);
    for (const auto& key : keys) {
      auto model = models::make_generator(key, budget, 7);
      model->fit(train);
      models::save_model_file(*model, path(key));
    }
  }
  ~SharedArchives() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  [[nodiscard]] std::string path(const std::string& key) const {
    return (dir / (key + ".bin")).string();
  }
};

const SharedArchives& archives() {
  static SharedArchives shared;
  return shared;
}

/// A pool over the shared archives with every config knob we sweep.
std::unique_ptr<ShardPool> make_pool(std::size_t shards,
                                     std::size_t replicas,
                                     double ttl_ms = 0.0) {
  ShardPoolConfig cfg;
  cfg.shards = shards;
  cfg.replication = replicas;
  cfg.host.capacity = archives().keys.size();
  cfg.host.ttl_ms = ttl_ms;
  auto pool = std::make_unique<ShardPool>(cfg);
  for (const auto& key : archives().keys) {
    pool->register_archive(key, archives().path(key));
  }
  return pool;
}

/// The job identity grid the invariance sweep samples: per model, a couple
/// of seeds at a chunk size small enough to exercise multi-chunk assembly.
struct JobId {
  std::string model;
  std::uint64_t seed = 0;
};

std::vector<JobId> job_grid() {
  std::vector<JobId> grid;
  for (const auto& key : archives().keys) {
    grid.push_back({key, 1000 + ShardRouter::key_hash(key) % 7});
    grid.push_back({key, 2000 + ShardRouter::key_hash(key) % 11});
  }
  return grid;
}

constexpr std::size_t kRows = 120;
constexpr std::size_t kChunkRows = 48;  // 3 chunks per job

/// Reference bytes: a direct, unsharded sample of the same identity.
tabular::Table direct_sample(const JobId& id) {
  ModelHost host;
  host.register_archive(id.model, archives().path(id.model));
  models::SampleRequest request;
  request.rows = kRows;
  request.seed = id.seed;
  request.chunk_rows = kChunkRows;
  tabular::Table out;
  host.acquire(id.model)->sample_into(out, request);
  return out;
}

tabular::Table pool_sample(ShardPool& pool, const JobId& id) {
  SampleJob job;
  job.model_key = id.model;
  job.rows = kRows;
  job.seed = id.seed;
  job.chunk_rows = kChunkRows;
  return pool.sample(std::move(job));
}

// ------------------------------------------------------------ ring layer --

TEST(ShardRouter, OwnersAreDistinctAndClamped) {
  ShardRouter router(RouterConfig{4, 3, 32});
  for (int i = 0; i < 64; ++i) {
    const auto owners = router.owners("model-" + std::to_string(i));
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_EQ(std::set<std::size_t>(owners.begin(), owners.end()).size(),
              3u);
    for (const std::size_t s : owners) EXPECT_LT(s, 4u);
  }
  // Replication beyond the shard count clamps instead of failing.
  ShardRouter clamped(RouterConfig{2, 5, 16});
  EXPECT_EQ(clamped.config().replication, 2u);
  EXPECT_EQ(clamped.owners("anything").size(), 2u);
}

TEST(ShardRouter, RoutingIsDeterministicAcrossInstances) {
  const RouterConfig cfg{8, 2, 64};
  ShardRouter a(cfg);
  ShardRouter b(cfg);
  for (int i = 0; i < 256; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a.owners(key), b.owners(key)) << key;
  }
}

TEST(ShardRouter, AddingAShardMovesOnlyItsShareOfKeys) {
  constexpr std::size_t kKeys = 2000;
  constexpr std::size_t kBefore = 8;
  ShardRouter before(RouterConfig{kBefore, 1, 64});
  ShardRouter after(RouterConfig{kBefore + 1, 1, 64});

  std::size_t moved = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const std::string key = "model-" + std::to_string(i);
    const std::size_t owner_before = before.primary(key);
    const std::size_t owner_after = after.primary(key);
    if (owner_after != owner_before) {
      ++moved;
      // The strict stability property: the new shard only ADDS ring
      // points, so any key that changed owners must belong to it now.
      // A surviving shard can never steal a key from another survivor.
      EXPECT_EQ(owner_after, kBefore)
          << key << " moved " << owner_before << " -> " << owner_after;
    }
  }
  // ~K/N keys move (the consistent-hashing bound). Generous slack for the
  // variance of 64 vnodes, but far below the K/2 a naive mod-N rehash
  // would churn.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kKeys * 3 / (kBefore + 1));
}

TEST(ShardRouter, KeyHashIsStableAcrossCalls) {
  const std::uint64_t h = ShardRouter::key_hash("tabddpm");
  EXPECT_EQ(ShardRouter::key_hash("tabddpm"), h);
  EXPECT_NE(ShardRouter::key_hash("tabddpm"), ShardRouter::key_hash("tvae"));
}

// ------------------------------------------------- routing invariance --

TEST(RoutingInvariance, BytesIdenticalAcrossShardAndReplicaCounts) {
  const auto grid = job_grid();
  std::vector<tabular::Table> reference;
  reference.reserve(grid.size());
  for (const auto& id : grid) reference.push_back(direct_sample(id));

  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const std::size_t replicas : {1u, 2u}) {
      if (replicas > shards) continue;
      auto pool = make_pool(shards, replicas);
      for (std::size_t j = 0; j < grid.size(); ++j) {
        SCOPED_TRACE("shards=" + std::to_string(shards) + " replicas=" +
                     std::to_string(replicas) + " model=" + grid[j].model);
        const auto table = pool_sample(*pool, grid[j]);
        expect_tables_identical(table, reference[j]);
      }
    }
  }
}

TEST(RoutingInvariance, HoldsWithinEveryAvailableSimdBackend) {
  // Within one backend, bytes are bitwise-identical whatever the placement
  // (the cross-backend guarantee is the SIMD layer's own contract, scoped
  // to the elementwise family — see docs/PERFORMANCE.md — so the shard
  // sweep pins one backend at a time).
  struct BackendGuard {
    linalg::simd::Backend saved = linalg::simd::active_backend();
    ~BackendGuard() { linalg::simd::force_backend(saved); }
  } guard;

  const JobId id{"tvae", 4242};
  for (const auto backend : linalg::simd::available_backends()) {
    linalg::simd::force_backend(backend);
    SCOPED_TRACE(linalg::simd::backend_name(backend));
    const auto reference = direct_sample(id);
    for (const std::size_t shards : {1u, 2u, 4u}) {
      auto pool = make_pool(shards, /*replicas=*/2);
      expect_tables_identical(pool_sample(*pool, id), reference);
    }
  }
}

TEST(RoutingInvariance, ReplayOutputHashMatchesUnshardedService) {
  // The replay harness (what the bench and the CLI drive) lands on the
  // same output hash through a pool as through a plain service.
  ReplayScript script;
  for (const auto& key : archives().keys) {
    ReplayRequest request;
    request.job.model_key = key;
    request.job.rows = kRows;
    request.job.seed = 77;
    request.job.chunk_rows = kChunkRows;
    request.repeat = 2;
    script.requests.push_back(request);
  }
  ReplayOptions opts;
  opts.clients = 4;

  ModelHost host;
  for (const auto& key : archives().keys) {
    host.register_archive(key, archives().path(key));
  }
  SampleService service(host);
  const auto flat = run_replay(service, script, opts);

  auto pool = make_pool(4, 2);
  const auto sharded = run_replay(*pool, script, opts);
  EXPECT_EQ(sharded.output_hash, flat.output_hash);
  EXPECT_EQ(sharded.failures, 0u);
  EXPECT_EQ(sharded.completed, flat.completed);
}

// ------------------------------------------------------- replica leases --

TEST(ReplicaLease, OverloadedOwnerReroutesToReplicaWithSameBytes) {
  ShardPoolConfig cfg;
  cfg.shards = 2;
  cfg.replication = 2;
  cfg.host.capacity = 2;
  cfg.service.admission = AdmissionPolicy::kReject;
  cfg.service.max_queue_depth = 8;
  cfg.service.max_queued_rows = 1000;
  ShardPool pool(cfg);
  const std::string key = "tvae";
  pool.register_archive(key, archives().path(key));
  const auto owners = pool.router().owners(key);
  ASSERT_EQ(owners.size(), 2u);
  const std::size_t primary = owners[0];
  const std::size_t secondary = owners[1];

  // Freeze both shards, then sculpt their queues so the least-depth owner
  // (the one the lease tries first) is over the row bound while the deeper
  // replica still has admission room:
  //   primary:   1 queued job, 2000 rows  -> depth 1, over max_queued_rows
  //   secondary: 2 queued jobs, 200 rows  -> depth 2, well under the bound
  pool.service(primary).pause();
  pool.service(secondary).pause();
  SampleJob big;
  big.model_key = key;
  big.rows = 2000;
  big.seed = 1;
  auto big_future = pool.service(primary).submit(big);
  SampleJob small;
  small.model_key = key;
  small.rows = 100;
  small.seed = 2;
  auto small_a = pool.service(secondary).submit(small);
  small.seed = 3;
  auto small_b = pool.service(secondary).submit(small);

  // The pool tries the primary (depth 1 < 2), which refuses at the row
  // bound; the lease re-routes to the secondary, which admits.
  SampleJob job;
  job.model_key = key;
  job.rows = kRows;
  job.seed = 99;
  job.chunk_rows = kChunkRows;
  auto submitted = pool.submit_job(job);
  const auto [landed_on, local_id] = pool.decode_job_id(submitted.job_id);
  EXPECT_EQ(landed_on, secondary);
  EXPECT_GT(local_id, 0u);
  EXPECT_EQ(pool.shard_stats().rerouted, 1u);

  pool.service(primary).resume();
  pool.service(secondary).resume();
  EXPECT_EQ(big_future.get().table.num_rows(), 2000u);
  EXPECT_EQ(small_a.get().table.num_rows(), 100u);
  EXPECT_EQ(small_b.get().table.num_rows(), 100u);
  // And the re-routed job's bytes are the placement-independent ones.
  expect_tables_identical(submitted.future.get().table,
                          direct_sample(JobId{key, 99}));
}

TEST(ReplicaLease, AllReplicasRefusingSurfacesTheOverloadError) {
  ShardPoolConfig cfg;
  cfg.shards = 2;
  cfg.replication = 2;
  cfg.service.admission = AdmissionPolicy::kReject;
  cfg.service.max_queue_depth = 1;
  ShardPool pool(cfg);
  const std::string key = "smote";
  pool.register_archive(key, archives().path(key));
  for (std::size_t s = 0; s < pool.shards(); ++s) pool.service(s).pause();

  const auto owners = pool.router().owners(key);
  SampleJob filler;
  filler.model_key = key;
  filler.rows = 40;
  std::vector<std::future<SampleResult>> queued;
  for (const std::size_t s : owners) {
    filler.seed = 100 + s;
    queued.push_back(pool.service(s).submit(filler));
  }

  SampleJob job;
  job.model_key = key;
  job.rows = 40;
  job.seed = 7;
  EXPECT_THROW((void)pool.submit_job(job), ServiceError);
  EXPECT_EQ(pool.shard_stats().rerouted, 0u);  // a refusal is not a reroute

  for (std::size_t s = 0; s < pool.shards(); ++s) pool.service(s).resume();
  for (auto& f : queued) EXPECT_EQ(f.get().table.num_rows(), 40u);
}

TEST(ReplicaLease, PoolJobIdsRoundTripAndCancelRoutesToTheRightShard) {
  auto pool = make_pool(4, 2);
  for (std::size_t s = 0; s < pool->shards(); ++s) pool->service(s).pause();

  SampleJob job;
  job.model_key = "smote";
  job.rows = 60;
  job.seed = 5;
  auto submitted = pool->submit_job(job);
  const auto [shard, local] = pool->decode_job_id(submitted.job_id);
  ASSERT_LT(shard, pool->shards());
  EXPECT_GT(local, 0u);

  EXPECT_TRUE(pool->cancel(submitted.job_id));
  EXPECT_FALSE(pool->cancel(submitted.job_id));  // already resolved
  EXPECT_FALSE(pool->cancel(0));                 // the no-job sentinel
  EXPECT_FALSE(pool->cancel(local));  // a bare local id is not a pool id
  EXPECT_EQ(pool->decode_job_id(0).first, pool->shards());
  EXPECT_THROW((void)submitted.future.get(), ServiceError);
  for (std::size_t s = 0; s < pool->shards(); ++s) pool->service(s).resume();
}

// --------------------------------------------------- cache staleness --

TEST(CacheStaleness, TtlExpiryReloadsWithIdenticalBytes) {
  ModelHost host;
  host.register_archive("m", archives().path("tvae"), /*ttl_ms=*/40.0);
  models::SampleRequest request;
  request.rows = 80;
  request.seed = 11;
  request.chunk_rows = 32;

  tabular::Table first;
  host.acquire("m")->sample_into(first, request);
  EXPECT_EQ(host.stats().stale_reloads, 0u);
  EXPECT_TRUE(host.resident("m"));

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  tabular::Table second;
  host.acquire("m")->sample_into(second, request);
  EXPECT_EQ(host.stats().stale_reloads, 1u);
  expect_tables_identical(first, second);  // staleness is about freshness,
                                           // never about bytes
}

TEST(CacheStaleness, ZeroTtlNeverExpiresAndRegistrationOverridesDefault) {
  HostConfig cfg;
  cfg.ttl_ms = 30.0;  // host default: everything goes stale fast...
  ModelHost host(cfg);
  host.register_archive("inherits", archives().path("smote"));
  host.register_archive("pinned_fresh", archives().path("smote"),
                        /*ttl_ms=*/0.0);  // ...except this entry
  (void)host.acquire("inherits");
  (void)host.acquire("pinned_fresh");
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  (void)host.acquire("inherits");
  (void)host.acquire("pinned_fresh");
  EXPECT_EQ(host.stats().stale_reloads, 1u);  // only the inheriting entry
}

TEST(CacheStaleness, InvalidateFansOutToEveryReplica) {
  auto pool = make_pool(2, 2);
  const std::string key = "ctabgan";
  // Make the model resident on both owner shards.
  const auto owners = pool->router().owners(key);
  ASSERT_EQ(owners.size(), 2u);
  for (const std::size_t s : owners) (void)pool->host(s).acquire(key);
  for (const std::size_t s : owners) EXPECT_TRUE(pool->host(s).resident(key));

  EXPECT_EQ(pool->invalidate(key), 2u);  // both replicas dropped a copy
  for (const std::size_t s : owners) {
    EXPECT_FALSE(pool->host(s).resident(key));
    EXPECT_EQ(pool->host(s).stats().invalidations, 1u);
  }
  EXPECT_EQ(pool->invalidate(key), 0u);  // nothing resident: no-op
  EXPECT_EQ(pool->invalidate("no-such-model"), 0u);

  // Reload-on-next-use, bytes unchanged.
  const JobId id{key, 31};
  expect_tables_identical(pool_sample(*pool, id), direct_sample(id));
}

// ------------------------------------------------- aggregate statistics --

TEST(AggregateStats, PoolCountersAreStrictSumsOfShardCounters) {
  auto pool = make_pool(4, 2);
  for (const auto& id : job_grid()) (void)pool_sample(*pool, id);

  const ShardStats ss = pool->shard_stats();
  ASSERT_EQ(ss.per_shard.size(), 4u);
  std::uint64_t submitted = 0, completed = 0, batches = 0, hits = 0,
                misses = 0, loads = 0;
  std::size_t depth = 0;
  for (const auto& s : ss.per_shard) {
    submitted += s.submitted;
    completed += s.completed;
    batches += s.batches;
    hits += s.host.hits;
    misses += s.host.misses;
    loads += s.host.loads;
    depth += s.queue_depth;
  }
  EXPECT_EQ(ss.aggregate.submitted, submitted);
  EXPECT_EQ(ss.aggregate.completed, completed);
  EXPECT_EQ(ss.aggregate.batches, batches);
  EXPECT_EQ(ss.aggregate.host.hits, hits);
  EXPECT_EQ(ss.aggregate.host.misses, misses);
  EXPECT_EQ(ss.aggregate.host.loads, loads);
  EXPECT_EQ(ss.aggregate.queue_depth, depth);
  EXPECT_EQ(ss.aggregate.completed, job_grid().size());
  EXPECT_EQ(ss.routed, job_grid().size());

  // Every model is placed on exactly R distinct shards.
  ASSERT_EQ(ss.placement.size(), archives().keys.size());
  for (const auto& [key, owners] : ss.placement) {
    EXPECT_EQ(owners.size(), 2u) << key;
    EXPECT_EQ(std::set<std::size_t>(owners.begin(), owners.end()).size(),
              owners.size())
        << key;
  }
}

TEST(AggregateStats, StatsJsonShardSectionCarriesTheSameNumbers) {
  auto pool = make_pool(2, 1);
  const JobId id{"smote", 12};
  (void)pool_sample(*pool, id);
  (void)pool_sample(*pool, id);

  util::JsonWriter w;
  w.begin_object();
  pool->append_stats_json(w);
  w.end_object();
  const auto doc = util::parse_json(w.str());
  const auto& shards = doc.at("shards");
  EXPECT_EQ(shards.at("count").as_number(), 2.0);
  EXPECT_EQ(shards.at("replication").as_number(), 1.0);
  EXPECT_EQ(shards.at("routed").as_number(), 2.0);
  const auto& per_shard = shards.at("per_shard").array;
  ASSERT_EQ(per_shard.size(), 2u);
  double submitted = 0.0, completed = 0.0;
  for (const auto& entry : per_shard) {
    submitted += entry.at("submitted").as_number();
    completed += entry.at("completed").as_number();
  }
  EXPECT_EQ(submitted, 2.0);
  EXPECT_EQ(completed, 2.0);
  const auto& placement = shards.at("placement").array;
  ASSERT_EQ(placement.size(), archives().keys.size());
}

}  // namespace
}  // namespace surro::serve
