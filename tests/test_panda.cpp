// Nomenclature parsing, site catalog invariants, the stochastic workload
// model, the record generator, and the Fig. 3(b) filter funnel.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "panda/filters.hpp"
#include "panda/generator.hpp"
#include "panda/nomenclature.hpp"
#include "panda/site_catalog.hpp"
#include "panda/workload_model.hpp"

namespace surro::panda {
namespace {

// ----------------------------------------------------------- nomenclature --

TEST(Nomenclature, DatasetNameRoundTrip) {
  Nomenclature nom;
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const DatasetName d = nom.sample(rng, 0.8);
    const auto parsed = parse_dataset_name(d.to_string());
    ASSERT_TRUE(parsed.has_value()) << d.to_string();
    EXPECT_EQ(parsed->project, d.project);
    EXPECT_EQ(parsed->prodstep, d.prodstep);
    EXPECT_EQ(parsed->datatype, d.datatype);
  }
}

TEST(Nomenclature, ParseRejectsMalformedNames) {
  EXPECT_FALSE(parse_dataset_name("unknown").has_value());
  EXPECT_FALSE(parse_dataset_name("a.b.c.d.e").has_value());
  EXPECT_FALSE(parse_dataset_name("a.b.c.d.e.f.g").has_value());
  EXPECT_FALSE(parse_dataset_name("a..c.d.e.f").has_value());
  EXPECT_FALSE(parse_dataset_name("").has_value());
}

TEST(Nomenclature, DaodBiasControlsDaodFraction) {
  Nomenclature nom;
  util::Rng rng(2);
  int daod_high = 0;
  int daod_low = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    daod_high += nom.sample(rng, 0.9).is_daod();
    daod_low += nom.sample(rng, 0.1).is_daod();
  }
  EXPECT_NEAR(daod_high / static_cast<double>(n), 0.9, 0.03);
  EXPECT_NEAR(daod_low / static_cast<double>(n), 0.1, 0.03);
}

TEST(Nomenclature, DaodPhysIsDominantDaodType) {
  Nomenclature nom;
  util::Rng rng(3);
  std::map<std::string, int> counts;
  for (int i = 0; i < 5000; ++i) {
    counts[nom.sample(rng, 1.0).datatype]++;
  }
  int max_count = 0;
  std::string top;
  for (const auto& [k, v] : counts) {
    if (v > max_count) {
      max_count = v;
      top = k;
    }
  }
  EXPECT_EQ(top, "DAOD_PHYS");
}

TEST(Nomenclature, SizeAndCpuScalesArePositive) {
  Nomenclature nom;
  for (const auto& dt : nom.daod_types()) {
    EXPECT_GT(nom.datatype_size_scale(dt), 0.0) << dt;
    EXPECT_GT(nom.datatype_cpu_scale(dt), 0.0) << dt;
  }
  EXPECT_LT(nom.datatype_size_scale("DAOD_PHYSLITE"),
            nom.datatype_size_scale("DAOD_PHYS"));
}

TEST(Nomenclature, DataProjectsUsePhysicsMainStream) {
  Nomenclature nom;
  util::Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const auto d = nom.sample(rng, 0.8);
    if (d.project.rfind("data", 0) == 0) {
      EXPECT_EQ(d.stream, "physics_Main");
    }
  }
}

// ----------------------------------------------------------- site catalog --

TEST(SiteCatalog, DefaultCatalogShape) {
  const auto catalog = SiteCatalog::make_default(96, 17);
  EXPECT_GE(catalog.size(), 120u);
  std::set<std::string> names;
  for (const auto& s : catalog.sites()) {
    EXPECT_GT(s.hs23_per_core, 0.0);
    EXPECT_GT(s.gflops_per_core, 0.0);
    EXPECT_GT(s.cores, 0u);
    names.insert(s.name);
  }
  EXPECT_EQ(names.size(), catalog.size()) << "site names must be unique";
}

TEST(SiteCatalog, BnlIsMostPopular) {
  const auto catalog = SiteCatalog::make_default();
  double max_pop = 0.0;
  std::string top;
  for (const auto& s : catalog.sites()) {
    if (s.popularity > max_pop) {
      max_pop = s.popularity;
      top = s.name;
    }
  }
  EXPECT_EQ(top, "BNL");
}

TEST(SiteCatalog, IndexOfFindsAndThrows) {
  const auto catalog = SiteCatalog::make_default();
  EXPECT_EQ(catalog.site(catalog.index_of("BNL")).name, "BNL");
  EXPECT_THROW(catalog.index_of("NOT-A-SITE"), std::out_of_range);
}

TEST(SiteCatalog, DeterministicForSeed) {
  const auto a = SiteCatalog::make_default(10, 5);
  const auto b = SiteCatalog::make_default(10, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.site(i).name, b.site(i).name);
    EXPECT_DOUBLE_EQ(a.site(i).hs23_per_core, b.site(i).hs23_per_core);
  }
}

TEST(SiteCatalog, ReferenceHs23InRange) {
  const auto catalog = SiteCatalog::make_default();
  const double ref = catalog.reference_hs23();
  EXPECT_GT(ref, 10.0);
  EXPECT_LT(ref, 30.0);
}

TEST(SiteCatalog, EmptyCatalogThrows) {
  EXPECT_THROW(SiteCatalog(std::vector<Site>{}), std::invalid_argument);
}

// ---------------------------------------------------------- workload model --

TEST(RateModulation, WeekendsAreQuieter) {
  WorkloadModelConfig cfg;
  // Average over full days to cancel the diurnal term.
  const auto day_avg = [&cfg](double day) {
    double acc = 0.0;
    for (int h = 0; h < 24; ++h) {
      acc += rate_modulation(cfg, day + h / 24.0);
    }
    return acc / 24.0;
  };
  EXPECT_NEAR(day_avg(1.0), 1.0, 0.02);              // weekday
  EXPECT_NEAR(day_avg(5.5), cfg.weekend_factor, 0.02);  // weekend
}

TEST(RateModulation, DiurnalCycleWithinDay) {
  WorkloadModelConfig cfg;
  const double midnight = rate_modulation(cfg, 0.0);
  const double midday = rate_modulation(cfg, 0.5);
  EXPECT_GT(midday, midnight);
}

class WorkloadModelTest : public ::testing::Test {
 protected:
  WorkloadModelTest()
      : catalog_(SiteCatalog::make_default(16, 1)),
        model_(WorkloadModelConfig{}, catalog_, nomenclature_) {}
  SiteCatalog catalog_;
  Nomenclature nomenclature_;
  WorkloadModel model_;
};

TEST_F(WorkloadModelTest, JobFieldsAreValid) {
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const RawRecord rec = model_.draw_job(rng, 3.0, nullptr);
    EXPECT_GE(rec.creation_time_days, 0.0);
    EXPECT_GE(rec.site_index, 0);
    EXPECT_LT(static_cast<std::size_t>(rec.site_index), catalog_.size());
    EXPECT_GE(rec.ninputdatafiles, 1);
    EXPECT_GT(rec.inputfilebytes, 0.0);
    EXPECT_GE(rec.cpu_seconds, 0.0);
    EXPECT_GE(rec.workload, 0.0);
    EXPECT_TRUE(rec.cores == 1 || rec.cores == 8 || rec.cores == 16);
    EXPECT_TRUE(rec.status == "finished" || rec.status == "failed" ||
                rec.status == "cancelled" || rec.status == "closed");
  }
}

TEST_F(WorkloadModelTest, WorkloadCorrelatesWithFiles) {
  util::Rng rng(6);
  std::vector<double> nfiles;
  std::vector<double> workloads;
  for (int i = 0; i < 4000; ++i) {
    const RawRecord rec = model_.draw_job(rng, 1.0, nullptr);
    if (rec.status != "finished") continue;
    nfiles.push_back(std::log(static_cast<double>(rec.ninputdatafiles)));
    workloads.push_back(std::log(rec.workload + 1.0));
  }
  // Strong positive association in the generative process.
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < nfiles.size(); ++i) {
    mx += nfiles[i];
    my += workloads[i];
  }
  mx /= static_cast<double>(nfiles.size());
  my /= static_cast<double>(nfiles.size());
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < nfiles.size(); ++i) {
    sxy += (nfiles[i] - mx) * (workloads[i] - my);
    sxx += (nfiles[i] - mx) * (nfiles[i] - mx);
    syy += (workloads[i] - my) * (workloads[i] - my);
  }
  EXPECT_GT(sxy / std::sqrt(sxx * syy), 0.6);
}

TEST_F(WorkloadModelTest, CampaignJobsShareDataset) {
  util::Rng rng(7);
  const auto campaigns = model_.draw_campaigns(rng);
  ASSERT_FALSE(campaigns.empty());
  const Campaign& c = campaigns.front();
  const RawRecord a = model_.draw_job(rng, c.start_day, &c);
  const RawRecord b = model_.draw_job(rng, c.start_day, &c);
  const auto pa = parse_dataset_name(a.dataset_name);
  const auto pb = parse_dataset_name(b.dataset_name);
  if (pa && pb) {
    EXPECT_EQ(pa->datatype, pb->datatype);
    EXPECT_EQ(pa->project, pb->project);
  }
}

TEST_F(WorkloadModelTest, CampaignsWithinWindow) {
  util::Rng rng(8);
  const auto campaigns = model_.draw_campaigns(rng);
  for (const auto& c : campaigns) {
    EXPECT_GE(c.start_day, 0.0);
    EXPECT_LT(c.start_day, model_.config().days);
    EXPECT_GT(c.num_jobs, 0u);
    EXPECT_LE(c.num_jobs,
              static_cast<std::size_t>(model_.config().campaign_max_jobs));
  }
}

TEST_F(WorkloadModelTest, FailedJobsUseLessCpuOnAverage) {
  util::Rng rng(9);
  double finished_sum = 0.0;
  double failed_sum = 0.0;
  int finished_n = 0;
  int failed_n = 0;
  for (int i = 0; i < 20000; ++i) {
    const RawRecord rec = model_.draw_job(rng, 0.0, nullptr);
    if (rec.status == "finished") {
      finished_sum += rec.cpu_seconds;
      ++finished_n;
    } else if (rec.status == "failed") {
      failed_sum += rec.cpu_seconds;
      ++failed_n;
    }
  }
  ASSERT_GT(finished_n, 0);
  ASSERT_GT(failed_n, 0);
  EXPECT_LT(failed_sum / failed_n, finished_sum / finished_n);
}

// --------------------------------------------------------------- generator --

TEST(RecordGenerator, DeterministicForSeed) {
  GeneratorConfig cfg;
  cfg.model.days = 3.0;
  cfg.model.base_jobs_per_day = 100.0;
  cfg.model.campaigns_per_day = 0.5;
  cfg.seed = 77;
  RecordGenerator g1(cfg);
  RecordGenerator g2(cfg);
  const auto r1 = g1.generate();
  const auto r2 = g2.generate();
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(r1.size(), 50); ++i) {
    EXPECT_DOUBLE_EQ(r1[i].creation_time_days, r2[i].creation_time_days);
    EXPECT_EQ(r1[i].dataset_name, r2[i].dataset_name);
  }
}

TEST(RecordGenerator, RecordsSortedByTime) {
  GeneratorConfig cfg;
  cfg.model.days = 5.0;
  cfg.model.base_jobs_per_day = 200.0;
  RecordGenerator gen(cfg);
  const auto records = gen.generate();
  ASSERT_GT(records.size(), 100u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].creation_time_days,
              records[i].creation_time_days);
  }
}

TEST(RecordGenerator, TimesWithinWindow) {
  GeneratorConfig cfg;
  cfg.model.days = 4.0;
  cfg.model.base_jobs_per_day = 150.0;
  RecordGenerator gen(cfg);
  for (const auto& rec : gen.generate()) {
    EXPECT_GE(rec.creation_time_days, 0.0);
    EXPECT_LE(rec.creation_time_days, 4.0);
  }
}

// ----------------------------------------------------------------- filters --

TEST(Filters, SchemaMatchesPaper) {
  const auto schema = job_table_schema();
  EXPECT_EQ(schema.num_columns(), 9u);
  EXPECT_EQ(schema.numerical_indices().size(), 4u);
  EXPECT_EQ(schema.categorical_indices().size(), 5u);
  EXPECT_EQ(schema.column(0).name, "creationtime");
  EXPECT_EQ(schema.column(8).name, "workload");
}

TEST(Filters, FunnelIsMonotone) {
  GeneratorConfig cfg;
  cfg.model.days = 6.0;
  cfg.model.base_jobs_per_day = 250.0;
  RecordGenerator gen(cfg);
  const auto records = gen.generate();
  FilterFunnel funnel;
  const auto table = build_job_table(records, gen.catalog(), &funnel);
  EXPECT_EQ(funnel.gross, records.size());
  EXPECT_LE(funnel.parseable, funnel.gross);
  EXPECT_LE(funnel.daod_only, funnel.parseable);
  EXPECT_LE(funnel.complete, funnel.daod_only);
  EXPECT_EQ(funnel.complete, table.num_rows());
  EXPECT_GT(funnel.complete, 0u);
}

TEST(Filters, OnlyDaodRowsSurvive) {
  GeneratorConfig cfg;
  cfg.model.days = 4.0;
  cfg.model.base_jobs_per_day = 200.0;
  RecordGenerator gen(cfg);
  const auto table = build_job_table(gen.generate(), gen.catalog());
  const std::size_t dt_col = table.schema().index_of(features::kDataType);
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(table.label_at(dt_col, r).rfind("DAOD", 0), 0u);
  }
}

TEST(Filters, StatusVocabularyIsExpected) {
  GeneratorConfig cfg;
  cfg.model.days = 4.0;
  cfg.model.base_jobs_per_day = 300.0;
  RecordGenerator gen(cfg);
  const auto table = build_job_table(gen.generate(), gen.catalog());
  const std::size_t col = table.schema().index_of(features::kJobStatus);
  EXPECT_LE(table.cardinality(col), 4u);  // the paper's four statuses
  EXPECT_TRUE(table.code_of(col, "finished").has_value());
}

TEST(Filters, FunnelDescriptionHasFourStages) {
  FilterFunnel funnel;
  funnel.gross = 100;
  funnel.parseable = 90;
  funnel.daod_only = 60;
  funnel.complete = 55;
  const auto lines = funnel.describe();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("100"), std::string::npos);
  EXPECT_NE(lines[3].find("55"), std::string::npos);
}

}  // namespace
}  // namespace surro::panda
