// Schema validation, table storage, CSV round trips, splits, and summaries.

#include <gtest/gtest.h>

#include "tabular/schema.hpp"
#include "tabular/split.hpp"
#include "tabular/stats.hpp"
#include "tabular/table.hpp"
#include "tabular/table_io.hpp"

namespace surro::tabular {
namespace {

Schema mixed_schema() {
  return Schema({{"x", ColumnKind::kNumerical},
                 {"cat", ColumnKind::kCategorical},
                 {"y", ColumnKind::kNumerical}});
}

Table small_table() {
  Table t(mixed_schema());
  const char* labels[] = {"a", "b", "a", "c", "b"};
  for (int i = 0; i < 5; ++i) {
    auto row = t.make_row();
    row.set(0, static_cast<double>(i));
    row.set(1, std::string(labels[i]));
    row.set(2, static_cast<double>(i) * 10.0);
    t.append_row(row);
  }
  return t;
}

// ------------------------------------------------------------------ schema --

TEST(Schema, IndexAndContains) {
  const Schema s = mixed_schema();
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.index_of("cat"), 1u);
  EXPECT_TRUE(s.contains("y"));
  EXPECT_FALSE(s.contains("nope"));
  EXPECT_THROW(s.index_of("nope"), std::out_of_range);
}

TEST(Schema, KindPartitions) {
  const Schema s = mixed_schema();
  EXPECT_EQ(s.numerical_indices(), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(s.categorical_indices(), (std::vector<std::size_t>{1}));
}

TEST(Schema, RejectsDuplicatesAndEmptyNames) {
  EXPECT_THROW(Schema({{"a", ColumnKind::kNumerical},
                       {"a", ColumnKind::kCategorical}}),
               std::invalid_argument);
  EXPECT_THROW(Schema({{"", ColumnKind::kNumerical}}),
               std::invalid_argument);
}

TEST(Schema, Equality) {
  EXPECT_TRUE(mixed_schema() == mixed_schema());
  const Schema other({{"x", ColumnKind::kCategorical}});
  EXPECT_FALSE(mixed_schema() == other);
}

// ------------------------------------------------------------------- table --

TEST(Table, AppendAndAccess) {
  const Table t = small_table();
  EXPECT_EQ(t.num_rows(), 5u);
  EXPECT_DOUBLE_EQ(t.numerical(0)[3], 3.0);
  EXPECT_DOUBLE_EQ(t.numerical(2)[4], 40.0);
  EXPECT_EQ(t.label_at(1, 0), "a");
  EXPECT_EQ(t.label_at(1, 3), "c");
  EXPECT_EQ(t.cardinality(1), 3u);
}

TEST(Table, WrongKindAccessThrows) {
  const Table t = small_table();
  EXPECT_THROW(t.numerical(1), std::invalid_argument);
  EXPECT_THROW(t.categorical(0), std::invalid_argument);
}

TEST(Table, IncompleteRowThrows) {
  Table t(mixed_schema());
  auto row = t.make_row();
  row.set(0, 1.0);
  EXPECT_THROW(t.append_row(row), std::invalid_argument);
}

TEST(Table, CodeOfAndIntern) {
  Table t = small_table();
  EXPECT_EQ(t.code_of(1, "b").value(), 1);
  EXPECT_FALSE(t.code_of(1, "zz").has_value());
  const auto code = t.intern(1, "zz");
  EXPECT_EQ(t.code_of(1, "zz").value(), code);
  EXPECT_EQ(t.cardinality(1), 4u);
}

TEST(Table, AppendRowValuesFastPath) {
  Table t = small_table();
  const std::vector<double> nums = {99.0, 990.0};
  const std::vector<std::int32_t> cats = {2};
  t.append_row_values(nums, cats);
  EXPECT_EQ(t.num_rows(), 6u);
  EXPECT_DOUBLE_EQ(t.numerical(0)[5], 99.0);
  EXPECT_EQ(t.label_at(1, 5), "a" == t.vocabulary(1)[2] ? "a" : t.vocabulary(1)[2]);
}

TEST(Table, AppendRowValuesRejectsBadCode) {
  Table t = small_table();
  const std::vector<double> nums = {0.0, 0.0};
  const std::vector<std::int32_t> cats = {99};
  EXPECT_THROW(t.append_row_values(nums, cats), std::out_of_range);
}

TEST(Table, SelectRowsPreservesVocab) {
  const Table t = small_table();
  const std::vector<std::size_t> idx = {4, 0};
  const Table sub = t.select_rows(idx);
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(sub.numerical(0)[0], 4.0);
  EXPECT_EQ(sub.label_at(1, 0), "b");
  EXPECT_EQ(sub.cardinality(1), 3u);  // vocab copied wholesale
}

TEST(Table, SelectRowsOutOfRangeThrows) {
  const Table t = small_table();
  const std::vector<std::size_t> idx = {99};
  EXPECT_THROW(t.select_rows(idx), std::out_of_range);
}

TEST(Table, Head) {
  const Table t = small_table();
  EXPECT_EQ(t.head(2).num_rows(), 2u);
  EXPECT_EQ(t.head(100).num_rows(), 5u);
}

TEST(Table, AppendTableMergesVocabularies) {
  Table a = small_table();
  Table b(mixed_schema());
  auto row = b.make_row();
  row.set(0, 7.0);
  row.set(1, std::string("zzz"));  // label unknown to a
  row.set(2, 70.0);
  b.append_row(row);

  a.append_table(b);
  EXPECT_EQ(a.num_rows(), 6u);
  EXPECT_EQ(a.label_at(1, 5), "zzz");
  EXPECT_EQ(a.cardinality(1), 4u);
}

TEST(Table, AppendTableRemapsDifferentlyOrderedVocabularies) {
  // Same labels, interned in different orders: a = [red, green],
  // b = [green, blue, red]. Appending must remap b's codes onto a's
  // vocabulary so every row keeps its *label*, not its code.
  const Schema schema({{"v", ColumnKind::kNumerical},
                       {"color", ColumnKind::kCategorical}});
  Table a(schema);
  for (const char* label : {"red", "green", "red"}) {
    auto row = a.make_row();
    row.set(0, static_cast<double>(a.num_rows()));
    row.set(1, std::string(label));
    a.append_row(row);
  }
  Table b(schema);
  for (const char* label : {"green", "blue", "red", "blue"}) {
    auto row = b.make_row();
    row.set(0, 100.0 + static_cast<double>(b.num_rows()));
    row.set(1, std::string(label));
    b.append_row(row);
  }
  // The two tables disagree on every shared code assignment.
  EXPECT_EQ(a.code_of(1, "green"), 1);
  EXPECT_EQ(b.code_of(1, "green"), 0);
  EXPECT_EQ(a.code_of(1, "red"), 0);
  EXPECT_EQ(b.code_of(1, "red"), 2);

  a.append_table(b);
  ASSERT_EQ(a.num_rows(), 7u);
  const std::vector<std::string> expected = {"red",  "green", "red", "green",
                                             "blue", "red",   "blue"};
  for (std::size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(a.label_at(1, r), expected[r]) << "row " << r;
  }
  // Merged vocabulary: a's order first, new labels appended.
  EXPECT_EQ(a.vocabulary(1),
            (std::vector<std::string>{"red", "green", "blue"}));
  // Remapped codes stay dense and valid.
  for (const std::int32_t code : a.categorical(1)) {
    EXPECT_GE(code, 0);
    EXPECT_LT(code, 3);
  }
  // b itself is untouched by the merge.
  EXPECT_EQ(b.label_at(1, 0), "green");
  EXPECT_EQ(b.cardinality(1), 3u);
}

TEST(Table, AppendTableSchemaMismatchThrows) {
  Table a = small_table();
  Table b{Schema({{"q", ColumnKind::kNumerical}})};
  EXPECT_THROW(a.append_table(b), std::invalid_argument);
}

TEST(Table, AdoptVocabulary) {
  Table t(mixed_schema());
  t.intern(1, "a");
  t.adopt_vocabulary(1, {"a", "b", "c"});
  EXPECT_EQ(t.cardinality(1), 3u);
  // Prefix-incompatible adoption fails.
  EXPECT_THROW(t.adopt_vocabulary(1, {"x", "b", "c"}),
               std::invalid_argument);
  // Shrinking fails.
  EXPECT_THROW(t.adopt_vocabulary(1, {"a"}), std::invalid_argument);
}

// --------------------------------------------------------------------- io --

TEST(TableIo, CsvRoundTrip) {
  const Table t = small_table();
  const std::string csv = to_csv(t);
  const Table back = from_csv(t.schema(), csv);
  ASSERT_EQ(back.num_rows(), t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(back.numerical(0)[r], t.numerical(0)[r]);
    EXPECT_DOUBLE_EQ(back.numerical(2)[r], t.numerical(2)[r]);
    EXPECT_EQ(back.label_at(1, r), t.label_at(1, r));
  }
}

TEST(TableIo, RoundTripPreservesFullPrecision) {
  Table t{Schema({{"v", ColumnKind::kNumerical}})};
  auto row = t.make_row();
  row.set(0, 0.1234567890123456789);
  t.append_row(row);
  const Table back = from_csv(t.schema(), to_csv(t));
  EXPECT_DOUBLE_EQ(back.numerical(0)[0], t.numerical(0)[0]);
}

TEST(TableIo, MissingColumnThrows) {
  EXPECT_THROW(from_csv(mixed_schema(), "x,cat\n1,a\n"), std::runtime_error);
}

TEST(TableIo, BadNumericCellThrows) {
  EXPECT_THROW(from_csv(mixed_schema(), "x,cat,y\noops,a,2\n"),
               std::runtime_error);
}

TEST(TableIo, ExtraCsvColumnsIgnored) {
  const Table t =
      from_csv(mixed_schema(), "x,cat,extra,y\n1,a,junk,2\n");
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(t.numerical(2)[0], 2.0);
}

// ------------------------------------------------------------------- split --

TEST(Split, ShuffledKeepsAllRows) {
  const Table t = small_table();
  util::Rng rng(1);
  const Table s = shuffled(t, rng);
  EXPECT_EQ(s.num_rows(), t.num_rows());
  double sum = 0.0;
  for (const double v : s.numerical(0)) sum += v;
  EXPECT_DOUBLE_EQ(sum, 0.0 + 1 + 2 + 3 + 4);
}

TEST(Split, TrainTestProportions) {
  Table t(mixed_schema());
  for (int i = 0; i < 100; ++i) {
    auto row = t.make_row();
    row.set(0, static_cast<double>(i));
    row.set(1, std::string("x"));
    row.set(2, 0.0);
    t.append_row(row);
  }
  util::Rng rng(2);
  const auto split = train_test_split(t, 0.8, rng);
  EXPECT_EQ(split.train.num_rows(), 80u);
  EXPECT_EQ(split.test.num_rows(), 20u);
}

TEST(Split, InvalidFractionThrows) {
  const Table t = small_table();
  util::Rng rng(3);
  EXPECT_THROW(train_test_split(t, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(train_test_split(t, 1.0, rng), std::invalid_argument);
}

TEST(Split, FoldRangesCoverEverything) {
  const auto folds = fold_ranges(10, 3);
  ASSERT_EQ(folds.size(), 3u);
  EXPECT_EQ(folds[0], (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(folds[2].second, 10u);
}

// ------------------------------------------------------------------- stats --

TEST(Stats, NumericalSummary) {
  const Table t = small_table();
  const auto s = summarize_numerical(t, 0);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.num_unique, 5u);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);
}

TEST(Stats, CategoricalSummaryTopCounts) {
  const Table t = small_table();
  const auto s = summarize_categorical(t, 1, 2);
  EXPECT_EQ(s.cardinality, 3u);
  ASSERT_EQ(s.top_counts.size(), 2u);
  // a and b both occur twice; ties break alphabetically.
  EXPECT_EQ(s.top_counts[0].first, "a");
  EXPECT_EQ(s.top_counts[0].second, 2u);
}

TEST(Stats, CategoryFrequenciesSumToOne) {
  const Table t = small_table();
  const auto freq = category_frequencies(t, 1);
  double sum = 0.0;
  for (const double f : freq) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Stats, ProfileLinesMentionEveryColumn) {
  const Table t = small_table();
  const auto lines = profile_lines(t);
  ASSERT_EQ(lines.size(), 4u);  // header + 3 columns
  EXPECT_NE(lines[1].find("x"), std::string::npos);
  EXPECT_NE(lines[2].find("categorical"), std::string::npos);
}

}  // namespace
}  // namespace surro::tabular
