// GEMM kernels vs. naive references, elementwise ops, and row utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "linalg/ops.hpp"
#include "util/rng.hpp"

namespace surro::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (float& v : m.flat()) v = static_cast<float>(rng.normal());
  return m;
}

Matrix naive_gemm(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a(i, k)) * b(k, j);
      }
      out(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

void expect_close(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.flat()[i], b.flat()[i], tol) << "at flat index " << i;
  }
}

TEST(Matrix, BasicAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  m(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 7.0f);
  EXPECT_FLOAT_EQ(m.row(1)[2], 7.0f);
}

TEST(Matrix, ReshapeKeepsData) {
  Matrix m(2, 3);
  for (std::size_t i = 0; i < 6; ++i) m.flat()[i] = static_cast<float>(i);
  m.reshape(3, 2);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_FLOAT_EQ(m(2, 1), 5.0f);
}

TEST(Matrix, FromRows) {
  const std::vector<float> vals = {1, 2, 3, 4};
  const auto m = Matrix::from_rows(2, 2, vals);
  EXPECT_FLOAT_EQ(m(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 3.0f);
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(m * 1000 + k * 10 + n));
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix out;
  gemm(a, b, out);
  expect_close(out, naive_gemm(a, b));
}

TEST_P(GemmShapes, TransposedVariantsMatchNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(99);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix bt = random_matrix(n, k, rng);  // b = bt^T
  Matrix out_nt;
  gemm_nt(a, bt, out_nt);
  // Reference: a * bt^T
  Matrix b(k, n);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) {
      b(i, j) = bt(j, i);
    }
  }
  expect_close(out_nt, naive_gemm(a, b));

  const Matrix at = random_matrix(k, m, rng);  // a2 = at^T
  const Matrix b2 = random_matrix(k, n, rng);
  Matrix out_tn;
  gemm_tn(at, b2, out_tn);
  Matrix a2(m, k);
  for (std::size_t i = 0; i < static_cast<std::size_t>(m); ++i) {
    for (std::size_t j = 0; j < static_cast<std::size_t>(k); ++j) {
      a2(i, j) = at(j, i);
    }
  }
  expect_close(out_tn, naive_gemm(a2, b2));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 4, 5),
                      std::make_tuple(16, 16, 16),
                      std::make_tuple(33, 7, 129),
                      std::make_tuple(64, 128, 32),
                      std::make_tuple(100, 1, 100)));

TEST(Ops, GemmAccAccumulates) {
  util::Rng rng(5);
  const Matrix a = random_matrix(4, 3, rng);
  const Matrix b = random_matrix(3, 5, rng);
  Matrix out(4, 5, 1.0f);
  gemm_acc(a, b, out);
  Matrix expected = naive_gemm(a, b);
  for (float& v : expected.flat()) v += 1.0f;
  expect_close(out, expected);
}

TEST(Ops, AddRowVector) {
  Matrix m(2, 3, 1.0f);
  const std::vector<float> bias = {1.0f, 2.0f, 3.0f};
  add_row_vector(m, bias);
  EXPECT_FLOAT_EQ(m(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m(1, 2), 4.0f);
}

TEST(Ops, ColSums) {
  Matrix m(3, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    m.flat()[i] = static_cast<float>(i + 1);  // 1..6
  }
  std::vector<float> sums(2, 0.0f);
  col_sums(m, sums);
  EXPECT_FLOAT_EQ(sums[0], 1.0f + 3.0f + 5.0f);
  EXPECT_FLOAT_EQ(sums[1], 2.0f + 4.0f + 6.0f);
}

TEST(Ops, ElementwiseAddSubHadamard) {
  util::Rng rng(6);
  const Matrix a = random_matrix(3, 3, rng);
  const Matrix b = random_matrix(3, 3, rng);
  Matrix sum;
  Matrix diff;
  Matrix prod;
  add(a, b, sum);
  sub(a, b, diff);
  hadamard(a, b, prod);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(sum.flat()[i], a.flat()[i] + b.flat()[i]);
    EXPECT_FLOAT_EQ(diff.flat()[i], a.flat()[i] - b.flat()[i]);
    EXPECT_FLOAT_EQ(prod.flat()[i], a.flat()[i] * b.flat()[i]);
  }
}

TEST(Ops, AxpyAndScale) {
  Matrix x(2, 2, 2.0f);
  Matrix y(2, 2, 1.0f);
  axpy(0.5f, x, y);
  for (const float v : y.flat()) EXPECT_FLOAT_EQ(v, 2.0f);
  scale(y, 3.0f);
  for (const float v : y.flat()) EXPECT_FLOAT_EQ(v, 6.0f);
}

TEST(Ops, SoftmaxRowsBlock) {
  Matrix m(2, 5, 0.0f);
  m(0, 2) = 100.0f;  // block [2,5): softmax concentrates on col 2
  softmax_rows(m, 2, 5);
  EXPECT_NEAR(m(0, 2), 1.0f, 1e-5);
  EXPECT_NEAR(m(0, 3), 0.0f, 1e-5);
  // Columns outside the block untouched.
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  // Row 1: uniform over 3 entries.
  EXPECT_NEAR(m(1, 2), 1.0f / 3.0f, 1e-5);
  float sum = m(1, 2) + m(1, 3) + m(1, 4);
  EXPECT_NEAR(sum, 1.0f, 1e-6);
}

TEST(Ops, FrobeniusNormAndMean) {
  Matrix m(1, 4);
  m.flat()[0] = 1.0f;
  m.flat()[1] = 2.0f;
  m.flat()[2] = 2.0f;
  m.flat()[3] = 0.0f;
  EXPECT_FLOAT_EQ(frobenius_norm(m), 3.0f);
  EXPECT_FLOAT_EQ(mean_all(m), 1.25f);
}

TEST(Ops, CopyAndGatherRows) {
  Matrix m(4, 2);
  for (std::size_t i = 0; i < 8; ++i) m.flat()[i] = static_cast<float>(i);
  Matrix sub_m;
  copy_rows(m, 1, 3, sub_m);
  EXPECT_EQ(sub_m.rows(), 2u);
  EXPECT_FLOAT_EQ(sub_m(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(sub_m(1, 1), 5.0f);

  const std::vector<std::size_t> idx = {3, 0, 3};
  Matrix gathered;
  gather_rows(m, idx, gathered);
  EXPECT_EQ(gathered.rows(), 3u);
  EXPECT_FLOAT_EQ(gathered(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(gathered(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(gathered(2, 1), 7.0f);
}

}  // namespace
}  // namespace surro::linalg
