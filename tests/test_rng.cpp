// RNG determinism, distribution moments, and alias-table correctness.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace surro::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(7);
  Rng split = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == split.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(4);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(5);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(n), n);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(11);
  std::vector<double> v(50001);
  for (auto& x : v) x = rng.lognormal(1.0, 0.5);
  std::nth_element(v.begin(), v.begin() + 25000, v.end());
  EXPECT_NEAR(v[25000], std::exp(1.0), 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GammaMeanVariance) {
  Rng rng(13);
  const double shape = 3.0;
  const double scale = 2.0;
  const int n = 100000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gamma(shape, scale);
    EXPECT_GT(g, 0.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, shape * scale, 0.1);
  EXPECT_NEAR(sq / n - mean * mean, shape * scale * scale, 0.5);
}

TEST(Rng, GammaSmallShape) {
  Rng rng(14);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gamma(0.5, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.poisson(3.5));
  }
  EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(Rng, PoissonLargeMean) {
  Rng rng(16);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.poisson(200.0));
  }
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(17);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(18);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ParetoBounds) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ParetoMedian) {
  Rng rng(20);
  std::vector<double> v(20001);
  for (auto& x : v) x = rng.pareto(1.0, 2.0);
  std::nth_element(v.begin(), v.begin() + 10000, v.end());
  // Median of Pareto(1, 2) is 2^(1/2).
  EXPECT_NEAR(v[10000], std::sqrt(2.0), 0.05);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(21);
  const std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.categorical(w)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(22);
  const auto p = rng.permutation(100);
  std::vector<std::size_t> sorted(p);
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  const auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (const auto v : s) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(24);
  const auto s = rng.sample_without_replacement(10, 10);
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(AliasTable, MatchesWeights) {
  const std::vector<double> w = {5.0, 1.0, 14.0, 0.0, 2.0};
  AliasTable table{std::span<const double>(w)};
  Rng rng(25);
  std::vector<int> counts(w.size(), 0);
  const int n = 220000;
  for (int i = 0; i < n; ++i) counts[table.sample(rng)]++;
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), w[i] / total, 0.01)
        << "outcome " << i;
  }
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const std::vector<double> w = {1.0, 0.0, 1.0};
  AliasTable table{std::span<const double>(w)};
  Rng rng(26);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(table.sample(rng), 1u);
}

TEST(AliasTable, SingleOutcome) {
  const std::vector<double> w = {3.0};
  AliasTable table{std::span<const double>(w)};
  Rng rng(27);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, NormalizedProbabilities) {
  const std::vector<double> w = {2.0, 6.0};
  AliasTable table{std::span<const double>(w)};
  EXPECT_NEAR(table.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(table.probability(1), 0.75, 1e-12);
}

class RngStreamTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngStreamTest, Chi2UniformityOfLowBits) {
  // Coarse uniformity of uniform_index(16) across several seeds.
  Rng rng(GetParam());
  std::vector<int> counts(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_index(16)]++;
  double chi2 = 0.0;
  const double expected = n / 16.0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 15 dof; 99.9th percentile ≈ 37.7.
  EXPECT_LT(chi2, 37.7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngStreamTest,
                         ::testing::Values(1, 2, 3, 99, 1234, 0xDEADBEEF));

}  // namespace
}  // namespace surro::util
