#pragma once
/// @file simd.hpp
/// Portable SIMD kernel layer with one-time runtime dispatch.
///
/// Every dense hot loop in the repo (GEMM variants, elementwise tensor ops,
/// softmax rows, k-NN distances, quantile/scaler transforms, the JSD
/// accumulator) funnels through the function-pointer table returned by
/// kernels(). The table is selected **once** at startup from the best
/// instruction set the CPU supports — AVX2+FMA on x86-64, NEON on aarch64,
/// plain scalar otherwise — and can be pinned for A/B testing with the
/// `SURRO_SIMD` environment variable (`scalar`, `avx2`, `neon`, or `auto`).
///
/// Determinism contract (docs/PERFORMANCE.md spells this out):
///  - Within one backend, every kernel is bitwise deterministic and the
///    reduction order is fixed per element, so results never depend on the
///    thread count of the caller's parallel loop.
///  - *Across* backends, the axpy-family kernels (axpy/acc/add/sub/mul/
///    scale/normalize/madd/interp_grid) produce bitwise-identical results
///    to scalar because they perform the same correctly-rounded per-element
///    operations in the same order. The dot-family kernels (dot/sq_l2 and
///    gemm_block) use FMA and per-lane accumulators, and the transcendental
///    kernels (softmax_row/jsd_acc) use polynomial exp/log, so their bytes
///    may differ from scalar by a few ULP — never within a backend.

#include <cstddef>
#include <string>
#include <vector>

namespace surro::linalg::simd {

/// The selectable instruction-set backends. kScalar is always available and
/// is the reference implementation the vectorized backends are tested
/// against.
enum class Backend {
  kScalar = 0,  ///< portable C++ loops; bitwise reference semantics
  kAvx2 = 1,    ///< x86-64 AVX2 + FMA (8 x f32 / 4 x f64 lanes)
  kNeon = 2,    ///< aarch64 NEON (4 x f32 / 2 x f64 lanes)
};

/// Stable lowercase name ("scalar", "avx2", "neon") used by `SURRO_SIMD`,
/// the `--simd` CLI flag, and every JSON artifact's "simd_backend" field.
[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// Parse a backend name as accepted by `SURRO_SIMD`. "auto" resolves to the
/// best backend this CPU supports. Throws std::invalid_argument on unknown
/// names.
[[nodiscard]] Backend parse_backend(const std::string& name);

/// True when `backend` was compiled in *and* this CPU can execute it.
[[nodiscard]] bool backend_available(Backend backend) noexcept;

/// Every available backend, scalar first.
[[nodiscard]] std::vector<Backend> available_backends();

/// The backend all kernels dispatch to. Resolved once, on first use, from
/// `SURRO_SIMD` (falling back to CPU auto-detection when unset, "auto", or
/// naming an unavailable backend — the fallback warns on stderr).
[[nodiscard]] Backend active_backend() noexcept;

/// backend_name(active_backend()) — the string logged by `surro_cli
/// version` / `serve` and embedded in stats artifacts.
[[nodiscard]] const char* active_backend_name() noexcept;

/// Re-point the dispatch table at `backend` (must be available; throws
/// std::invalid_argument otherwise). Intended for tests and benchmarks that
/// A/B backends inside one process; production code should rely on the
/// startup selection. Not safe to call concurrently with running kernels.
void force_backend(Backend backend);

/// The per-backend kernel table. All pointers are non-null in every table;
/// backends without a native implementation of a kernel alias the scalar
/// one (e.g. NEON's transcendentals). Pointer-based dispatch keeps the
/// per-call overhead to one relaxed atomic load.
struct Kernels {
  // -- f32 axpy family (bitwise identical across backends) ----------------
  /// y[i] += a * x[i]  (no FMA — mul then add, matching scalar rounding)
  void (*axpy_f32)(float a, const float* x, float* y, std::size_t n);
  /// y[i] += x[i]
  void (*acc_f32)(const float* x, float* y, std::size_t n);
  /// out[i] = a[i] + b[i]
  void (*add_f32)(const float* a, const float* b, float* out, std::size_t n);
  /// out[i] = a[i] - b[i]
  void (*sub_f32)(const float* a, const float* b, float* out, std::size_t n);
  /// out[i] = a[i] * b[i]
  void (*mul_f32)(const float* a, const float* b, float* out, std::size_t n);
  /// x[i] *= a
  void (*scale_f32)(float a, float* x, std::size_t n);

  // -- f32 dot family (per-backend ULP differences, fixed lane order) -----
  /// C += A * B for a row panel: A is (m,k) with row stride `lda`, B is
  /// (k,n) with stride `ldb`, C is (m,n) with stride `ldc`. Register-tiled
  /// micro-kernel; each element's accumulation order is k-ascending and a
  /// k-step applies iff that row's A value is nonzero, so results are
  /// independent of how the caller chunks rows across threads. Vector
  /// backends use FMA, so bytes may differ from scalar by a few ULP.
  void (*gemm_block_f32)(const float* a, std::size_t lda, const float* b,
                         std::size_t ldb, float* c, std::size_t ldc,
                         std::size_t m, std::size_t k, std::size_t n);
  /// sum_i a[i] * b[i]
  float (*dot_f32)(const float* a, const float* b, std::size_t n);
  /// sum_i (a[i] - b[i])^2   (squared Euclidean distance)
  float (*sq_l2_f32)(const float* a, const float* b, std::size_t n);

  // -- f32 transcendental (per-backend ULP differences) -------------------
  /// In-place numerically-stable softmax over row[0..n).
  void (*softmax_row_f32)(float* row, std::size_t n);

  // -- f64 elementwise (bitwise identical across backends) ----------------
  /// out[i] = (x[i] - shift) / denom  (min-max / standard scaling)
  void (*normalize_f64)(const double* x, double shift, double denom,
                        double* out, std::size_t n);
  /// out[i] = x[i] * a + b  (inverse scaling; mul then add, no FMA)
  void (*madd_f64)(const double* x, double a, double b, double* out,
                   std::size_t n);
  /// Linear interpolation into a uniform quantile grid: for each p[i]
  /// (clamped to [0,1]), pos = p * (grid_n - 1), cell = min(floor(pos),
  /// grid_n - 2), out[i] = q[cell] * (1 - frac) + q[cell + 1] * frac.
  /// The inverse-CDF hot loop of the quantile transformer.
  void (*interp_grid_f64)(const double* quantiles, std::size_t grid_n,
                          const double* p, double* out, std::size_t n);

  // -- f64 transcendental (per-backend ULP differences) -------------------
  /// Jensen–Shannon accumulator over aligned histograms:
  /// sum_i [p_i > 0] 0.5 p_i log2(p_i / m_i) + [q_i > 0] 0.5 q_i
  /// log2(q_i / m_i) with m = (p + q) / 2.
  double (*jsd_acc_f64)(const double* p, const double* q, std::size_t n);
};

/// The active backend's kernel table (one relaxed atomic pointer load).
[[nodiscard]] const Kernels& kernels() noexcept;

/// A specific backend's table, for scalar-vs-SIMD agreement tests and the
/// kernel benchmark. Throws std::invalid_argument when unavailable.
[[nodiscard]] const Kernels& kernels_for(Backend backend);

}  // namespace surro::linalg::simd
