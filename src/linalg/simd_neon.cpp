// NEON kernel backend (aarch64). Arithmetic kernels use 4 x f32 / 2 x f64
// lanes with explicit mul-then-add so the axpy family stays bitwise
// identical to the scalar backend; the transcendental kernels
// (softmax_row / jsd_acc) and the gather-style interp_grid alias the same
// portable loops as the scalar table — NEON has no gather, and a
// polynomial exp/log port buys little on the matrix sizes this repo runs.
// This translation unit compiles to the nullptr stub on non-ARM targets.
#include "linalg/simd.hpp"

#if defined(__ARM_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

namespace surro::linalg::simd {
namespace {

void axpy_f32_neon(float a, const float* x, float* y, std::size_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t prod = vmulq_f32(va, vld1q_f32(x + i));
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void acc_f32_neon(const float* x, float* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void add_f32_neon(const float* a, const float* b, float* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void sub_f32_neon(const float* a, const float* b, float* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void mul_f32_neon(const float* a, const float* b, float* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void scale_f32_neon(float a, float* x, std::size_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vmulq_f32(vld1q_f32(x + i), va));
  }
  for (; i < n; ++i) x[i] *= a;
}

// MR=4 x NR=4 register tile, accumulators seeded from C, k-ascending per
// element — same bitwise contract as the scalar/AVX2 micro-kernels.
void gemm_block_f32_neon(const float* a, std::size_t lda, const float* b,
                         std::size_t ldb, float* c, std::size_t ldc,
                         std::size_t m, std::size_t k, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + i * lda;
    const float* a1 = a0 + lda;
    const float* a2 = a1 + lda;
    const float* a3 = a2 + lda;
    float* c0 = c + i * ldc;
    float* c1 = c0 + ldc;
    float* c2 = c1 + ldc;
    float* c3 = c2 + ldc;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      float32x4_t acc0 = vld1q_f32(c0 + j);
      float32x4_t acc1 = vld1q_f32(c1 + j);
      float32x4_t acc2 = vld1q_f32(c2 + j);
      float32x4_t acc3 = vld1q_f32(c3 + j);
      for (std::size_t p = 0; p < k; ++p) {
        const float av0 = a0[p];
        const float av1 = a1[p];
        const float av2 = a2[p];
        const float av3 = a3[p];
        if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f)
          continue;
        // Per-row skip mirrors the scalar reference exactly (including the
        // sign of zero) and is independent of tile grouping.
        const float32x4_t bv = vld1q_f32(b + p * ldb + j);
        if (av0 != 0.0f) acc0 = vaddq_f32(acc0, vmulq_f32(vdupq_n_f32(av0), bv));
        if (av1 != 0.0f) acc1 = vaddq_f32(acc1, vmulq_f32(vdupq_n_f32(av1), bv));
        if (av2 != 0.0f) acc2 = vaddq_f32(acc2, vmulq_f32(vdupq_n_f32(av2), bv));
        if (av3 != 0.0f) acc3 = vaddq_f32(acc3, vmulq_f32(vdupq_n_f32(av3), bv));
      }
      vst1q_f32(c0 + j, acc0);
      vst1q_f32(c1 + j, acc1);
      vst1q_f32(c2 + j, acc2);
      vst1q_f32(c3 + j, acc3);
    }
    if (j < n) {
      for (std::size_t r = 0; r < 4; ++r) {
        const float* ar = a + (i + r) * lda;
        float* cr = c + (i + r) * ldc;
        for (std::size_t p = 0; p < k; ++p) {
          const float av = ar[p];
          if (av == 0.0f) continue;
          const float* br = b + p * ldb;
          for (std::size_t jj = j; jj < n; ++jj) cr[jj] += av * br[jj];
        }
      }
    }
  }
  for (; i < m; ++i) {
    const float* ar = a + i * lda;
    float* cr = c + i * ldc;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      float32x4_t acc = vld1q_f32(cr + j);
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ar[p];
        if (av == 0.0f) continue;
        acc = vaddq_f32(acc,
                        vmulq_f32(vdupq_n_f32(av), vld1q_f32(b + p * ldb + j)));
      }
      vst1q_f32(cr + j, acc);
    }
    if (j < n) {
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ar[p];
        if (av == 0.0f) continue;
        const float* br = b + p * ldb;
        for (std::size_t jj = j; jj < n; ++jj) cr[jj] += av * br[jj];
      }
    }
  }
}

float dot_f32_neon(const float* a, const float* b, std::size_t n) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = vfmaq_f32(acc, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float r = vaddvq_f32(acc);
  for (; i < n; ++i) r += a[i] * b[i];
  return r;
}

float sq_l2_f32_neon(const float* a, const float* b, std::size_t n) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t d = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc = vfmaq_f32(acc, d, d);
  }
  float r = vaddvq_f32(acc);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    r += d * d;
  }
  return r;
}

void softmax_row_f32_neon(float* row, std::size_t n) {
  // Portable loop (same semantics as the scalar table): a NEON polynomial
  // exp gains little at these row widths and would add a second ULP class.
  if (n == 0) return;
  float mx = row[0];
  for (std::size_t i = 1; i < n; ++i) mx = std::max(mx, row[i]);
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    row[i] = std::exp(row[i] - mx);
    sum += row[i];
  }
  for (std::size_t i = 0; i < n; ++i) row[i] /= sum;
}

void normalize_f64_neon(const double* x, double shift, double denom,
                        double* out, std::size_t n) {
  const float64x2_t vs = vdupq_n_f64(shift);
  const float64x2_t vd = vdupq_n_f64(denom);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vdivq_f64(vsubq_f64(vld1q_f64(x + i), vs), vd));
  }
  for (; i < n; ++i) out[i] = (x[i] - shift) / denom;
}

void madd_f64_neon(const double* x, double a, double b, double* out,
                   std::size_t n) {
  const float64x2_t va = vdupq_n_f64(a);
  const float64x2_t vb = vdupq_n_f64(b);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vaddq_f64(vmulq_f64(vld1q_f64(x + i), va), vb));
  }
  for (; i < n; ++i) out[i] = x[i] * a + b;
}

void interp_grid_f64_neon(const double* q, std::size_t grid_n,
                          const double* p, double* out, std::size_t n) {
  // No gather on NEON; the portable loop is already load-bound here.
  const double scale = (double)(grid_n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    double pv = p[i];
    if (pv < 0.0) pv = 0.0;
    if (pv > 1.0) pv = 1.0;
    const double pos = pv * scale;
    std::size_t cell = (std::size_t)pos;
    if (cell > grid_n - 2) cell = grid_n - 2;
    const double frac = pos - (double)cell;
    out[i] = q[cell] * (1.0 - frac) + q[cell + 1] * frac;
  }
}

double jsd_acc_f64_neon(const double* p, const double* q, std::size_t n) {
  // Portable loop; log() dominates and stays in libm on this backend.
  const double log2e = 1.0 / std::log(2.0);
  double jsd = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double m = 0.5 * (p[i] + q[i]);
    if (p[i] > 0.0) jsd += 0.5 * p[i] * std::log(p[i] / m) * log2e;
    if (q[i] > 0.0) jsd += 0.5 * q[i] * std::log(q[i] / m) * log2e;
  }
  return jsd;
}

const Kernels kNeonKernels = {
    axpy_f32_neon,        acc_f32_neon,        add_f32_neon,
    sub_f32_neon,         mul_f32_neon,        scale_f32_neon,
    gemm_block_f32_neon,  dot_f32_neon,        sq_l2_f32_neon,
    softmax_row_f32_neon, normalize_f64_neon,  madd_f64_neon,
    interp_grid_f64_neon, jsd_acc_f64_neon,
};

}  // namespace

const Kernels* neon_kernels_table() noexcept { return &kNeonKernels; }

}  // namespace surro::linalg::simd

#else  // !__ARM_NEON

namespace surro::linalg::simd {
const Kernels* neon_kernels_table() noexcept { return nullptr; }
}  // namespace surro::linalg::simd

#endif
