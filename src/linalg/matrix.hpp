#pragma once
// Row-major dense matrix of float. This is the tensor type of the NN engine:
// a batch is (rows = batch size, cols = features). Kept deliberately small —
// storage + shape + element access — with all kernels in linalg/ops.hpp so
// they can be tested and benchmarked in isolation.

#include <cassert>
#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

namespace surro::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::span<const float> values) {
    assert(values.size() == rows * cols);
    Matrix m(rows, cols);
    std::copy(values.begin(), values.end(), m.data_.begin());
    return m;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<float> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<float> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const float> flat() const noexcept { return data_; }

  void fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }
  void zero() noexcept { fill(0.0f); }

  /// Reshape without reallocation; total size must match.
  void reshape(std::size_t rows, std::size_t cols) noexcept {
    assert(rows * cols == data_.size());
    rows_ = rows;
    cols_ = cols;
  }

  /// Resize (contents unspecified afterwards except new cells zeroed by
  /// vector semantics only when growing; callers should fill).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

  friend bool operator==(const Matrix& a, const Matrix& b) noexcept {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Binary (de)serialization: shape + raw IEEE-754 floats (see
/// util/serialize.hpp for the byte conventions).
void save_matrix(std::ostream& os, const Matrix& m);
[[nodiscard]] Matrix load_matrix(std::istream& is);

}  // namespace surro::linalg
