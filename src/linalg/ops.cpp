#include "linalg/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/thread_pool.hpp"

namespace surro::linalg {

namespace {
// Rows-per-task grain: GEMM over fewer rows than this stays serial.
constexpr std::size_t kRowGrain = 16;
}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  if (out.rows() != m || out.cols() != n) out.resize(m, n);
  out.zero();
  util::parallel_for(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        // i-k-j loop order: streams through b row-wise (cache friendly).
        for (std::size_t i = lo; i < hi; ++i) {
          float* out_row = out.data() + i * n;
          const float* a_row = a.data() + i * k;
          for (std::size_t p = 0; p < k; ++p) {
            const float av = a_row[p];
            if (av == 0.0f) continue;
            const float* b_row = b.data() + p * n;
            for (std::size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
          }
        }
      },
      kRowGrain);
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  if (out.rows() != m || out.cols() != n) out.resize(m, n);
  util::parallel_for(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const float* a_row = a.data() + i * k;
          float* out_row = out.data() + i * n;
          for (std::size_t j = 0; j < n; ++j) {
            const float* b_row = b.data() + j * k;
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
            out_row[j] = acc;
          }
        }
      },
      kRowGrain);
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  if (out.rows() != m || out.cols() != n) out.resize(m, n);
  out.zero();
  gemm_tn_acc(a, b, out);
}

void gemm_tn_acc(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  const std::size_t k = a.rows();
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  assert(out.rows() == m && out.cols() == n);
  // Parallelize over output rows (columns of a) to avoid write conflicts.
  util::parallel_for(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t p = 0; p < k; ++p) {
          const float* a_row = a.data() + p * m;
          const float* b_row = b.data() + p * n;
          for (std::size_t i = lo; i < hi; ++i) {
            const float av = a_row[i];
            if (av == 0.0f) continue;
            float* out_row = out.data() + i * n;
            for (std::size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
          }
        }
      },
      kRowGrain);
}

void gemm_acc(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  assert(out.rows() == a.rows() && out.cols() == b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  util::parallel_for(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          float* out_row = out.data() + i * n;
          const float* a_row = a.data() + i * k;
          for (std::size_t p = 0; p < k; ++p) {
            const float av = a_row[p];
            if (av == 0.0f) continue;
            const float* b_row = b.data() + p * n;
            for (std::size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
          }
        }
      },
      kRowGrain);
}

void add_row_vector(Matrix& m, std::span<const float> bias) {
  assert(bias.size() == m.cols());
  const std::size_t n = m.cols();
  util::parallel_for(
      0, m.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          float* row = m.data() + i * n;
          for (std::size_t j = 0; j < n; ++j) row[j] += bias[j];
        }
      },
      kRowGrain * 8);
}

void col_sums(const Matrix& m, std::span<float> out) {
  assert(out.size() == m.cols());
  std::fill(out.begin(), out.end(), 0.0f);
  const std::size_t n = m.cols();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) out[j] += row[j];
  }
}

namespace {
template <typename F>
void elementwise(const Matrix& a, const Matrix& b, Matrix& out, F f) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  if (out.rows() != a.rows() || out.cols() != a.cols()) {
    out.resize(a.rows(), a.cols());
  }
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const std::size_t total = a.size();
  for (std::size_t i = 0; i < total; ++i) po[i] = f(pa[i], pb[i]);
}
}  // namespace

void add(const Matrix& a, const Matrix& b, Matrix& out) {
  elementwise(a, b, out, [](float x, float y) { return x + y; });
}
void sub(const Matrix& a, const Matrix& b, Matrix& out) {
  elementwise(a, b, out, [](float x, float y) { return x - y; });
}
void hadamard(const Matrix& a, const Matrix& b, Matrix& out) {
  elementwise(a, b, out, [](float x, float y) { return x * y; });
}

void axpy(float alpha, const Matrix& x, Matrix& y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  const float* px = x.data();
  float* py = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) py[i] += alpha * px[i];
}

void scale(Matrix& m, float alpha) {
  for (float& v : m.flat()) v *= alpha;
}

void softmax_rows(Matrix& m, std::size_t col_begin, std::size_t col_end) {
  assert(col_begin < col_end && col_end <= m.cols());
  const std::size_t n = m.cols();
  util::parallel_for(
      0, m.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          float* row = m.data() + i * n;
          float peak = row[col_begin];
          for (std::size_t j = col_begin + 1; j < col_end; ++j) {
            peak = std::max(peak, row[j]);
          }
          float sum = 0.0f;
          for (std::size_t j = col_begin; j < col_end; ++j) {
            row[j] = std::exp(row[j] - peak);
            sum += row[j];
          }
          for (std::size_t j = col_begin; j < col_end; ++j) row[j] /= sum;
        }
      },
      kRowGrain * 8);
}

float frobenius_norm(const Matrix& m) noexcept {
  double acc = 0.0;
  for (const float v : m.flat()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float mean_all(const Matrix& m) noexcept {
  if (m.empty()) return 0.0f;
  double acc = 0.0;
  for (const float v : m.flat()) acc += v;
  return static_cast<float>(acc / static_cast<double>(m.size()));
}

void copy_rows(const Matrix& src, std::size_t row_begin, std::size_t row_end,
               Matrix& out) {
  assert(row_begin <= row_end && row_end <= src.rows());
  const std::size_t n = src.cols();
  out.resize(row_end - row_begin, n);
  std::copy(src.data() + row_begin * n, src.data() + row_end * n, out.data());
}

void gather_rows(const Matrix& src, std::span<const std::size_t> indices,
                 Matrix& out) {
  const std::size_t n = src.cols();
  out.resize(indices.size(), n);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < src.rows());
    std::copy_n(src.data() + indices[i] * n, n, out.data() + i * n);
  }
}

}  // namespace surro::linalg
