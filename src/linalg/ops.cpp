#include "linalg/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/simd.hpp"
#include "util/thread_pool.hpp"

namespace surro::linalg {

namespace {
// Rows-per-task grain: GEMM over fewer rows than this stays serial.
constexpr std::size_t kRowGrain = 16;
// k-dimension block for the GEMM family: a KC-row panel of B (KC * n floats)
// stays resident in L1/L2 while a row tile of A streams over it. Fixed (not
// derived from thread count or matrix shape at run time) so accumulation
// order — k-ascending per output element — never varies between runs.
constexpr std::size_t kKC = 256;
}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  const std::size_t m = a.rows();
  const std::size_t n = b.cols();
  if (out.rows() != m || out.cols() != n) out.resize(m, n);
  out.zero();
  gemm_acc(a, b, out);
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  if (out.rows() != m || out.cols() != n) out.resize(m, n);
  const simd::Kernels& kern = simd::kernels();
  util::parallel_for(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const float* a_row = a.data() + i * k;
          float* out_row = out.data() + i * n;
          for (std::size_t j = 0; j < n; ++j) {
            out_row[j] = kern.dot_f32(a_row, b.data() + j * k, k);
          }
        }
      },
      kRowGrain);
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  if (out.rows() != m || out.cols() != n) out.resize(m, n);
  out.zero();
  gemm_tn_acc(a, b, out);
}

void gemm_tn_acc(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  const std::size_t k = a.rows();
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  assert(out.rows() == m && out.cols() == n);
  const simd::Kernels& kern = simd::kernels();
  // Parallelize over output rows (columns of a) to avoid write conflicts.
  util::parallel_for(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t p = 0; p < k; ++p) {
          const float* a_row = a.data() + p * m;
          const float* b_row = b.data() + p * n;
          for (std::size_t i = lo; i < hi; ++i) {
            const float av = a_row[i];
            if (av == 0.0f) continue;
            kern.axpy_f32(av, b_row, out.data() + i * n, n);
          }
        }
      },
      kRowGrain);
}

void gemm_acc(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  assert(out.rows() == a.rows() && out.cols() == b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  const simd::Kernels& kern = simd::kernels();
  util::parallel_for(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        // k is blocked in fixed kKC panels; within a panel the backend's
        // register-tiled micro-kernel accumulates k-ascending per element,
        // so every element's chain is fixed no matter how rows were
        // chunked across threads.
        for (std::size_t p0 = 0; p0 < k; p0 += kKC) {
          const std::size_t kc = std::min(kKC, k - p0);
          kern.gemm_block_f32(a.data() + lo * k + p0, k, b.data() + p0 * n, n,
                              out.data() + lo * n, n, hi - lo, kc, n);
        }
      },
      kRowGrain);
}

void add_row_vector(Matrix& m, std::span<const float> bias) {
  assert(bias.size() == m.cols());
  const std::size_t n = m.cols();
  const simd::Kernels& kern = simd::kernels();
  util::parallel_for(
      0, m.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          kern.acc_f32(bias.data(), m.data() + i * n, n);
        }
      },
      kRowGrain * 8);
}

void col_sums(const Matrix& m, std::span<float> out) {
  assert(out.size() == m.cols());
  std::fill(out.begin(), out.end(), 0.0f);
  const std::size_t n = m.cols();
  const simd::Kernels& kern = simd::kernels();
  // Row-sequential: per column the add order is row-ascending regardless of
  // backend or thread count.
  for (std::size_t i = 0; i < m.rows(); ++i) {
    kern.acc_f32(m.data() + i * n, out.data(), n);
  }
}

void add(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  if (out.rows() != a.rows() || out.cols() != a.cols()) {
    out.resize(a.rows(), a.cols());
  }
  simd::kernels().add_f32(a.data(), b.data(), out.data(), a.size());
}
void sub(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  if (out.rows() != a.rows() || out.cols() != a.cols()) {
    out.resize(a.rows(), a.cols());
  }
  simd::kernels().sub_f32(a.data(), b.data(), out.data(), a.size());
}
void hadamard(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  if (out.rows() != a.rows() || out.cols() != a.cols()) {
    out.resize(a.rows(), a.cols());
  }
  simd::kernels().mul_f32(a.data(), b.data(), out.data(), a.size());
}

void axpy(float alpha, const Matrix& x, Matrix& y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  simd::kernels().axpy_f32(alpha, x.data(), y.data(), x.size());
}

void scale(Matrix& m, float alpha) {
  simd::kernels().scale_f32(alpha, m.data(), m.size());
}

void softmax_rows(Matrix& m, std::size_t col_begin, std::size_t col_end) {
  assert(col_begin < col_end && col_end <= m.cols());
  const std::size_t n = m.cols();
  const std::size_t width = col_end - col_begin;
  const simd::Kernels& kern = simd::kernels();
  util::parallel_for(
      0, m.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          kern.softmax_row_f32(m.data() + i * n + col_begin, width);
        }
      },
      kRowGrain * 8);
}

float frobenius_norm(const Matrix& m) noexcept {
  double acc = 0.0;
  for (const float v : m.flat()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float mean_all(const Matrix& m) noexcept {
  if (m.empty()) return 0.0f;
  double acc = 0.0;
  for (const float v : m.flat()) acc += v;
  return static_cast<float>(acc / static_cast<double>(m.size()));
}

void copy_rows(const Matrix& src, std::size_t row_begin, std::size_t row_end,
               Matrix& out) {
  assert(row_begin <= row_end && row_end <= src.rows());
  const std::size_t n = src.cols();
  out.resize(row_end - row_begin, n);
  std::copy(src.data() + row_begin * n, src.data() + row_end * n, out.data());
}

void gather_rows(const Matrix& src, std::span<const std::size_t> indices,
                 Matrix& out) {
  const std::size_t n = src.cols();
  out.resize(indices.size(), n);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < src.rows());
    std::copy_n(src.data() + indices[i] * n, n, out.data() + i * n);
  }
}

}  // namespace surro::linalg
