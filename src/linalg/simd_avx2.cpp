// AVX2 + FMA kernel backend. This translation unit is compiled with
// -mavx2 -mfma -ffp-contract=off on x86-64 (see CMakeLists.txt); everywhere
// else the stub at the bottom reports the backend as unavailable.
//
// Kernel families (see simd.hpp):
//  - axpy family: explicit mul-then-add (never FMA) in the exact per-element
//    order of the scalar reference, so results are bitwise identical to the
//    scalar backend.
//  - dot family + transcendentals: FMA and polynomial exp/log with a fixed
//    lane-tree reduction — deterministic within this backend, a few ULP from
//    scalar.
#include "linalg/simd.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace surro::linalg::simd {
namespace {

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

// Fixed-order horizontal sum: (lo128 + hi128), then pairwise within 128.
inline float hsum_ps(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

inline double hsum_pd(__m256d v) {
  __m128d s = _mm_add_pd(_mm256_castpd256_pd128(v),
                         _mm256_extractf128_pd(v, 1));
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

inline float hmax_ps(__m256 v) {
  __m128 s = _mm_max_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

// Cephes-style exp for 8 floats (avx_mathfun lineage). Max error a couple
// of ULP over the softmax-relevant range; inputs are pre-clamped.
inline __m256 exp256_ps(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  x = _mm256_min_ps(x, _mm256_set1_ps(88.3762626647949f));
  x = _mm256_max_ps(x, _mm256_set1_ps(-88.3762626647949f));

  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(1.44269504088896341f),
                              _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), x);

  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, x);
  y = _mm256_add_ps(y, one);

  __m256i n = _mm256_cvttps_epi32(fx);
  n = _mm256_add_epi32(n, _mm256_set1_epi32(0x7f));
  n = _mm256_slli_epi32(n, 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(n));
}

// Cephes log (double) for 4 lanes. Caller guarantees x > 0 and finite.
inline __m256d log256_pd(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);

  // frexp: mantissa in [0.5, 1), unbiased exponent.
  const __m256i bits = _mm256_castpd_si256(x);
  __m256i expi = _mm256_srli_epi64(bits, 52);
  expi = _mm256_and_si256(expi, _mm256_set1_epi64x(0x7ff));
  expi = _mm256_sub_epi64(expi, _mm256_set1_epi64x(1022));
  __m256i mant =
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000fffffffffffffLL));
  mant = _mm256_or_si256(mant, _mm256_set1_epi64x(0x3fe0000000000000LL));
  __m256d m = _mm256_castsi256_pd(mant);
  // pack the four small int64 exponents into int32 lanes, then convert
  const __m256i packed = _mm256_permutevar8x32_epi32(
      expi, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
  __m256d e = _mm256_cvtepi32_pd(_mm256_castsi256_si128(packed));

  // m < sqrt(1/2): halve the exponent's pull, double the mantissa
  const __m256d mask =
      _mm256_cmp_pd(m, _mm256_set1_pd(0.70710678118654752440), _CMP_LT_OQ);
  e = _mm256_sub_pd(e, _mm256_and_pd(mask, one));
  m = _mm256_add_pd(m, _mm256_and_pd(mask, m));
  m = _mm256_sub_pd(m, one);

  const __m256d z = _mm256_mul_pd(m, m);
  __m256d p = _mm256_set1_pd(1.01875663804580931796e-4);
  p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(4.97494994976747001425e-1));
  p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(4.70579119878881725854e0));
  p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(1.44989225341610930846e1));
  p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(1.79368678507819816313e1));
  p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(7.70838733755885391666e0));
  __m256d q = _mm256_add_pd(m, _mm256_set1_pd(1.12873587189167450590e1));
  q = _mm256_fmadd_pd(q, m, _mm256_set1_pd(4.52279145837532221105e1));
  q = _mm256_fmadd_pd(q, m, _mm256_set1_pd(8.29875266912776603211e1));
  q = _mm256_fmadd_pd(q, m, _mm256_set1_pd(7.11544750618563894466e1));
  q = _mm256_fmadd_pd(q, m, _mm256_set1_pd(2.31251620126765340583e1));

  __m256d y = _mm256_mul_pd(_mm256_mul_pd(m, z), _mm256_div_pd(p, q));
  y = _mm256_fmadd_pd(e, _mm256_set1_pd(-2.121944400546905827679e-4), y);
  y = _mm256_fnmadd_pd(_mm256_set1_pd(0.5), z, y);
  __m256d r = _mm256_add_pd(m, y);
  r = _mm256_fmadd_pd(e, _mm256_set1_pd(0.693359375), r);
  return r;
}

// ---------------------------------------------------------------------------
// f32 axpy family — mul then add, never FMA, scalar element order
// ---------------------------------------------------------------------------

void axpy_f32_avx2(float a, const float* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void acc_f32_avx2(const float* x, float* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void add_f32_avx2(const float* a, const float* b, float* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i,
        _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void sub_f32_avx2(const float* a, const float* b, float* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i,
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void mul_f32_avx2(const float* a, const float* b, float* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i,
        _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void scale_f32_avx2(float a, float* x, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= a;
}

// Register-tiled C += A·B micro-kernel: MR=4 rows x NR=16 columns (two
// __m256 per row, eight accumulators) with FMA. gemm_block is in the
// documented-ULP family — its bytes may differ from the scalar backend
// (fused multiply-add skips the intermediate rounding) — but every
// per-element chain is fixed: k ascends, a p-step is applied iff that ROW's
// A value is nonzero, and the column partition into 16-wide / 8-wide /
// scalar-tail segments depends only on n. Which code path a row takes (the
// 4-row tile vs the m-tail below) therefore cannot change its result, so
// the caller's thread chunking — which decides exactly that — cannot
// change the output bytes.
void gemm_block_f32_avx2(const float* a, std::size_t lda, const float* b,
                         std::size_t ldb, float* c, std::size_t ldc,
                         std::size_t m, std::size_t k, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + i * lda;
    const float* a1 = a0 + lda;
    const float* a2 = a1 + lda;
    const float* a3 = a2 + lda;
    float* c0 = c + i * ldc;
    float* c1 = c0 + ldc;
    float* c2 = c1 + ldc;
    float* c3 = c2 + ldc;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256 acc0a = _mm256_loadu_ps(c0 + j);
      __m256 acc0b = _mm256_loadu_ps(c0 + j + 8);
      __m256 acc1a = _mm256_loadu_ps(c1 + j);
      __m256 acc1b = _mm256_loadu_ps(c1 + j + 8);
      __m256 acc2a = _mm256_loadu_ps(c2 + j);
      __m256 acc2b = _mm256_loadu_ps(c2 + j + 8);
      __m256 acc3a = _mm256_loadu_ps(c3 + j);
      __m256 acc3b = _mm256_loadu_ps(c3 + j + 8);
      for (std::size_t p = 0; p < k; ++p) {
        const float av0 = a0[p];
        const float av1 = a1[p];
        const float av2 = a2[p];
        const float av3 = a3[p];
        if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f)
          continue;
        const __m256 bva = _mm256_loadu_ps(b + p * ldb + j);
        const __m256 bvb = _mm256_loadu_ps(b + p * ldb + j + 8);
        // Per-row skip keeps a row's chain independent of how rows were
        // grouped into tiles — i.e. of the caller's thread chunking — and
        // preserves the sparsity win on one-hot-encoded inputs.
        if (av0 != 0.0f) {
          const __m256 va = _mm256_set1_ps(av0);
          acc0a = _mm256_fmadd_ps(va, bva, acc0a);
          acc0b = _mm256_fmadd_ps(va, bvb, acc0b);
        }
        if (av1 != 0.0f) {
          const __m256 va = _mm256_set1_ps(av1);
          acc1a = _mm256_fmadd_ps(va, bva, acc1a);
          acc1b = _mm256_fmadd_ps(va, bvb, acc1b);
        }
        if (av2 != 0.0f) {
          const __m256 va = _mm256_set1_ps(av2);
          acc2a = _mm256_fmadd_ps(va, bva, acc2a);
          acc2b = _mm256_fmadd_ps(va, bvb, acc2b);
        }
        if (av3 != 0.0f) {
          const __m256 va = _mm256_set1_ps(av3);
          acc3a = _mm256_fmadd_ps(va, bva, acc3a);
          acc3b = _mm256_fmadd_ps(va, bvb, acc3b);
        }
      }
      _mm256_storeu_ps(c0 + j, acc0a);
      _mm256_storeu_ps(c0 + j + 8, acc0b);
      _mm256_storeu_ps(c1 + j, acc1a);
      _mm256_storeu_ps(c1 + j + 8, acc1b);
      _mm256_storeu_ps(c2 + j, acc2a);
      _mm256_storeu_ps(c2 + j + 8, acc2b);
      _mm256_storeu_ps(c3 + j, acc3a);
      _mm256_storeu_ps(c3 + j + 8, acc3b);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 acc0 = _mm256_loadu_ps(c0 + j);
      __m256 acc1 = _mm256_loadu_ps(c1 + j);
      __m256 acc2 = _mm256_loadu_ps(c2 + j);
      __m256 acc3 = _mm256_loadu_ps(c3 + j);
      for (std::size_t p = 0; p < k; ++p) {
        const float av0 = a0[p];
        const float av1 = a1[p];
        const float av2 = a2[p];
        const float av3 = a3[p];
        if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f)
          continue;
        const __m256 bv = _mm256_loadu_ps(b + p * ldb + j);
        if (av0 != 0.0f)
          acc0 = _mm256_fmadd_ps(_mm256_set1_ps(av0), bv, acc0);
        if (av1 != 0.0f)
          acc1 = _mm256_fmadd_ps(_mm256_set1_ps(av1), bv, acc1);
        if (av2 != 0.0f)
          acc2 = _mm256_fmadd_ps(_mm256_set1_ps(av2), bv, acc2);
        if (av3 != 0.0f)
          acc3 = _mm256_fmadd_ps(_mm256_set1_ps(av3), bv, acc3);
      }
      _mm256_storeu_ps(c0 + j, acc0);
      _mm256_storeu_ps(c1 + j, acc1);
      _mm256_storeu_ps(c2 + j, acc2);
      _mm256_storeu_ps(c3 + j, acc3);
    }
    if (j < n) {
      // Scalar column tail: single-element FMA so the chain matches the
      // m-tail's scalar tail below exactly.
      for (std::size_t r = 0; r < 4; ++r) {
        const float* ar = a + (i + r) * lda;
        float* cr = c + (i + r) * ldc;
        for (std::size_t p = 0; p < k; ++p) {
          const float av = ar[p];
          if (av == 0.0f) continue;
          const float* br = b + p * ldb;
          for (std::size_t jj = j; jj < n; ++jj) {
            cr[jj] = __builtin_fmaf(av, br[jj], cr[jj]);
          }
        }
      }
    }
  }
  // m-tail: one row at a time, with the same column partition and the same
  // per-element chains as the tiled path above.
  for (; i < m; ++i) {
    const float* ar = a + i * lda;
    float* cr = c + i * ldc;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256 acca = _mm256_loadu_ps(cr + j);
      __m256 accb = _mm256_loadu_ps(cr + j + 8);
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ar[p];
        if (av == 0.0f) continue;
        const __m256 va = _mm256_set1_ps(av);
        acca = _mm256_fmadd_ps(va, _mm256_loadu_ps(b + p * ldb + j), acca);
        accb = _mm256_fmadd_ps(va, _mm256_loadu_ps(b + p * ldb + j + 8),
                               accb);
      }
      _mm256_storeu_ps(cr + j, acca);
      _mm256_storeu_ps(cr + j + 8, accb);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 acc = _mm256_loadu_ps(cr + j);
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ar[p];
        if (av == 0.0f) continue;
        acc = _mm256_fmadd_ps(_mm256_set1_ps(av),
                              _mm256_loadu_ps(b + p * ldb + j), acc);
      }
      _mm256_storeu_ps(cr + j, acc);
    }
    if (j < n) {
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ar[p];
        if (av == 0.0f) continue;
        const float* br = b + p * ldb;
        for (std::size_t jj = j; jj < n; ++jj) {
          cr[jj] = __builtin_fmaf(av, br[jj], cr[jj]);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// f32 dot family — FMA, fixed lane-tree reduction
// ---------------------------------------------------------------------------

float dot_f32_avx2(const float* a, const float* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                          acc);
  }
  float r = hsum_ps(acc);
  for (; i < n; ++i) r += a[i] * b[i];
  return r;
}

float sq_l2_f32_avx2(const float* a, const float* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  float r = hsum_ps(acc);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    r += d * d;
  }
  return r;
}

// ---------------------------------------------------------------------------
// f32 transcendental
// ---------------------------------------------------------------------------

void softmax_row_f32_avx2(float* row, std::size_t n) {
  if (n == 0) return;
  float mx;
  std::size_t i = 0;
  if (n >= 8) {
    __m256 vmax = _mm256_loadu_ps(row);
    for (i = 8; i + 8 <= n; i += 8)
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row + i));
    mx = hmax_ps(vmax);
  } else {
    mx = row[0];
    i = 1;
  }
  for (; i < n; ++i) mx = std::max(mx, row[i]);

  const __m256 vmx = _mm256_set1_ps(mx);
  __m256 vsum = _mm256_setzero_ps();
  for (i = 0; i + 8 <= n; i += 8) {
    const __m256 e = exp256_ps(_mm256_sub_ps(_mm256_loadu_ps(row + i), vmx));
    _mm256_storeu_ps(row + i, e);
    vsum = _mm256_add_ps(vsum, e);
  }
  float sum = hsum_ps(vsum);
  for (; i < n; ++i) {
    row[i] = std::exp(row[i] - mx);
    sum += row[i];
  }

  const __m256 vsumb = _mm256_set1_ps(sum);
  for (i = 0; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(row + i,
                     _mm256_div_ps(_mm256_loadu_ps(row + i), vsumb));
  }
  for (; i < n; ++i) row[i] /= sum;
}

// ---------------------------------------------------------------------------
// f64 elementwise — bitwise identical to scalar
// ---------------------------------------------------------------------------

void normalize_f64_avx2(const double* x, double shift, double denom,
                        double* out, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(shift);
  const __m256d vd = _mm256_set1_pd(denom);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_div_pd(_mm256_sub_pd(_mm256_loadu_pd(x + i), vs), vd));
  }
  for (; i < n; ++i) out[i] = (x[i] - shift) / denom;
}

void madd_f64_avx2(const double* x, double a, double b, double* out,
                   std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  const __m256d vb = _mm256_set1_pd(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(x + i), va), vb));
  }
  for (; i < n; ++i) out[i] = x[i] * a + b;
}

void interp_grid_f64_avx2(const double* q, std::size_t grid_n,
                          const double* p, double* out, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d vscale = _mm256_set1_pd((double)(grid_n - 1));
  const __m128i maxcell = _mm_set1_epi32((int)(grid_n - 2));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d pv = _mm256_loadu_pd(p + i);
    pv = _mm256_min_pd(_mm256_max_pd(pv, zero), one);
    const __m256d pos = _mm256_mul_pd(pv, vscale);
    __m128i cell = _mm256_cvttpd_epi32(pos);  // pos >= 0 so trunc == floor
    cell = _mm_min_epi32(cell, maxcell);
    const __m256d frac = _mm256_sub_pd(pos, _mm256_cvtepi32_pd(cell));
    // Masked gather with an all-ones mask: same loads as the plain gather,
    // but the explicit zero source avoids GCC's maybe-uninitialized warning
    // on _mm256_undefined_pd inside _mm256_i32gather_pd.
    const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    const __m256d q0 = _mm256_mask_i32gather_pd(zero, q, cell, all, 8);
    const __m256d q1 = _mm256_mask_i32gather_pd(zero, q + 1, cell, all, 8);
    const __m256d r =
        _mm256_add_pd(_mm256_mul_pd(q0, _mm256_sub_pd(one, frac)),
                      _mm256_mul_pd(q1, frac));
    _mm256_storeu_pd(out + i, r);
  }
  const double scale = (double)(grid_n - 1);
  for (; i < n; ++i) {
    double pv = p[i];
    if (pv < 0.0) pv = 0.0;
    if (pv > 1.0) pv = 1.0;
    const double pos = pv * scale;
    std::size_t cell = (std::size_t)pos;
    if (cell > grid_n - 2) cell = grid_n - 2;
    const double frac = pos - (double)cell;
    out[i] = q[cell] * (1.0 - frac) + q[cell + 1] * frac;
  }
}

// ---------------------------------------------------------------------------
// f64 transcendental
// ---------------------------------------------------------------------------

double jsd_acc_f64_avx2(const double* p, const double* q, std::size_t n) {
  const double log2e_s = 1.0 / std::log(2.0);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d log2e = _mm256_set1_pd(log2e_s);
  __m256d acc = zero;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d pv = _mm256_loadu_pd(p + i);
    const __m256d qv = _mm256_loadu_pd(q + i);
    const __m256d m = _mm256_mul_pd(half, _mm256_add_pd(pv, qv));
    const __m256d maskp = _mm256_cmp_pd(pv, zero, _CMP_GT_OQ);
    const __m256d maskq = _mm256_cmp_pd(qv, zero, _CMP_GT_OQ);
    // ratio 1.0 (log == 0) in masked-out lanes; the div may produce NaN
    // there (0/0) but it is blended away before use.
    const __m256d rp = _mm256_blendv_pd(one, _mm256_div_pd(pv, m), maskp);
    const __m256d rq = _mm256_blendv_pd(one, _mm256_div_pd(qv, m), maskq);
    const __m256d tp = _mm256_and_pd(
        maskp, _mm256_mul_pd(_mm256_mul_pd(half, pv), log256_pd(rp)));
    const __m256d tq = _mm256_and_pd(
        maskq, _mm256_mul_pd(_mm256_mul_pd(half, qv), log256_pd(rq)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_add_pd(tp, tq), log2e));
  }
  double r = hsum_pd(acc);
  for (; i < n; ++i) {
    const double m = 0.5 * (p[i] + q[i]);
    if (p[i] > 0.0) r += 0.5 * p[i] * std::log(p[i] / m) * log2e_s;
    if (q[i] > 0.0) r += 0.5 * q[i] * std::log(q[i] / m) * log2e_s;
  }
  return r;
}

const Kernels kAvx2Kernels = {
    axpy_f32_avx2,        acc_f32_avx2,        add_f32_avx2,
    sub_f32_avx2,         mul_f32_avx2,        scale_f32_avx2,
    gemm_block_f32_avx2,  dot_f32_avx2,        sq_l2_f32_avx2,
    softmax_row_f32_avx2, normalize_f64_avx2,  madd_f64_avx2,
    interp_grid_f64_avx2, jsd_acc_f64_avx2,
};

}  // namespace

const Kernels* avx2_kernels_table() noexcept { return &kAvx2Kernels; }

}  // namespace surro::linalg::simd

#else  // !(__AVX2__ && __FMA__)

namespace surro::linalg::simd {
const Kernels* avx2_kernels_table() noexcept { return nullptr; }
}  // namespace surro::linalg::simd

#endif
