// Matrix is header-only; this TU anchors the target so the build file stays
// uniform (one .cpp per module) and gives a home for any future out-of-line
// members.
#include "linalg/matrix.hpp"
