#include "linalg/matrix.hpp"

#include <stdexcept>

#include "util/serialize.hpp"

namespace surro::linalg {

void save_matrix(std::ostream& os, const Matrix& m) {
  util::io::write_tag(os, "MATX");
  util::io::write_u64(os, m.rows());
  util::io::write_u64(os, m.cols());
  for (const float v : m.flat()) util::io::write_f32(os, v);
}

Matrix load_matrix(std::istream& is) {
  util::io::expect_tag(is, "MATX");
  const auto rows = static_cast<std::size_t>(util::io::read_u64(is));
  const auto cols = static_cast<std::size_t>(util::io::read_u64(is));
  // A fitted production model may legitimately carry a large training
  // slice, so the matrix bound (2^28 floats = 1 GiB) is looser than the
  // generic vector cap — but still rejects corrupt length fields cheaply.
  constexpr std::size_t kMaxMatrixElements = 1ULL << 28;
  if (rows > kMaxMatrixElements || cols > kMaxMatrixElements ||
      (cols != 0 && rows > kMaxMatrixElements / cols)) {
    throw std::runtime_error("matrix: implausible serialized shape");
  }
  Matrix m(rows, cols);
  for (float& v : m.flat()) v = util::io::read_f32(is);
  return m;
}

}  // namespace surro::linalg
