#pragma once
/// @file ops.hpp
/// Dense kernels for the NN engine. The GEMM family is cache-blocked
/// (fixed KC panels over the shared-memory micro-kernels in simd.hpp) and
/// runs on the global thread pool; everything takes explicit output
/// matrices so the training loop can reuse buffers and stay
/// allocation-free in steady state.
///
/// All entry points dispatch through linalg::simd::kernels(), so the active
/// instruction-set backend (scalar / AVX2 / NEON) is selected once at
/// startup and can be pinned with `SURRO_SIMD`. Results are bitwise
/// deterministic for a given backend regardless of thread count: parallel
/// loops split over disjoint output rows and every output element's
/// reduction order is fixed (k-ascending for GEMM, row-ascending for
/// col_sums). See docs/PERFORMANCE.md for the full contract.

#include <span>

#include "linalg/matrix.hpp"

namespace surro::linalg {

/// out = a * b.           a: (m,k)  b: (k,n)  out: (m,n)
void gemm(const Matrix& a, const Matrix& b, Matrix& out);
/// out = a * b^T.         a: (m,k)  b: (n,k)  out: (m,n)
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& out);
/// out = a^T * b.         a: (k,m)  b: (k,n)  out: (m,n)
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& out);

/// out += a * b (accumulating variant used by gradient accumulation).
void gemm_acc(const Matrix& a, const Matrix& b, Matrix& out);
/// out += a^T * b (accumulating variant used by gradient accumulation).
void gemm_tn_acc(const Matrix& a, const Matrix& b, Matrix& out);

/// Broadcast-add a row vector (bias) to every row of m.
void add_row_vector(Matrix& m, std::span<const float> bias);
/// Column sums of m accumulated into out (size = cols). Row-sequential, so
/// the per-column add order never depends on threading.
void col_sums(const Matrix& m, std::span<float> out);

/// Elementwise out = a + b (shapes must match).
void add(const Matrix& a, const Matrix& b, Matrix& out);
/// Elementwise out = a - b (shapes must match).
void sub(const Matrix& a, const Matrix& b, Matrix& out);
/// Elementwise out = a ⊙ b (shapes must match).
void hadamard(const Matrix& a, const Matrix& b, Matrix& out);
/// In-place axpy over the flat storage: y += alpha * x.
void axpy(float alpha, const Matrix& x, Matrix& y);
/// In-place scale.
void scale(Matrix& m, float alpha);

/// Row-wise softmax over a column slice [col_begin, col_end) of m, in place.
/// Used for per-categorical-block softmax heads.
void softmax_rows(Matrix& m, std::size_t col_begin, std::size_t col_end);

/// Frobenius norm of all elements (double accumulator).
[[nodiscard]] float frobenius_norm(const Matrix& m) noexcept;
/// Mean of all elements (double accumulator).
[[nodiscard]] float mean_all(const Matrix& m) noexcept;

/// Copy a contiguous block of rows [row_begin, row_end) into `out`.
void copy_rows(const Matrix& src, std::size_t row_begin, std::size_t row_end,
               Matrix& out);
/// Gather rows by index list into `out` (out resized to match).
void gather_rows(const Matrix& src, std::span<const std::size_t> indices,
                 Matrix& out);

}  // namespace surro::linalg
