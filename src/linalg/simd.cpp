#include "linalg/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace surro::linalg::simd {

// Defined in simd_avx2.cpp / simd_neon.cpp. Each returns its kernel table
// when that backend was compiled into this binary, nullptr otherwise.
const Kernels* avx2_kernels_table() noexcept;
const Kernels* neon_kernels_table() noexcept;

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These mirror the seed's loops exactly: sequential
// element order, mul-then-add (no FMA), division kept as division. Every
// vectorized backend is tested against these.
// ---------------------------------------------------------------------------

void axpy_f32_scalar(float a, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void acc_f32_scalar(const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void add_f32_scalar(const float* a, const float* b, float* out,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void sub_f32_scalar(const float* a, const float* b, float* out,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void mul_f32_scalar(const float* a, const float* b, float* out,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void scale_f32_scalar(float a, float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

// C += A·B over a panel, i-k-j with the seed's zero-skip. Per output element
// the accumulation order is k-ascending and the skip depends only on that
// row's A values — the invariants every backend's micro-kernel must
// reproduce so results cannot depend on the caller's row chunking.
void gemm_block_f32_scalar(const float* a, std::size_t lda, const float* b,
                           std::size_t ldb, float* c, std::size_t ldc,
                           std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * ldb;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

float dot_f32_scalar(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float sq_l2_f32_scalar(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void softmax_row_f32_scalar(float* row, std::size_t n) {
  if (n == 0) return;
  float mx = row[0];
  for (std::size_t i = 1; i < n; ++i) mx = std::max(mx, row[i]);
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    row[i] = std::exp(row[i] - mx);
    sum += row[i];
  }
  for (std::size_t i = 0; i < n; ++i) row[i] /= sum;
}

void normalize_f64_scalar(const double* x, double shift, double denom,
                          double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = (x[i] - shift) / denom;
}

void madd_f64_scalar(const double* x, double a, double b, double* out,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] * a + b;
}

void interp_grid_f64_scalar(const double* q, std::size_t grid_n,
                            const double* p, double* out, std::size_t n) {
  const double scale = (double)(grid_n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    double pv = p[i];
    if (pv < 0.0) pv = 0.0;
    if (pv > 1.0) pv = 1.0;
    const double pos = pv * scale;
    std::size_t cell = (std::size_t)pos;
    if (cell > grid_n - 2) cell = grid_n - 2;
    const double frac = pos - (double)cell;
    out[i] = q[cell] * (1.0 - frac) + q[cell + 1] * frac;
  }
}

double jsd_acc_f64_scalar(const double* p, const double* q, std::size_t n) {
  const double log2e = 1.0 / std::log(2.0);
  double jsd = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double m = 0.5 * (p[i] + q[i]);
    if (p[i] > 0.0) jsd += 0.5 * p[i] * std::log(p[i] / m) * log2e;
    if (q[i] > 0.0) jsd += 0.5 * q[i] * std::log(q[i] / m) * log2e;
  }
  return jsd;
}

const Kernels kScalarKernels = {
    axpy_f32_scalar,    acc_f32_scalar,        add_f32_scalar,
    sub_f32_scalar,     mul_f32_scalar,        scale_f32_scalar,
    gemm_block_f32_scalar, dot_f32_scalar,     sq_l2_f32_scalar,
    softmax_row_f32_scalar, normalize_f64_scalar, madd_f64_scalar,
    interp_grid_f64_scalar, jsd_acc_f64_scalar,
};

bool cpu_has_avx2_fma() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Backend detect_best() noexcept {
  if (avx2_kernels_table() != nullptr && cpu_has_avx2_fma())
    return Backend::kAvx2;
  if (neon_kernels_table() != nullptr) return Backend::kNeon;
  return Backend::kScalar;
}

const Kernels* table_for(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return &kScalarKernels;
    case Backend::kAvx2:
      return cpu_has_avx2_fma() ? avx2_kernels_table() : nullptr;
    case Backend::kNeon:
      return neon_kernels_table();
  }
  return nullptr;
}

struct Dispatch {
  std::atomic<const Kernels*> table;
  std::atomic<int> backend;
};

Backend resolve_startup_backend() {
  Backend chosen = detect_best();
  if (const char* env = std::getenv("SURRO_SIMD");
      env != nullptr && *env != '\0') {
    try {
      const Backend requested = parse_backend(env);
      if (backend_available(requested)) {
        chosen = requested;
      } else {
        std::fprintf(stderr,
                     "[simd] SURRO_SIMD=%s unavailable on this host; "
                     "using %s\n",
                     env, backend_name(chosen));
      }
    } catch (const std::invalid_argument&) {
      std::fprintf(stderr,
                   "[simd] SURRO_SIMD=%s not recognised "
                   "(want auto|scalar|avx2|neon); using %s\n",
                   env, backend_name(chosen));
    }
  }
  return chosen;
}

Dispatch& dispatch() {
  static Dispatch d;
  static const bool initialized = [] {
    const Backend chosen = resolve_startup_backend();
    d.table.store(table_for(chosen), std::memory_order_relaxed);
    d.backend.store((int)chosen, std::memory_order_relaxed);
    return true;
  }();
  (void)initialized;
  return d;
}

}  // namespace

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

Backend parse_backend(const std::string& name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "neon") return Backend::kNeon;
  if (name == "auto") return detect_best();
  throw std::invalid_argument("unknown SIMD backend '" + name +
                              "' (want auto|scalar|avx2|neon)");
}

bool backend_available(Backend backend) noexcept {
  return table_for(backend) != nullptr;
}

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kNeon}) {
    if (backend_available(b)) out.push_back(b);
  }
  return out;
}

Backend active_backend() noexcept {
  return (Backend)dispatch().backend.load(std::memory_order_relaxed);
}

const char* active_backend_name() noexcept {
  return backend_name(active_backend());
}

void force_backend(Backend backend) {
  const Kernels* table = table_for(backend);
  if (table == nullptr) {
    throw std::invalid_argument(std::string("SIMD backend '") +
                                backend_name(backend) +
                                "' is not available on this host");
  }
  dispatch().table.store(table, std::memory_order_relaxed);
  dispatch().backend.store((int)backend, std::memory_order_relaxed);
}

const Kernels& kernels() noexcept {
  return *dispatch().table.load(std::memory_order_relaxed);
}

const Kernels& kernels_for(Backend backend) {
  const Kernels* table = table_for(backend);
  if (table == nullptr) {
    throw std::invalid_argument(std::string("SIMD backend '") +
                                backend_name(backend) +
                                "' is not available on this host");
  }
  return *table;
}

}  // namespace surro::linalg::simd
