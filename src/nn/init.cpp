#include "nn/init.hpp"

#include <cmath>

namespace surro::nn {

void xavier_uniform(linalg::Matrix& w, std::size_t fan_in,
                    std::size_t fan_out, util::Rng& rng) {
  const double a =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-a, a));
}

void kaiming_uniform(linalg::Matrix& w, std::size_t fan_in, util::Rng& rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in));
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-a, a));
}

void normal_init(linalg::Matrix& w, float stddev, util::Rng& rng) {
  for (float& v : w.flat()) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
}

}  // namespace surro::nn
