#include "nn/optimizer.hpp"

#include <cmath>

namespace surro::nn {

void Optimizer::add_params(const std::vector<Param*>& params) {
  params_.insert(params_.end(), params.begin(), params.end());
}

void Optimizer::clip_grad_norm(float max_norm) {
  if (max_norm <= 0.0f) return;
  double total = 0.0;
  for (const Param* p : params_) {
    for (const float g : p->grad.flat()) {
      total += static_cast<double>(g) * g;
    }
  }
  const double norm = std::sqrt(total);
  if (norm <= max_norm) return;
  const auto scale = static_cast<float>(max_norm / (norm + 1e-12));
  for (Param* p : params_) {
    for (float& g : p->grad.flat()) g *= scale;
  }
}

Sgd::Sgd(float lr, float momentum) : Optimizer(lr), momentum_(momentum) {}

void Sgd::step() {
  if (velocity_.size() != params_.size()) {
    velocity_.clear();
    velocity_.reserve(params_.size());
    for (const Param* p : params_) {
      velocity_.emplace_back(p->value.rows(), p->value.cols(), 0.0f);
    }
  }
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    float* v = velocity_[k].data();
    float* w = p.value.data();
    const float* g = p.grad.data();
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      v[i] = momentum_ * v[i] + g[i];
      w[i] -= lr_ * v[i];
    }
    p.zero_grad();
  }
}

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step() {
  if (m_.size() != params_.size()) {
    m_.clear();
    v_.clear();
    for (const Param* p : params_) {
      m_.emplace_back(p->value.rows(), p->value.cols(), 0.0f);
      v_.emplace_back(p->value.rows(), p->value.cols(), 0.0f);
    }
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    apply_decay(p.value);
    float* m = m_[k].data();
    float* v = v_[k].data();
    float* w = p.value.data();
    const float* g = p.grad.data();
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    p.zero_grad();
  }
}

AdamW::AdamW(float lr, float weight_decay, float beta1, float beta2,
             float eps)
    : Adam(lr, beta1, beta2, eps), weight_decay_(weight_decay) {}

void AdamW::apply_decay(linalg::Matrix& value) {
  // Decoupled decay: shrink weights directly, independent of the gradient.
  const float factor = 1.0f - lr_ * weight_decay_;
  for (float& w : value.flat()) w *= factor;
}

}  // namespace surro::nn
