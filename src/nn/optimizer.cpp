#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "util/serialize.hpp"

namespace surro::nn {

namespace {

/// Moment buffers are lazily allocated by step(); an optimizer saved before
/// its first step writes an empty buffer list, and load() mirrors that by
/// leaving the lazy path to allocate on the next step.
void save_moments(std::ostream& os, const std::vector<linalg::Matrix>& ms) {
  util::io::write_u64(os, ms.size());
  for (const auto& m : ms) linalg::save_matrix(os, m);
}

void load_moments(std::istream& is, std::vector<linalg::Matrix>& ms,
                  const std::vector<Param*>& params) {
  const std::size_t n = util::io::read_count(is);
  if (n != 0 && n != params.size()) {
    throw std::runtime_error("optimizer: moment count mismatch");
  }
  ms.clear();
  ms.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    ms.push_back(linalg::load_matrix(is));
    if (ms.back().rows() != params[k]->value.rows() ||
        ms.back().cols() != params[k]->value.cols()) {
      throw std::runtime_error("optimizer: moment shape mismatch");
    }
  }
}

}  // namespace

void Optimizer::add_params(const std::vector<Param*>& params) {
  params_.insert(params_.end(), params.begin(), params.end());
}

void Optimizer::clip_grad_norm(float max_norm) {
  if (max_norm <= 0.0f) return;
  double total = 0.0;
  for (const Param* p : params_) {
    for (const float g : p->grad.flat()) {
      total += static_cast<double>(g) * g;
    }
  }
  const double norm = std::sqrt(total);
  if (norm <= max_norm) return;
  const auto scale = static_cast<float>(max_norm / (norm + 1e-12));
  for (Param* p : params_) {
    for (float& g : p->grad.flat()) g *= scale;
  }
}

Sgd::Sgd(float lr, float momentum) : Optimizer(lr), momentum_(momentum) {}

void Sgd::step() {
  if (velocity_.size() != params_.size()) {
    velocity_.clear();
    velocity_.reserve(params_.size());
    for (const Param* p : params_) {
      velocity_.emplace_back(p->value.rows(), p->value.cols(), 0.0f);
    }
  }
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    float* v = velocity_[k].data();
    float* w = p.value.data();
    const float* g = p.grad.data();
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      v[i] = momentum_ * v[i] + g[i];
      w[i] -= lr_ * v[i];
    }
    p.zero_grad();
  }
}

void Sgd::save(std::ostream& os) const {
  util::io::write_tag(os, "OSGD");
  save_moments(os, velocity_);
}

void Sgd::load(std::istream& is) {
  util::io::expect_tag(is, "OSGD");
  load_moments(is, velocity_, params_);
}

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step() {
  if (m_.size() != params_.size()) {
    m_.clear();
    v_.clear();
    for (const Param* p : params_) {
      m_.emplace_back(p->value.rows(), p->value.cols(), 0.0f);
      v_.emplace_back(p->value.rows(), p->value.cols(), 0.0f);
    }
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    apply_decay(p.value);
    float* m = m_[k].data();
    float* v = v_[k].data();
    float* w = p.value.data();
    const float* g = p.grad.data();
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    p.zero_grad();
  }
}

void Adam::save(std::ostream& os) const {
  util::io::write_tag(os, "OADM");
  util::io::write_u64(os, t_);
  save_moments(os, m_);
  save_moments(os, v_);
}

void Adam::load(std::istream& is) {
  util::io::expect_tag(is, "OADM");
  t_ = static_cast<std::size_t>(util::io::read_u64(is));
  load_moments(is, m_, params_);
  load_moments(is, v_, params_);
  if (m_.size() != v_.size()) {
    throw std::runtime_error("adam: first/second moment count mismatch");
  }
}

AdamW::AdamW(float lr, float weight_decay, float beta1, float beta2,
             float eps)
    : Adam(lr, beta1, beta2, eps), weight_decay_(weight_decay) {}

void AdamW::apply_decay(linalg::Matrix& value) {
  // Decoupled decay: shrink weights directly, independent of the gradient.
  const float factor = 1.0f - lr_ * weight_decay_;
  for (float& w : value.flat()) w *= factor;
}

}  // namespace surro::nn
