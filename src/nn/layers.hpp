#pragma once
// Layers with exact manual reverse-mode gradients. Each layer caches what its
// backward pass needs during forward; backward() must be called with the same
// batch that was last forwarded (the MLP container enforces this pairing).
//
// Gradients ACCUMULATE into the parameter .grad buffers; optimizers zero them
// after each step. That makes multi-head models (e.g. the VAE's mu/logvar
// branches sharing an encoder trunk) correct without extra machinery.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/ops.hpp"
#include "util/rng.hpp"

namespace surro::nn {

/// A trainable tensor with its gradient accumulator.
struct Param {
  linalg::Matrix value;
  linalg::Matrix grad;

  void resize(std::size_t r, std::size_t c) {
    value.resize(r, c);
    grad.resize(r, c);
  }
  void zero_grad() noexcept { grad.zero(); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute out = f(in). `train` enables dropout noise etc.
  virtual void forward(const linalg::Matrix& in, linalg::Matrix& out,
                       bool train) = 0;
  /// Given dL/dout, accumulate parameter grads and compute dL/din.
  virtual void backward(const linalg::Matrix& grad_out,
                        linalg::Matrix& grad_in) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Binary persistence of architecture + parameters (not the forward/
  /// backward caches). load_layer() is the matching factory.
  virtual void save(std::ostream& os) const = 0;
};

/// Reconstruct a layer written by Layer::save().
[[nodiscard]] std::unique_ptr<Layer> load_layer(std::istream& is);

/// Affine: out = in·W + b.   W: (in_dim, out_dim), b: (1, out_dim).
class Linear final : public Layer {
 public:
  Linear(std::size_t in_dim, std::size_t out_dim, util::Rng& rng,
         bool kaiming = true);

  void forward(const linalg::Matrix& in, linalg::Matrix& out,
               bool train) override;
  void backward(const linalg::Matrix& grad_out,
                linalg::Matrix& grad_in) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }
  [[nodiscard]] std::string name() const override { return "Linear"; }
  void save(std::ostream& os) const override;

  [[nodiscard]] std::size_t in_dim() const noexcept { return in_dim_; }
  [[nodiscard]] std::size_t out_dim() const noexcept { return out_dim_; }
  [[nodiscard]] Param& weight() noexcept { return w_; }
  [[nodiscard]] Param& bias() noexcept { return b_; }

 private:
  std::size_t in_dim_;
  std::size_t out_dim_;
  Param w_;
  Param b_;
  linalg::Matrix cached_in_;
};

enum class Activation { kReLU, kLeakyReLU, kTanh, kSigmoid, kSiLU };

class ActivationLayer final : public Layer {
 public:
  explicit ActivationLayer(Activation kind, float leaky_slope = 0.2f);

  void forward(const linalg::Matrix& in, linalg::Matrix& out,
               bool train) override;
  void backward(const linalg::Matrix& grad_out,
                linalg::Matrix& grad_in) override;
  [[nodiscard]] std::string name() const override;
  void save(std::ostream& os) const override;

  [[nodiscard]] Activation kind() const noexcept { return kind_; }
  [[nodiscard]] float slope() const noexcept { return slope_; }

 private:
  Activation kind_;
  float slope_;
  linalg::Matrix cached_in_;
};

/// Inverted dropout (scales kept units by 1/(1-p) at train time; identity at
/// eval time).
class Dropout final : public Layer {
 public:
  Dropout(float p, util::Rng& rng);

  void forward(const linalg::Matrix& in, linalg::Matrix& out,
               bool train) override;
  void backward(const linalg::Matrix& grad_out,
                linalg::Matrix& grad_in) override;
  [[nodiscard]] std::string name() const override { return "Dropout"; }
  void save(std::ostream& os) const override;

  [[nodiscard]] float prob() const noexcept { return p_; }

 private:
  float p_;
  util::Rng rng_;
  linalg::Matrix mask_;
  bool last_train_ = false;
};

/// Per-row layer normalization with learnable gain/offset.
class LayerNorm final : public Layer {
 public:
  explicit LayerNorm(std::size_t dim, float eps = 1e-5f);

  void forward(const linalg::Matrix& in, linalg::Matrix& out,
               bool train) override;
  void backward(const linalg::Matrix& grad_out,
                linalg::Matrix& grad_in) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  [[nodiscard]] std::string name() const override { return "LayerNorm"; }
  void save(std::ostream& os) const override;

 private:
  std::size_t dim_;
  float eps_;
  Param gamma_;
  Param beta_;
  linalg::Matrix cached_norm_;   // normalized activations
  std::vector<float> inv_std_;   // per-row 1/std
};

}  // namespace surro::nn
