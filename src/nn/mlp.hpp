#pragma once
// Sequential MLP container: owns a layer stack and the inter-layer
// activation/gradient buffers, so forward/backward are allocation-free in
// steady state. This is the backbone of all three neural generative models
// (TVAE encoder/decoder, GAN generator/discriminator, TabDDPM denoiser).

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace surro::nn {

class Mlp {
 public:
  Mlp() = default;

  /// Takes ownership; layers execute in push order.
  void push(std::unique_ptr<Layer> layer);

  /// Convenience builders.
  Mlp& linear(std::size_t in_dim, std::size_t out_dim, util::Rng& rng,
              bool kaiming = true);
  Mlp& activation(Activation act, float slope = 0.2f);
  Mlp& dropout(float p, util::Rng& rng);
  Mlp& layer_norm(std::size_t dim);

  [[nodiscard]] std::size_t num_layers() const noexcept {
    return layers_.size();
  }

  [[nodiscard]] const Layer& layer(std::size_t i) const {
    return *layers_.at(i);
  }

  /// Forward through every layer; the returned reference stays valid until
  /// the next forward call.
  const linalg::Matrix& forward(const linalg::Matrix& in, bool train);

  /// Backward from dL/d(output); returns dL/d(input) (valid until next call).
  const linalg::Matrix& backward(const linalg::Matrix& grad_out);

  /// All trainable parameters, in layer order.
  [[nodiscard]] std::vector<Param*> params();

  void zero_grad();

  /// Total scalar parameter count (diagnostics).
  [[nodiscard]] std::size_t num_parameters();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<linalg::Matrix> acts_;   // acts_[i] = output of layer i
  std::vector<linalg::Matrix> grads_;  // grads_[i] = dL/d(input of layer i)
};

/// Standard body builder: [Linear -> act] * depth with given hidden sizes,
/// then a final Linear to out_dim (no output activation).
[[nodiscard]] Mlp make_mlp(std::size_t in_dim,
                           const std::vector<std::size_t>& hidden,
                           std::size_t out_dim, Activation act,
                           util::Rng& rng, float dropout_p = 0.0f);

/// Binary persistence of the full layer stack (architecture + parameters).
void save_mlp(std::ostream& os, const Mlp& mlp);
[[nodiscard]] Mlp load_mlp(std::istream& is);

}  // namespace surro::nn
