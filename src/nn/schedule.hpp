#pragma once
// Learning-rate schedules. The paper trains every surrogate with a base LR
// of 2e-4 decayed by a cosine scheduler; CosineSchedule reproduces that,
// with optional linear warmup.

#include <cstddef>

namespace surro::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate at step t of total_steps.
  [[nodiscard]] virtual float at(std::size_t t) const = 0;
};

class ConstantSchedule final : public LrSchedule {
 public:
  explicit ConstantSchedule(float lr) : lr_(lr) {}
  [[nodiscard]] float at(std::size_t /*t*/) const override { return lr_; }

 private:
  float lr_;
};

/// lr(t) = min_lr + (base − min_lr) · ½(1 + cos(π·p)) after warmup, where p
/// is progress through the post-warmup span, clamped to [0, 1].
class CosineSchedule final : public LrSchedule {
 public:
  CosineSchedule(float base_lr, std::size_t total_steps,
                 std::size_t warmup_steps = 0, float min_lr = 0.0f);
  [[nodiscard]] float at(std::size_t t) const override;

 private:
  float base_lr_;
  std::size_t total_steps_;
  std::size_t warmup_steps_;
  float min_lr_;
};

}  // namespace surro::nn
