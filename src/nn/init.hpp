#pragma once
// Weight initialization. Xavier/Glorot for tanh/sigmoid nets (TVAE), Kaiming
// for ReLU-family nets (TabDDPM denoiser, GAN bodies).

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace surro::nn {

/// U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(linalg::Matrix& w, std::size_t fan_in,
                    std::size_t fan_out, util::Rng& rng);

/// U(-a, a) with a = sqrt(6 / fan_in) (He init for ReLU-like activations).
void kaiming_uniform(linalg::Matrix& w, std::size_t fan_in, util::Rng& rng);

/// N(0, stddev).
void normal_init(linalg::Matrix& w, float stddev, util::Rng& rng);

}  // namespace surro::nn
