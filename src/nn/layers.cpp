#include "nn/layers.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "nn/init.hpp"
#include "util/serialize.hpp"

namespace surro::nn {

namespace {
// Layer kind bytes in the serialized stream.
constexpr std::uint32_t kLinearTag = 0;
constexpr std::uint32_t kActivationTag = 1;
constexpr std::uint32_t kDropoutTag = 2;
constexpr std::uint32_t kLayerNormTag = 3;
}  // namespace

std::unique_ptr<Layer> load_layer(std::istream& is) {
  util::io::expect_tag(is, "LAYR");
  const std::uint32_t kind = util::io::read_u32(is);
  switch (kind) {
    case kLinearTag: {
      const auto in_dim = static_cast<std::size_t>(util::io::read_u64(is));
      const auto out_dim = static_cast<std::size_t>(util::io::read_u64(is));
      util::Rng dummy(0);  // weights are overwritten below
      auto layer = std::make_unique<Linear>(in_dim, out_dim, dummy);
      layer->weight().value = linalg::load_matrix(is);
      layer->bias().value = linalg::load_matrix(is);
      if (layer->weight().value.rows() != in_dim ||
          layer->weight().value.cols() != out_dim ||
          layer->bias().value.rows() != 1 ||
          layer->bias().value.cols() != out_dim) {
        throw std::runtime_error("nn: linear layer shape mismatch in stream");
      }
      return layer;
    }
    case kActivationTag: {
      const std::uint32_t raw = util::io::read_u32(is);
      if (raw > static_cast<std::uint32_t>(Activation::kSiLU)) {
        throw std::runtime_error("nn: unknown activation kind in stream");
      }
      const auto act = static_cast<Activation>(raw);
      const float slope = util::io::read_f32(is);
      return std::make_unique<ActivationLayer>(act, slope);
    }
    case kDropoutTag: {
      const float p = util::io::read_f32(is);
      util::Rng rng(util::io::read_u64(is));
      return std::make_unique<Dropout>(p, rng);
    }
    case kLayerNormTag: {
      const auto dim = static_cast<std::size_t>(util::io::read_u64(is));
      const float eps = util::io::read_f32(is);
      auto layer = std::make_unique<LayerNorm>(dim, eps);
      const auto params = layer->params();
      params[0]->value = linalg::load_matrix(is);  // gamma
      params[1]->value = linalg::load_matrix(is);  // beta
      for (const auto* p : params) {
        if (p->value.rows() != 1 || p->value.cols() != dim) {
          throw std::runtime_error(
              "nn: layer norm shape mismatch in stream");
        }
      }
      return layer;
    }
    default:
      throw std::runtime_error("nn: unknown layer kind in stream");
  }
}

// ---------------------------------------------------------------- Linear ---

Linear::Linear(std::size_t in_dim, std::size_t out_dim, util::Rng& rng,
               bool kaiming)
    : in_dim_(in_dim), out_dim_(out_dim) {
  w_.resize(in_dim, out_dim);
  b_.resize(1, out_dim);
  if (kaiming) {
    kaiming_uniform(w_.value, in_dim, rng);
  } else {
    xavier_uniform(w_.value, in_dim, out_dim, rng);
  }
  b_.value.zero();
}

void Linear::forward(const linalg::Matrix& in, linalg::Matrix& out,
                     bool /*train*/) {
  assert(in.cols() == in_dim_);
  cached_in_ = in;
  linalg::gemm(in, w_.value, out);
  linalg::add_row_vector(out, b_.value.flat());
}

void Linear::backward(const linalg::Matrix& grad_out,
                      linalg::Matrix& grad_in) {
  assert(grad_out.cols() == out_dim_);
  assert(grad_out.rows() == cached_in_.rows());
  // dW += x^T · dy ; db += column sums of dy ; dx = dy · W^T.
  linalg::gemm_tn_acc(cached_in_, grad_out, w_.grad);
  std::vector<float> db(out_dim_, 0.0f);
  linalg::col_sums(grad_out, db);
  for (std::size_t j = 0; j < out_dim_; ++j) b_.grad(0, j) += db[j];
  linalg::gemm_nt(grad_out, w_.value, grad_in);
}

void Linear::save(std::ostream& os) const {
  util::io::write_tag(os, "LAYR");
  util::io::write_u32(os, kLinearTag);
  util::io::write_u64(os, in_dim_);
  util::io::write_u64(os, out_dim_);
  linalg::save_matrix(os, w_.value);
  linalg::save_matrix(os, b_.value);
}

// ------------------------------------------------------------ Activation ---

ActivationLayer::ActivationLayer(Activation kind, float leaky_slope)
    : kind_(kind), slope_(leaky_slope) {}

std::string ActivationLayer::name() const {
  switch (kind_) {
    case Activation::kReLU: return "ReLU";
    case Activation::kLeakyReLU: return "LeakyReLU";
    case Activation::kTanh: return "Tanh";
    case Activation::kSigmoid: return "Sigmoid";
    case Activation::kSiLU: return "SiLU";
  }
  return "?";
}

void ActivationLayer::forward(const linalg::Matrix& in, linalg::Matrix& out,
                              bool /*train*/) {
  cached_in_ = in;
  if (out.rows() != in.rows() || out.cols() != in.cols()) {
    out.resize(in.rows(), in.cols());
  }
  const float* pi = in.data();
  float* po = out.data();
  const std::size_t n = in.size();
  switch (kind_) {
    case Activation::kReLU:
      for (std::size_t i = 0; i < n; ++i) po[i] = pi[i] > 0.0f ? pi[i] : 0.0f;
      break;
    case Activation::kLeakyReLU:
      for (std::size_t i = 0; i < n; ++i) {
        po[i] = pi[i] > 0.0f ? pi[i] : slope_ * pi[i];
      }
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < n; ++i) po[i] = std::tanh(pi[i]);
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < n; ++i) {
        po[i] = 1.0f / (1.0f + std::exp(-pi[i]));
      }
      break;
    case Activation::kSiLU:
      for (std::size_t i = 0; i < n; ++i) {
        const float s = 1.0f / (1.0f + std::exp(-pi[i]));
        po[i] = pi[i] * s;
      }
      break;
  }
}

void ActivationLayer::backward(const linalg::Matrix& grad_out,
                               linalg::Matrix& grad_in) {
  assert(grad_out.rows() == cached_in_.rows() &&
         grad_out.cols() == cached_in_.cols());
  if (grad_in.rows() != grad_out.rows() ||
      grad_in.cols() != grad_out.cols()) {
    grad_in.resize(grad_out.rows(), grad_out.cols());
  }
  const float* px = cached_in_.data();
  const float* pg = grad_out.data();
  float* po = grad_in.data();
  const std::size_t n = cached_in_.size();
  switch (kind_) {
    case Activation::kReLU:
      for (std::size_t i = 0; i < n; ++i) {
        po[i] = px[i] > 0.0f ? pg[i] : 0.0f;
      }
      break;
    case Activation::kLeakyReLU:
      for (std::size_t i = 0; i < n; ++i) {
        po[i] = px[i] > 0.0f ? pg[i] : slope_ * pg[i];
      }
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < n; ++i) {
        const float t = std::tanh(px[i]);
        po[i] = pg[i] * (1.0f - t * t);
      }
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < n; ++i) {
        const float s = 1.0f / (1.0f + std::exp(-px[i]));
        po[i] = pg[i] * s * (1.0f - s);
      }
      break;
    case Activation::kSiLU:
      for (std::size_t i = 0; i < n; ++i) {
        const float s = 1.0f / (1.0f + std::exp(-px[i]));
        po[i] = pg[i] * (s + px[i] * s * (1.0f - s));
      }
      break;
  }
}

void ActivationLayer::save(std::ostream& os) const {
  util::io::write_tag(os, "LAYR");
  util::io::write_u32(os, kActivationTag);
  util::io::write_u32(os, static_cast<std::uint32_t>(kind_));
  util::io::write_f32(os, slope_);
}

// --------------------------------------------------------------- Dropout ---

Dropout::Dropout(float p, util::Rng& rng) : p_(p), rng_(rng.split()) {
  assert(p >= 0.0f && p < 1.0f);
}

void Dropout::save(std::ostream& os) const {
  // The mask RNG restarts from a fixed stream on load; dropout is identity
  // at inference time, so sampling behaviour is unaffected.
  util::io::write_tag(os, "LAYR");
  util::io::write_u32(os, kDropoutTag);
  util::io::write_f32(os, p_);
  util::io::write_u64(os, 0x0D120u);
}

void Dropout::forward(const linalg::Matrix& in, linalg::Matrix& out,
                      bool train) {
  last_train_ = train && p_ > 0.0f;
  if (!last_train_) {
    out = in;
    return;
  }
  if (out.rows() != in.rows() || out.cols() != in.cols()) {
    out.resize(in.rows(), in.cols());
  }
  mask_.resize(in.rows(), in.cols());
  const float keep = 1.0f - p_;
  const float scl = 1.0f / keep;
  const float* pi = in.data();
  float* pm = mask_.data();
  float* po = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const bool keep_it = rng_.uniform() >= p_;
    pm[i] = keep_it ? scl : 0.0f;
    po[i] = pi[i] * pm[i];
  }
}

void Dropout::backward(const linalg::Matrix& grad_out,
                       linalg::Matrix& grad_in) {
  if (!last_train_) {
    grad_in = grad_out;
    return;
  }
  linalg::hadamard(grad_out, mask_, grad_in);
}

// ------------------------------------------------------------- LayerNorm ---

LayerNorm::LayerNorm(std::size_t dim, float eps) : dim_(dim), eps_(eps) {
  gamma_.resize(1, dim);
  gamma_.value.fill(1.0f);
  beta_.resize(1, dim);
  beta_.value.zero();
}

void LayerNorm::save(std::ostream& os) const {
  util::io::write_tag(os, "LAYR");
  util::io::write_u32(os, kLayerNormTag);
  util::io::write_u64(os, dim_);
  util::io::write_f32(os, eps_);
  linalg::save_matrix(os, gamma_.value);
  linalg::save_matrix(os, beta_.value);
}

void LayerNorm::forward(const linalg::Matrix& in, linalg::Matrix& out,
                        bool /*train*/) {
  assert(in.cols() == dim_);
  const std::size_t rows = in.rows();
  if (out.rows() != rows || out.cols() != dim_) out.resize(rows, dim_);
  cached_norm_.resize(rows, dim_);
  inv_std_.assign(rows, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* x = in.data() + r * dim_;
    float mean = 0.0f;
    for (std::size_t j = 0; j < dim_; ++j) mean += x[j];
    mean /= static_cast<float>(dim_);
    float var = 0.0f;
    for (std::size_t j = 0; j < dim_; ++j) {
      const float d = x[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(dim_);
    const float inv = 1.0f / std::sqrt(var + eps_);
    inv_std_[r] = inv;
    float* nrm = cached_norm_.data() + r * dim_;
    float* o = out.data() + r * dim_;
    for (std::size_t j = 0; j < dim_; ++j) {
      nrm[j] = (x[j] - mean) * inv;
      o[j] = nrm[j] * gamma_.value(0, j) + beta_.value(0, j);
    }
  }
}

void LayerNorm::backward(const linalg::Matrix& grad_out,
                         linalg::Matrix& grad_in) {
  const std::size_t rows = grad_out.rows();
  assert(grad_out.cols() == dim_ && cached_norm_.rows() == rows);
  if (grad_in.rows() != rows || grad_in.cols() != dim_) {
    grad_in.resize(rows, dim_);
  }
  const auto dimf = static_cast<float>(dim_);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* dy = grad_out.data() + r * dim_;
    const float* nrm = cached_norm_.data() + r * dim_;
    float* dx = grad_in.data() + r * dim_;
    // dL/dnorm_j = dy_j * gamma_j; accumulate gamma/beta grads.
    float sum_dn = 0.0f;
    float sum_dn_nrm = 0.0f;
    for (std::size_t j = 0; j < dim_; ++j) {
      const float dn = dy[j] * gamma_.value(0, j);
      sum_dn += dn;
      sum_dn_nrm += dn * nrm[j];
      gamma_.grad(0, j) += dy[j] * nrm[j];
      beta_.grad(0, j) += dy[j];
    }
    const float inv = inv_std_[r];
    for (std::size_t j = 0; j < dim_; ++j) {
      const float dn = dy[j] * gamma_.value(0, j);
      dx[j] = inv * (dn - sum_dn / dimf - nrm[j] * sum_dn_nrm / dimf);
    }
  }
}

}  // namespace surro::nn
