#pragma once
// Losses with analytic gradients w.r.t. the network output. Every function
// returns the mean loss over the batch and fills `grad` (same shape as
// `pred`) with dL/dpred, already divided by the batch size so callers can
// feed it straight into Mlp::backward.

#include <span>

#include "linalg/matrix.hpp"
#include "preprocess/mixed_encoder.hpp"

namespace surro::nn {

/// Mean squared error over all elements.
[[nodiscard]] float mse_loss(const linalg::Matrix& pred,
                             const linalg::Matrix& target,
                             linalg::Matrix& grad);

/// Binary cross-entropy on logits, with targets in {0,1} (or soft labels).
[[nodiscard]] float bce_with_logits(const linalg::Matrix& logits,
                                    const linalg::Matrix& targets,
                                    linalg::Matrix& grad);

/// Softmax cross-entropy applied independently to each categorical block of
/// a mixed-layout output (logits), with one-hot targets in the same layout.
/// Numerical columns [0, num_numerical) are untouched (grad zeroed there).
/// Returns the mean (over batch) of summed per-block CE.
[[nodiscard]] float blockwise_softmax_ce(
    const linalg::Matrix& logits, const linalg::Matrix& onehot_targets,
    std::span<const preprocess::CategoricalBlock> blocks,
    std::size_t num_numerical, linalg::Matrix& grad);

/// Mixed reconstruction loss used by TVAE: MSE on the numerical slice plus
/// softmax CE per categorical block. grad covers the full layout.
[[nodiscard]] float mixed_reconstruction_loss(
    const linalg::Matrix& pred, const linalg::Matrix& target,
    std::span<const preprocess::CategoricalBlock> blocks,
    std::size_t num_numerical, linalg::Matrix& grad);

/// KL(N(mu, exp(logvar)) || N(0, I)), mean over the batch; fills gradients
/// w.r.t. mu and logvar (divided by batch size).
[[nodiscard]] float gaussian_kl(const linalg::Matrix& mu,
                                const linalg::Matrix& logvar,
                                linalg::Matrix& grad_mu,
                                linalg::Matrix& grad_logvar);

/// Non-saturating GAN losses on discriminator logits.
/// Generator:      -log sigmoid(D(G(z)))          (push fakes to real).
/// Discriminator:  -log sigmoid(D(x)) - log(1 - sigmoid(D(G(z)))).
[[nodiscard]] float gan_generator_loss(const linalg::Matrix& fake_logits,
                                       linalg::Matrix& grad);
[[nodiscard]] float gan_discriminator_loss(const linalg::Matrix& real_logits,
                                           const linalg::Matrix& fake_logits,
                                           linalg::Matrix& grad_real,
                                           linalg::Matrix& grad_fake,
                                           float label_smoothing = 0.0f);

}  // namespace surro::nn
