#include "nn/mlp.hpp"

#include <cassert>
#include <stdexcept>

#include "util/serialize.hpp"

namespace surro::nn {

void Mlp::push(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  acts_.emplace_back();
  grads_.emplace_back();
}

Mlp& Mlp::linear(std::size_t in_dim, std::size_t out_dim, util::Rng& rng,
                 bool kaiming) {
  push(std::make_unique<Linear>(in_dim, out_dim, rng, kaiming));
  return *this;
}
Mlp& Mlp::activation(Activation act, float slope) {
  push(std::make_unique<ActivationLayer>(act, slope));
  return *this;
}
Mlp& Mlp::dropout(float p, util::Rng& rng) {
  push(std::make_unique<Dropout>(p, rng));
  return *this;
}
Mlp& Mlp::layer_norm(std::size_t dim) {
  push(std::make_unique<LayerNorm>(dim));
  return *this;
}

const linalg::Matrix& Mlp::forward(const linalg::Matrix& in, bool train) {
  if (layers_.empty()) throw std::logic_error("mlp: empty network");
  const linalg::Matrix* cur = &in;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward(*cur, acts_[i], train);
    cur = &acts_[i];
  }
  return acts_.back();
}

const linalg::Matrix& Mlp::backward(const linalg::Matrix& grad_out) {
  if (layers_.empty()) throw std::logic_error("mlp: empty network");
  const linalg::Matrix* cur = &grad_out;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    layers_[i]->backward(*cur, grads_[i]);
    cur = &grads_[i];
  }
  return grads_.front();
}

std::vector<Param*> Mlp::params() {
  std::vector<Param*> out;
  for (auto& l : layers_) {
    for (Param* p : l->params()) out.push_back(p);
  }
  return out;
}

void Mlp::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::size_t Mlp::num_parameters() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.size();
  return n;
}

Mlp make_mlp(std::size_t in_dim, const std::vector<std::size_t>& hidden,
             std::size_t out_dim, Activation act, util::Rng& rng,
             float dropout_p) {
  Mlp mlp;
  std::size_t prev = in_dim;
  const bool kaiming =
      act == Activation::kReLU || act == Activation::kLeakyReLU ||
      act == Activation::kSiLU;
  for (const std::size_t h : hidden) {
    mlp.linear(prev, h, rng, kaiming);
    mlp.activation(act);
    if (dropout_p > 0.0f) mlp.dropout(dropout_p, rng);
    prev = h;
  }
  mlp.linear(prev, out_dim, rng, kaiming);
  return mlp;
}

void save_mlp(std::ostream& os, const Mlp& mlp) {
  util::io::write_tag(os, "MLP0");
  util::io::write_u64(os, mlp.num_layers());
  for (std::size_t i = 0; i < mlp.num_layers(); ++i) {
    mlp.layer(i).save(os);
  }
}

Mlp load_mlp(std::istream& is) {
  util::io::expect_tag(is, "MLP0");
  const auto n = static_cast<std::size_t>(util::io::read_u64(is));
  Mlp mlp;
  for (std::size_t i = 0; i < n; ++i) {
    mlp.push(load_layer(is));
  }
  return mlp;
}

}  // namespace surro::nn
