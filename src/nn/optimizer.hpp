#pragma once
// First-order optimizers over Param lists. Parameters are registered once;
// step() applies the update and zeroes gradients. Adam/AdamW keep per-param
// moment buffers keyed by registration order, so the Param set must stay
// stable across steps (true for all our fixed-architecture models).
//
// Optimizer state (moment buffers, step counter) is persistable via
// save()/load(): a checkpointed model can resume training mid-stream
// (TabularGenerator::warm_fit) with the exact moments it stopped with,
// instead of cold Adam moments that would blow up the first updates.

#include <iosfwd>
#include <vector>

#include "nn/layers.hpp"

namespace surro::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Register parameters (append). Must happen before the first step.
  void add_params(const std::vector<Param*>& params);

  /// Apply one update using the accumulated gradients, then zero them.
  virtual void step() = 0;

  void set_learning_rate(float lr) noexcept { lr_ = lr; }
  [[nodiscard]] float learning_rate() const noexcept { return lr_; }

  /// Clip the global gradient norm across all registered params to
  /// `max_norm` (no-op when <= 0). Call before step().
  void clip_grad_norm(float max_norm);

  /// Persist / restore the optimizer's internal state (moment buffers and
  /// step counter; hyper-parameters and the Param registration stay with
  /// the owner). load() requires the same params to be registered, in the
  /// same order, as when the state was saved.
  virtual void save(std::ostream& os) const = 0;
  virtual void load(std::istream& is) = 0;

 protected:
  explicit Optimizer(float lr) : lr_(lr) {}
  std::vector<Param*> params_;
  float lr_;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f);
  void step() override;
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

 private:
  float momentum_;
  std::vector<linalg::Matrix> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f);
  void step() override;
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  /// Completed update steps (bias-correction clock; diagnostics/tests).
  [[nodiscard]] std::size_t steps() const noexcept { return t_; }

 protected:
  /// Weight decay hook (AdamW overrides; plain Adam applies none).
  virtual void apply_decay(linalg::Matrix& /*value*/) {}

  float beta1_;
  float beta2_;
  float eps_;
  std::size_t t_ = 0;
  std::vector<linalg::Matrix> m_;
  std::vector<linalg::Matrix> v_;
};

class AdamW final : public Adam {
 public:
  AdamW(float lr, float weight_decay, float beta1 = 0.9f,
        float beta2 = 0.999f, float eps = 1e-8f);

 private:
  void apply_decay(linalg::Matrix& value) override;
  float weight_decay_;
};

}  // namespace surro::nn
