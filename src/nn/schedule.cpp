#include "nn/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/mathx.hpp"

namespace surro::nn {

CosineSchedule::CosineSchedule(float base_lr, std::size_t total_steps,
                               std::size_t warmup_steps, float min_lr)
    : base_lr_(base_lr),
      total_steps_(total_steps),
      warmup_steps_(warmup_steps),
      min_lr_(min_lr) {
  if (total_steps == 0) {
    throw std::invalid_argument("cosine_schedule: zero total steps");
  }
  if (warmup_steps >= total_steps) {
    throw std::invalid_argument("cosine_schedule: warmup >= total");
  }
}

float CosineSchedule::at(std::size_t t) const {
  if (warmup_steps_ > 0 && t < warmup_steps_) {
    return base_lr_ * static_cast<float>(t + 1) /
           static_cast<float>(warmup_steps_);
  }
  const double span = static_cast<double>(total_steps_ - warmup_steps_);
  const double progress = std::clamp(
      static_cast<double>(t - warmup_steps_) / span, 0.0, 1.0);
  const double cosine = 0.5 * (1.0 + std::cos(util::kPi * progress));
  return min_lr_ + (base_lr_ - min_lr_) * static_cast<float>(cosine);
}

}  // namespace surro::nn
