#include "nn/losses.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace surro::nn {

namespace {
inline float sigmoidf(float x) noexcept {
  return 1.0f / (1.0f + std::exp(-x));
}
// log(sigmoid(x)) computed stably for both signs of x.
inline float log_sigmoid(float x) noexcept {
  return x >= 0.0f ? -std::log1p(std::exp(-x)) : x - std::log1p(std::exp(x));
}
}  // namespace

float mse_loss(const linalg::Matrix& pred, const linalg::Matrix& target,
               linalg::Matrix& grad) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  if (grad.rows() != pred.rows() || grad.cols() != pred.cols()) {
    grad.resize(pred.rows(), pred.cols());
  }
  const std::size_t n = pred.size();
  const float inv = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  const float* pp = pred.data();
  const float* pt = target.data();
  float* pg = grad.data();
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pp[i] - pt[i];
    loss += static_cast<double>(d) * d;
    pg[i] = 2.0f * d * inv;
  }
  return static_cast<float>(loss * inv);
}

float bce_with_logits(const linalg::Matrix& logits,
                      const linalg::Matrix& targets, linalg::Matrix& grad) {
  assert(logits.rows() == targets.rows() && logits.cols() == targets.cols());
  if (grad.rows() != logits.rows() || grad.cols() != logits.cols()) {
    grad.resize(logits.rows(), logits.cols());
  }
  const std::size_t n = logits.size();
  const float inv = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  const float* pl = logits.data();
  const float* pt = targets.data();
  float* pg = grad.data();
  for (std::size_t i = 0; i < n; ++i) {
    const float x = pl[i];
    const float t = pt[i];
    // -t·log σ(x) - (1-t)·log(1-σ(x)); note log(1-σ(x)) = logσ(-x).
    loss -= static_cast<double>(t * log_sigmoid(x) +
                                (1.0f - t) * log_sigmoid(-x));
    pg[i] = (sigmoidf(x) - t) * inv;
  }
  return static_cast<float>(loss * inv);
}

float blockwise_softmax_ce(
    const linalg::Matrix& logits, const linalg::Matrix& onehot_targets,
    std::span<const preprocess::CategoricalBlock> blocks,
    std::size_t num_numerical, linalg::Matrix& grad) {
  assert(logits.rows() == onehot_targets.rows() &&
         logits.cols() == onehot_targets.cols());
  const std::size_t rows = logits.rows();
  if (grad.rows() != rows || grad.cols() != logits.cols()) {
    grad.resize(rows, logits.cols());
  }
  grad.zero();
  // Zero grad on numerical slice by construction.
  (void)num_numerical;
  const float inv_rows = 1.0f / static_cast<float>(rows);
  double loss = 0.0;
  std::vector<float> probs;
  for (const auto& b : blocks) {
    probs.assign(b.cardinality, 0.0f);
    for (std::size_t r = 0; r < rows; ++r) {
      const float* lr = logits.data() + r * logits.cols() + b.offset;
      const float* tr =
          onehot_targets.data() + r * logits.cols() + b.offset;
      float* gr = grad.data() + r * logits.cols() + b.offset;
      float peak = lr[0];
      for (std::size_t j = 1; j < b.cardinality; ++j) {
        peak = std::max(peak, lr[j]);
      }
      float denom = 0.0f;
      for (std::size_t j = 0; j < b.cardinality; ++j) {
        probs[j] = std::exp(lr[j] - peak);
        denom += probs[j];
      }
      for (std::size_t j = 0; j < b.cardinality; ++j) {
        const float p = probs[j] / denom;
        gr[j] = (p - tr[j]) * inv_rows;
        if (tr[j] > 0.0f) {
          loss -= static_cast<double>(tr[j]) *
                  (std::log(std::max(p, 1e-12f)));
        }
      }
    }
  }
  return static_cast<float>(loss * inv_rows);
}

float mixed_reconstruction_loss(
    const linalg::Matrix& pred, const linalg::Matrix& target,
    std::span<const preprocess::CategoricalBlock> blocks,
    std::size_t num_numerical, linalg::Matrix& grad) {
  const std::size_t rows = pred.rows();
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  // Categorical part fills grad and zeroes the numerical slice.
  float loss = blockwise_softmax_ce(pred, target, blocks, num_numerical, grad);
  // Numerical part: per-element squared error averaged over batch.
  const float inv_rows = 1.0f / static_cast<float>(rows);
  double num_loss = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* pp = pred.data() + r * pred.cols();
    const float* pt = target.data() + r * pred.cols();
    float* pg = grad.data() + r * pred.cols();
    for (std::size_t j = 0; j < num_numerical; ++j) {
      const float d = pp[j] - pt[j];
      num_loss += static_cast<double>(d) * d;
      pg[j] = 2.0f * d * inv_rows;
    }
  }
  return loss + static_cast<float>(num_loss * inv_rows);
}

float gaussian_kl(const linalg::Matrix& mu, const linalg::Matrix& logvar,
                  linalg::Matrix& grad_mu, linalg::Matrix& grad_logvar) {
  assert(mu.rows() == logvar.rows() && mu.cols() == logvar.cols());
  const std::size_t rows = mu.rows();
  if (grad_mu.rows() != rows || grad_mu.cols() != mu.cols()) {
    grad_mu.resize(rows, mu.cols());
  }
  if (grad_logvar.rows() != rows || grad_logvar.cols() != mu.cols()) {
    grad_logvar.resize(rows, mu.cols());
  }
  const float inv_rows = 1.0f / static_cast<float>(rows);
  double loss = 0.0;
  const float* pm = mu.data();
  const float* pv = logvar.data();
  float* gm = grad_mu.data();
  float* gv = grad_logvar.data();
  for (std::size_t i = 0; i < mu.size(); ++i) {
    const float m = pm[i];
    const float lv = std::clamp(pv[i], -10.0f, 10.0f);
    const float ev = std::exp(lv);
    // KL per dim: 0.5 (exp(lv) + m² − 1 − lv).
    loss += 0.5 * static_cast<double>(ev + m * m - 1.0f - lv);
    gm[i] = m * inv_rows;
    gv[i] = 0.5f * (ev - 1.0f) * inv_rows;
  }
  return static_cast<float>(loss * inv_rows);
}

float gan_generator_loss(const linalg::Matrix& fake_logits,
                         linalg::Matrix& grad) {
  if (grad.rows() != fake_logits.rows() ||
      grad.cols() != fake_logits.cols()) {
    grad.resize(fake_logits.rows(), fake_logits.cols());
  }
  const std::size_t n = fake_logits.size();
  const float inv = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  const float* pl = fake_logits.data();
  float* pg = grad.data();
  for (std::size_t i = 0; i < n; ++i) {
    loss -= static_cast<double>(log_sigmoid(pl[i]));
    pg[i] = (sigmoidf(pl[i]) - 1.0f) * inv;
  }
  return static_cast<float>(loss * inv);
}

float gan_discriminator_loss(const linalg::Matrix& real_logits,
                             const linalg::Matrix& fake_logits,
                             linalg::Matrix& grad_real,
                             linalg::Matrix& grad_fake,
                             float label_smoothing) {
  if (grad_real.rows() != real_logits.rows() ||
      grad_real.cols() != real_logits.cols()) {
    grad_real.resize(real_logits.rows(), real_logits.cols());
  }
  if (grad_fake.rows() != fake_logits.rows() ||
      grad_fake.cols() != fake_logits.cols()) {
    grad_fake.resize(fake_logits.rows(), fake_logits.cols());
  }
  const float real_label = 1.0f - label_smoothing;
  const std::size_t nr = real_logits.size();
  const std::size_t nf = fake_logits.size();
  const float inv_r = 1.0f / static_cast<float>(nr);
  const float inv_f = 1.0f / static_cast<float>(nf);
  double loss = 0.0;
  {
    const float* pl = real_logits.data();
    float* pg = grad_real.data();
    for (std::size_t i = 0; i < nr; ++i) {
      loss -= static_cast<double>(real_label * log_sigmoid(pl[i]) +
                                  (1.0f - real_label) * log_sigmoid(-pl[i]));
      pg[i] = (sigmoidf(pl[i]) - real_label) * inv_r;
    }
  }
  {
    const float* pl = fake_logits.data();
    float* pg = grad_fake.data();
    for (std::size_t i = 0; i < nf; ++i) {
      loss -= static_cast<double>(log_sigmoid(-pl[i]));
      pg[i] = sigmoidf(pl[i]) * inv_f;
    }
  }
  return static_cast<float>(loss / static_cast<double>(nr + nf));
}

}  // namespace surro::nn
