#pragma once
// Numerically-stable scalar math shared by preprocessing, metrics, and the
// diffusion model: normal CDF / inverse CDF (the Gaussian quantile transform
// has no closed form in <cmath>), logsumexp, softmax, and basic summary
// statistics on spans.

#include <cstddef>
#include <span>
#include <vector>

namespace surro::util {

inline constexpr double kPi = 3.14159265358979323846;

/// Standard normal PDF.
[[nodiscard]] double normal_pdf(double x) noexcept;
/// Standard normal CDF via erfc (stable in both tails).
[[nodiscard]] double normal_cdf(double x) noexcept;
/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step; |error| < 1e-13 on (0,1)). Clamps p into
/// [kQuantileEps, 1-kQuantileEps] to keep transforms finite.
[[nodiscard]] double normal_quantile(double p) noexcept;

inline constexpr double kQuantileEps = 1e-10;

/// log(sum(exp(x))) without overflow.
[[nodiscard]] double logsumexp(std::span<const double> x) noexcept;

/// In-place softmax (stable).
void softmax_inplace(std::span<double> x) noexcept;

/// Mean of a span (0 for empty).
[[nodiscard]] double mean(std::span<const double> x) noexcept;
/// Unbiased sample variance (0 for n < 2).
[[nodiscard]] double variance(std::span<const double> x) noexcept;
[[nodiscard]] double stddev(std::span<const double> x) noexcept;

/// Linear-interpolated quantile of *sorted* data, q in [0,1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted,
                                     double q) noexcept;

/// Pearson correlation of two equal-length spans (0 when either is constant).
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y) noexcept;

/// Clamp helper that also squashes NaN to lo.
[[nodiscard]] double clamp_finite(double v, double lo, double hi) noexcept;

/// Digitize value into one of `edges.size()-1` bins given ascending edges;
/// values below/above the range land in the first/last bin.
[[nodiscard]] std::size_t digitize(double v,
                                   std::span<const double> edges) noexcept;

/// Evenly spaced values [lo, hi] inclusive (n >= 2).
[[nodiscard]] std::vector<double> linspace(double lo, double hi,
                                           std::size_t n);

}  // namespace surro::util
