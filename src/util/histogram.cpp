#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/mathx.hpp"

namespace surro::util {

Histogram::Histogram(double lo, double hi, std::size_t bins, BinScale scale)
    : scale_(scale) {
  if (bins == 0) throw std::invalid_argument("histogram: zero bins");
  if (!(lo < hi)) throw std::invalid_argument("histogram: lo must be < hi");
  if (scale == BinScale::kLog10 && lo <= 0.0) {
    throw std::invalid_argument("histogram: log scale requires lo > 0");
  }
  const double tlo = scale == BinScale::kLog10 ? std::log10(lo) : lo;
  const double thi = scale == BinScale::kLog10 ? std::log10(hi) : hi;
  trans_edges_ = linspace(tlo, thi, bins + 1);
  edges_.resize(bins + 1);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges_[i] = scale == BinScale::kLog10 ? std::pow(10.0, trans_edges_[i])
                                          : trans_edges_[i];
  }
  counts_.assign(bins, 0);
}

Histogram Histogram::from_data(std::span<const double> data,
                               std::size_t bins, BinScale scale) {
  if (data.empty()) return Histogram(0.0, 1.0, std::max<std::size_t>(bins, 1));
  double lo = data[0];
  double hi = data[0];
  for (const double v : data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (scale == BinScale::kLog10) lo = std::max(lo, 1e-12);
  if (!(lo < hi)) hi = lo + 1.0;  // constant column
  // Pad slightly so max values land inside the last bin.
  const double pad = (hi - lo) * 1e-9 + 1e-12;
  Histogram h(lo, hi + pad, bins, scale);
  h.add_all(data);
  return h;
}

void Histogram::add(double v) noexcept {
  if (scale_ == BinScale::kLog10) {
    if (v <= 0.0) v = edges_.front();
    v = std::log10(v);
    counts_[digitize(v, trans_edges_)]++;
  } else {
    counts_[digitize(v, trans_edges_)]++;
  }
  ++total_;
}

void Histogram::add_all(std::span<const double> values) noexcept {
  for (const double v : values) add(v);
}

std::vector<double> Histogram::normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

std::vector<double> Histogram::centers() const {
  std::vector<double> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (scale_ == BinScale::kLog10) {
      out[i] = std::sqrt(edges_[i] * edges_[i + 1]);
    } else {
      out[i] = 0.5 * (edges_[i] + edges_[i + 1]);
    }
  }
  return out;
}

std::string Histogram::ascii(std::size_t width) const {
  std::string out;
  const std::uint64_t peak =
      counts_.empty()
          ? 0
          : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "%11.4g |", edges_[i]);
    out += label;
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        static_cast<double>(counts_[i]) * static_cast<double>(width) /
                        static_cast<double>(peak));
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace surro::util
