#pragma once
// Minimal leveled logger. Experiments print a lot of structured output; the
// logger keeps diagnostic chatter separate from result tables (which go to
// stdout directly). Thread-safe line-at-a-time output to stderr.
//
// printf-style formatting (g++ 12 has no <format>); format strings are
// checked by the compiler via the format attribute.

#include <string_view>

namespace surro::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Default: kInfo.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Core sink: one locked write of "[LEVEL] msg\n" to stderr.
void log_line(LogLevel level, std::string_view msg);

/// printf-style leveled logging.
#if defined(__GNUC__)
#define SURRO_PRINTF_CHECK __attribute__((format(printf, 2, 3)))
#else
#define SURRO_PRINTF_CHECK
#endif

void logf(LogLevel level, const char* fmt, ...) SURRO_PRINTF_CHECK;

#undef SURRO_PRINTF_CHECK

#if defined(__GNUC__)
#define SURRO_PRINTF_CHECK1 __attribute__((format(printf, 1, 2)))
#else
#define SURRO_PRINTF_CHECK1
#endif

void log_debug(const char* fmt, ...) SURRO_PRINTF_CHECK1;
void log_info(const char* fmt, ...) SURRO_PRINTF_CHECK1;
void log_warn(const char* fmt, ...) SURRO_PRINTF_CHECK1;
void log_error(const char* fmt, ...) SURRO_PRINTF_CHECK1;

#undef SURRO_PRINTF_CHECK1

}  // namespace surro::util
