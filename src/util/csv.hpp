#pragma once
// RFC-4180-ish CSV reading/writing: quoted fields with embedded commas,
// quotes, and newlines are supported. Used for table I/O and for dumping
// figure series that downstream plotting scripts consume.

#include <string>
#include <string_view>
#include <vector>

namespace surro::util {

struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept {
    return header.size();
  }
  /// Index of a header column, or npos.
  [[nodiscard]] std::size_t column_index(std::string_view name) const noexcept;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Parse CSV text. Throws std::runtime_error on ragged rows or an unclosed
/// quote. `has_header` controls whether the first record populates header.
[[nodiscard]] CsvDocument parse_csv(std::string_view text,
                                    bool has_header = true);

/// Read and parse a file. Throws std::runtime_error when unreadable.
[[nodiscard]] CsvDocument read_csv_file(const std::string& path,
                                        bool has_header = true);

/// Serialize with minimal quoting (only when a field needs it).
[[nodiscard]] std::string to_csv(const CsvDocument& doc);

/// Write to file; throws on I/O failure.
void write_csv_file(const std::string& path, const CsvDocument& doc);

/// Quote a single field if needed (exposed for streaming writers).
[[nodiscard]] std::string csv_escape(std::string_view field);

}  // namespace surro::util
