#include "util/stringx.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace surro::util {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && is_space(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool parse_double(std::string_view s, double& out) noexcept {
  s = trim(s);
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_int64(std::string_view s, long long& out) noexcept {
  s = trim(s);
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B",  "KB", "MB", "GB",
                                           "TB", "PB", "EB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 6) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

std::string format_fixed(double v, int width, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%*.*f", width, precision, v);
  return buf;
}

}  // namespace surro::util
