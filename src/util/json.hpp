#pragma once
// Minimal JSON emitter for machine-readable result artifacts (benchmark
// trajectories, scenario-matrix scores, serve_stats) that CI archives and
// diffs. The reading counterpart is util/json_parse.hpp (added for serve
// request scripts). The interface is a flat token stream with nesting
// checks in the separator logic; numbers are written with enough digits to
// round-trip exactly, and non-finite doubles (NaN and ±inf — e.g. latency
// percentiles over an empty window) degrade to null (JSON has neither).

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace surro::util {

/// Escape for inclusion inside a JSON string literal (quotes not added).
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          const char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(ch >> 4) & 0xF];
          out += hex[ch & 0xF];
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Shortest decimal representation that round-trips the double ("null" for
/// NaN/Inf, which JSON cannot represent).
[[nodiscard]] inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

/// Streaming writer: begin/end containers, key() before each object value.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("scores").begin_array();
///   w.value(0.25).value(0.5);
///   w.end_array();
///   w.end_object();
///   write_file(w.str());
class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view k) {
    separate();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\":";
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separate();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v) {
    separate();
    out_ += json_number(v);
    return *this;
  }
  /// Any integer type (kept separate from double so values stay exact).
  template <typename T>
    requires std::is_integral_v<T> && (!std::is_same_v<T, bool>)
  JsonWriter& value(T v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(bool v) {
    separate();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& null() {
    separate();
    out_ += "null";
    return *this;
  }

  /// Splice a pre-serialized JSON value (trusted — not validated) as the
  /// next value; lets emitters nest each other's complete documents.
  JsonWriter& raw(std::string_view json) {
    separate();
    out_ += json;
    return *this;
  }

  /// key + scalar in one call: w.kv("rows", 42).
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// The document so far (valid JSON once every container is closed).
  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  JsonWriter& open(char bracket) {
    separate();
    out_ += bracket;
    first_.push_back(true);
    return *this;
  }
  JsonWriter& close(char bracket) {
    if (!first_.empty()) first_.pop_back();
    out_ += bracket;
    return *this;
  }
  /// Emit "," between siblings; keys handle their own ":" separator.
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }

  std::string out_;
  std::vector<bool> first_;  // per open container: no sibling emitted yet
  bool pending_key_ = false;
};

}  // namespace surro::util
