#pragma once
// Minimal binary (de)serialization helpers for fitted-model persistence.
// Fixed little-endian integer layout and raw IEEE-754 floats, so archives
// are portable across the platforms this library targets. Every reader
// throws std::runtime_error on truncated or mismatching input — model
// loading is expected to validate, not crash.

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace surro::util::io {

inline void write_bytes(std::ostream& os, const void* data, std::size_t n) {
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(n));
  if (!os) throw std::runtime_error("serialize: write failed");
}

inline void read_bytes(std::istream& is, void* data, std::size_t n) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is.gcount()) != n) {
    throw std::runtime_error("serialize: unexpected end of stream");
  }
}

inline void write_u64(std::ostream& os, std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  write_bytes(os, buf, 8);
}

inline std::uint64_t read_u64(std::istream& is) {
  unsigned char buf[8];
  read_bytes(is, buf, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

inline void write_u32(std::ostream& os, std::uint32_t v) {
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  write_bytes(os, buf, 4);
}

inline std::uint32_t read_u32(std::istream& is) {
  unsigned char buf[4];
  read_bytes(is, buf, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  return v;
}

inline void write_i32(std::ostream& os, std::int32_t v) {
  write_u32(os, static_cast<std::uint32_t>(v));
}

inline std::int32_t read_i32(std::istream& is) {
  return static_cast<std::int32_t>(read_u32(is));
}

inline void write_f32(std::ostream& os, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  write_u32(os, bits);
}

inline float read_f32(std::istream& is) {
  const std::uint32_t bits = read_u32(is);
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

inline void write_f64(std::ostream& os, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  write_u64(os, bits);
}

inline double read_f64(std::istream& is) {
  const std::uint64_t bits = read_u64(is);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

inline void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  if (!s.empty()) write_bytes(os, s.data(), s.size());
}

inline std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  if (n > (1ULL << 32)) {
    throw std::runtime_error("serialize: implausible string length");
  }
  std::string s(static_cast<std::size_t>(n), '\0');
  if (n > 0) read_bytes(is, s.data(), static_cast<std::size_t>(n));
  return s;
}

/// Element-count prefix with a plausibility bound, so a corrupted length
/// field fails with the promised std::runtime_error instead of attempting a
/// huge up-front allocation. 2^26 elements (512 MiB of f64) is far above
/// any legitimate vector payload in this library; matrices get their own
/// (larger) product bound in linalg::load_matrix.
inline constexpr std::uint64_t kMaxSerializedElements = 1ULL << 26;

inline std::size_t read_count(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  if (n > kMaxSerializedElements) {
    throw std::runtime_error("serialize: implausible element count");
  }
  return static_cast<std::size_t>(n);
}

/// Fixed 4-byte structural tag; mismatch means a corrupt or foreign stream.
inline void write_tag(std::ostream& os, const char (&tag)[5]) {
  write_bytes(os, tag, 4);
}

inline void expect_tag(std::istream& is, const char (&tag)[5]) {
  char buf[4];
  read_bytes(is, buf, 4);
  if (std::memcmp(buf, tag, 4) != 0) {
    throw std::runtime_error(std::string("serialize: expected tag '") + tag +
                             "'");
  }
}

inline void write_vec_f64(std::ostream& os, const std::vector<double>& v) {
  write_u64(os, v.size());
  for (const double x : v) write_f64(os, x);
}

inline std::vector<double> read_vec_f64(std::istream& is) {
  std::vector<double> v(read_count(is));
  for (auto& x : v) x = read_f64(is);
  return v;
}

inline void write_vec_f32(std::ostream& os, const std::vector<float>& v) {
  write_u64(os, v.size());
  for (const float x : v) write_f32(os, x);
}

inline std::vector<float> read_vec_f32(std::istream& is) {
  std::vector<float> v(read_count(is));
  for (auto& x : v) x = read_f32(is);
  return v;
}

inline void write_vec_i32(std::ostream& os, const std::vector<std::int32_t>& v) {
  write_u64(os, v.size());
  for (const std::int32_t x : v) write_i32(os, x);
}

inline std::vector<std::int32_t> read_vec_i32(std::istream& is) {
  std::vector<std::int32_t> v(read_count(is));
  for (auto& x : v) x = read_i32(is);
  return v;
}

inline void write_vec_string(std::ostream& os,
                             const std::vector<std::string>& v) {
  write_u64(os, v.size());
  for (const auto& s : v) write_string(os, s);
}

inline std::vector<std::string> read_vec_string(std::istream& is) {
  std::vector<std::string> v(read_count(is));
  for (auto& s : v) s = read_string(is);
  return v;
}

}  // namespace surro::util::io
