#pragma once
// Deterministic random number generation for every stochastic component.
//
// The library never uses std::random_device or global RNG state: every
// simulator, model, and sampler takes an explicit 64-bit seed so experiments
// are bit-reproducible across runs. The core generator is xoshiro256**,
// seeded through SplitMix64 (the scheme recommended by the xoshiro authors).

#include <array>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace surro::util {

/// SplitMix64 step; used for seeding and as a cheap stateless hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions, but the member samplers below are
/// preferred: they are guaranteed stable across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Split off an independent stream (for per-thread / per-component RNGs).
  [[nodiscard]] Rng split() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (cached second variate).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;
  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept;
  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept;
  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia–Tsang.
  double gamma(double shape, double scale) noexcept;
  /// Poisson with mean lambda >= 0 (inversion for small, PTRS-like normal
  /// approximation with rounding for large lambda).
  std::uint64_t poisson(double lambda) noexcept;
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;
  /// Pareto (type I) with minimum xm > 0 and tail index alpha > 0.
  double pareto(double xm, double alpha) noexcept;

  /// Sample an index from unnormalized non-negative weights.
  /// Precondition: weights non-empty with positive sum.
  std::size_t categorical(std::span<const double> weights) noexcept;

  /// Fisher–Yates shuffle of an index container.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n) noexcept;

  /// Binary snapshot/restore of the full generator state (xoshiro words +
  /// the Box–Muller cache), so checkpointed training resumes on the exact
  /// same random stream (see TabularGenerator::warm_fit).
  void save(std::ostream& os) const;
  void load(std::istream& is);

  /// k distinct indices from [0, n) (k <= n), unordered.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Precomputed alias table for O(1) sampling from a fixed discrete
/// distribution; used by the workload simulator for site/user/dataset draws.
class AliasTable {
 public:
  AliasTable() = default;
  /// Build from unnormalized non-negative weights (positive sum required).
  explicit AliasTable(std::span<const double> weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }
  /// The normalized probability of outcome i (for tests/diagnostics).
  [[nodiscard]] double probability(std::size_t i) const noexcept {
    return norm_[i];
  }

 private:
  std::vector<double> prob_;
  std::vector<std::size_t> alias_;
  std::vector<double> norm_;
};

}  // namespace surro::util
