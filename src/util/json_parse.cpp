#include "util/json_parse.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>
#include <utility>

namespace surro::util {
namespace {

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    default: return "object";
  }
}

[[noreturn]] void kind_error(const char* want, JsonValue::Kind got) {
  throw std::runtime_error(std::string("json: expected ") + want + ", have " +
                           kind_name(got));
}

class Parser {
 public:
  Parser(std::string_view text, const JsonLimits& limits)
      : s_(text), limits_(limits) {}

  JsonValue parse() {
    // The byte cap is judged before any parsing work: a hostile megabyte
    // document costs O(1) to refuse, not O(n) to half-parse.
    if (limits_.max_bytes != 0 && s_.size() > limits_.max_bytes) {
      throw JsonParseError(
          "json: document of " + std::to_string(s_.size()) +
              " bytes exceeds the " + std::to_string(limits_.max_bytes) +
              "-byte limit",
          0);
    }
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content after document");
    return v;
  }

 private:
  /// RAII depth ticket: value() holds one per container level. The parser
  /// is recursive-descent, so nesting depth is stack depth; without the
  /// cap a hostile "[[[[..." ten thousand levels down overflows the stack
  /// instead of failing the parse.
  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > parser_.limits_.max_depth) {
        parser_.fail("nesting deeper than " +
                     std::to_string(parser_.limits_.max_depth) + " levels");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser_;
  };
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("json: " + what + " at offset " +
                             std::to_string(pos_),
                         pos_);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  /// Four hex digits of a \u escape -> code unit.
  unsigned hex4() {
    if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = s_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return code;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonValue object() {
    const DepthGuard depth(*this);
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (consume('}')) return v;
    do {
      if (peek() != '"') fail("object key must be a string");
      JsonValue key = string_value();
      expect(':');
      v.object.insert_or_assign(std::move(key.string), value());
    } while (consume(','));
    expect('}');
    return v;
  }

  JsonValue array() {
    const DepthGuard depth(*this);
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (consume(']')) return v;
    do {
      v.array.push_back(value());
    } while (consume(','));
    expect(']');
    return v;
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            unsigned code = hex4();
            // The writer only ever emits \u00XX (control characters);
            // decode anything larger to UTF-8 so foreign documents still
            // parse — including UTF-16 surrogate pairs for non-BMP
            // characters (a lone surrogate is malformed input).
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (pos_ + 2 > s_.size() || s_[pos_] != '\\' ||
                  s_[pos_ + 1] != 'u') {
                fail("high surrogate without a \\u low surrogate");
              }
              pos_ += 2;
              const unsigned low = hex4();
              if (low < 0xDC00 || low > 0xDFFF) {
                fail("high surrogate followed by a non-low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              fail("lone low surrogate");
            }
            if (code < 0x80) {
              c = static_cast<char>(code);
            } else {
              if (code < 0x800) {
                v.string += static_cast<char>(0xC0 | (code >> 6));
              } else if (code < 0x10000) {
                v.string += static_cast<char>(0xE0 | (code >> 12));
                v.string += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              } else {
                v.string += static_cast<char>(0xF0 | (code >> 18));
                v.string += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
                v.string += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              }
              c = static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        const unsigned char u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          // RFC 8259 requires control characters to be escaped; the writer
          // escapes them (json_escape), so a raw one is malformed input.
          --pos_;
          fail("raw control character in string (escape it as \\u00XX)");
        }
        if (u >= 0x80) {
          --pos_;
          utf8_sequence(v.string);
          continue;
        }
      }
      v.string += c;
    }
    expect('"');
    return v;
  }

  /// Validate + copy one multi-byte UTF-8 sequence starting at pos_.
  /// Rejects stray continuation bytes, overlong encodings, surrogate code
  /// points (0xED 0xA0.. — valid only as \u escape pairs), anything past
  /// U+10FFFF, and truncation.
  void utf8_sequence(std::string& out) {
    const unsigned char lead = static_cast<unsigned char>(s_[pos_]);
    std::size_t len = 0;
    unsigned char min_second = 0x80;
    unsigned char max_second = 0xBF;
    if (lead >= 0xC2 && lead <= 0xDF) {
      len = 2;
    } else if (lead >= 0xE0 && lead <= 0xEF) {
      len = 3;
      if (lead == 0xE0) min_second = 0xA0;  // overlong
      if (lead == 0xED) max_second = 0x9F;  // UTF-16 surrogate range
    } else if (lead >= 0xF0 && lead <= 0xF4) {
      len = 4;
      if (lead == 0xF0) min_second = 0x90;  // overlong
      if (lead == 0xF4) max_second = 0x8F;  // past U+10FFFF
    } else {
      // 0x80..0xBF (stray continuation) or 0xC0/0xC1/0xF5..0xFF (never
      // valid leads).
      fail("invalid UTF-8 byte in string");
    }
    if (pos_ + len > s_.size()) fail("truncated UTF-8 sequence in string");
    for (std::size_t i = 1; i < len; ++i) {
      const unsigned char b = static_cast<unsigned char>(s_[pos_ + i]);
      const unsigned char lo = i == 1 ? min_second : 0x80;
      const unsigned char hi = i == 1 ? max_second : 0xBF;
      if (b < lo || b > hi) {
        fail("invalid UTF-8 continuation byte in string");
      }
    }
    out.append(s_.substr(pos_, len));
    pos_ += len;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (literal("true")) v.boolean = true;
    else if (literal("false")) v.boolean = false;
    else fail("bad literal");
    return v;
  }

  JsonValue null() {
    if (!literal("null")) fail("bad literal");
    return JsonValue{};
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '+' || s_[pos_] == '-' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const auto res = std::from_chars(s_.data() + start, s_.data() + pos_,
                                     v.number);
    if (res.ec != std::errc{} || res.ptr != s_.data() + pos_ ||
        pos_ == start) {
      pos_ = start;
      fail("bad number");
    }
    return v;
  }

  std::string_view s_;
  JsonLimits limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;  // current container nesting (<= limits_.max_depth)
};

}  // namespace

const JsonValue& JsonValue::at(const std::string& key) const {
  if (kind != Kind::kObject) kind_error("object", kind);
  const auto it = object.find(key);
  if (it == object.end()) {
    throw std::runtime_error("json: missing key '" + key + "'");
  }
  return it->second;
}

bool JsonValue::has(const std::string& key) const noexcept {
  return kind == Kind::kObject && object.contains(key);
}

double JsonValue::as_number() const {
  if (kind != Kind::kNumber) kind_error("number", kind);
  return number;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) kind_error("string", kind);
  return string;
}

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) kind_error("bool", kind);
  return boolean;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  return has(key) ? at(key).as_number() : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  return has(key) ? at(key).as_string() : fallback;
}

JsonValue parse_json(std::string_view text, const JsonLimits& limits) {
  return Parser(text, limits).parse();
}

JsonValue parse_json(std::string_view text) {
  return parse_json(text, JsonLimits{});
}

}  // namespace surro::util
