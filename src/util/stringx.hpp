#pragma once
// Small string helpers used by CSV I/O, nomenclature parsing, and report
// formatting. Kept allocation-light: views in, owned strings only when the
// caller keeps the result.

#include <string>
#include <string_view>
#include <vector>

namespace surro::util {

/// Split on a single-character delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char delim);

/// Trim ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s,
                             std::string_view suffix) noexcept;

/// Lowercase copy (ASCII).
[[nodiscard]] std::string to_lower(std::string_view s);

/// Parse a double; returns false on any trailing garbage or empty input.
[[nodiscard]] bool parse_double(std::string_view s, double& out) noexcept;
/// Parse a 64-bit signed integer with the same strictness.
[[nodiscard]] bool parse_int64(std::string_view s,
                               long long& out) noexcept;

/// Human-readable byte count ("3.2 GB").
[[nodiscard]] std::string format_bytes(double bytes);

/// Fixed-width numeric cell for ASCII tables.
[[nodiscard]] std::string format_fixed(double v, int width, int precision);

}  // namespace surro::util
