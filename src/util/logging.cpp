#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string>

namespace surro::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_sink_mutex;

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void vlogf(LogLevel level, const char* fmt, std::va_list args) {
  if (log_level() > level) return;
  char stack_buf[1024];
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  if (needed < 0) {
    va_end(args_copy);
    return;
  }
  if (static_cast<std::size_t>(needed) < sizeof(stack_buf)) {
    va_end(args_copy);
    log_line(level, std::string_view(stack_buf,
                                     static_cast<std::size_t>(needed)));
    return;
  }
  std::string big(static_cast<std::size_t>(needed) + 1, '\0');
  std::vsnprintf(big.data(), big.size(), fmt, args_copy);
  va_end(args_copy);
  big.resize(static_cast<std::size_t>(needed));
  log_line(level, big);
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view msg) {
  const std::lock_guard lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

void logf(LogLevel level, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlogf(level, fmt, args);
  va_end(args);
}

#define SURRO_DEFINE_LOG_FN(name, level)          \
  void name(const char* fmt, ...) {               \
    std::va_list args;                            \
    va_start(args, fmt);                          \
    vlogf(level, fmt, args);                      \
    va_end(args);                                 \
  }

SURRO_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
SURRO_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
SURRO_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
SURRO_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef SURRO_DEFINE_LOG_FN

}  // namespace surro::util
