#include "util/mathx.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace surro::util {

double normal_pdf(double x) noexcept {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * kPi);
}

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_quantile(double p) noexcept {
  p = std::clamp(p, kQuantileEps, 1.0 - kQuantileEps);

  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;

  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step sharpens the tail accuracy to ~1e-13.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * kPi) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double logsumexp(std::span<const double> x) noexcept {
  if (x.empty()) return -INFINITY;
  const double m = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (const double v : x) s += std::exp(v - m);
  return m + std::log(s);
}

void softmax_inplace(std::span<double> x) noexcept {
  if (x.empty()) return;
  const double m = *std::max_element(x.begin(), x.end());
  double s = 0.0;
  for (double& v : x) {
    v = std::exp(v - m);
    s += v;
  }
  for (double& v : x) v /= s;
}

double mean(std::span<const double> x) noexcept {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (const double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(std::span<const double> x) noexcept {
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double m = mean(x);
  double s = 0.0;
  for (const double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(n - 1);
}

double stddev(std::span<const double> x) noexcept {
  return std::sqrt(variance(x));
}

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  assert(!sorted.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double clamp_finite(double v, double lo, double hi) noexcept {
  if (std::isnan(v)) return lo;
  return std::clamp(v, lo, hi);
}

std::size_t digitize(double v, std::span<const double> edges) noexcept {
  assert(edges.size() >= 2);
  const std::size_t nbins = edges.size() - 1;
  if (v <= edges.front()) return 0;
  if (v >= edges.back()) return nbins - 1;
  const auto it = std::upper_bound(edges.begin(), edges.end(), v);
  const auto idx = static_cast<std::size_t>(it - edges.begin());
  return std::min(idx - 1, nbins - 1);
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  assert(n >= 2);
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

}  // namespace surro::util
