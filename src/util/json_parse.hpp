#pragma once
// Minimal JSON reader, the consuming counterpart of util/json.hpp. The
// library stayed writer-only until the serving layer needed to replay
// request scripts (`surro_cli serve --script requests.jsonl`), which makes
// JSON an *input* format for the first time. The parser is a strict
// recursive-descent reader over a DOM of JsonValue nodes — small documents
// only (request scripts, test round-trips), so no streaming, no SIMD, and
// every malformed input fails with std::runtime_error rather than a
// best-effort guess.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace surro::util {

/// One node of a parsed JSON document. Exactly one of the payload fields is
/// meaningful, selected by `kind`; the accessors below throw on kind
/// mismatches so consumers surface schema errors instead of reading zeros.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }

  /// Object member lookup; throws std::runtime_error when absent or when
  /// this value is not an object.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// True when this is an object that has `key`.
  [[nodiscard]] bool has(const std::string& key) const noexcept;

  /// Checked scalar reads (throw std::runtime_error on kind mismatch).
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] bool as_bool() const;

  /// Object member with a fallback when the key is absent (the member, when
  /// present, must still have the right kind).
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const;
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
/// Throws std::runtime_error with a character offset on malformed input.
/// Containers may nest at most 128 levels deep — beyond that the parse
/// fails (rather than letting a hostile "[[[[..." input overflow the
/// recursive-descent stack).
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace surro::util
