#pragma once
// Minimal JSON reader, the consuming counterpart of util/json.hpp. The
// library stayed writer-only until the serving layer needed to replay
// request scripts (`surro_cli serve --script requests.jsonl`), which makes
// JSON an *input* format for the first time. The parser is a strict
// recursive-descent reader over a DOM of JsonValue nodes — small documents
// only (request scripts, test round-trips), so no streaming, no SIMD, and
// every malformed input fails with std::runtime_error rather than a
// best-effort guess.

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace surro::util {

/// One node of a parsed JSON document. Exactly one of the payload fields is
/// meaningful, selected by `kind`; the accessors below throw on kind
/// mismatches so consumers surface schema errors instead of reading zeros.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }

  /// Object member lookup; throws std::runtime_error when absent or when
  /// this value is not an object.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// True when this is an object that has `key`.
  [[nodiscard]] bool has(const std::string& key) const noexcept;

  /// Checked scalar reads (throw std::runtime_error on kind mismatch).
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] bool as_bool() const;

  /// Object member with a fallback when the key is absent (the member, when
  /// present, must still have the right kind).
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const;
};

/// What a parse rejected and where. Subclasses std::runtime_error so every
/// pre-existing catch site keeps working; new consumers (the HTTP front
/// end) can catch the typed form and surface the offset.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what), offset_(offset) {}
  /// Byte offset into the document where the parse failed.
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Hostile-input bounds for documents that arrive over the network (the
/// HTTP front end mirrors its body cap here so the framing layer and the
/// parser agree on "too big").
struct JsonLimits {
  /// Maximum document size in bytes; 0 = unlimited (trusted local input).
  std::size_t max_bytes = 0;
  /// Maximum container nesting. The parser is recursive-descent, so depth
  /// is stack depth; the cap turns a hostile "[[[[..." into a JsonParseError
  /// instead of a stack overflow.
  std::size_t max_depth = 128;
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
/// Throws JsonParseError (a std::runtime_error) with a byte offset on
/// malformed input. Strict by design — the checks network input relies on:
///   * containers nest at most `limits.max_depth` levels;
///   * a document longer than `limits.max_bytes` (when nonzero) is refused
///     before any parsing work;
///   * strings must be valid UTF-8 (overlong encodings, surrogate bytes,
///     and truncated sequences are rejected) with control characters
///     < 0x20 escaped, exactly as util::json_escape writes them.
[[nodiscard]] JsonValue parse_json(std::string_view text,
                                   const JsonLimits& limits);
/// Default limits: no byte cap (trusted local input), depth 128.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace surro::util
