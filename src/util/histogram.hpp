#pragma once
// Histogramming for marginal-distribution figures (Fig. 4) and for the 1-D
// Wasserstein / JSD metrics. Supports linear and log10 binning because the
// PanDA byte/file-count features span many decades.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace surro::util {

enum class BinScale { kLinear, kLog10 };

class Histogram {
 public:
  /// Build `bins` equal-width bins over [lo, hi] (log-space when kLog10;
  /// then lo must be > 0). Throws std::invalid_argument on bad ranges.
  Histogram(double lo, double hi, std::size_t bins,
            BinScale scale = BinScale::kLinear);

  /// Convenience: range from the data itself (with tiny padding). Empty data
  /// yields a degenerate single-bin histogram over [0, 1].
  static Histogram from_data(std::span<const double> data, std::size_t bins,
                             BinScale scale = BinScale::kLinear);

  void add(double v) noexcept;
  void add_all(std::span<const double> values) noexcept;

  [[nodiscard]] std::size_t num_bins() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const noexcept {
    return counts_[bin];
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Probability mass per bin (all zeros when empty).
  [[nodiscard]] std::vector<double> normalized() const;
  /// Bin centers in data space (geometric centers for log bins).
  [[nodiscard]] std::vector<double> centers() const;
  /// Bin edges in data space.
  [[nodiscard]] const std::vector<double>& edges() const noexcept {
    return edges_;
  }

  /// Compact ASCII bar rendering for terminal figures.
  [[nodiscard]] std::string ascii(std::size_t width = 48) const;

 private:
  std::vector<double> edges_;        // data-space edges, ascending
  std::vector<double> trans_edges_;  // binning-space edges (log10 when log)
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  BinScale scale_;
};

}  // namespace surro::util
