#pragma once
// Shared-memory parallelism for the hot loops (GEMM, k-NN, histogram builds,
// GBDT split search) and for chunked model sampling. A single process-wide
// pool is created lazily and sized to the hardware.
//
// Work is tracked per TaskGroup, and waiting is *helping*: a thread blocked
// on TaskGroup::wait() executes queued tasks (its own group's or anyone
// else's) instead of sleeping. That makes nested parallelism safe — a pool
// worker running a sampling chunk may itself call parallel_for (e.g. through
// GEMM) without deadlocking the pool. parallel_for falls back to a serial
// loop when the range is small or the pool has a single worker, so call
// sites never special-case.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace surro::util {

class ThreadPool;

/// Point-in-time snapshot of a pool's load, taken atomically under the pool
/// mutex. `queued + active` is the classic "in flight" count; the monotonic
/// totals let callers compute rates over an interval. Consumed by
/// serve::ServiceStats and the bench harnesses.
struct PoolCounters {
  std::size_t workers = 0;        ///< worker thread count (constant)
  std::size_t queued = 0;         ///< tasks waiting in the queue
  std::size_t active = 0;         ///< tasks currently executing
  std::uint64_t submitted = 0;    ///< total tasks ever submitted
  std::uint64_t completed = 0;    ///< total tasks finished (ok or thrown)
};

/// Completion tracker for a batch of related tasks. Submit through
/// ThreadPool::submit(group, task) and block in wait(); reusable for
/// subsequent batches once wait() returned. If a task throws, the first
/// exception is captured and rethrown by wait() after the batch drains —
/// the pool's bookkeeping never wedges.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Cooperative cancellation: request_stop() flips a flag that the group's
  /// tasks may poll via stop_requested() to abandon remaining work early.
  /// The pool itself never inspects the flag — already-queued tasks still
  /// run (and should return promptly once they observe the flag), so
  /// wait() semantics are unchanged. The flag resets on the next wait()
  /// return, keeping the group reusable across batches.
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  friend class ThreadPool;
  std::size_t pending_ = 0;  // guarded by the owning pool's mutex
  std::exception_ptr error_;  // first failure, guarded likewise
  std::atomic<bool> stop_{false};  // see request_stop()
};

class ThreadPool {
 public:
  /// Creates `threads` workers (0 -> std::thread::hardware_concurrency()).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; completion is observed via wait_idle().
  void submit(std::function<void()> task);

  /// Enqueue a task tracked by `group`; completion is observed via
  /// wait(group). The group must outlive the task.
  void submit(TaskGroup& group, std::function<void()> task);

  /// Block until every task submitted against `group` has finished. The
  /// calling thread helps drain the queue while it waits, so this is safe to
  /// call from inside a pool worker (nested parallelism). Rethrows the
  /// first exception any of the group's tasks threw.
  void wait(TaskGroup& group);

  /// Block until every submitted task (all groups) has finished. Unlike
  /// wait(), this must not be called from a pool worker. Exceptions from
  /// ungrouped tasks are rethrown here (first one wins).
  void wait_idle();

  /// Atomic snapshot of queue depth, running tasks, and lifetime totals.
  [[nodiscard]] PoolCounters counters() const;

  /// The process-wide pool (lazily constructed, never destroyed before exit).
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  void worker_loop();
  /// Run one task (caller holds no lock), then update the books.
  void run_task(Task task);

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_task_;  // workers: work available / stop
  std::condition_variable cv_done_;  // waiters: a task finished
  std::size_t in_flight_ = 0;
  std::uint64_t submitted_total_ = 0;
  std::uint64_t completed_total_ = 0;
  std::exception_ptr ungrouped_error_;  // first ungrouped-task failure
  bool stop_ = false;
};

/// Splits [begin, end) into contiguous chunks and runs `body(lo, hi)` on the
/// global pool. Serial when the range is tiny or only one worker exists.
/// `grain` is the minimum chunk size worth shipping to a worker. Safe to
/// call from inside pool tasks (the waiting thread helps execute).
/// `max_threads` caps the fan-out (at most that many chunks are in flight,
/// so at most that many pool workers run them): 0 = every pool worker,
/// 1 = run serially in the calling thread. Bodies that write disjoint
/// per-index outputs produce results bitwise independent of the count.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 1024, std::size_t max_threads = 0);

/// Per-element convenience wrapper.
void parallel_for_each(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& body,
                       std::size_t grain = 1024, std::size_t max_threads = 0);

}  // namespace surro::util
