#pragma once
// Shared-memory parallelism for the hot loops (GEMM, k-NN, histogram builds,
// GBDT split search). A single process-wide pool is created lazily and sized
// to the hardware; parallel_for falls back to a serial loop when the range is
// small or the pool has a single worker, so call sites never special-case.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace surro::util {

class ThreadPool {
 public:
  /// Creates `threads` workers (0 -> std::thread::hardware_concurrency()).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; completion is observed via wait_idle() or the
  /// parallel_for barrier.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// The process-wide pool (lazily constructed, never destroyed before exit).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Splits [begin, end) into contiguous chunks and runs `body(lo, hi)` on the
/// global pool. Serial when the range is tiny or only one worker exists.
/// `grain` is the minimum chunk size worth shipping to a worker.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 1024);

/// Per-element convenience wrapper.
void parallel_for_each(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& body,
                       std::size_t grain = 1024);

}  // namespace surro::util
