#include "util/thread_pool.hpp"

#include <algorithm>
#include <cassert>

namespace surro::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain) {
  if (begin >= end) return;
  auto& pool = ThreadPool::global();
  const std::size_t n = end - begin;
  const std::size_t workers = pool.size();
  if (workers <= 1 || n <= grain) {
    body(begin, end);
    return;
  }
  const std::size_t chunks = std::min(workers * 4, (n + grain - 1) / grain);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(lo + chunk, end);
    pool.submit([&body, lo, hi] { body(lo, hi); });
  }
  pool.wait_idle();
}

void parallel_for_each(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& body,
                       std::size_t grain) {
  parallel_for(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

}  // namespace surro::util
