#include "util/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace surro::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(Task{std::move(task), nullptr});
    ++in_flight_;
    ++submitted_total_;
  }
  cv_task_.notify_one();
}

void ThreadPool::submit(TaskGroup& group, std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(Task{std::move(task), &group});
    ++in_flight_;
    ++submitted_total_;
    ++group.pending_;
  }
  cv_task_.notify_one();
}

void ThreadPool::run_task(Task task) {
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  {
    const std::lock_guard lock(mutex_);
    --in_flight_;
    ++completed_total_;
    if (task.group != nullptr) {
      --task.group->pending_;
      if (error && !task.group->error_) task.group->error_ = error;
    } else if (error && !ungrouped_error_) {
      ungrouped_error_ = error;
    }
  }
  // A finished task may unblock wait()/wait_idle() callers.
  cv_done_.notify_all();
}

void ThreadPool::wait(TaskGroup& group) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (group.pending_ == 0) break;
    if (!tasks_.empty()) {
      Task task = std::move(tasks_.front());
      tasks_.pop();
      lock.unlock();
      run_task(std::move(task));
      lock.lock();
      continue;
    }
    // The group's remaining tasks are running on other threads.
    cv_done_.wait(lock,
                  [&] { return group.pending_ == 0 || !tasks_.empty(); });
  }
  group.stop_.store(false, std::memory_order_relaxed);  // reusable batches
  if (group.error_) {
    const std::exception_ptr error = std::exchange(group.error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (ungrouped_error_) {
    const std::exception_ptr error = std::exchange(ungrouped_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    run_task(std::move(task));
  }
}

PoolCounters ThreadPool::counters() const {
  const std::lock_guard lock(mutex_);
  PoolCounters c;
  c.workers = workers_.size();
  c.queued = tasks_.size();
  // in_flight_ counts queued + running; the difference is what executes now.
  c.active = in_flight_ - tasks_.size();
  c.submitted = submitted_total_;
  c.completed = completed_total_;
  return c;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain, std::size_t max_threads) {
  if (begin >= end) return;
  auto& pool = ThreadPool::global();
  const std::size_t n = end - begin;
  std::size_t workers = pool.size();
  if (max_threads > 0) workers = std::min(workers, max_threads);
  if (workers <= 1 || n <= grain) {
    body(begin, end);
    return;
  }
  // Oversubscribe 4x for load balancing — except under a binding
  // max_threads cap, where each queued chunk may occupy one pool worker and
  // the chunk count is therefore the actual concurrency bound.
  const bool capped = max_threads > 0 && max_threads < pool.size();
  const std::size_t max_chunks = capped ? workers : workers * 4;
  const std::size_t chunks = std::min(max_chunks, (n + grain - 1) / grain);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  TaskGroup group;
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(lo + chunk, end);
    pool.submit(group, [&body, lo, hi] { body(lo, hi); });
  }
  pool.wait(group);
}

void parallel_for_each(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& body,
                       std::size_t grain, std::size_t max_threads) {
  parallel_for(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain, max_threads);
}

}  // namespace surro::util
