#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <numeric>

#include "util/serialize.hpp"

namespace surro::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() noexcept { return Rng(next() ^ 0xD1B54A32D192ED03ULL); }

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi_v<double> * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  assert(lambda > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::gamma(double shape, double scale) noexcept {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct with the standard power trick.
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return scale * d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-lambda);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // workload simulator's large arrival counts.
  const double x = normal(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::pareto(double xm, double alpha) noexcept {
  assert(xm > 0.0 && alpha > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  assert(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical fallthrough
}

std::vector<std::size_t> Rng::permutation(std::size_t n) noexcept {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  shuffle(idx);
  return idx;
}

void Rng::save(std::ostream& os) const {
  io::write_tag(os, "XRNG");
  for (const std::uint64_t word : s_) io::write_u64(os, word);
  io::write_f64(os, cached_normal_);
  io::write_u32(os, has_cached_normal_ ? 1 : 0);
}

void Rng::load(std::istream& is) {
  io::expect_tag(is, "XRNG");
  for (auto& word : s_) word = io::read_u64(is);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    throw std::runtime_error("rng: all-zero xoshiro state");
  }
  cached_normal_ = io::read_f64(is);
  has_cached_normal_ = io::read_u32(is) != 0;
}

std::vector<std::size_t> Rng::sample_without_replacement(
    std::size_t n, std::size_t k) noexcept {
  assert(k <= n);
  // Partial Fisher–Yates over an index vector; O(n) memory, O(n) time.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(uniform_index(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  assert(n > 0);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);

  norm_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    norm_[i] = weights[i] / total;
    scaled[i] = norm_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::size_t l : large) prob_[l] = 1.0;
  for (const std::size_t s : small) prob_[s] = 1.0;
}

std::size_t AliasTable::sample(Rng& rng) const noexcept {
  const std::size_t i =
      static_cast<std::size_t>(rng.uniform_index(prob_.size()));
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace surro::util
