#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace surro::util {

std::size_t CsvDocument::column_index(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return npos;
}

namespace {

// State-machine record reader: consumes one logical CSV record (which may
// span physical lines inside quotes) starting at `pos`.
std::vector<std::string> parse_record(std::string_view text,
                                      std::size_t& pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field += '"';
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field += c;
        ++pos;
      }
      saw_any = true;
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        saw_any = true;
        ++pos;
        break;
      case ',':
        fields.push_back(std::move(field));
        field.clear();
        saw_any = true;
        ++pos;
        break;
      case '\r':
        ++pos;
        break;
      case '\n':
        ++pos;
        fields.push_back(std::move(field));
        return fields;
      default:
        field += c;
        saw_any = true;
        ++pos;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("csv: unclosed quote");
  if (saw_any || !fields.empty()) fields.push_back(std::move(field));
  return fields;
}

}  // namespace

CsvDocument parse_csv(std::string_view text, bool has_header) {
  CsvDocument doc;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    auto record = parse_record(text, pos);
    if (record.empty()) continue;
    if (first && has_header) {
      doc.header = std::move(record);
      first = false;
      continue;
    }
    first = false;
    if (!doc.header.empty() && record.size() != doc.header.size()) {
      throw std::runtime_error("csv: ragged row (expected " +
                               std::to_string(doc.header.size()) + " fields, got " +
                               std::to_string(record.size()) + ")");
    }
    if (!doc.rows.empty() && record.size() != doc.rows.front().size()) {
      throw std::runtime_error("csv: ragged row");
    }
    doc.rows.push_back(std::move(record));
  }
  if (!has_header && !doc.rows.empty()) {
    doc.header.resize(doc.rows.front().size());
    for (std::size_t i = 0; i < doc.header.size(); ++i) {
      doc.header[i] = "col" + std::to_string(i);
    }
  }
  return doc;
}

CsvDocument read_csv_file(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("csv: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str(), has_header);
}

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string to_csv(const CsvDocument& doc) {
  std::string out;
  const auto emit_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += csv_escape(row[i]);
    }
    out += '\n';
  };
  if (!doc.header.empty()) emit_row(doc.header);
  for (const auto& row : doc.rows) emit_row(row);
  return out;
}

void write_csv_file(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("csv: cannot write " + path);
  out << to_csv(doc);
  if (!out) throw std::runtime_error("csv: write failed for " + path);
}

}  // namespace surro::util
