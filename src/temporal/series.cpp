#include "temporal/series.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/mathx.hpp"

namespace surro::temporal {

std::vector<double> bin_counts(std::span<const double> times,
                               double horizon_days, double bin_width_days) {
  if (horizon_days <= 0.0 || bin_width_days <= 0.0) {
    throw std::invalid_argument("temporal: non-positive horizon/bin width");
  }
  const auto bins = static_cast<std::size_t>(
      std::ceil(horizon_days / bin_width_days));
  std::vector<double> counts(std::max<std::size_t>(bins, 1), 0.0);
  for (const double t : times) {
    if (t < 0.0 || t >= horizon_days) continue;
    counts[static_cast<std::size_t>(t / bin_width_days)] += 1.0;
  }
  return counts;
}

std::vector<double> autocorrelation(std::span<const double> series,
                                    std::size_t max_lag) {
  const std::size_t n = series.size();
  std::vector<double> acf(max_lag + 1, 0.0);
  if (n == 0) return acf;
  const double m = util::mean(series);
  double denom = 0.0;
  for (const double v : series) denom += (v - m) * (v - m);
  acf[0] = 1.0;
  if (denom <= 0.0) return acf;
  for (std::size_t lag = 1; lag <= max_lag && lag < n; ++lag) {
    double num = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      num += (series[i] - m) * (series[i + lag] - m);
    }
    acf[lag] = num / denom;
  }
  return acf;
}

namespace {

bool is_power_of_two(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

// Iterative radix-2 Cooley–Tukey, in place.
void fft_radix2(std::vector<std::complex<double>>& a) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * util::kPi / static_cast<double>(len);
    const std::complex<double> wl(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
}

}  // namespace

std::vector<std::complex<double>> dft(std::span<const double> series) {
  const std::size_t n = series.size();
  std::vector<std::complex<double>> out(n);
  if (n == 0) return out;
  if (is_power_of_two(n)) {
    for (std::size_t i = 0; i < n; ++i) out[i] = series[i];
    fft_radix2(out);
    return out;
  }
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * util::kPi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      acc += series[t] * std::complex<double>(std::cos(angle),
                                              std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> periodogram(std::span<const double> series) {
  const std::size_t n = series.size();
  if (n < 2) return {};
  const double m = util::mean(series);
  std::vector<double> centered(series.begin(), series.end());
  for (double& v : centered) v -= m;
  const auto spectrum = dft(centered);
  std::vector<double> power(n / 2 + 1, 0.0);
  for (std::size_t k = 0; k < power.size(); ++k) {
    power[k] = std::norm(spectrum[k]) / static_cast<double>(n);
  }
  return power;
}

double dominant_period_days(std::span<const double> series,
                            double bin_width_days, double min_period,
                            double max_period) {
  const auto power = periodogram(series);
  if (power.size() < 3) return 0.0;
  const double n = static_cast<double>(series.size());
  double best_power = 0.0;
  double best_period = 0.0;
  double total = 0.0;
  for (std::size_t k = 1; k < power.size(); ++k) {
    const double period = n * bin_width_days / static_cast<double>(k);
    total += power[k];
    if (period < min_period || period > max_period) continue;
    if (power[k] > best_power) {
      best_power = power[k];
      best_period = period;
    }
  }
  // Require the peak to carry a non-trivial share of spectral mass.
  if (total <= 0.0 || best_power < 0.01 * total) return 0.0;
  return best_period;
}

namespace {
std::vector<double> slot_profile(std::span<const double> times,
                                 double horizon_days, std::size_t slots,
                                 double slots_per_day) {
  std::vector<double> counts(slots, 0.0);
  std::vector<double> exposure(slots, 0.0);
  // Exposure: how many times each slot occurs in the horizon.
  const double total_slots = horizon_days * slots_per_day;
  for (double s = 0.0; s < total_slots; s += 1.0) {
    exposure[static_cast<std::size_t>(std::fmod(s, static_cast<double>(slots)))] +=
        1.0;
  }
  for (const double t : times) {
    if (t < 0.0 || t >= horizon_days) continue;
    const double slot_pos = t * slots_per_day;
    counts[static_cast<std::size_t>(std::fmod(slot_pos,
                                              static_cast<double>(slots)))] +=
        1.0;
  }
  std::vector<double> profile(slots, 1.0);
  double mean_rate = 0.0;
  std::size_t active = 0;
  for (std::size_t s = 0; s < slots; ++s) {
    if (exposure[s] > 0.0) {
      profile[s] = counts[s] / exposure[s];
      mean_rate += profile[s];
      ++active;
    }
  }
  if (active == 0 || mean_rate <= 0.0) {
    return std::vector<double>(slots, 1.0);
  }
  mean_rate /= static_cast<double>(active);
  for (double& p : profile) p /= mean_rate;
  return profile;
}
}  // namespace

std::vector<double> day_of_week_profile(std::span<const double> times,
                                        double horizon_days) {
  return slot_profile(times, horizon_days, 7, 1.0);
}

std::vector<double> hour_of_day_profile(std::span<const double> times,
                                        double horizon_days) {
  return slot_profile(times, horizon_days, 24, 24.0);
}

double profile_distance(std::span<const double> a,
                        std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("temporal: profile length mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return a.empty() ? 0.0 : acc / static_cast<double>(a.size());
}

TemporalFidelity compare_temporal(std::span<const double> real_times,
                                  std::span<const double> synth_times,
                                  double horizon_days,
                                  double bin_width_days,
                                  std::size_t max_lag_bins) {
  TemporalFidelity out;
  out.weekly_profile_distance =
      profile_distance(day_of_week_profile(real_times, horizon_days),
                       day_of_week_profile(synth_times, horizon_days));
  out.diurnal_profile_distance =
      profile_distance(hour_of_day_profile(real_times, horizon_days),
                       hour_of_day_profile(synth_times, horizon_days));

  const auto real_series =
      bin_counts(real_times, horizon_days, bin_width_days);
  const auto synth_series =
      bin_counts(synth_times, horizon_days, bin_width_days);
  out.real_dominant_period =
      dominant_period_days(real_series, bin_width_days);
  out.synth_dominant_period =
      dominant_period_days(synth_series, bin_width_days);

  const auto acf_real = autocorrelation(real_series, max_lag_bins);
  const auto acf_synth = autocorrelation(synth_series, max_lag_bins);
  double rmse = 0.0;
  for (std::size_t lag = 1; lag < acf_real.size(); ++lag) {
    const double d = acf_real[lag] - acf_synth[lag];
    rmse += d * d;
  }
  out.acf_rmse = std::sqrt(rmse / static_cast<double>(max_lag_bins));
  return out;
}

}  // namespace surro::temporal
