#pragma once
// Temporal analysis of job-submission streams — the paper's Sec. VI first
// limitation ("the temporal aspect of the submitted jobs has not been
// studied in depth ... whether or not there are periodic ups and downs due
// to weekends"). This module answers that question quantitatively: binned
// count series, autocorrelation, a periodogram built on a radix-agnostic
// DFT, day-of-week and hour-of-day profiles, and similarity scores between
// the real and synthetic creation-time processes.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace surro::temporal {

/// Event times (days) -> counts per fixed-width bin over [0, horizon).
[[nodiscard]] std::vector<double> bin_counts(std::span<const double> times,
                                             double horizon_days,
                                             double bin_width_days);

/// Sample autocorrelation of a series at lags 0..max_lag (biased estimator,
/// normalized so acf[0] == 1; zero-variance series yields all-zeros after
/// lag 0).
[[nodiscard]] std::vector<double> autocorrelation(
    std::span<const double> series, std::size_t max_lag);

/// Discrete Fourier transform (naive O(n²) fallback, radix-2 FFT when the
/// length is a power of two). Exposed for tests.
[[nodiscard]] std::vector<std::complex<double>> dft(
    std::span<const double> series);

/// One-sided power spectrum of the mean-removed series; entry k corresponds
/// to frequency k / (n · bin_width) cycles per day.
[[nodiscard]] std::vector<double> periodogram(std::span<const double> series);

/// The dominant period (in days) of a count series binned at `bin_width`
/// days, searched over periods in [min_period, max_period]. Returns 0 when
/// the spectrum is flat.
[[nodiscard]] double dominant_period_days(std::span<const double> series,
                                          double bin_width_days,
                                          double min_period = 2.0,
                                          double max_period = 14.0);

/// Mean event rate per day-of-week slot (7 entries, normalized to mean 1;
/// all-zeros input yields all-ones).
[[nodiscard]] std::vector<double> day_of_week_profile(
    std::span<const double> times, double horizon_days);

/// Mean event rate per hour-of-day slot (24 entries, normalized to mean 1).
[[nodiscard]] std::vector<double> hour_of_day_profile(
    std::span<const double> times, double horizon_days);

/// L1 distance between two normalized profiles (0 = identical shapes).
[[nodiscard]] double profile_distance(std::span<const double> a,
                                      std::span<const double> b);

/// Summary comparison of two creation-time processes.
struct TemporalFidelity {
  double weekly_profile_distance = 0.0;  // day-of-week L1
  double diurnal_profile_distance = 0.0; // hour-of-day L1
  double real_dominant_period = 0.0;     // days
  double synth_dominant_period = 0.0;    // days
  double acf_rmse = 0.0;                 // autocorrelation mismatch
};

[[nodiscard]] TemporalFidelity compare_temporal(
    std::span<const double> real_times, std::span<const double> synth_times,
    double horizon_days, double bin_width_days = 0.25,
    std::size_t max_lag_bins = 64);

}  // namespace surro::temporal
