#include "serve/worker_fleet.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <thread>

#include "net/client.hpp"
#include "util/timer.hpp"

namespace surro::serve {

namespace {

/// Sentinel wait-status for a pid waitpid() refused to report on (ECHILD):
/// decodes as "exited with 127" so shutdown() surfaces it as a failure
/// instead of a stale zero.
constexpr int kLostWaitStatus = 127 << 8;

std::string make_scratch_dir() {
  char tmpl[] = "/tmp/surro_fleet_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    throw std::runtime_error("worker fleet: mkdtemp failed: " +
                             std::string(std::strerror(errno)));
  }
  return tmpl;
}

/// Read "12345\n" from a worker's --port-file; 0 while absent/incomplete.
/// The worker publishes via rename() so the file is normally atomic, but
/// the trailing-newline check also rejects any partially-written prefix
/// ("12" of "12345") that would otherwise parse as a valid — wrong — port.
std::uint16_t read_port_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (text.empty() || text.back() != '\n') return 0;
  text.pop_back();
  unsigned port = 0;
  const auto res =
      std::from_chars(text.data(), text.data() + text.size(), port);
  if (res.ec != std::errc{} || res.ptr != text.data() + text.size() ||
      port == 0 || port > 65535) {
    return 0;
  }
  return static_cast<std::uint16_t>(port);
}

}  // namespace

WorkerFleet::WorkerFleet(WorkerFleetConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.cli_path.empty()) {
    throw std::invalid_argument("worker fleet: cli_path is required");
  }
  if (cfg_.workers == 0) {
    throw std::invalid_argument("worker fleet: needs at least one worker");
  }
  scratch_ = cfg_.scratch_dir.empty() ? make_scratch_dir() : cfg_.scratch_dir;
}

WorkerFleet::~WorkerFleet() { kill_all(); }

void WorkerFleet::spawn(std::size_t index) {
  Worker w;
  w.port_file = scratch_ + "/worker" + std::to_string(index) + ".port";
  w.log_file = scratch_ + "/worker" + std::to_string(index) + ".log";
  std::remove(w.port_file.c_str());

  std::vector<std::string> args = {cfg_.cli_path,  "serve",
                                   "--worker",     "--listen",
                                   "0",            "--port-file",
                                   w.port_file};
  args.insert(args.end(), cfg_.serve_args.begin(), cfg_.serve_args.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error("worker fleet: fork failed: " +
                             std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    // Child: give the worker its own process group so a caller's Ctrl-C
    // does not nuke the fleet before shutdown() can run the graceful path.
    ::setpgid(0, 0);
    if (!cfg_.inherit_output) {
      const int fd =
          ::open(w.log_file.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        ::close(fd);
      }
    }
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "worker fleet: execv %s failed: %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  w.pid = pid;
  workers_.push_back(std::move(w));
}

void WorkerFleet::start() {
  workers_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) spawn(i);

  // Readiness: the port file materializes once the worker bound its
  // ephemeral port, then /healthz confirms the accept loop is live.
  util::Stopwatch clock;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = workers_[i];
    for (;;) {
      if (clock.seconds() > cfg_.ready_timeout_seconds) {
        kill_all();
        throw std::runtime_error("worker fleet: worker " + std::to_string(i) +
                                 " not ready after " +
                                 std::to_string(cfg_.ready_timeout_seconds) +
                                 "s (see " + w.log_file + ")");
      }
      if (!alive(i)) {
        kill_all();
        throw std::runtime_error("worker fleet: worker " + std::to_string(i) +
                                 " exited during startup (see " + w.log_file +
                                 ")");
      }
      if (w.port == 0) w.port = read_port_file(w.port_file);
      if (w.port != 0) {
        net::ApiClient probe("127.0.0.1", w.port, "",
                             net::ClientConfig{1.0, 1, 0.0, 0.0});
        if (probe.healthy(1.0)) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

std::uint16_t WorkerFleet::port(std::size_t i) const {
  return workers_.at(i).port;
}

pid_t WorkerFleet::pid(std::size_t i) const { return workers_.at(i).pid; }

bool WorkerFleet::alive(std::size_t i) const {
  const Worker& w = workers_.at(i);
  if (w.pid < 0 || w.reaped) return false;
  int status = 0;
  const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
  if (r == w.pid) {
    auto& mut = const_cast<Worker&>(w);
    mut.reaped = true;
    mut.exit_status = status;
    return false;
  }
  if (r < 0) {
    // ECHILD etc.: the pid is no longer ours to track, and may already be
    // recycled by an unrelated process. Mark it reaped so kill_all() /
    // shutdown() never signal it.
    auto& mut = const_cast<Worker&>(w);
    mut.reaped = true;
    mut.exit_status = kLostWaitStatus;
    return false;
  }
  return r == 0;
}

void WorkerFleet::kill_one(std::size_t i, int sig) {
  Worker& w = workers_.at(i);
  if (w.pid < 0 || w.reaped) return;
  ::kill(w.pid, sig);
  if (sig == SIGKILL) {
    ::waitpid(w.pid, &w.exit_status, 0);
    w.reaped = true;
  }
}

int WorkerFleet::shutdown(double timeout_seconds) {
  int worst = 0;
  for (auto& w : workers_) {
    if (w.pid < 0 || w.reaped) continue;
    ::kill(w.pid, SIGTERM);
  }
  util::Stopwatch clock;
  for (auto& w : workers_) {
    if (w.pid < 0) continue;
    while (!w.reaped) {
      int status = 0;
      const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      if (r == w.pid) {
        w.reaped = true;
        w.exit_status = status;
        break;
      }
      if (r < 0) {
        // Same as alive(): never escalate to SIGKILL on a pid we can no
        // longer wait on — it may have been recycled.
        w.reaped = true;
        w.exit_status = kLostWaitStatus;
        break;
      }
      if (clock.seconds() > timeout_seconds) {
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, &status, 0);
        w.reaped = true;
        w.exit_status = status;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    int code = 0;
    if (WIFEXITED(w.exit_status)) {
      code = WEXITSTATUS(w.exit_status);
    } else if (WIFSIGNALED(w.exit_status)) {
      code = 128 + WTERMSIG(w.exit_status);
    }
    worst = std::max(worst, code);
  }
  return worst;
}

void WorkerFleet::kill_all() noexcept {
  for (auto& w : workers_) {
    if (w.pid < 0 || w.reaped) continue;
    ::kill(w.pid, SIGKILL);
    ::waitpid(w.pid, &w.exit_status, 0);
    w.reaped = true;
  }
}

}  // namespace surro::serve
