#pragma once
// ModelHost: a thread-safe, string-keyed host of fitted surrogates backed by
// on-disk model archives (the save_model/load_model format), with a
// capacity-bounded LRU cache so far more models can be *addressable* than
// fit in memory — the partition-and-serve shape of ParK (arXiv:2106.12231)
// applied to a pool of cheap fitted sub-models.
//
// Two kinds of entries:
//   * archive-backed (register_archive): loaded lazily on first acquire(),
//     evictable; a later acquire() transparently reloads. Archives are
//     deterministic, so an evict/reload cycle samples bitwise identically.
//   * in-memory (register_fitted): a fitted instance handed over by the
//     caller (e.g. core::SurrogatePipeline registering its own model).
//     Pinned by default — there is no archive to reload from, so eviction
//     would lose it; unpinned in-memory entries *can* be evicted, after
//     which acquire() throws.
//
// acquire() returns a shared_ptr lease: eviction only drops the host's
// reference, so a model being sampled stays alive until the last lease
// releases. Hit/miss/load/eviction counters feed serve::ServiceStats.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "models/generator.hpp"
#include "util/timer.hpp"

namespace surro::serve {

struct HostConfig {
  /// Maximum resident (in-memory) models. Loading past the capacity evicts
  /// the least-recently-used unpinned entry; when everything is pinned the
  /// host temporarily exceeds capacity rather than failing the request.
  std::size_t capacity = 4;
  /// Default staleness bound for archive-backed entries: a resident model
  /// older than this (since its load) is treated as a *miss* on the next
  /// acquire() and reloaded from its archive. 0 = entries never go stale.
  /// Archives are deterministic, so a stale reload never changes bytes —
  /// the TTL exists for operators who overwrite archives in place.
  double ttl_ms = 0.0;
};

/// Fault-injection knobs for archive loads (tests and the soak harness).
/// Injected behavior applies to *archive loads only* — resident hits are
/// untouched — so eviction/reload races can be widened and load-failure
/// paths exercised deterministically.
struct HostFaults {
  /// Sleep this long inside each archive load, outside the host lock (so
  /// concurrent acquires pile up on the loading flag exactly as they would
  /// behind a genuinely slow disk).
  double load_delay_ms = 0.0;
  /// Fail the next N archive loads with std::runtime_error before touching
  /// the file. Decremented per failed load; 0 = loads succeed.
  std::size_t fail_loads = 0;
};

/// Cache effectiveness counters (monotonic since construction) plus the
/// current residency picture.
struct HostStats {
  std::size_t registered = 0;  ///< addressable keys
  std::size_t resident = 0;    ///< models currently in memory
  std::size_t pinned = 0;      ///< resident models exempt from eviction
  std::size_t capacity = 0;    ///< configured residency bound
  std::uint64_t hits = 0;      ///< acquire() served from memory
  std::uint64_t misses = 0;    ///< acquire() had to load (or wait on a load)
  std::uint64_t loads = 0;     ///< archive loads performed
  std::uint64_t load_failures = 0;  ///< archive loads that threw (incl. injected)
  std::uint64_t evictions = 0; ///< models dropped by the LRU policy
  std::uint64_t stale_reloads = 0;  ///< TTL-expired residents reloaded
  std::uint64_t invalidations = 0;  ///< invalidate() calls that dropped a copy

  /// hits / (hits + misses); 1.0 for an untouched host.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 1.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class ModelHost {
 public:
  explicit ModelHost(HostConfig cfg = {});

  ModelHost(const ModelHost&) = delete;
  ModelHost& operator=(const ModelHost&) = delete;

  /// Make `key` addressable, backed by a save_model archive at `path`.
  /// Nothing is loaded until the first acquire(). Throws on duplicate keys.
  /// `ttl_ms` overrides HostConfig::ttl_ms for this entry; negative (the
  /// default) inherits the host-wide value, 0 means never stale.
  void register_archive(std::string key, std::string path,
                        double ttl_ms = -1.0);

  /// Make `key` addressable as an already-fitted in-memory instance. The
  /// model must be fitted. `pin` defaults to true because there is no
  /// archive to reload from after an eviction.
  void register_fitted(std::string key,
                       std::shared_ptr<models::TabularGenerator> model,
                       bool pin = true);

  /// Remove a key entirely (resident or not). Outstanding leases stay
  /// valid; unknown keys are ignored so teardown paths can be unconditional.
  void unregister(const std::string& key);

  /// Lease the fitted model for `key`, loading it from its archive on a
  /// miss (concurrent misses on one key load once; the load runs outside
  /// the host lock). Throws std::invalid_argument for unknown keys and
  /// std::runtime_error for evicted in-memory entries.
  [[nodiscard]] std::shared_ptr<models::TabularGenerator> acquire(
      const std::string& key);

  /// Make `key` resident (loading if needed) and exempt from eviction /
  /// undo that. Pinning counts against capacity like any resident model.
  void pin(const std::string& key);
  void unpin(const std::string& key);

  /// Drop every unpinned resident model now (cache clear; counted as
  /// evictions). Leases held by callers stay valid.
  void evict_idle();

  /// Drop the resident copy of one archive-backed key so the next acquire()
  /// reloads from disk (explicit cache invalidation; the shard pool fans
  /// this out to every replica). Returns true when a resident copy was
  /// dropped; in-memory (fitted) entries, unknown keys, non-resident
  /// entries, and entries mid-load are left alone and return false.
  bool invalidate(const std::string& key);

  /// Replace the fault-injection knobs (see HostFaults). Thread-safe;
  /// affects archive loads that *start* after the call.
  void inject_faults(HostFaults faults);

  [[nodiscard]] bool contains(const std::string& key) const;
  /// True when `key` is currently in memory (no load needed to acquire).
  [[nodiscard]] bool resident(const std::string& key) const;
  /// Sorted list of addressable keys.
  [[nodiscard]] std::vector<std::string> keys() const;
  /// Archive path behind `key` — empty for in-memory (fitted) entries and
  /// unknown keys. Lets a shard pool replicate this host's registrations.
  [[nodiscard]] std::string archive_path(const std::string& key) const;
  [[nodiscard]] HostStats stats() const;

 private:
  struct Entry {
    std::string archive_path;  // empty => in-memory only entry
    std::shared_ptr<models::TabularGenerator> model;  // null when evicted
    bool pinned = false;
    bool loading = false;      // a thread is loading the archive right now
    bool ever_loaded = false;  // distinguishes "not yet" from "evicted"
    std::uint64_t last_use = 0;
    double ttl_ms = 0.0;       // resolved at registration; 0 = never stale
    double loaded_at = 0.0;    // age_clock_ seconds at the last (re)load
  };

  /// Evict LRU unpinned entries until residency fits capacity. Caller holds
  /// the lock. `keep` (the just-loaded key's entry) is never evicted.
  void enforce_capacity_locked(const Entry* keep);
  [[nodiscard]] std::size_t resident_count_locked() const;

  HostConfig cfg_;
  HostFaults faults_;  // guarded by mutex_
  mutable std::mutex mutex_;
  std::condition_variable cv_load_;  // a pending archive load finished
  std::map<std::string, Entry> entries_;
  std::uint64_t clock_ = 0;  // LRU clock, bumped on every touch
  util::Stopwatch age_clock_;  // staleness clock for TTL checks
  HostStats tally_;          // counter part only (residency derived live)
};

}  // namespace surro::serve
