#pragma once
// Request-script replay for the serving layer: parse a JSONL script (one
// SampleJob per line) or an inline spec, fire it at a SampleService from N
// concurrent clients, and roll the outcome up into the `serve_stats` JSON
// artifact that `surro_cli serve` emits and CI schema-validates.
//
// The replay records an order-independent hash over every returned table
// (sum of per-job FNV-1a digests), so two runs of the same script — at any
// client count, batch size, or cache capacity — must produce the same
// `output_hash`. That makes the artifact itself a determinism probe, not
// just a throughput report.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/sample_service.hpp"

namespace surro::serve {

/// One script line: a job template plus fan-out. `repeat` submits the job
/// that many times; each repetition k uses seed + k * seed_stride, so a
/// stride of 0 replays bitwise-identical jobs and a nonzero stride sweeps
/// fresh streams.
struct ReplayRequest {
  SampleJob job;
  std::size_t repeat = 1;
  std::uint64_t seed_stride = 0;
};

struct ReplayScript {
  std::vector<ReplayRequest> requests;
};

/// JSONL: one JSON object per line — {"model": "smote", "rows": 500,
/// "seed": 7, "chunk_rows": 1024, "priority": 0, "deadline_ms": 250,
/// "repeat": 4, "seed_stride": 1}. Only "model" and "rows" are required.
/// Blank lines and lines starting with '#' are skipped. Throws
/// std::runtime_error (with the line number) on malformed input.
[[nodiscard]] ReplayScript parse_script_jsonl(std::istream& is);

/// Inline spec: ';'-separated requests, each "key=value" pairs joined by
/// ',' with the same fields as the JSONL form — e.g.
/// "model=smote,rows=500,seed=7,repeat=4;model=tvae,rows=200".
[[nodiscard]] ReplayScript parse_script_inline(const std::string& spec);

struct ReplayOptions {
  std::size_t clients = 1;  ///< concurrent submitting client threads
  std::size_t rounds = 1;   ///< whole-script repetitions
};

struct ReplayResult {
  std::uint64_t jobs = 0;       ///< submissions attempted
  std::uint64_t completed = 0;  ///< futures that delivered a table
  std::uint64_t rows = 0;       ///< synthetic rows returned
  std::uint64_t failures = 0;  ///< futures that surfaced an execution error
  /// Overload outcomes (all zero unless the service has admission bounds,
  /// deadlines, or cancellation in play).
  std::uint64_t rejected = 0;         ///< submits refused at admission
  std::uint64_t shed = 0;             ///< jobs dropped by the shed policy
  std::uint64_t deadline_missed = 0;  ///< jobs that blew their deadline
  double wall_seconds = 0.0;
  /// Order-independent digest over every returned table (see header).
  std::uint64_t output_hash = 0;
  /// Service snapshot taken right after the last future resolved.
  ServiceStats stats;
};

/// Stable digest of a table's contents (schema-ordered numerical bits +
/// categorical labels); shared by the replay hash and the serve tests.
[[nodiscard]] std::uint64_t hash_table(const tabular::Table& table);

/// Expand the script (rounds × requests × repeat), interleave it over
/// `clients` submitting threads, and wait for every future.
[[nodiscard]] ReplayResult run_replay(SampleBackend& service,
                                      const ReplayScript& script,
                                      const ReplayOptions& options);

/// The `serve_stats` artifact (schema_version 1, kind "serve_stats").
[[nodiscard]] std::string serve_stats_to_json(const SampleBackend& service,
                                              const ReplayOptions& options,
                                              const ReplayResult& result);

}  // namespace surro::serve
