#include "serve/soak.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "net/client.hpp"
#include "net/error_map.hpp"
#include "net/rest.hpp"
#include "serve/latency_window.hpp"
#include "serve/shard_pool.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace surro::serve {

namespace {

/// The job seed for (model m, stream s): a SplitMix64 hash of the identity,
/// so neighbouring identities get unrelated streams.
std::uint64_t seed_for(const SoakConfig& cfg, std::size_t model,
                       std::size_t stream) {
  std::uint64_t state = cfg.seed +
                        0x9E3779B97F4A7C15ULL *
                            (model * cfg.seed_streams + stream + 1);
  return util::splitmix64(state);
}

/// Deterministic per-(point, client) arrival-process seed.
std::uint64_t arrival_seed(const SoakConfig& cfg, std::size_t point,
                           std::size_t client) {
  std::uint64_t state = cfg.seed ^ (0xA24BAED4963EE407ULL + point);
  (void)util::splitmix64(state);  // advance: decorrelate point from seed
  state += client;
  return util::splitmix64(state);
}

}  // namespace

SoakResult run_soak(ModelHost& host, const SoakConfig& cfg) {
  if (cfg.models.empty()) {
    throw std::invalid_argument("soak: need at least one model");
  }
  if (cfg.load_multipliers.empty()) {
    throw std::invalid_argument("soak: need at least one load multiplier");
  }
  if (cfg.rows_per_job == 0 || cfg.chunk_rows == 0 ||
      cfg.seed_streams == 0 || cfg.clients == 0) {
    throw std::invalid_argument("soak: rows_per_job, chunk_rows, "
                                "seed_streams, clients must be positive");
  }
  const std::size_t num_models = cfg.models.size();
  const std::size_t identities = num_models * cfg.seed_streams;

  util::Stopwatch total;
  SoakResult result;

  // ---- Expected digests: sample every (model, stream) identity directly,
  // single-threaded, outside any service. This is the ground truth each
  // accepted job is compared against — the determinism contract says
  // serving machinery (batching, rejection storms, eviction/reload) must
  // never move a job's bytes off this table.
  std::vector<std::vector<std::uint64_t>> expected(num_models);
  for (std::size_t m = 0; m < num_models; ++m) {
    const auto model = host.acquire(cfg.models[m]);
    expected[m].resize(cfg.seed_streams);
    for (std::size_t s = 0; s < cfg.seed_streams; ++s) {
      models::SampleRequest request;
      request.rows = cfg.rows_per_job;
      request.seed = seed_for(cfg, m, s);
      request.chunk_rows = cfg.chunk_rows;
      request.threads = 1;
      tabular::Table table;
      model->sample_into(table, request);
      expected[m][s] = hash_table(table);
      result.expected_hash += expected[m][s];  // sum: order-independent
    }
  }

  const auto make_job = [&](std::size_t identity) {
    const std::size_t m = identity % num_models;
    const std::size_t s = identity / num_models % cfg.seed_streams;
    SampleJob job;
    job.model_key = cfg.models[m];
    job.rows = cfg.rows_per_job;
    job.seed = seed_for(cfg, m, s);
    job.chunk_rows = cfg.chunk_rows;
    job.deadline_ms = cfg.deadline_ms;
    return job;
  };
  const auto expected_for = [&](std::size_t identity) {
    const std::size_t m = identity % num_models;
    const std::size_t s = identity / num_models % cfg.seed_streams;
    return expected[m][s];
  };

  // ---- Calibration: measure sustained jobs/sec with no admission bounds.
  // The sweep's offered rates are multiples of this.
  {
    ServiceConfig calib_cfg;
    calib_cfg.sample_threads = cfg.sample_threads;
    calib_cfg.chunk_rows = cfg.chunk_rows;
    calib_cfg.max_batch = cfg.max_batch;
    SampleService calibration(host, calib_cfg);
    const std::size_t jobs =
        std::max<std::size_t>(cfg.clients * cfg.calibration_jobs_per_client,
                              1);
    // Warm-up pass (archive loads, allocator) before the timed one.
    for (int round = 0; round < 2; ++round) {
      util::Stopwatch wall;
      std::vector<std::future<SampleResult>> futures;
      futures.reserve(jobs);
      for (std::size_t j = 0; j < jobs; ++j) {
        // Deadline-free: calibration measures raw capacity, and a burst
        // of queued jobs expiring here would both skew the estimate and
        // throw out of the unguarded get() below.
        SampleJob job = make_job(j % identities);
        job.deadline_ms = 0.0;
        futures.push_back(calibration.submit(std::move(job)));
      }
      for (auto& future : futures) (void)future.get();
      if (round == 1) {
        result.capacity_jobs_per_sec =
            static_cast<double>(jobs) / std::max(wall.seconds(), 1e-9);
      }
    }
  }
  if (cfg.verbose) {
    std::printf("soak: calibrated capacity %.1f jobs/s (%zu models, %zu "
                "rows/job)\n",
                result.capacity_jobs_per_sec, num_models, cfg.rows_per_job);
  }

  // ---- The bounded backend under test: one SampleService, or a ShardPool
  // of them. The pool replicates the caller's host registrations (archives
  // by path, fitted models by clone), so the expected digests computed on
  // the unsharded host above double as the cross-placement check.
  ServiceConfig svc_cfg;
  svc_cfg.sample_threads = cfg.sample_threads;
  svc_cfg.chunk_rows = cfg.chunk_rows;
  svc_cfg.max_batch = cfg.max_batch;
  svc_cfg.admission = cfg.admission;
  svc_cfg.max_queue_depth = cfg.effective_queue_depth();
  svc_cfg.max_queued_rows = cfg.max_queued_rows;
  std::unique_ptr<SampleService> single;
  std::unique_ptr<ShardPool> pool;
  SampleBackend* backend = nullptr;
  if (cfg.shards > 1 || !cfg.remote_shards.empty()) {
    ShardPoolConfig pool_cfg;
    pool_cfg.shards = cfg.shards;
    pool_cfg.replication = std::max<std::size_t>(cfg.replicas, 1);
    pool_cfg.host.capacity = host.stats().capacity;
    pool_cfg.host.ttl_ms = cfg.shard_ttl_ms;
    pool_cfg.service = svc_cfg;
    for (const auto& spec : cfg.remote_shards) {
      pool_cfg.remotes.push_back(parse_remote_endpoint(spec));
    }
    pool = std::make_unique<ShardPool>(pool_cfg);
    for (const auto& key : cfg.models) {
      const std::string path = host.archive_path(key);
      if (!path.empty()) {
        pool->register_archive(key, path);
      } else {
        // A fitted in-memory model cannot cross a process boundary;
        // register_fitted throws when any owner shard is remote, which is
        // the right answer (the worker could never produce those bytes).
        pool->register_fitted(
            key, std::shared_ptr<models::TabularGenerator>(
                     host.acquire(key)->clone()));
      }
    }
    backend = pool.get();
    if (cfg.verbose) {
      std::printf(
          "soak: sharded tier — %zu local + %zu remote shards, "
          "replication %zu\n",
          cfg.shards, cfg.remote_shards.size(), pool_cfg.replication);
    }
  } else {
    single = std::make_unique<SampleService>(host, svc_cfg);
    backend = single.get();
  }
  SampleBackend& service = *backend;

  // Socket mode: the same bounded service, but behind the REST front end
  // on an ephemeral loopback port. Clients switch from submit()/future to
  // ApiClient POST + paginated GET; everything else (arrival processes,
  // identity cycling, expected digests) is shared, so a digest or SLO
  // difference between the two modes isolates the wire path.
  std::unique_ptr<net::HttpEndpoint> endpoint;
  std::uint16_t port = 0;
  if (cfg.over_socket) {
    net::RestConfig rest_cfg;
    rest_cfg.max_wait_ms = std::max(rest_cfg.max_wait_ms, cfg.poll_wait_ms);
    // Retained-job headroom: every client paginates its own backlog; the
    // purge must never evict a half-read result under it.
    rest_cfg.completed_cap = std::max<std::size_t>(256, cfg.clients * 8);
    net::ServerConfig server_cfg;
    server_cfg.worker_threads =
        cfg.http_workers != 0 ? cfg.http_workers : cfg.clients + 2;
    endpoint = std::make_unique<net::HttpEndpoint>(service, rest_cfg,
                                                   server_cfg);
    endpoint->server.start();
    port = endpoint->server.port();
    if (cfg.verbose) {
      std::printf("soak: socket mode on 127.0.0.1:%u (%zu http workers)\n",
                  static_cast<unsigned>(port), server_cfg.worker_threads);
    }
  }

  for (std::size_t p = 0; p < cfg.load_multipliers.size(); ++p) {
    SoakPoint point;
    point.multiplier = cfg.load_multipliers[p];
    point.offered_jobs_per_sec =
        point.multiplier * result.capacity_jobs_per_sec;
    const double rate_per_client =
        std::max(point.offered_jobs_per_sec /
                     static_cast<double>(cfg.clients),
                 1e-6);
    const std::size_t min_per_client =
        (cfg.effective_min_jobs() + cfg.clients - 1) / cfg.clients;

    struct ClientTally {
      std::uint64_t submitted = 0, accepted = 0, rejected = 0, shed = 0,
                    deadline_missed = 0, failed = 0;
      std::vector<double> latencies_ms;
      bool hashes_ok = true;
    };
    std::vector<ClientTally> tallies(cfg.clients);

    // Queue-depth monitor: the "bounded queue under overload" probe. For a
    // sharded run the admission bound is per shard, so the monitor tracks
    // each shard's depth (and the headline max is the worst single shard).
    std::atomic<bool> monitor_stop{false};
    std::size_t max_depth = 0;
    std::vector<std::size_t> shard_max(pool ? pool->shards() : 0, 0);
    std::thread monitor([&] {
      while (!monitor_stop.load(std::memory_order_relaxed)) {
        if (pool) {
          const auto depths = pool->shard_depths();
          for (std::size_t s = 0; s < depths.size(); ++s) {
            shard_max[s] = std::max(shard_max[s], depths[s]);
            max_depth = std::max(max_depth, depths[s]);
          }
        } else {
          max_depth = std::max(max_depth, service.queue_depth());
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });

    util::Stopwatch point_wall;
    const auto client = [&](std::size_t c) {
      auto& tally = tallies[c];
      util::Rng arrivals(arrival_seed(cfg, p, c));
      struct Accepted {
        std::future<SampleResult> future;
        std::size_t identity = 0;
      };
      std::vector<Accepted> in_flight;
      util::Stopwatch clock;
      double next_at = arrivals.exponential(rate_per_client);
      // Client c owns identities c, c+C, c+2C, ... so the fleet cycles
      // the whole identity universe without coordination.
      std::size_t k = c;
      // Safety valve: even a badly misestimated capacity cannot stretch a
      // point past 20x its nominal window.
      const double hard_stop = cfg.duration_seconds * 20.0;
      for (;;) {
        const double now = clock.seconds();
        if (now >= cfg.duration_seconds &&
            (tally.submitted >= min_per_client || now >= hard_stop)) {
          break;
        }
        if (next_at > now) {
          std::this_thread::sleep_for(std::chrono::duration<double>(
              std::min(next_at - now, hard_stop - now)));
          continue;
        }
        next_at += arrivals.exponential(rate_per_client);
        const std::size_t identity = k % identities;
        k += cfg.clients;
        ++tally.submitted;
        try {
          in_flight.push_back(
              {service.submit(make_job(identity)), identity});
        } catch (const ServiceError& e) {
          if (e.code() == ServiceError::Code::kShed) {
            ++tally.shed;
          } else {
            ++tally.rejected;
          }
        }
      }
      for (auto& entry : in_flight) {
        try {
          const SampleResult r = entry.future.get();
          ++tally.accepted;
          tally.latencies_ms.push_back(r.total_seconds * 1e3);
          if (hash_table(r.table) != expected_for(entry.identity)) {
            tally.hashes_ok = false;
          }
        } catch (const ServiceError& e) {
          switch (e.code()) {
            case ServiceError::Code::kShed: ++tally.shed; break;
            case ServiceError::Code::kDeadline:
              ++tally.deadline_missed;
              break;
            default: ++tally.failed; break;
          }
        } catch (const std::exception&) {
          ++tally.failed;
        }
      }
    };

    // The socket twin of `client`: same arrival process, same identity
    // cycling, but every submit is a POST and every harvest a long-poll +
    // pagination loop that rebuilds the table from the wire bytes before
    // digesting it.
    const auto socket_client = [&](std::size_t c) {
      auto& tally = tallies[c];
      util::Rng arrivals(arrival_seed(cfg, p, c));
      net::ApiClient api("127.0.0.1", port);
      struct Accepted {
        std::uint64_t job_id = 0;
        std::size_t identity = 0;
      };
      std::vector<Accepted> in_flight;
      util::Stopwatch clock;
      double next_at = arrivals.exponential(rate_per_client);
      std::size_t k = c;
      const double hard_stop = cfg.duration_seconds * 20.0;
      for (;;) {
        const double now = clock.seconds();
        if (now >= cfg.duration_seconds &&
            (tally.submitted >= min_per_client || now >= hard_stop)) {
          break;
        }
        if (next_at > now) {
          std::this_thread::sleep_for(std::chrono::duration<double>(
              std::min(next_at - now, hard_stop - now)));
          continue;
        }
        next_at += arrivals.exponential(rate_per_client);
        const std::size_t identity = k % identities;
        k += cfg.clients;
        ++tally.submitted;
        const SampleJob job = make_job(identity);
        try {
          const std::uint64_t id =
              api.submit(job.model_key, job.rows, job.seed, job.chunk_rows,
                         job.priority, job.deadline_ms);
          in_flight.push_back({id, identity});
        } catch (const net::ApiError& e) {
          // The structured codes are the typed ServiceError, 1:1 via the
          // shared wire table (src/net/error_map.hpp).
          ServiceError::Code code;
          if (!net::parse_service_error_code(e.code(), code)) {
            ++tally.failed;
          } else if (code == ServiceError::Code::kShed) {
            ++tally.shed;
          } else if (code == ServiceError::Code::kOverloaded) {
            ++tally.rejected;
          } else {
            ++tally.failed;
          }
        } catch (const std::exception&) {
          ++tally.failed;
        }
      }
      for (const auto& entry : in_flight) {
        try {
          const net::RemoteResult r =
              api.wait_result(entry.job_id, cfg.page_rows, cfg.poll_wait_ms);
          ++tally.accepted;
          // Service-reported latency, same semantics as the in-process
          // mode (the SLO is about the service, not wire round-trips).
          tally.latencies_ms.push_back(r.total_seconds * 1e3);
          if (hash_table(r.table) != expected_for(entry.identity)) {
            tally.hashes_ok = false;
          }
        } catch (const net::ApiError& e) {
          ServiceError::Code code;
          if (!net::parse_service_error_code(e.code(), code)) {
            ++tally.failed;
          } else if (code == ServiceError::Code::kShed) {
            ++tally.shed;
          } else if (code == ServiceError::Code::kDeadline) {
            ++tally.deadline_missed;
          } else {
            ++tally.failed;
          }
        } catch (const std::exception&) {
          ++tally.failed;
        }
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(cfg.clients);
    for (std::size_t c = 0; c < cfg.clients; ++c) {
      if (cfg.over_socket) {
        threads.emplace_back(socket_client, c);
      } else {
        threads.emplace_back(client, c);
      }
    }
    for (auto& t : threads) t.join();
    service.drain();  // the no-deadlock-on-drain-mid-overload check
    point.wall_seconds = point_wall.seconds();
    monitor_stop.store(true, std::memory_order_relaxed);
    monitor.join();
    point.max_queue_depth_seen = max_depth;
    point.shard_max_depths = std::move(shard_max);

    std::vector<double> latencies;
    for (auto& tally : tallies) {
      point.submitted += tally.submitted;
      point.accepted += tally.accepted;
      point.rejected += tally.rejected;
      point.shed += tally.shed;
      point.deadline_missed += tally.deadline_missed;
      point.failed += tally.failed;
      point.hashes_ok = point.hashes_ok && tally.hashes_ok;
      latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                       tally.latencies_ms.end());
    }
    std::sort(latencies.begin(), latencies.end());
    point.p50_ms = LatencyWindow::percentile(latencies, 0.50);
    point.p95_ms = LatencyWindow::percentile(latencies, 0.95);
    point.p99_ms = LatencyWindow::percentile(latencies, 0.99);
    point.accepted_rows_per_sec =
        point.wall_seconds > 0.0
            ? static_cast<double>(point.accepted * cfg.rows_per_job) /
                  point.wall_seconds
            : 0.0;
    result.deterministic = result.deterministic && point.hashes_ok;
    if (cfg.verbose) {
      std::printf("soak: %.2fx offered %.1f jobs/s -> accepted %llu "
                  "rejected %llu shed %llu deadline %llu, p95 %.1f ms, "
                  "max depth %zu\n",
                  point.multiplier, point.offered_jobs_per_sec,
                  static_cast<unsigned long long>(point.accepted),
                  static_cast<unsigned long long>(point.rejected),
                  static_cast<unsigned long long>(point.shed),
                  static_cast<unsigned long long>(point.deadline_missed),
                  point.p95_ms, point.max_queue_depth_seen);
    }
    result.points.push_back(std::move(point));
  }

  // Headline SLO ratio: tail latency of accepted jobs at the heaviest
  // overload vs the lightest load.
  const SoakPoint* low = nullptr;
  const SoakPoint* high = nullptr;
  for (const auto& point : result.points) {
    if (low == nullptr || point.multiplier < low->multiplier) low = &point;
    if (high == nullptr || point.multiplier > high->multiplier) {
      high = &point;
    }
  }
  result.p95_ratio_vs_low_load =
      (low != nullptr && std::isfinite(low->p95_ms) && low->p95_ms > 0.0 &&
       std::isfinite(high->p95_ms))
          ? high->p95_ms / low->p95_ms
          : std::nan("");

  result.final_stats = service.stats();
  if (pool) {
    const ShardStats ss = pool->shard_stats();
    result.shard_final_stats = ss.per_shard;
    result.routed = ss.routed;
    result.rerouted = ss.rerouted;
    result.rerouted_transport = ss.rerouted_transport;
  }
  if (endpoint) {
    const net::ServerStats server = endpoint->server.stats();
    result.http_connections = server.connections;
    result.http_requests = server.requests;
    endpoint->server.stop();  // before the service (handlers borrow it)
  }
  result.wall_seconds = total.seconds();
  return result;
}

std::string render_soak(const SoakResult& result) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "%-6s %10s %9s %9s %6s %9s %9s %9s %7s\n", "load",
                "offered/s", "accepted", "rejected", "shed", "p50 ms",
                "p95 ms", "p99 ms", "depth");
  out += line;
  for (const auto& point : result.points) {
    std::snprintf(line, sizeof(line),
                  "%-6.2f %10.1f %9llu %9llu %6llu %9.1f %9.1f %9.1f %7zu\n",
                  point.multiplier, point.offered_jobs_per_sec,
                  static_cast<unsigned long long>(point.accepted),
                  static_cast<unsigned long long>(point.rejected),
                  static_cast<unsigned long long>(point.shed), point.p50_ms,
                  point.p95_ms, point.p99_ms, point.max_queue_depth_seen);
    out += line;
  }
  std::snprintf(line, sizeof(line), "p95 ratio (max load / low load): %.2fx\n",
                result.p95_ratio_vs_low_load);
  out += line;
  std::snprintf(line, sizeof(line),
                "determinism: %s (expected hash %016llx)\n",
                result.deterministic ? "ok" : "VIOLATED",
                static_cast<unsigned long long>(result.expected_hash));
  out += line;
  if (!result.shard_final_stats.empty()) {
    std::snprintf(
        line, sizeof(line),
        "shards: %zu (routed %llu, rerouted %llu, transport reroutes %llu)\n",
        result.shard_final_stats.size(),
        static_cast<unsigned long long>(result.routed),
        static_cast<unsigned long long>(result.rerouted),
        static_cast<unsigned long long>(result.rerouted_transport));
    out += line;
  }
  return out;
}

std::string soak_to_json(const SoakConfig& cfg, const SoakResult& result) {
  char hash_hex[19];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(result.expected_hash));

  util::JsonWriter w;
  w.begin_object();
  w.kv("schema_version", 1);
  w.kv("kind", "serve_soak");
  w.key("config").begin_object();
  w.key("models").begin_array();
  for (const auto& key : cfg.models) w.value(key);
  w.end_array();
  w.kv("clients", cfg.clients);
  w.kv("rows_per_job", cfg.rows_per_job);
  w.kv("chunk_rows", cfg.chunk_rows);
  w.kv("seed", cfg.seed);
  w.kv("seed_streams", cfg.seed_streams);
  w.kv("duration_seconds", cfg.duration_seconds);
  w.kv("min_jobs_per_point", cfg.effective_min_jobs());
  w.kv("deadline_ms", cfg.deadline_ms);
  w.kv("admission", admission_policy_name(cfg.admission));
  w.kv("max_queue_depth", cfg.effective_queue_depth());
  w.kv("max_queued_rows", cfg.max_queued_rows);
  w.kv("sample_threads", cfg.sample_threads);
  w.kv("max_batch", cfg.max_batch);
  w.kv("over_socket", cfg.over_socket);
  w.kv("shards", cfg.shards);
  w.kv("replicas", cfg.replicas);
  w.kv("shard_ttl_ms", cfg.shard_ttl_ms);
  w.key("remote_shards").begin_array();
  for (const auto& spec : cfg.remote_shards) w.value(spec);
  w.end_array();
  w.end_object();
  w.kv("transport", cfg.over_socket ? "socket" : "in-process");
  w.kv("shard_transport",
       cfg.remote_shards.empty() ? "in-process" : "multi-process");
  w.kv("capacity_jobs_per_sec", result.capacity_jobs_per_sec);
  w.kv("expected_hash", hash_hex);
  w.key("sweep").begin_array();
  for (const auto& point : result.points) {
    w.begin_object();
    w.kv("multiplier", point.multiplier);
    w.kv("offered_jobs_per_sec", point.offered_jobs_per_sec);
    w.kv("submitted", point.submitted);
    w.kv("accepted", point.accepted);
    w.kv("rejected", point.rejected);
    w.kv("shed", point.shed);
    w.kv("deadline_missed", point.deadline_missed);
    w.kv("failed", point.failed);
    w.kv("p50_ms", point.p50_ms);  // inf (nothing accepted) -> null
    w.kv("p95_ms", point.p95_ms);
    w.kv("p99_ms", point.p99_ms);
    w.kv("wall_seconds", point.wall_seconds);
    w.kv("accepted_rows_per_sec", point.accepted_rows_per_sec);
    w.kv("max_queue_depth_seen", point.max_queue_depth_seen);
    if (!point.shard_max_depths.empty()) {
      w.key("shard_max_depths").begin_array();
      for (const std::size_t d : point.shard_max_depths) w.value(d);
      w.end_array();
    }
    w.kv("hashes_ok", point.hashes_ok);
    w.end_object();
  }
  w.end_array();
  w.kv("p95_ratio_vs_low_load", result.p95_ratio_vs_low_load);
  w.kv("deterministic", result.deterministic);
  const ServiceStats& s = result.final_stats;
  w.key("service").begin_object();
  w.kv("submitted", s.submitted);
  w.kv("completed", s.completed);
  w.kv("failed", s.failed);
  w.kv("rejected", s.rejected);
  w.kv("shed", s.shed);
  w.kv("cancelled", s.cancelled);
  w.kv("deadline_missed", s.deadline_missed);
  w.kv("blocked", s.blocked);
  w.kv("batches", s.batches);
  w.kv("mean_batch_jobs", s.mean_batch_jobs);
  w.end_object();
  w.key("cache").begin_object();
  w.kv("hits", s.host.hits);
  w.kv("misses", s.host.misses);
  w.kv("loads", s.host.loads);
  w.kv("load_failures", s.host.load_failures);
  w.kv("evictions", s.host.evictions);
  w.kv("hit_rate", s.host.hit_rate());
  w.end_object();
  if (!result.shard_final_stats.empty()) {
    w.key("shards").begin_object();
    w.kv("count", result.shard_final_stats.size());
    w.kv("local", cfg.shards);
    w.kv("remote", cfg.remote_shards.size());
    w.kv("replicas", cfg.replicas);
    w.kv("routed", result.routed);
    w.kv("rerouted", result.rerouted);
    w.kv("rerouted_transport", result.rerouted_transport);
    w.key("per_shard").begin_array();
    for (std::size_t i = 0; i < result.shard_final_stats.size(); ++i) {
      const ServiceStats& ss = result.shard_final_stats[i];
      w.begin_object();
      w.kv("shard", i);
      w.kv("submitted", ss.submitted);
      w.kv("completed", ss.completed);
      w.kv("rejected", ss.rejected);
      w.kv("shed", ss.shed);
      w.kv("batches", ss.batches);
      w.kv("cache_hits", ss.host.hits);
      w.kv("cache_misses", ss.host.misses);
      w.kv("stale_reloads", ss.host.stale_reloads);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  if (cfg.over_socket) {
    w.key("http").begin_object();
    w.kv("connections", result.http_connections);
    w.kv("requests", result.http_requests);
    w.end_object();
  }
  w.kv("wall_seconds", result.wall_seconds);
  w.end_object();
  return w.str();
}

}  // namespace surro::serve
