#pragma once
// ShardPool: N worker shards behind one SampleBackend face. A shard is
// either *local* — its own ModelHost LRU + SampleService in this process —
// or *remote* — a serve::RemoteShard proxying to a worker process over the
// HTTP wire protocol. The two mix freely in one pool: a consistent-hash
// ShardRouter partitions the model keyspace over all of them; replication
// factor R places every key on R distinct shards regardless of where each
// shard lives.
//
// Submission policy (the "lease"):
//   1. Route to the key's owner shards, least current queue depth first
//      (ties keep ring order), so replicas load-balance.
//   2. If the chosen shard's admission gate refuses (kOverloaded / kShed),
//      re-route to the next replica; only when *every* replica refuses does
//      the caller see the error. Counted in ShardStats::rerouted.
//   3. If the chosen shard's *transport* fails (net::TransportError —
//      worker dead, connect refused, request timed out), re-route the same
//      way but count it separately in ShardStats::rerouted_transport: an
//      admission refusal is the service protecting itself, a transport
//      failure is a worker being gone.
//
// Determinism: placement never changes bytes. A job's output depends only
// on (model, rows, seed, chunk_rows) — every replica loads the same
// archive (or a clone of the same fitted instance) and SampleService
// preserves the contract per shard — in-process or across a process
// boundary, because the wire protocol round-trips tables bit-exactly.
// tests/test_shard.cpp machine-checks in-process placements;
// tests/test_remote.cpp extends the sweep to mixed local/remote pools and
// worker-kill re-routes.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/remote_shard.hpp"
#include "serve/sample_service.hpp"
#include "serve/shard_router.hpp"

namespace surro::serve {

struct ShardPoolConfig {
  /// Local (in-process) shards. May be 0 when `remotes` is non-empty.
  std::size_t shards = 1;
  /// Distinct shards hosting each key (clamped to the total shard count).
  std::size_t replication = 1;
  std::size_t virtual_nodes = 64;  ///< ring points per shard (ShardRouter)
  /// Per-shard host and service configuration (every local shard gets the
  /// same knobs; capacity and admission bounds are therefore *per shard*).
  HostConfig host;
  ServiceConfig service;
  /// Remote worker shards, appended after the local ones: shard indices
  /// [shards, shards + remotes.size()) proxy to these endpoints. The
  /// router spans local + remote uniformly, so a key's replicas can mix
  /// placements (that mix is what tests/test_remote.cpp sweeps).
  std::vector<RemoteShardConfig> remotes;
};

/// The routing-layer picture: per-shard service stats plus pool tallies.
struct ShardStats {
  ServiceStats aggregate;               ///< strict sums (see ShardPool::stats)
  std::vector<ServiceStats> per_shard;  ///< index = shard
  std::uint64_t routed = 0;    ///< submits that landed on a shard
  std::uint64_t rerouted = 0;  ///< submits re-placed after a replica refused
  /// Submits re-placed after a replica's *transport* failed (worker dead /
  /// unreachable / timed out) — counted separately from admission
  /// refusals. A submit that saw both kinds before landing counts in both.
  std::uint64_t rerouted_transport = 0;
  /// Routing table: model key -> owner shards (primary first).
  std::vector<std::pair<std::string, std::vector<std::size_t>>> placement;
};

class ShardPool : public SampleBackend {
 public:
  explicit ShardPool(ShardPoolConfig cfg);
  ~ShardPool() override;

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Register `key` on its R owner shards, archive-backed. Local owners
  /// register the path; remote owners are *verified* to already serve the
  /// key (workers load their own archives — paths do not cross the wire)
  /// and a remote owner missing it throws std::runtime_error. `ttl_ms` < 0
  /// inherits the per-shard HostConfig::ttl_ms default.
  void register_archive(const std::string& key, const std::string& path,
                        double ttl_ms = -1.0);
  /// Register a fitted in-memory model. The first owner shard takes the
  /// given instance; further replicas take clone()s, so shards never share
  /// one sampler (clones sample bitwise-identically by contract). An
  /// in-memory instance cannot cross a process boundary: when any owner is
  /// remote this throws std::invalid_argument (use register_archive).
  void register_fitted(const std::string& key,
                       std::shared_ptr<models::TabularGenerator> model,
                       bool pin = true);
  /// Drop the resident copy on every replica (cache invalidation fan-out).
  /// Returns how many replicas actually dropped a copy.
  std::size_t invalidate(const std::string& key);

  // SampleBackend surface.
  [[nodiscard]] Submitted submit_job(SampleJob job) override;
  bool cancel(std::uint64_t job_id) override;
  void drain() override;
  [[nodiscard]] ServiceStats stats() const override;
  [[nodiscard]] std::size_t queue_depth() const override;
  [[nodiscard]] const ServiceConfig& config() const noexcept override {
    return cfg_.service;
  }
  [[nodiscard]] std::vector<std::string> model_keys() const override;
  [[nodiscard]] bool has_model(const std::string& key) const override;
  [[nodiscard]] bool model_resident(const std::string& key) const override;
  void append_stats_json(util::JsonWriter& w) const override;

  // Shard-level introspection (tests, the soak monitor, the CLI banner).
  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  /// Local shards occupy indices [0, local_shards()); remote proxies the
  /// rest.
  [[nodiscard]] std::size_t local_shards() const noexcept {
    return cfg_.shards;
  }
  [[nodiscard]] bool shard_is_local(std::size_t shard) const {
    return shards_.at(shard).service != nullptr;
  }
  /// The uniform submission face of any shard, local or remote.
  [[nodiscard]] SampleBackend& backend(std::size_t shard) {
    return *shards_.at(shard).backend;
  }
  /// Local-shard internals; throws std::logic_error for a remote shard
  /// (its host and service live in another process).
  [[nodiscard]] SampleService& service(std::size_t shard);
  [[nodiscard]] ModelHost& host(std::size_t shard);
  [[nodiscard]] const ShardRouter& router() const noexcept { return router_; }
  /// Per-shard queue depths in one cheap sweep (soak depth monitor).
  [[nodiscard]] std::vector<std::size_t> shard_depths() const;
  [[nodiscard]] ShardStats shard_stats() const;

  /// Decode a pool job id (used by tests; cancel() does this internally).
  /// Returns {shard, local_id}; shard == shards() means "not a pool id".
  [[nodiscard]] std::pair<std::size_t, std::uint64_t> decode_job_id(
      std::uint64_t pool_id) const noexcept;

 private:
  struct Shard {
    // Local shards own a host + service (host declared first: the service
    // dies before it). Remote shards own a RemoteShard proxy instead.
    std::unique_ptr<ModelHost> host;
    std::unique_ptr<SampleService> service;
    std::unique_ptr<RemoteShard> remote;
    SampleBackend* backend = nullptr;  ///< the uniform face, never null
  };

  [[nodiscard]] std::vector<std::size_t> owners_of(
      const std::string& key) const;

  ShardPoolConfig cfg_;
  ShardRouter router_;
  std::vector<Shard> shards_;

  mutable std::mutex mutex_;  // placement_ + routing tallies
  std::map<std::string, std::vector<std::size_t>> placement_;
  std::uint64_t routed_ = 0;
  std::uint64_t rerouted_ = 0;
  std::uint64_t rerouted_transport_ = 0;
};

}  // namespace surro::serve
