#pragma once
// ShardPool: N in-process worker shards — each its own ModelHost LRU and
// SampleService (independent capacity and admission config) — behind one
// SampleBackend face. A consistent-hash ShardRouter partitions the model
// keyspace; replication factor R places every key on R distinct shards.
//
// Submission policy (the "lease"):
//   1. Route to the key's owner shards, least current queue depth first
//      (ties keep ring order), so replicas load-balance.
//   2. If the chosen shard's admission gate refuses (kOverloaded / kShed),
//      re-route to the next replica; only when *every* replica refuses does
//      the caller see the error. Counted in ShardStats::rerouted.
//
// Determinism: placement never changes bytes. A job's output depends only
// on (model, rows, seed, chunk_rows) — every replica loads the same
// archive (or a clone of the same fitted instance) and SampleService
// preserves the contract per shard, so any (shards, replicas, placement)
// configuration returns bitwise-identical tables. tests/test_shard.cpp
// machine-checks this across shards=1/2/4 × replicas=1/2.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/sample_service.hpp"
#include "serve/shard_router.hpp"

namespace surro::serve {

struct ShardPoolConfig {
  std::size_t shards = 1;
  /// Distinct shards hosting each key (clamped to `shards`).
  std::size_t replication = 1;
  std::size_t virtual_nodes = 64;  ///< ring points per shard (ShardRouter)
  /// Per-shard host and service configuration (every shard gets the same
  /// knobs; capacity and admission bounds are therefore *per shard*).
  HostConfig host;
  ServiceConfig service;
};

/// The routing-layer picture: per-shard service stats plus pool tallies.
struct ShardStats {
  ServiceStats aggregate;               ///< strict sums (see ShardPool::stats)
  std::vector<ServiceStats> per_shard;  ///< index = shard
  std::uint64_t routed = 0;    ///< submits that landed on a shard
  std::uint64_t rerouted = 0;  ///< submits re-placed after a replica refused
  /// Routing table: model key -> owner shards (primary first).
  std::vector<std::pair<std::string, std::vector<std::size_t>>> placement;
};

class ShardPool : public SampleBackend {
 public:
  explicit ShardPool(ShardPoolConfig cfg);
  ~ShardPool() override;

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Register `key` on its R owner shards, archive-backed. `ttl_ms` < 0
  /// inherits the per-shard HostConfig::ttl_ms default.
  void register_archive(const std::string& key, const std::string& path,
                        double ttl_ms = -1.0);
  /// Register a fitted in-memory model. The first owner shard takes the
  /// given instance; further replicas take clone()s, so shards never share
  /// one sampler (clones sample bitwise-identically by contract).
  void register_fitted(const std::string& key,
                       std::shared_ptr<models::TabularGenerator> model,
                       bool pin = true);
  /// Drop the resident copy on every replica (cache invalidation fan-out).
  /// Returns how many replicas actually dropped a copy.
  std::size_t invalidate(const std::string& key);

  // SampleBackend surface.
  [[nodiscard]] Submitted submit_job(SampleJob job) override;
  bool cancel(std::uint64_t job_id) override;
  void drain() override;
  [[nodiscard]] ServiceStats stats() const override;
  [[nodiscard]] std::size_t queue_depth() const override;
  [[nodiscard]] const ServiceConfig& config() const noexcept override {
    return cfg_.service;
  }
  [[nodiscard]] std::vector<std::string> model_keys() const override;
  [[nodiscard]] bool has_model(const std::string& key) const override;
  [[nodiscard]] bool model_resident(const std::string& key) const override;
  void append_stats_json(util::JsonWriter& w) const override;

  // Shard-level introspection (tests, the soak monitor, the CLI banner).
  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  [[nodiscard]] SampleService& service(std::size_t shard) {
    return *shards_.at(shard).service;
  }
  [[nodiscard]] ModelHost& host(std::size_t shard) {
    return *shards_.at(shard).host;
  }
  [[nodiscard]] const ShardRouter& router() const noexcept { return router_; }
  /// Per-shard queue depths in one cheap sweep (soak depth monitor).
  [[nodiscard]] std::vector<std::size_t> shard_depths() const;
  [[nodiscard]] ShardStats shard_stats() const;

  /// Decode a pool job id (used by tests; cancel() does this internally).
  /// Returns {shard, local_id}; shard == shards() means "not a pool id".
  [[nodiscard]] std::pair<std::size_t, std::uint64_t> decode_job_id(
      std::uint64_t pool_id) const noexcept;

 private:
  struct Shard {
    std::unique_ptr<ModelHost> host;       // declared before service: the
    std::unique_ptr<SampleService> service;  // service dies first
  };

  [[nodiscard]] std::vector<std::size_t> owners_of(
      const std::string& key) const;

  ShardPoolConfig cfg_;
  ShardRouter router_;
  std::vector<Shard> shards_;

  mutable std::mutex mutex_;  // placement_ + routing tallies
  std::map<std::string, std::vector<std::size_t>> placement_;
  std::uint64_t routed_ = 0;
  std::uint64_t rerouted_ = 0;
};

}  // namespace surro::serve
