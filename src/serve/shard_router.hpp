#pragma once
// ShardRouter: a consistent-hash ring over the model keyspace, mapping
// every model key to its owning worker shard(s). Three properties matter:
//
//   * Stability. Each shard contributes `virtual_nodes` ring points whose
//     positions are derived from (shard index, vnode index) alone — adding
//     or removing a shard only adds/removes *its* points, so only ~K/N of
//     K keys change owners (the classic consistent-hashing bound). No
//     global reshuffle, ever.
//   * Replication. owners(key) walks the ring clockwise from the key's
//     position collecting the first R *distinct* shards, so replicas land
//     on different shards by construction and the replica list is as
//     stable as the ring itself.
//   * Determinism. The ring is pure arithmetic (SplitMix64 over indices,
//     FNV-1a over key bytes): two routers built from the same config agree
//     on every key, on every platform. Equal-hash ring points (vanishing
//     probability, but the tie-break must still be total) are ordered by
//     rendezvous weight — splitmix64(key_hash ^ shard_seed), highest
//     first — so ties resolve per-key, not by shard index bias.
//
// The router is routing policy only: it holds no models and no queues.
// ShardPool owns the shards and consults the router per submit.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace surro::serve {

struct RouterConfig {
  std::size_t shards = 1;
  /// Distinct owner shards per key (clamped to `shards`). Replica 0 is the
  /// primary; the rest are where a pool may re-route under overload.
  std::size_t replication = 1;
  /// Ring points per shard. More points = smoother key balance and smaller
  /// movement granularity on resize, at O(shards * vnodes) ring memory.
  std::size_t virtual_nodes = 64;
};

class ShardRouter {
 public:
  explicit ShardRouter(RouterConfig cfg);

  /// The first min(replication, shards) distinct shards clockwise from the
  /// key's ring position; element 0 is the primary owner.
  [[nodiscard]] std::vector<std::size_t> owners(std::string_view key) const;
  [[nodiscard]] std::size_t primary(std::string_view key) const {
    return owners(key).front();
  }

  [[nodiscard]] const RouterConfig& config() const noexcept { return cfg_; }

  /// Position-independent hash of a model key (FNV-1a, SplitMix64 finish).
  [[nodiscard]] static std::uint64_t key_hash(std::string_view key) noexcept;

 private:
  struct Point {
    std::uint64_t hash = 0;
    std::size_t shard = 0;
    std::uint64_t shard_seed = 0;  // rendezvous salt, per shard
  };

  RouterConfig cfg_;
  std::vector<Point> ring_;  // sorted by hash
};

}  // namespace surro::serve
