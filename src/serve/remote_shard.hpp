#pragma once
// RemoteShard: a SampleBackend that lives in another OS process. It
// proxies submit/cancel/stats/drain over the HTTP/1.1 REST wire protocol
// (net::ApiClient): seeds travel as decimal strings, results come back
// through the paginated GET /v1/jobs/{id} long-poll path and are
// reassembled into the same tabular::Table bytes the in-process backend
// would have produced — the determinism contract (bytes depend only on
// model, rows, seed, chunk_rows) holds across the process boundary.
//
// Error surface, mapped back to the in-process contract through the shared
// net::error_map table:
//   * "overloaded"/"shed" at submit  -> ServiceError thrown synchronously
//     (exactly what a local submit_job would throw), so ShardPool replica
//     re-route works unchanged;
//   * "shutting_down"                -> std::logic_error (like a local
//     submit after shutdown);
//   * job failure codes ("deadline", "cancelled", "shed") -> ServiceError
//     set on the future;
//   * transport failures (connect refused, timeout, hangup, bad bytes)
//     -> net::TransportError, the signal ShardPool counts as a transport
//     re-route, distinct from admission refusals.
//
// Results are harvested by a small pool of background threads (each with
// its own connection), so submit_job returns immediately with a future —
// the same shape SampleService gives out.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "serve/sample_service.hpp"

namespace surro::serve {

struct RemoteShardConfig {
  std::string host = "127.0.0.1";  ///< IPv4 literal (see net::HttpClient)
  std::uint16_t port = 0;
  std::string api_key;  ///< empty = anonymous (open-access worker)
  /// Connection behavior for every request this shard issues. The default
  /// retries a refused connect twice with backoff, so a worker mid-restart
  /// gets a grace window before the pool re-routes around it.
  net::ClientConfig http{30.0, 3, 50.0, 1000.0};
  /// Page size for result reassembly (0 = the worker's configured default).
  std::size_t page_rows = 0;
  /// Long-poll budget per GET while the job is still pending.
  double poll_wait_ms = 1000.0;
  /// Background result-harvest threads (concurrent in-flight downloads).
  std::size_t harvest_threads = 2;
};

/// Parse "host:port" (port required, host defaults to 127.0.0.1 when the
/// spec is just ":port" or a bare port). Throws std::invalid_argument.
[[nodiscard]] RemoteShardConfig parse_remote_endpoint(const std::string& spec);

class RemoteShard : public SampleBackend {
 public:
  explicit RemoteShard(RemoteShardConfig cfg);
  /// Joins the harvesters. Jobs still queued for harvest fail their
  /// futures with std::logic_error ("shutting down").
  ~RemoteShard() override;

  RemoteShard(const RemoteShard&) = delete;
  RemoteShard& operator=(const RemoteShard&) = delete;

  [[nodiscard]] Submitted submit_job(SampleJob job) override;
  bool cancel(std::uint64_t job_id) override;
  /// Waits for every job submitted *through this proxy* to resolve.
  void drain() override;

  /// The worker's own counters, parsed from its GET /v1/stats document
  /// (service + cache sections). A worker that cannot be reached answers
  /// zeroed stats rather than throwing — pool-level aggregation must not
  /// die because one worker is mid-restart.
  [[nodiscard]] ServiceStats stats() const override;
  /// Jobs submitted through this proxy and not yet resolved — a local
  /// count, deliberately not a network round-trip: the pool's
  /// least-depth replica ordering polls this on every submit.
  [[nodiscard]] std::size_t queue_depth() const override;
  /// A local default config (the worker applies its own chunk_rows to
  /// jobs that leave chunk_rows at 0; explicit values pass through).
  [[nodiscard]] const ServiceConfig& config() const noexcept override;

  [[nodiscard]] std::vector<std::string> model_keys() const override;
  [[nodiscard]] bool has_model(const std::string& key) const override;
  [[nodiscard]] bool model_resident(const std::string& key) const override;

  [[nodiscard]] const RemoteShardConfig& remote_config() const noexcept {
    return cfg_;
  }
  /// GET /healthz with a short budget; the fleet readiness poll.
  [[nodiscard]] bool healthy(double timeout_seconds = 1.0) const;

 private:
  struct HarvestTask {
    std::uint64_t job_id = 0;
    std::shared_ptr<std::promise<SampleResult>> promise;
  };

  void harvest_loop();
  void finish_one();

  RemoteShardConfig cfg_;
  ServiceConfig service_cfg_;

  /// Control-plane client (submit, cancel, models, stats) — serialized;
  /// harvesters own per-thread clients for the data plane.
  mutable std::mutex control_mutex_;
  mutable net::ApiClient control_;

  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<HarvestTask> tasks_;
  std::size_t pending_ = 0;  // submitted through this proxy, not resolved
  bool stop_ = false;
  mutable std::optional<std::vector<std::string>> model_keys_cache_;
  std::vector<std::thread> harvesters_;
};

}  // namespace surro::serve
