#include "serve/model_host.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

namespace surro::serve {

ModelHost::ModelHost(HostConfig cfg) : cfg_(cfg) {
  if (cfg_.capacity == 0) {
    throw std::invalid_argument("model host: capacity must be positive");
  }
}

void ModelHost::register_archive(std::string key, std::string path,
                                 double ttl_ms) {
  if (key.empty()) throw std::invalid_argument("model host: empty key");
  if (path.empty()) {
    throw std::invalid_argument("model host: empty archive path");
  }
  const std::lock_guard lock(mutex_);
  Entry entry;
  entry.archive_path = std::move(path);
  entry.ttl_ms = ttl_ms < 0.0 ? cfg_.ttl_ms : ttl_ms;
  const auto [it, inserted] = entries_.emplace(std::move(key),
                                               std::move(entry));
  if (!inserted) {
    throw std::invalid_argument("model host: duplicate key '" + it->first +
                                "'");
  }
}

void ModelHost::register_fitted(
    std::string key, std::shared_ptr<models::TabularGenerator> model,
    bool pin) {
  if (key.empty()) throw std::invalid_argument("model host: empty key");
  if (model == nullptr || !model->fitted()) {
    throw std::invalid_argument("model host: register_fitted needs a fitted "
                                "model");
  }
  const std::lock_guard lock(mutex_);
  Entry entry;
  entry.model = std::move(model);
  entry.pinned = pin;
  entry.ever_loaded = true;
  entry.last_use = ++clock_;
  const auto [it, inserted] = entries_.emplace(std::move(key),
                                               std::move(entry));
  if (!inserted) {
    throw std::invalid_argument("model host: duplicate key '" + it->first +
                                "'");
  }
  enforce_capacity_locked(&it->second);
}

void ModelHost::unregister(const std::string& key) {
  const std::lock_guard lock(mutex_);
  entries_.erase(key);
}

std::shared_ptr<models::TabularGenerator> ModelHost::acquire(
    const std::string& key) {
  std::unique_lock lock(mutex_);
  bool counted_miss = false;  // one hit OR one miss per acquire, even when
                              // the call retries around a concurrent load
  for (;;) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      throw std::invalid_argument("model host: unknown key '" + key + "'");
    }
    Entry& entry = it->second;
    if (entry.model != nullptr) {
      // TTL check first: a stale archive-backed resident is a miss — drop
      // the host's copy (outstanding leases stay valid) and fall through to
      // the load path below. Deterministic archives make the reload
      // byte-transparent; only the counters can tell it happened.
      if (!entry.archive_path.empty() && entry.ttl_ms > 0.0 &&
          (age_clock_.seconds() - entry.loaded_at) * 1e3 > entry.ttl_ms) {
        entry.model.reset();
        ++tally_.stale_reloads;
      } else {
        if (!counted_miss) ++tally_.hits;
        entry.last_use = ++clock_;
        return entry.model;
      }
    }
    if (!counted_miss) {
      ++tally_.misses;
      counted_miss = true;
    }
    if (entry.archive_path.empty()) {
      throw std::runtime_error("model host: '" + key +
                               "' was evicted and has no archive to reload");
    }
    if (entry.loading) {
      // Another thread is loading this archive; wait for it, then re-check
      // (it may have failed, in which case this thread retries the load).
      cv_load_.wait(lock, [&] {
        const auto again = entries_.find(key);
        return again == entries_.end() || !again->second.loading;
      });
      continue;
    }
    entry.loading = true;
    const std::string path = entry.archive_path;
    // Fault injection is sampled under the lock (the fail budget must
    // decrement exactly once per load) but applied outside it, like the
    // real load, so concurrent acquires pile up on the loading flag.
    const double inject_delay_ms = faults_.load_delay_ms;
    const bool inject_failure = faults_.fail_loads > 0;
    if (inject_failure) --faults_.fail_loads;
    lock.unlock();

    std::shared_ptr<models::TabularGenerator> loaded;
    try {
      if (inject_delay_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(inject_delay_ms));
      }
      if (inject_failure) {
        throw std::runtime_error("model host: injected load failure for '" +
                                 key + "'");
      }
      loaded = models::load_model_file(path);
    } catch (...) {
      lock.lock();
      ++tally_.load_failures;
      if (const auto again = entries_.find(key); again != entries_.end()) {
        again->second.loading = false;
      }
      cv_load_.notify_all();
      throw;
    }

    lock.lock();
    const auto again = entries_.find(key);
    if (again == entries_.end()) {
      // Unregistered mid-load; hand the caller its private copy anyway.
      cv_load_.notify_all();
      return loaded;
    }
    Entry& target = again->second;
    target.loading = false;
    target.model = std::move(loaded);
    target.ever_loaded = true;
    target.last_use = ++clock_;
    target.loaded_at = age_clock_.seconds();
    ++tally_.loads;
    enforce_capacity_locked(&target);
    cv_load_.notify_all();
    return target.model;
  }
}

void ModelHost::inject_faults(HostFaults faults) {
  const std::lock_guard lock(mutex_);
  faults_ = faults;
}

void ModelHost::pin(const std::string& key) {
  // The lease keeps the model alive across the unlocked window between
  // acquire() and re-locking; if a concurrent load evicted the (still
  // unpinned) entry in that window, restore residency from the lease so
  // pin() honours its "resident and exempt" contract.
  auto lease = acquire(key);  // counts as a touch
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;  // unregistered mid-pin
  it->second.pinned = true;
  if (it->second.model == nullptr) it->second.model = std::move(lease);
}

void ModelHost::unpin(const std::string& key) {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    throw std::invalid_argument("model host: unknown key '" + key + "'");
  }
  it->second.pinned = false;
}

void ModelHost::evict_idle() {
  const std::lock_guard lock(mutex_);
  for (auto& [key, entry] : entries_) {
    if (entry.model != nullptr && !entry.pinned && !entry.loading) {
      entry.model.reset();
      ++tally_.evictions;
    }
  }
}

bool ModelHost::invalidate(const std::string& key) {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  Entry& entry = it->second;
  if (entry.archive_path.empty() || entry.model == nullptr || entry.loading) {
    return false;  // nothing to reload from, nothing resident, or mid-load
  }
  entry.model.reset();
  ++tally_.invalidations;
  return true;
}

bool ModelHost::contains(const std::string& key) const {
  const std::lock_guard lock(mutex_);
  return entries_.contains(key);
}

bool ModelHost::resident(const std::string& key) const {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  return it != entries_.end() && it->second.model != nullptr;
}

std::vector<std::string> ModelHost::keys() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, _] : entries_) out.push_back(key);
  return out;  // std::map iterates in sorted order
}

std::string ModelHost::archive_path(const std::string& key) const {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? std::string{} : it->second.archive_path;
}

HostStats ModelHost::stats() const {
  const std::lock_guard lock(mutex_);
  HostStats s = tally_;
  s.registered = entries_.size();
  s.capacity = cfg_.capacity;
  s.resident = resident_count_locked();
  for (const auto& [_, entry] : entries_) {
    if (entry.model != nullptr && entry.pinned) ++s.pinned;
  }
  return s;
}

std::size_t ModelHost::resident_count_locked() const {
  std::size_t n = 0;
  for (const auto& [_, entry] : entries_) {
    if (entry.model != nullptr) ++n;
  }
  return n;
}

void ModelHost::enforce_capacity_locked(const Entry* keep) {
  while (resident_count_locked() > cfg_.capacity) {
    Entry* victim = nullptr;
    for (auto& [_, entry] : entries_) {
      if (entry.model == nullptr || entry.pinned || entry.loading ||
          &entry == keep) {
        continue;
      }
      if (victim == nullptr || entry.last_use < victim->last_use) {
        victim = &entry;
      }
    }
    // Everything evictable is pinned/loading: run over capacity rather
    // than fail the request that brought us here.
    if (victim == nullptr) return;
    victim->model.reset();
    ++tally_.evictions;
  }
}

}  // namespace surro::serve
