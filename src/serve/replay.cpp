#include "serve/replay.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <istream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "linalg/simd.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"
#include "util/stringx.hpp"

namespace surro::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t bits) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (bits >> shift) & 0xFF;
    h *= kFnvPrime;
  }
}

void fnv_mix(std::uint64_t& h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  h ^= 0xFF;  // length-free terminator so "ab","c" != "a","bc"
  h *= kFnvPrime;
}

/// Range-checked double → unsigned conversion: a negative, non-finite, or
/// absurd script value must fail parsing, not wrap through the cast (which
/// is UB for out-of-range doubles).
std::uint64_t to_count(const std::string& key, const util::JsonValue& value,
                       std::uint64_t max = std::uint64_t{1} << 40) {
  const double v = value.as_number();
  if (!(v >= 0.0) || v > static_cast<double>(max)) {
    throw std::runtime_error("field '" + key + "' out of range");
  }
  return static_cast<std::uint64_t>(v);
}

/// Apply one parsed key/value to a request; shared by both script formats.
void apply_field(ReplayRequest& request, const std::string& key,
                 const util::JsonValue& value) {
  if (key == "model") {
    request.job.model_key = value.as_string();
  } else if (key == "rows") {
    request.job.rows = static_cast<std::size_t>(to_count(key, value));
  } else if (key == "seed") {
    // Seeds may use the full uint64 range in the API, but a script value
    // travels through a double, which is exact only up to 2^53.
    request.job.seed = to_count(key, value, std::uint64_t{1} << 53);
  } else if (key == "chunk_rows") {
    request.job.chunk_rows = static_cast<std::size_t>(to_count(key, value));
  } else if (key == "threads") {
    request.job.threads = static_cast<std::size_t>(to_count(key, value));
  } else if (key == "priority") {
    const double v = value.as_number();
    if (!(v >= -1e6) || v > 1e6) {
      throw std::runtime_error("field 'priority' out of range");
    }
    request.job.priority = static_cast<int>(v);
  } else if (key == "deadline_ms") {
    const double v = value.as_number();
    if (!(v >= 0.0) || v > 1e12) {
      throw std::runtime_error("field 'deadline_ms' out of range");
    }
    request.job.deadline_ms = v;
  } else if (key == "repeat") {
    request.repeat = static_cast<std::size_t>(
        to_count(key, value, std::uint64_t{1} << 20));
  } else if (key == "seed_stride") {
    request.seed_stride = to_count(key, value, std::uint64_t{1} << 53);
  } else {
    throw std::runtime_error("unknown field '" + key + "'");
  }
}

void validate(const ReplayRequest& request) {
  if (request.job.model_key.empty()) {
    throw std::runtime_error("request needs a model");
  }
  if (request.job.rows == 0) {
    throw std::runtime_error("request needs rows > 0");
  }
  if (request.repeat == 0) {
    throw std::runtime_error("repeat must be >= 1");
  }
}

}  // namespace

ReplayScript parse_script_jsonl(std::istream& is) {
  ReplayScript script;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    try {
      const util::JsonValue doc = util::parse_json(trimmed);
      if (doc.kind != util::JsonValue::Kind::kObject) {
        throw std::runtime_error("line is not a JSON object");
      }
      ReplayRequest request;
      for (const auto& [key, value] : doc.object) {
        apply_field(request, key, value);
      }
      validate(request);
      script.requests.push_back(std::move(request));
    } catch (const std::exception& e) {
      throw std::runtime_error("request script line " +
                               std::to_string(line_no) + ": " + e.what());
    }
  }
  return script;
}

ReplayScript parse_script_inline(const std::string& spec) {
  ReplayScript script;
  for (const auto raw_request : util::split(spec, ';')) {
    if (util::trim(raw_request).empty()) continue;
    ReplayRequest request;
    for (const auto raw_pair : util::split(raw_request, ',')) {
      const auto pair = util::trim(raw_pair);
      if (pair.empty()) continue;
      const auto eq = pair.find('=');
      if (eq == std::string_view::npos) {
        throw std::runtime_error("bad request field '" + std::string(pair) +
                                 "' (want key=value)");
      }
      const std::string key{util::trim(pair.substr(0, eq))};
      const std::string value{util::trim(pair.substr(eq + 1))};
      util::JsonValue parsed;
      if (key == "model") {
        parsed.kind = util::JsonValue::Kind::kString;
        parsed.string = value;
      } else {
        parsed.kind = util::JsonValue::Kind::kNumber;
        if (!util::parse_double(value, parsed.number)) {
          throw std::runtime_error("bad numeric value '" + value +
                                   "' for field '" + key + "'");
        }
      }
      apply_field(request, key, parsed);
    }
    validate(request);
    script.requests.push_back(std::move(request));
  }
  return script;
}

std::uint64_t hash_table(const tabular::Table& table) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(table.num_rows()));
  for (const std::size_t col : table.schema().numerical_indices()) {
    for (const double v : table.numerical(col)) {
      fnv_mix(h, std::bit_cast<std::uint64_t>(v));
    }
  }
  for (const std::size_t col : table.schema().categorical_indices()) {
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      fnv_mix(h, table.label_at(col, r));
    }
  }
  return h;
}

ReplayResult run_replay(SampleBackend& service, const ReplayScript& script,
                        const ReplayOptions& options) {
  std::vector<SampleJob> jobs;
  for (std::size_t round = 0; round < std::max<std::size_t>(options.rounds, 1);
       ++round) {
    // Rounds replay identical traffic: repetition k of a request always
    // uses seed + k*stride, independent of the round — so a multi-round
    // run re-requests the same streams and exercises cache reuse.
    for (const auto& request : script.requests) {
      for (std::size_t k = 0; k < request.repeat; ++k) {
        SampleJob job = request.job;
        job.seed += static_cast<std::uint64_t>(k) * request.seed_stride;
        jobs.push_back(std::move(job));
      }
    }
  }

  if (jobs.empty()) {
    ReplayResult empty;
    empty.stats = service.stats();
    return empty;
  }

  const std::size_t clients =
      std::min(std::max<std::size_t>(options.clients, 1), jobs.size());
  struct ClientTally {
    std::uint64_t jobs = 0, failures = 0;
    std::uint64_t rejected = 0, shed = 0, deadline_missed = 0;
    std::vector<tabular::Table> tables;
  };
  std::vector<ClientTally> tallies(std::max<std::size_t>(clients, 1));

  util::Stopwatch wall;
  // Dedicated client threads (not pool workers — clients block on futures,
  // and the pool is busy sampling underneath them). Client c submits jobs
  // c, c+C, c+2C, ... up front, then waits for them in order. Tables are
  // kept and digested after the clock stops, so the throughput numbers
  // measure serving, not hashing. Overload outcomes (admission rejection,
  // shedding, missed deadlines) are tallied per kind: a replay against a
  // bounded service is *expected* to drop work, and those drops must not
  // read as execution failures.
  const auto client = [&](std::size_t c) {
    auto& tally = tallies[c];
    std::vector<std::future<SampleResult>> futures;
    for (std::size_t i = c; i < jobs.size(); i += clients) {
      ++tally.jobs;
      try {
        futures.push_back(service.submit(jobs[i]));
      } catch (const ServiceError& e) {
        if (e.code() == ServiceError::Code::kShed) {
          ++tally.shed;
        } else {
          ++tally.rejected;
        }
      }
    }
    for (auto& future : futures) {
      try {
        tally.tables.push_back(future.get().table);
      } catch (const ServiceError& e) {
        switch (e.code()) {
          case ServiceError::Code::kShed: ++tally.shed; break;
          case ServiceError::Code::kDeadline: ++tally.deadline_missed; break;
          default: ++tally.failures; break;
        }
      } catch (const std::exception&) {
        ++tally.failures;
      }
    }
  };

  if (clients <= 1) {
    client(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back(client, c);
    }
    for (auto& t : threads) t.join();
  }

  ReplayResult result;
  result.wall_seconds = wall.seconds();
  result.stats = service.stats();
  for (const auto& tally : tallies) {
    result.jobs += tally.jobs;
    result.completed += tally.tables.size();
    result.failures += tally.failures;
    result.rejected += tally.rejected;
    result.shed += tally.shed;
    result.deadline_missed += tally.deadline_missed;
    for (const auto& table : tally.tables) {
      result.rows += table.num_rows();
      // Sum (not XOR): identical repeated jobs must not cancel out.
      result.output_hash += hash_table(table);
    }
  }
  return result;
}

std::string serve_stats_to_json(const SampleBackend& service,
                                const ReplayOptions& options,
                                const ReplayResult& result) {
  const ServiceStats& s = result.stats;
  const ServiceConfig& cfg = service.config();
  char hash_hex[19];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(result.output_hash));

  util::JsonWriter w;
  w.begin_object();
  w.kv("schema_version", 1);
  w.kv("kind", "serve_stats");
  w.kv("simd_backend", linalg::simd::active_backend_name());
  w.key("config").begin_object();
  w.kv("capacity", s.host.capacity);
  w.kv("sample_threads", cfg.sample_threads);
  w.kv("chunk_rows", cfg.chunk_rows);
  w.kv("max_batch", cfg.max_batch);
  w.kv("admission", admission_policy_name(cfg.admission));
  w.kv("max_queue_depth", cfg.max_queue_depth);
  w.kv("max_queued_rows", cfg.max_queued_rows);
  w.kv("clients", options.clients);
  w.kv("rounds", options.rounds);
  w.end_object();
  w.kv("jobs", result.jobs);
  w.kv("completed", result.completed);
  w.kv("rows", result.rows);
  w.kv("failures", result.failures);
  w.kv("rejected", result.rejected);
  w.kv("shed", result.shed);
  w.kv("deadline_missed", result.deadline_missed);
  w.kv("wall_seconds", result.wall_seconds);
  // Served throughput: completed jobs only — on a bounded service the
  // attempt count includes rejected/shed submits that did no work.
  w.kv("jobs_per_sec", result.wall_seconds > 0.0
                           ? static_cast<double>(result.completed) /
                                 result.wall_seconds
                           : 0.0);
  w.kv("rows_per_sec", result.wall_seconds > 0.0
                           ? static_cast<double>(result.rows) /
                                 result.wall_seconds
                           : 0.0);
  w.key("latency_ms").begin_object();
  w.kv("p50", s.p50_latency_ms);  // inf (empty window) degrades to null
  w.kv("p95", s.p95_latency_ms);
  w.kv("p99", s.p99_latency_ms);
  w.end_object();
  w.key("service").begin_object();
  w.kv("submitted", s.submitted);
  w.kv("completed", s.completed);
  w.kv("failed", s.failed);
  w.kv("rejected", s.rejected);
  w.kv("shed", s.shed);
  w.kv("cancelled", s.cancelled);
  w.kv("deadline_missed", s.deadline_missed);
  w.kv("blocked", s.blocked);
  w.kv("queue_depth", s.queue_depth);
  w.kv("queued_rows", s.queued_rows);
  w.kv("batches", s.batches);
  w.kv("mean_batch_jobs", s.mean_batch_jobs);
  w.kv("qps", s.qps);
  w.end_object();
  w.key("cache").begin_object();
  w.kv("registered", s.host.registered);
  w.kv("resident", s.host.resident);
  w.kv("pinned", s.host.pinned);
  w.kv("capacity", s.host.capacity);
  w.kv("hits", s.host.hits);
  w.kv("misses", s.host.misses);
  w.kv("loads", s.host.loads);
  w.kv("load_failures", s.host.load_failures);
  w.kv("evictions", s.host.evictions);
  w.kv("stale_reloads", s.host.stale_reloads);
  w.kv("invalidations", s.host.invalidations);
  w.kv("hit_rate", s.host.hit_rate());
  w.end_object();
  // A sharded backend appends its "shards" section (routing table +
  // per-shard counters); a plain service appends nothing.
  service.append_stats_json(w);
  w.key("pool").begin_object();
  w.kv("workers", s.pool.workers);
  w.kv("queued", s.pool.queued);
  w.kv("active", s.pool.active);
  w.kv("submitted", s.pool.submitted);
  w.kv("completed", s.pool.completed);
  w.end_object();
  w.kv("output_hash", hash_hex);
  w.end_object();
  return w.str();
}

}  // namespace surro::serve
