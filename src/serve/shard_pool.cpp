#include "serve/shard_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/client.hpp"
#include "serve/latency_window.hpp"
#include "util/json.hpp"

namespace surro::serve {

namespace {

// Pool job ids carry the shard in the top 16 bits, biased by one so the
// all-zero id stays the "no job" sentinel and a local id can never be
// mistaken for a pool id by cancel().
constexpr unsigned kShardShift = 48;
constexpr std::uint64_t kLocalMask = (1ULL << kShardShift) - 1;

std::uint64_t encode_job_id(std::size_t shard, std::uint64_t local) {
  return (static_cast<std::uint64_t>(shard + 1) << kShardShift) |
         (local & kLocalMask);
}

}  // namespace

ShardPool::ShardPool(ShardPoolConfig cfg)
    : cfg_(std::move(cfg)),
      router_(RouterConfig{cfg_.shards + cfg_.remotes.size(),
                           cfg_.replication, cfg_.virtual_nodes}) {
  const std::size_t total = cfg_.shards + cfg_.remotes.size();
  if (total == 0) {
    throw std::invalid_argument("shard pool: needs at least one shard "
                                "(local or remote)");
  }
  cfg_.replication = router_.config().replication;  // clamped to `total`
  shards_.reserve(total);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    Shard shard;
    shard.host = std::make_unique<ModelHost>(cfg_.host);
    shard.service =
        std::make_unique<SampleService>(*shard.host, cfg_.service);
    shard.backend = shard.service.get();
    shards_.push_back(std::move(shard));
  }
  for (const auto& endpoint : cfg_.remotes) {
    Shard shard;
    shard.remote = std::make_unique<RemoteShard>(endpoint);
    shard.backend = shard.remote.get();
    shards_.push_back(std::move(shard));
  }
}

ShardPool::~ShardPool() = default;

SampleService& ShardPool::service(std::size_t shard) {
  auto& owned = shards_.at(shard).service;
  if (owned == nullptr) {
    throw std::logic_error("shard pool: shard " + std::to_string(shard) +
                           " is remote (no in-process service)");
  }
  return *owned;
}

ModelHost& ShardPool::host(std::size_t shard) {
  auto& owned = shards_.at(shard).host;
  if (owned == nullptr) {
    throw std::logic_error("shard pool: shard " + std::to_string(shard) +
                           " is remote (no in-process host)");
  }
  return *owned;
}

std::vector<std::size_t> ShardPool::owners_of(const std::string& key) const {
  {
    const std::lock_guard lock(mutex_);
    const auto it = placement_.find(key);
    if (it != placement_.end()) return it->second;
  }
  // Unregistered key: still route (the owning shard's service will fail the
  // future with unknown-key, matching single-service behavior).
  return router_.owners(key);
}

void ShardPool::register_archive(const std::string& key,
                                 const std::string& path, double ttl_ms) {
  const auto owners = router_.owners(key);
  for (const std::size_t s : owners) {
    if (shards_[s].service != nullptr) {
      shards_[s].host->register_archive(key, path, ttl_ms);
    } else if (!shards_[s].backend->has_model(key)) {
      // Workers load their own archives from their own --models flags;
      // registration here only *verifies* the placement is serveable.
      throw std::runtime_error(
          "shard pool: remote shard " + std::to_string(s) + " (" +
          shards_[s].remote->remote_config().host + ":" +
          std::to_string(shards_[s].remote->remote_config().port) +
          ") does not serve model '" + key + "'");
    }
  }
  const std::lock_guard lock(mutex_);
  placement_.emplace(key, owners);
}

void ShardPool::register_fitted(
    const std::string& key, std::shared_ptr<models::TabularGenerator> model,
    bool pin) {
  if (model == nullptr || !model->fitted()) {
    throw std::invalid_argument("shard pool: register_fitted needs a fitted "
                                "model");
  }
  const auto owners = router_.owners(key);
  for (const std::size_t s : owners) {
    if (shards_[s].service == nullptr) {
      throw std::invalid_argument(
          "shard pool: model '" + key + "' routes to remote shard " +
          std::to_string(s) +
          " — an in-memory instance cannot cross a process boundary; "
          "save it and use register_archive");
    }
  }
  for (std::size_t i = 1; i < owners.size(); ++i) {
    // Clones first: if one throws, no shard has been mutated yet.
    shards_[owners[i]].host->register_fitted(
        key, std::shared_ptr<models::TabularGenerator>(model->clone()), pin);
  }
  shards_[owners.front()].host->register_fitted(key, std::move(model), pin);
  const std::lock_guard lock(mutex_);
  placement_.emplace(key, owners);
}

std::size_t ShardPool::invalidate(const std::string& key) {
  // Cache invalidation is a local concern: remote workers run their own
  // TTL/invalidations against their own archives.
  std::size_t dropped = 0;
  for (const std::size_t s : owners_of(key)) {
    if (shards_[s].host != nullptr && shards_[s].host->invalidate(key)) {
      ++dropped;
    }
  }
  return dropped;
}

Submitted ShardPool::submit_job(SampleJob job) {
  const auto owners = owners_of(job.model_key);

  // Least-depth replica first (the load-balanced lease); ties keep ring
  // order so the pick is deterministic for a quiet pool.
  std::vector<std::pair<std::size_t, std::size_t>> order;  // (depth, shard)
  order.reserve(owners.size());
  for (const std::size_t s : owners) {
    order.emplace_back(shards_[s].backend->queue_depth(), s);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  std::exception_ptr refusal;
  bool admission_refused = false;
  bool transport_failed = false;
  for (const auto& [depth, s] : order) {
    try {
      Submitted local = shards_[s].backend->submit_job(job);
      {
        const std::lock_guard lock(mutex_);
        ++routed_;
        if (admission_refused) ++rerouted_;
        if (transport_failed) ++rerouted_transport_;
      }
      local.job_id = encode_job_id(s, local.job_id);
      return local;
    } catch (const ServiceError& e) {
      if (e.code() != ServiceError::Code::kOverloaded &&
          e.code() != ServiceError::Code::kShed) {
        throw;
      }
      admission_refused = true;
      refusal = std::current_exception();  // try the next replica
    } catch (const net::TransportError&) {
      // The replica's worker is gone or unreachable — same re-route, its
      // own tally (a dead worker is not an overloaded one).
      transport_failed = true;
      refusal = std::current_exception();
    }
  }
  std::rethrow_exception(refusal);  // every replica refused or failed
}

std::pair<std::size_t, std::uint64_t> ShardPool::decode_job_id(
    std::uint64_t pool_id) const noexcept {
  const std::uint64_t biased = pool_id >> kShardShift;
  if (biased == 0 || biased > shards_.size()) {
    return {shards_.size(), 0};
  }
  return {static_cast<std::size_t>(biased - 1), pool_id & kLocalMask};
}

bool ShardPool::cancel(std::uint64_t job_id) {
  const auto [shard, local] = decode_job_id(job_id);
  if (shard >= shards_.size()) return false;
  return shards_[shard].backend->cancel(local);
}

void ShardPool::drain() {
  for (auto& shard : shards_) shard.backend->drain();
}

std::size_t ShardPool::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& shard : shards_) depth += shard.backend->queue_depth();
  return depth;
}

std::vector<std::size_t> ShardPool::shard_depths() const {
  std::vector<std::size_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.push_back(shard.backend->queue_depth());
  }
  return out;
}

std::vector<std::string> ShardPool::model_keys() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(placement_.size());
  for (const auto& [key, _] : placement_) out.push_back(key);
  return out;  // std::map iterates in sorted order
}

bool ShardPool::has_model(const std::string& key) const {
  const std::lock_guard lock(mutex_);
  return placement_.contains(key);
}

bool ShardPool::model_resident(const std::string& key) const {
  std::vector<std::size_t> owners;
  {
    const std::lock_guard lock(mutex_);
    const auto it = placement_.find(key);
    if (it == placement_.end()) return false;
    owners = it->second;
  }
  for (const std::size_t s : owners) {
    if (shards_[s].host != nullptr ? shards_[s].host->resident(key)
                                   : shards_[s].backend->model_resident(key)) {
      return true;
    }
  }
  return false;
}

ServiceStats ShardPool::stats() const {
  // Strict sums of the per-shard counters (tests assert this arithmetic);
  // rates are recomputed over the pool's uptime, and percentiles come from
  // the *merged* latency windows, not an average of per-shard percentiles.
  // host.registered counts replica copies, so with R > 1 it exceeds the
  // number of distinct keys by design.
  ServiceStats agg;
  std::vector<double> window;
  double rows_weighted = 0.0;
  std::uint64_t batched_jobs = 0;
  for (const auto& shard : shards_) {
    const ServiceStats s = shard.backend->stats();
    agg.submitted += s.submitted;
    agg.completed += s.completed;
    agg.failed += s.failed;
    agg.rejected += s.rejected;
    agg.shed += s.shed;
    agg.cancelled += s.cancelled;
    agg.deadline_missed += s.deadline_missed;
    agg.blocked += s.blocked;
    agg.queue_depth += s.queue_depth;
    agg.queued_rows += s.queued_rows;
    agg.batches += s.batches;
    batched_jobs += static_cast<std::uint64_t>(
        s.mean_batch_jobs * static_cast<double>(s.batches) + 0.5);
    agg.uptime_seconds = std::max(agg.uptime_seconds, s.uptime_seconds);
    rows_weighted += s.rows_per_sec * s.uptime_seconds;
    agg.host.registered += s.host.registered;
    agg.host.resident += s.host.resident;
    agg.host.pinned += s.host.pinned;
    agg.host.capacity += s.host.capacity;
    agg.host.hits += s.host.hits;
    agg.host.misses += s.host.misses;
    agg.host.loads += s.host.loads;
    agg.host.load_failures += s.host.load_failures;
    agg.host.evictions += s.host.evictions;
    agg.host.stale_reloads += s.host.stale_reloads;
    agg.host.invalidations += s.host.invalidations;
    if (shard.service != nullptr) {
      // Percentiles merge raw latency windows; a remote shard only ships
      // its percentiles (windows do not cross the wire), so the merged
      // numbers cover the local shards. Per-shard stats keep the remote
      // percentiles individually.
      const auto shard_window = shard.service->latency_snapshot();
      window.insert(window.end(), shard_window.begin(), shard_window.end());
    }
  }
  agg.mean_batch_jobs = agg.batches == 0
                            ? 0.0
                            : static_cast<double>(batched_jobs) /
                                  static_cast<double>(agg.batches);
  agg.qps = agg.uptime_seconds > 0.0
                ? static_cast<double>(agg.completed) / agg.uptime_seconds
                : 0.0;
  agg.rows_per_sec =
      agg.uptime_seconds > 0.0 ? rows_weighted / agg.uptime_seconds : 0.0;
  std::sort(window.begin(), window.end());
  agg.p50_latency_ms = LatencyWindow::percentile(window, 0.50);
  agg.p95_latency_ms = LatencyWindow::percentile(window, 0.95);
  agg.p99_latency_ms = LatencyWindow::percentile(window, 0.99);
  agg.pool = util::ThreadPool::global().counters();
  return agg;
}

ShardStats ShardPool::shard_stats() const {
  ShardStats out;
  out.per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.per_shard.push_back(shard.backend->stats());
  }
  out.aggregate = stats();
  const std::lock_guard lock(mutex_);
  out.routed = routed_;
  out.rerouted = rerouted_;
  out.rerouted_transport = rerouted_transport_;
  out.placement.assign(placement_.begin(), placement_.end());
  return out;
}

void ShardPool::append_stats_json(util::JsonWriter& w) const {
  const ShardStats ss = shard_stats();
  w.key("shards").begin_object();
  w.kv("count", shards_.size());
  w.kv("local", cfg_.shards);
  w.kv("remote", cfg_.remotes.size());
  w.kv("replication", cfg_.replication);
  w.kv("virtual_nodes", router_.config().virtual_nodes);
  w.kv("routed", ss.routed);
  w.kv("rerouted", ss.rerouted);
  w.kv("rerouted_transport", ss.rerouted_transport);
  w.key("per_shard").begin_array();
  for (std::size_t s = 0; s < ss.per_shard.size(); ++s) {
    const ServiceStats& st = ss.per_shard[s];
    w.begin_object();
    w.kv("shard", s);
    w.kv("remote", shards_[s].service == nullptr);
    w.kv("queue_depth", st.queue_depth);
    w.kv("submitted", st.submitted);
    w.kv("completed", st.completed);
    w.kv("rejected", st.rejected);
    w.kv("shed", st.shed);
    w.kv("cache_hits", st.host.hits);
    w.kv("cache_misses", st.host.misses);
    w.kv("cache_evictions", st.host.evictions);
    w.kv("stale_reloads", st.host.stale_reloads);
    w.kv("invalidations", st.host.invalidations);
    w.end_object();
  }
  w.end_array();
  w.key("placement").begin_array();
  for (const auto& [key, owners] : ss.placement) {
    w.begin_object();
    w.kv("model", key);
    w.key("owners").begin_array();
    for (const std::size_t s : owners) w.value(s);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace surro::serve
