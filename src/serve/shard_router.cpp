#include "serve/shard_router.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace surro::serve {

namespace {

// Domain-separation salts so shard seeds, ring points, and key hashes live
// in unrelated SplitMix64 streams.
constexpr std::uint64_t kShardSeedSalt = 0x53484152445F5345ULL;  // "SHARD_SE"
constexpr std::uint64_t kVnodeSalt = 0x564E4F44455F5054ULL;      // "VNODE_PT"

std::uint64_t mix(std::uint64_t x) noexcept {
  std::uint64_t state = x;
  return util::splitmix64(state);
}

}  // namespace

std::uint64_t ShardRouter::key_hash(std::string_view key) noexcept {
  // FNV-1a over the bytes, then one SplitMix64 round to spread the FNV
  // output (whose low bits correlate for short keys) across all 64 bits.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return mix(h);
}

ShardRouter::ShardRouter(RouterConfig cfg) : cfg_(cfg) {
  if (cfg_.shards == 0) {
    throw std::invalid_argument("shard router: shards must be positive");
  }
  if (cfg_.virtual_nodes == 0) cfg_.virtual_nodes = 1;
  cfg_.replication = std::max<std::size_t>(cfg_.replication, 1);
  cfg_.replication = std::min(cfg_.replication, cfg_.shards);

  // Ring points depend only on (shard index, vnode index): shard s owns the
  // same positions in an N-shard ring and an (N+1)-shard ring, which is
  // what bounds key movement to the new shard's arcs.
  ring_.reserve(cfg_.shards * cfg_.virtual_nodes);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    const std::uint64_t shard_seed = mix(kShardSeedSalt + s);
    for (std::size_t v = 0; v < cfg_.virtual_nodes; ++v) {
      Point p;
      p.hash = mix(shard_seed ^ (kVnodeSalt * (v + 1)));
      p.shard = s;
      p.shard_seed = shard_seed;
      ring_.push_back(p);
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.shard < b.shard;  // provisional; lookups re-break ties per key
  });
}

std::vector<std::size_t> ShardRouter::owners(std::string_view key) const {
  const std::uint64_t h = key_hash(key);
  const std::size_t n = ring_.size();

  // First ring point at or clockwise of the key's position (wrap at the
  // top of the hash space).
  std::size_t start = static_cast<std::size_t>(
      std::lower_bound(ring_.begin(), ring_.end(), h,
                       [](const Point& p, std::uint64_t value) {
                         return p.hash < value;
                       }) -
      ring_.begin());
  if (start == n) start = 0;

  std::vector<std::size_t> out;
  out.reserve(cfg_.replication);
  std::vector<bool> seen(cfg_.shards, false);
  std::size_t i = start;
  std::size_t visited = 0;
  while (out.size() < cfg_.replication && visited < n) {
    // Collect the run of equal-hash points and order it by rendezvous
    // weight for *this key*, so a hash collision between two shards'
    // vnodes does not systematically favor the lower shard index.
    std::size_t run_end = i;
    std::size_t run_len = 0;
    while (run_len < n && ring_[run_end % n].hash == ring_[i].hash) {
      ++run_len;
      ++run_end;
    }
    if (run_len == 1) {
      const Point& p = ring_[i];
      if (!seen[p.shard]) {
        seen[p.shard] = true;
        out.push_back(p.shard);
      }
    } else {
      std::vector<const Point*> run;
      run.reserve(run_len);
      for (std::size_t k = 0; k < run_len; ++k) run.push_back(&ring_[(i + k) % n]);
      std::sort(run.begin(), run.end(), [&](const Point* a, const Point* b) {
        const std::uint64_t wa = mix(h ^ a->shard_seed);
        const std::uint64_t wb = mix(h ^ b->shard_seed);
        if (wa != wb) return wa > wb;
        return a->shard < b->shard;
      });
      for (const Point* p : run) {
        if (out.size() >= cfg_.replication) break;
        if (!seen[p->shard]) {
          seen[p->shard] = true;
          out.push_back(p->shard);
        }
      }
    }
    visited += run_len;
    i = run_end % n;
  }
  return out;
}

}  // namespace surro::serve
