#pragma once
// Overload soak harness for the serving layer: N client threads with
// Poisson arrivals drive a bounded SampleService at a sweep of offered-load
// multipliers (fractions/multiples of the service's measured capacity),
// recording per-point accepted/rejected/shed/deadline-missed counts and
// accepted-job latency percentiles — and asserting the determinism contract
// the hard way: every *accepted* job's bytes are digested and compared
// against an expected hash computed up front by sampling the same
// (model, rows, seed, chunk_rows) identity directly, so rejections, sheds,
// and deadline kills interleaved around a job can never change what it
// returns. Consumed by `surro_cli soak` and bench/serve_soak; the JSON
// artifact (kind "serve_soak") is what the soak-smoke CI job validates.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/replay.hpp"
#include "serve/sample_service.hpp"

namespace surro::serve {

struct SoakConfig {
  /// Model keys to cycle traffic over; every key must already be
  /// registered (and loadable) in the host handed to run_soak.
  std::vector<std::string> models;
  /// Offered load as a multiple of calibrated capacity, one sweep point
  /// each. Percentile ratios are reported against the *lowest* multiplier.
  std::vector<double> load_multipliers{0.5, 1.0, 2.0, 4.0};
  std::size_t clients = 4;        ///< concurrent submitting client threads
  std::size_t rows_per_job = 2000;
  std::size_t chunk_rows = 1024;  ///< part of every job's determinism key
  /// Distinct seeds per model; traffic cycles through models × streams, so
  /// the identity universe is models.size() × seed_streams jobs.
  std::size_t seed_streams = 8;
  std::uint64_t seed = 42;        ///< base for job seeds + arrival processes
  double duration_seconds = 2.0;  ///< submission window per sweep point
  /// Minimum submissions per sweep point (0 = clients × models × 2): at a
  /// low offered rate the submission window extends past duration_seconds
  /// — still Poisson-paced at the same rate — until the floor is met, so
  /// percentiles at every point rest on a real sample, not 2-3 jobs.
  std::size_t min_jobs_per_point = 0;
  double deadline_ms = 0.0;       ///< per-job deadline (0 = none)
  AdmissionPolicy admission = AdmissionPolicy::kReject;
  std::size_t max_queue_depth = 0;  ///< 0 = clients (a shallow, SLO-friendly queue)
  std::size_t max_queued_rows = 0;  ///< 0 = unbounded
  std::size_t sample_threads = 0;   ///< ServiceConfig::sample_threads
  std::size_t max_batch = 8;
  /// Jobs per client in the unbounded calibration run that measures
  /// capacity_jobs_per_sec before the sweep.
  std::size_t calibration_jobs_per_client = 4;
  bool verbose = false;

  /// Drive the sweep over a loopback HTTP socket instead of in-process
  /// submits: run_soak stands up a net::HttpEndpoint (ephemeral port) over
  /// the bounded service, and every client becomes a net::ApiClient —
  /// POST /v1/sample for each arrival, then long-poll + paginate the rows
  /// back and digest them. Calibration and the expected digests stay
  /// in-process on purpose: the check is that the socket path lands on the
  /// *same* expected_hash, i.e. the determinism contract and the overload
  /// SLOs survive the wire (serialization, pagination, reassembly).
  bool over_socket = false;
  /// HTTP server worker threads in socket mode (0 = clients + 2, enough
  /// that every client can hold a connection plus slack for stats probes).
  std::size_t http_workers = 0;
  /// Page size clients paginate results with (0 = the server's default
  /// page, which still exercises pagination when rows_per_job exceeds it).
  std::size_t page_rows = 0;
  /// Long-poll budget per GET /v1/jobs/{id} while a job is pending.
  double poll_wait_ms = 250.0;

  /// Worker shards for the bounded service under test. 1 = the classic
  /// single SampleService; > 1 stands up a serve::ShardPool (each shard
  /// its own ModelHost + SampleService, admission bounds *per shard*) and
  /// routes every submit through the consistent-hash router. Calibration
  /// and the expected digests stay on the caller's unsharded host either
  /// way — the expected_hash is placement-independent by contract, so a
  /// 1-shard and an 8-shard run of the same config must agree on it.
  std::size_t shards = 1;
  /// Replication factor for the sharded tier (clamped to the total shard
  /// count, local + remote).
  std::size_t replicas = 1;
  /// Archive-cache TTL per shard (ModelHost staleness; 0 = never stale).
  double shard_ttl_ms = 0.0;
  /// Remote worker endpoints ("host:port"), appended to the pool after the
  /// `shards` local shards — the multi-process tier. Workers must already
  /// serve every swept model (same --models flags); registration verifies
  /// that. Calibration and the expected digests STILL come from the
  /// caller's unsharded in-process host, so every remote sweep point is a
  /// cross-process determinism check: bytes that crossed the wire must
  /// land on the same expected_hash an in-process run computes.
  std::vector<std::string> remote_shards;

  /// The queue-depth bound the sweep service actually enforces (resolves
  /// the 0 = clients default). Single source of truth for run_soak, the
  /// JSON artifact, and the CLI banner.
  [[nodiscard]] std::size_t effective_queue_depth() const noexcept {
    return max_queue_depth != 0 ? max_queue_depth : clients;
  }
  /// The per-point submission floor (resolves 0 = clients × models × 2).
  [[nodiscard]] std::size_t effective_min_jobs() const noexcept {
    return min_jobs_per_point != 0 ? min_jobs_per_point
                                   : clients * models.size() * 2;
  }
};

/// One offered-load sweep point.
struct SoakPoint {
  double multiplier = 0.0;
  double offered_jobs_per_sec = 0.0;  ///< target Poisson arrival rate
  std::uint64_t submitted = 0;        ///< submission attempts
  std::uint64_t accepted = 0;         ///< futures that delivered a table
  std::uint64_t rejected = 0;         ///< refused at admission
  std::uint64_t shed = 0;             ///< dropped by the shed policy
  std::uint64_t deadline_missed = 0;
  std::uint64_t failed = 0;           ///< execution errors (should be 0)
  /// Accepted-job latency percentiles (+inf when nothing was accepted;
  /// degrades to null in JSON).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double wall_seconds = 0.0;          ///< submission window + drain
  double accepted_rows_per_sec = 0.0;
  /// Highest queue depth observed by the monitor thread — the "bounded
  /// queue depth" check under overload. For a sharded run this is the
  /// highest *single-shard* depth (the admission bound is per shard).
  std::size_t max_queue_depth_seen = 0;
  /// Per-shard depth maxima (empty for unsharded runs); index = shard.
  std::vector<std::size_t> shard_max_depths;
  bool hashes_ok = true;  ///< every accepted job matched its expected digest
};

struct SoakResult {
  /// Jobs/sec the service sustained in the unbounded calibration run; the
  /// sweep's offered rates are multiples of this.
  double capacity_jobs_per_sec = 0.0;
  std::vector<SoakPoint> points;
  /// Order-independent digest over the expected (model × stream) tables.
  /// Stable across runs with the same config — two soak runs disagreeing
  /// here means the *bytes* moved, not the scheduling.
  std::uint64_t expected_hash = 0;
  /// True when every accepted job at every sweep point matched its
  /// expected digest (the determinism contract under overload).
  bool deterministic = true;
  /// p95 at the highest multiplier / p95 at the lowest; NaN when either
  /// side is empty (degrades to null in JSON). The overload-SLO headline.
  double p95_ratio_vs_low_load = 0.0;
  ServiceStats final_stats;  ///< cumulative service stats after the sweep
  /// Per-shard final stats + routing tallies (empty/zero when shards == 1).
  std::vector<ServiceStats> shard_final_stats;
  std::uint64_t routed = 0;    ///< submits the router placed on a shard
  std::uint64_t rerouted = 0;  ///< submits re-placed after a replica refused
  /// Submits re-placed after a replica's transport failed (dead worker).
  std::uint64_t rerouted_transport = 0;
  double wall_seconds = 0.0;
  /// Socket-mode tallies (zero for in-process runs): the HTTP server's
  /// accepted connections and answered requests across the whole sweep.
  std::uint64_t http_connections = 0;
  std::uint64_t http_requests = 0;
};

/// Run calibration + the sweep against models registered in `host`.
/// Throws std::invalid_argument on an empty model/multiplier list.
[[nodiscard]] SoakResult run_soak(ModelHost& host, const SoakConfig& cfg);

/// Human-readable sweep table + SLO/determinism summary, shared by
/// `surro_cli soak` and bench/serve_soak (one format to keep current).
[[nodiscard]] std::string render_soak(const SoakResult& result);

/// The `serve_soak` artifact (schema_version 1, kind "serve_soak").
[[nodiscard]] std::string soak_to_json(const SoakConfig& cfg,
                                       const SoakResult& result);

}  // namespace surro::serve
