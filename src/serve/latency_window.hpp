#pragma once
// LatencyWindow: the bounded ring buffer of recent job latencies behind
// ServiceStats percentiles, extracted from SampleService so its wraparound
// and percentile behavior is directly testable (empty, size-1, exactly-full,
// and wrapped windows all have tests in tests/test_serve.cpp).
//
// The ring stores samples in insertion order; percentile() requires a
// *sorted* sample and the two snapshot methods are the sanctioned paths to
// one: snapshot_sorted() hands back the retained window already ordered,
// and snapshot() hands back the raw (insertion-ordered, post-wraparound:
// rotated) copy for callers that must keep their lock hold time O(n) and
// sort outside the critical section — SampleService::stats() does exactly
// that. Feeding an unsorted snapshot to percentile() is the bug the
// extraction exists to make impossible to write silently.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace surro::serve {

class LatencyWindow {
 public:
  /// Retains the most recent `capacity` samples (0 is bumped to 1).
  explicit LatencyWindow(std::size_t capacity);

  /// Record one latency sample, evicting the oldest once full.
  void record(double ms);

  /// Samples currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  /// Lifetime samples recorded (monotonic, ignores eviction).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }

  /// The retained window, copied in insertion order. For callers that
  /// hold a lock around the read: copy under the lock, release it, then
  /// sort and feed percentile().
  [[nodiscard]] std::vector<double> snapshot() const { return samples_; }

  /// The retained window, sorted ascending — ready for percentile().
  [[nodiscard]] std::vector<double> snapshot_sorted() const;

  /// Nearest-rank percentile of an already-sorted sample, p in [0, 1];
  /// +infinity on an empty window (no job completed yet — degrades to null
  /// in JSON artifacts).
  [[nodiscard]] static double percentile(const std::vector<double>& sorted,
                                         double p);

 private:
  std::size_t capacity_;
  std::vector<double> samples_;  // ring buffer, insertion order
  std::size_t next_ = 0;         // overwrite slot once full
  std::uint64_t recorded_ = 0;
};

}  // namespace surro::serve
