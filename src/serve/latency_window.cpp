#include "serve/latency_window.hpp"

#include <algorithm>
#include <cmath>

namespace surro::serve {

LatencyWindow::LatencyWindow(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  samples_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void LatencyWindow::record(double ms) {
  ++recorded_;
  if (samples_.size() < capacity_) {
    samples_.push_back(ms);
    return;
  }
  samples_[next_] = ms;
  next_ = (next_ + 1) % capacity_;
}

std::vector<double> LatencyWindow::snapshot_sorted() const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

double LatencyWindow::percentile(const std::vector<double>& sorted,
                                 double p) {
  if (sorted.empty()) return INFINITY;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace surro::serve
