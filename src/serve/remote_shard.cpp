#include "serve/remote_shard.hpp"

#include <algorithm>
#include <charconv>
#include <limits>
#include <stdexcept>
#include <utility>

#include "net/error_map.hpp"
#include "util/json_parse.hpp"

namespace surro::serve {

RemoteShardConfig parse_remote_endpoint(const std::string& spec) {
  RemoteShardConfig cfg;
  const std::size_t colon = spec.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? spec : spec.substr(colon + 1);
  if (colon != std::string::npos && colon > 0) cfg.host = spec.substr(0, colon);
  unsigned port = 0;
  const auto res = std::from_chars(port_text.data(),
                                   port_text.data() + port_text.size(), port);
  if (res.ec != std::errc{} || res.ptr != port_text.data() + port_text.size() ||
      port == 0 || port > 65535) {
    throw std::invalid_argument("bad remote shard endpoint '" + spec +
                                "' (want host:port)");
  }
  cfg.port = static_cast<std::uint16_t>(port);
  return cfg;
}

RemoteShard::RemoteShard(RemoteShardConfig cfg)
    : cfg_(std::move(cfg)), control_(cfg_.host, cfg_.port, cfg_.api_key,
                                     cfg_.http) {
  const std::size_t n = std::max<std::size_t>(cfg_.harvest_threads, 1);
  harvesters_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    harvesters_.emplace_back([this] { harvest_loop(); });
  }
}

RemoteShard::~RemoteShard() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& t : harvesters_) t.join();
  // Tasks the harvesters never picked up: fail their futures so no caller
  // blocks forever on a destroyed shard.
  for (auto& task : tasks_) {
    task.promise->set_exception(std::make_exception_ptr(
        std::logic_error("remote shard shutting down")));
  }
}

Submitted RemoteShard::submit_job(SampleJob job) {
  std::uint64_t id = 0;
  try {
    const std::lock_guard lock(control_mutex_);
    id = control_.submit(job.model_key, job.rows, job.seed, job.chunk_rows,
                         job.priority, job.deadline_ms);
  } catch (const net::ApiError& e) {
    // Rebuild the typed in-process error surface from the wire code.
    ServiceError::Code code;
    if (net::parse_service_error_code(e.code(), code)) {
      throw ServiceError(code, e.what());
    }
    if (e.code() == "shutting_down") throw std::logic_error(e.what());
    if (e.code() == "unknown_model") {
      // A local submit surfaces an unknown key on the future, not at
      // submit time; mirror that so pool routing semantics match.
      auto promise = std::make_shared<std::promise<SampleResult>>();
      promise->set_exception(std::make_exception_ptr(
          std::invalid_argument(std::string(e.what()))));
      Submitted out;
      out.job_id = 0;
      out.future = promise->get_future();
      return out;
    }
    throw;
  }
  // Progress callbacks cannot cross the wire; the job still runs, the
  // callback is just never invoked.

  auto promise = std::make_shared<std::promise<SampleResult>>();
  Submitted out;
  out.job_id = id;
  out.future = promise->get_future();
  {
    const std::lock_guard lock(mutex_);
    tasks_.push_back(HarvestTask{id, std::move(promise)});
    ++pending_;
  }
  task_ready_.notify_one();
  return out;
}

void RemoteShard::finish_one() {
  const std::lock_guard lock(mutex_);
  --pending_;
  idle_.notify_all();
}

void RemoteShard::harvest_loop() {
  // Each harvester owns its connection: page downloads from different jobs
  // proceed concurrently without serializing on the control client.
  net::ApiClient api(cfg_.host, cfg_.port, cfg_.api_key, cfg_.http);
  for (;;) {
    HarvestTask task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and nothing left to do
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    try {
      net::RemoteResult r =
          api.wait_result(task.job_id, cfg_.page_rows, cfg_.poll_wait_ms);
      SampleResult result;
      result.table = std::move(r.table);
      result.model_key = std::move(r.model_key);
      result.queue_seconds = r.queue_seconds;
      result.sample_seconds = r.sample_seconds;
      result.total_seconds = r.total_seconds;
      result.cache_hit = r.cache_hit;
      task.promise->set_value(std::move(result));
    } catch (const net::ApiError& e) {
      ServiceError::Code code;
      if (net::parse_service_error_code(e.code(), code)) {
        task.promise->set_exception(
            std::make_exception_ptr(ServiceError(code, e.what())));
      } else {
        task.promise->set_exception(std::current_exception());
      }
    } catch (...) {
      // TransportError and anything else: surface verbatim.
      task.promise->set_exception(std::current_exception());
    }
    finish_one();
  }
}

bool RemoteShard::cancel(std::uint64_t job_id) {
  try {
    const std::lock_guard lock(control_mutex_);
    return control_.cancel(job_id);
  } catch (const std::exception&) {
    // Unknown job (404), already resolved, or an unreachable worker: the
    // in-process contract answers false for "nothing left to cancel".
    return false;
  }
}

void RemoteShard::drain() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

std::size_t RemoteShard::queue_depth() const {
  const std::lock_guard lock(mutex_);
  return pending_;
}

const ServiceConfig& RemoteShard::config() const noexcept {
  return service_cfg_;
}

ServiceStats RemoteShard::stats() const {
  ServiceStats out;
  std::string body;
  try {
    const std::lock_guard lock(control_mutex_);
    body = control_.stats_json();
  } catch (const std::exception&) {
    const std::lock_guard lock(mutex_);
    out.queue_depth = pending_;
    return out;
  }
  try {
    const auto doc = util::parse_json(body);
    const auto& svc = doc.at("service");
    const auto u64 = [&](const char* key) {
      return static_cast<std::uint64_t>(svc.number_or(key, 0.0));
    };
    out.submitted = u64("submitted");
    out.completed = u64("completed");
    out.failed = u64("failed");
    out.queue_depth = static_cast<std::size_t>(svc.number_or("queue_depth", 0));
    out.queued_rows = static_cast<std::size_t>(svc.number_or("queued_rows", 0));
    out.batches = u64("batches");
    out.mean_batch_jobs = svc.number_or("mean_batch_jobs", 0.0);
    out.uptime_seconds = doc.number_or("uptime_seconds", 0.0);
    out.qps = svc.number_or("qps", 0.0);
    out.rows_per_sec = svc.number_or("rows_per_sec", 0.0);
    out.rejected = u64("rejected");
    out.shed = u64("shed");
    out.cancelled = u64("cancelled");
    out.deadline_missed = u64("deadline_missed");
    out.blocked = u64("blocked");
    const auto pct = [&](const char* key) {
      const auto& v = svc.at(key);
      return v.is_null() ? std::numeric_limits<double>::infinity()
                         : v.as_number();
    };
    if (svc.has("p50_latency_ms")) out.p50_latency_ms = pct("p50_latency_ms");
    if (svc.has("p95_latency_ms")) out.p95_latency_ms = pct("p95_latency_ms");
    if (svc.has("p99_latency_ms")) out.p99_latency_ms = pct("p99_latency_ms");
    if (doc.has("cache")) {
      const auto& cache = doc.at("cache");
      const auto cu64 = [&](const char* key) {
        return static_cast<std::uint64_t>(cache.number_or(key, 0.0));
      };
      out.host.registered = static_cast<std::size_t>(cu64("registered"));
      out.host.resident = static_cast<std::size_t>(cu64("resident"));
      out.host.pinned = static_cast<std::size_t>(cu64("pinned"));
      out.host.capacity = static_cast<std::size_t>(cu64("capacity"));
      out.host.hits = cu64("hits");
      out.host.misses = cu64("misses");
      out.host.loads = cu64("loads");
      out.host.load_failures = cu64("load_failures");
      out.host.evictions = cu64("evictions");
      out.host.stale_reloads = cu64("stale_reloads");
      out.host.invalidations = cu64("invalidations");
    }
  } catch (const std::exception&) {
    // A stats document this client cannot decode degrades to zeros; the
    // data plane (submit/harvest) is where correctness is enforced.
  }
  return out;
}

std::vector<std::string> RemoteShard::model_keys() const {
  std::vector<std::string> keys;
  try {
    const std::lock_guard lock(control_mutex_);
    keys = control_.models();
  } catch (const std::exception&) {
    const std::lock_guard lock(mutex_);
    return model_keys_cache_.value_or(std::vector<std::string>{});
  }
  // The cache is guarded by mutex_ on every touch (control_mutex_ only
  // serializes the wire call above) so success and fallback paths never
  // race on the same member under different locks.
  const std::lock_guard lock(mutex_);
  model_keys_cache_ = keys;
  return keys;
}

bool RemoteShard::has_model(const std::string& key) const {
  const auto keys = model_keys();
  for (const auto& k : keys) {
    if (k == key) return true;
  }
  return false;
}

bool RemoteShard::model_resident(const std::string& key) const {
  std::string body;
  try {
    const std::lock_guard lock(control_mutex_);
    body = control_.http().request("GET", "/v1/models", "",
                                   cfg_.api_key.empty()
                                       ? std::map<std::string, std::string>{}
                                       : std::map<std::string, std::string>{
                                             {"x-api-key", cfg_.api_key}})
               .body;
    const auto doc = util::parse_json(body);
    for (const auto& model : doc.at("models").array) {
      if (model.at("key").as_string() == key) {
        return model.at("resident").as_bool();
      }
    }
  } catch (const std::exception&) {
  }
  return false;
}

bool RemoteShard::healthy(double timeout_seconds) const {
  const std::lock_guard lock(control_mutex_);
  return control_.healthy(timeout_seconds);
}

}  // namespace surro::serve
