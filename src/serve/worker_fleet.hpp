#pragma once
// WorkerFleet: spawn N `surro_cli serve --worker` processes, wait until
// every one answers /healthz, and tear them down with SIGTERM on exit.
// The process-management backbone of `surro_cli fleet`, the remote mode of
// bench/serve_shard, and the cross-process conformance tests — each worker
// binds an ephemeral port and reports it through a --port-file, so fleets
// never race over fixed port numbers.
//
// Teardown contract: workers handle SIGTERM by stopping accepts, draining
// in-flight jobs, and exiting 0 (the serve --listen graceful-shutdown
// path), so shutdown() returning 0 is itself an assertion that every
// worker died cleanly. kill_one() (SIGKILL) exists for fault injection:
// the re-route tests prove a murdered worker never changes bytes.

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

namespace surro::serve {

struct WorkerFleetConfig {
  /// Path to the surro_cli binary to exec.
  std::string cli_path;
  /// Arguments appended after `serve --worker --listen 0 --port-file F`
  /// for every worker (model registrations, capacity, admission knobs).
  std::vector<std::string> serve_args;
  std::size_t workers = 1;
  double ready_timeout_seconds = 60.0;
  /// Where port files and worker logs live; empty = a fresh temp dir.
  std::string scratch_dir;
  /// Workers inherit stdout/stderr when true; otherwise each worker logs
  /// to <scratch>/worker<i>.log.
  bool inherit_output = false;
};

class WorkerFleet {
 public:
  explicit WorkerFleet(WorkerFleetConfig cfg);
  /// SIGKILLs anything still alive (call shutdown() first for the
  /// graceful path).
  ~WorkerFleet();

  WorkerFleet(const WorkerFleet&) = delete;
  WorkerFleet& operator=(const WorkerFleet&) = delete;

  /// Fork+exec every worker, then block until each port file appears and
  /// its /healthz answers. Throws std::runtime_error on spawn failure or
  /// readiness timeout (any already-spawned workers are killed).
  void start();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }
  [[nodiscard]] std::uint16_t port(std::size_t i) const;
  [[nodiscard]] pid_t pid(std::size_t i) const;
  [[nodiscard]] bool alive(std::size_t i) const;
  [[nodiscard]] const std::string& scratch_dir() const noexcept {
    return scratch_;
  }

  /// Fault injection: deliver `sig` (default SIGKILL) to worker `i`.
  void kill_one(std::size_t i, int sig = 9);

  /// SIGTERM every live worker and wait up to `timeout_seconds` for each
  /// to exit. Returns the worst exit status observed: 0 = every worker
  /// shut down gracefully; a worker that had to be SIGKILLed after the
  /// timeout counts as 137. Idempotent.
  int shutdown(double timeout_seconds = 20.0);

 private:
  struct Worker {
    pid_t pid = -1;
    std::uint16_t port = 0;
    std::string port_file;
    std::string log_file;
    bool reaped = false;
    int exit_status = 0;
  };

  void spawn(std::size_t index);
  void kill_all() noexcept;

  WorkerFleetConfig cfg_;
  std::string scratch_;
  std::vector<Worker> workers_;
};

}  // namespace surro::serve
