#include "serve/sample_service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace surro::serve {

namespace {

/// Nearest-rank percentile of an already-sorted sample; +inf on an empty
/// window (no completed job yet — degrades to null in JSON artifacts).
double percentile_ms(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return INFINITY;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace

SampleService::SampleService(ModelHost& host, ServiceConfig cfg)
    : host_(host), cfg_(cfg) {
  if (cfg_.chunk_rows == 0) {
    throw std::invalid_argument("sample service: chunk_rows must be positive");
  }
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  if (cfg_.latency_window == 0) cfg_.latency_window = 1;
  latency_ms_.reserve(std::min<std::size_t>(cfg_.latency_window, 4096));
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

SampleService::~SampleService() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<SampleResult> SampleService::submit(SampleJob job) {
  Pending pending;
  pending.job = std::move(job);
  std::future<SampleResult> future = pending.promise.get_future();
  {
    const std::lock_guard lock(mutex_);
    if (stop_) {
      throw std::logic_error("sample service: submit after shutdown");
    }
    pending.seq = seq_++;
    pending.submitted_at = clock_.seconds();
    ++submitted_;
    queue_.push_back(std::move(pending));
  }
  cv_work_.notify_one();
  return future;
}

tabular::Table SampleService::sample(SampleJob job) {
  return submit(std::move(job)).get().table;
}

void SampleService::drain() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void SampleService::pause() {
  const std::lock_guard lock(mutex_);
  paused_ = true;
}

void SampleService::resume() {
  {
    const std::lock_guard lock(mutex_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

void SampleService::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock lock(mutex_);
      // stop_ overrides paused_: shutdown drains whatever is queued.
      cv_work_.wait(lock, [this] {
        return stop_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      batch = pop_batch_locked();
      in_flight_ += batch.size();
      ++batches_;
      batched_jobs_ += batch.size();
    }
    run_batch(std::move(batch));
    cv_idle_.notify_all();
  }
}

std::vector<SampleService::Pending> SampleService::pop_batch_locked() {
  // Dispatch order: priority descending, then submission order. The head
  // job picks the batch's model; compatible queued jobs (same model key)
  // ride along, again in priority/submission order, up to max_batch.
  const auto before = [](const Pending& a, const Pending& b) {
    if (a.job.priority != b.job.priority) {
      return a.job.priority > b.job.priority;
    }
    return a.seq < b.seq;
  };
  std::size_t head = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    if (before(queue_[i], queue_[head])) head = i;
  }
  const std::string key = queue_[head].job.model_key;

  std::vector<std::size_t> picked;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].job.model_key == key) picked.push_back(i);
  }
  std::sort(picked.begin(), picked.end(), [&](std::size_t a, std::size_t b) {
    return before(queue_[a], queue_[b]);
  });
  if (picked.size() > cfg_.max_batch) picked.resize(cfg_.max_batch);

  std::vector<Pending> batch;
  batch.reserve(picked.size());
  for (const std::size_t i : picked) {
    batch.push_back(std::move(queue_[i]));
  }
  std::sort(picked.begin(), picked.end());
  for (auto it = picked.rbegin(); it != picked.rend(); ++it) {
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  return batch;
}

void SampleService::record_done_locked(const BatchItem& item, bool ok) {
  if (ok) {
    ++completed_;
    rows_emitted_ += item.pending.job.rows;
    const double ms =
        (clock_.seconds() - item.pending.submitted_at) * 1e3;
    if (latency_ms_.size() < cfg_.latency_window) {
      latency_ms_.push_back(ms);
    } else {
      latency_ms_[latency_next_] = ms;
      latency_next_ = (latency_next_ + 1) % cfg_.latency_window;
    }
  } else {
    ++failed_;
  }
  --in_flight_;
}

void SampleService::run_batch(std::vector<Pending> batch) {
  const double dispatched_at = clock_.seconds();
  const std::uint64_t batch_index = batches_;  // written by dispatcher only
  // Copied, not referenced: the Pendings are moved into BatchItems below.
  const std::string key = batch.front().job.model_key;

  std::vector<BatchItem> items;
  items.reserve(batch.size());
  for (auto& pending : batch) {
    BatchItem item;
    item.chunk_rows = pending.job.chunk_rows == 0 ? cfg_.chunk_rows
                                                  : pending.job.chunk_rows;
    item.pending = std::move(pending);
    items.push_back(std::move(item));
  }

  const auto fail_all = [&](std::exception_ptr error) {
    {
      const std::lock_guard lock(mutex_);
      for (auto& item : items) record_done_locked(item, /*ok=*/false);
    }
    for (auto& item : items) item.pending.promise.set_exception(error);
  };

  bool was_resident = false;
  std::shared_ptr<models::TabularGenerator> model;
  try {
    // Chunk-slot allocation happens inside the guarded region: an absurd
    // rows value must fail this batch's futures, not the dispatcher.
    for (auto& item : items) {
      item.chunks.resize((item.pending.job.rows + item.chunk_rows - 1) /
                         item.chunk_rows);
    }
    was_resident = host_.resident(key);
    model = host_.acquire(key);

    // One flat chunk list across the whole batch: worker w owns chunks
    // w, w+T, w+2T, ... of the *batch*, so coalesced jobs share one set of
    // per-worker replicas instead of paying a clone per job. Chunk seeds
    // stay per-job (derive_chunk_seed(job.seed, chunk-within-job)), which
    // keeps every job's bytes independent of how it was batched.
    struct ChunkRef {
      std::size_t item;
      std::size_t chunk;
      std::size_t rows;
      std::uint64_t seed;
    };
    std::vector<ChunkRef> refs;
    for (std::size_t i = 0; i < items.size(); ++i) {
      const auto& job = items[i].pending.job;
      for (std::size_t c = 0; c < items[i].chunks.size(); ++c) {
        const std::size_t lo = c * items[i].chunk_rows;
        refs.push_back({i, c, std::min(items[i].chunk_rows, job.rows - lo),
                        models::derive_chunk_seed(job.seed, c)});
      }
    }

    auto& pool = util::ThreadPool::global();
    std::size_t threads = 0;  // 0 = whole pool until resolved below
    for (const auto& item : items) {
      const std::size_t want = item.pending.job.threads != 0
                                   ? item.pending.job.threads
                                   : cfg_.sample_threads;
      if (want == 0) {
        threads = pool.size();
        break;
      }
      threads = std::max(threads, want);
    }
    if (threads == 0) threads = pool.size();
    threads = std::min(threads, std::max<std::size_t>(refs.size(), 1));

    std::mutex progress_mutex;
    const auto run_chunk = [&](models::TabularGenerator& sampler,
                               const ChunkRef& ref) {
      BatchItem& item = items[ref.item];
      item.chunks[ref.chunk] = sampler.sample_chunk(ref.rows, ref.seed);
      if (item.pending.job.on_progress) {
        const std::lock_guard lock(progress_mutex);
        item.rows_done += ref.rows;
        item.pending.job.on_progress(item.rows_done, item.pending.job.rows);
      }
    };

    if (threads <= 1) {
      for (const auto& ref : refs) run_chunk(*model, ref);
    } else {
      const bool share = model->concurrent_sampling();
      util::TaskGroup group;
      for (std::size_t w = 0; w < threads; ++w) {
        pool.submit(group, [&, w, share] {
          std::unique_ptr<models::TabularGenerator> replica;
          if (!share) replica = model->clone();
          models::TabularGenerator& sampler = share ? *model : *replica;
          for (std::size_t r = w; r < refs.size(); r += threads) {
            run_chunk(sampler, refs[r]);
          }
        });
      }
      pool.wait(group);
    }
  } catch (...) {
    fail_all(std::current_exception());
    return;
  }

  for (auto& item : items) {
    try {
      SampleResult result;
      for (auto& chunk : item.chunks) {
        if (result.table.num_columns() == 0) {
          result.table = std::move(chunk);
        } else {
          result.table.append_table(chunk);
        }
      }
      result.model_key = key;
      result.queue_seconds = dispatched_at - item.pending.submitted_at;
      result.batch_jobs = items.size();
      result.batch_index = batch_index;
      result.cache_hit = was_resident;
      {
        const std::lock_guard lock(mutex_);
        record_done_locked(item, /*ok=*/true);
      }
      result.total_seconds = clock_.seconds() - item.pending.submitted_at;
      result.sample_seconds = result.total_seconds - result.queue_seconds;
      item.pending.promise.set_value(std::move(result));
    } catch (...) {
      // Assembly failure (e.g. allocation) fails this job's future; it
      // must never escape into the dispatcher thread.
      {
        const std::lock_guard lock(mutex_);
        record_done_locked(item, /*ok=*/false);
      }
      item.pending.promise.set_exception(std::current_exception());
    }
  }
}

ServiceStats SampleService::stats() const {
  ServiceStats s;
  std::vector<double> window;
  {
    const std::lock_guard lock(mutex_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.queue_depth = queue_.size() + in_flight_;
    s.batches = batches_;
    s.mean_batch_jobs =
        batches_ == 0 ? 0.0
                      : static_cast<double>(batched_jobs_) /
                            static_cast<double>(batches_);
    s.uptime_seconds = clock_.seconds();
    s.rows_per_sec = s.uptime_seconds > 0.0
                         ? static_cast<double>(rows_emitted_) /
                               s.uptime_seconds
                         : 0.0;
    s.qps = s.uptime_seconds > 0.0
                ? static_cast<double>(completed_) / s.uptime_seconds
                : 0.0;
    window = latency_ms_;
  }
  std::sort(window.begin(), window.end());
  s.p50_latency_ms = percentile_ms(window, 0.50);
  s.p95_latency_ms = percentile_ms(window, 0.95);
  s.host = host_.stats();
  s.pool = util::ThreadPool::global().counters();
  return s;
}

// ---------------------------------------------------------- global stack --

namespace {
HostConfig pipeline_host_config() {
  // Touch the global pool before the host/service members construct, so
  // static destruction tears the service down while the pool still runs.
  (void)util::ThreadPool::global();
  HostConfig cfg;
  cfg.capacity = 64;  // pipelines pin their models; generous headroom
  return cfg;
}
}  // namespace

ServingStack::ServingStack() : host(pipeline_host_config()), service(host) {}

ServingStack& global_serving() {
  static ServingStack stack;
  return stack;
}

}  // namespace surro::serve
