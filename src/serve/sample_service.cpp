#include "serve/sample_service.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <stdexcept>
#include <utility>

namespace surro::serve {

const char* admission_policy_name(AdmissionPolicy policy) noexcept {
  switch (policy) {
    case AdmissionPolicy::kBlock: return "block";
    case AdmissionPolicy::kReject: return "reject";
    default: return "shed";
  }
}

AdmissionPolicy parse_admission_policy(const std::string& name) {
  if (name == "block") return AdmissionPolicy::kBlock;
  if (name == "reject") return AdmissionPolicy::kReject;
  if (name == "shed") return AdmissionPolicy::kShed;
  throw std::invalid_argument("unknown admission policy '" + name +
                              "' (have: block, reject, shed)");
}

namespace {

std::exception_ptr service_error(ServiceError::Code code,
                                 const std::string& what) {
  return std::make_exception_ptr(ServiceError(code, what));
}

}  // namespace

void SampleBackend::append_stats_json(util::JsonWriter&) const {}

/// Fail shed victims (already removed from the queue, promises moved into
/// the caller's vector) with their promised kShed outcome. Called without
/// the service lock — victims are locals by then.
template <typename Victims>
static void fail_victims(Victims& victims) {
  for (auto& victim : victims) {
    victim.promise.set_exception(service_error(
        ServiceError::Code::kShed,
        "sample service: shed while queued (priority " +
            std::to_string(victim.job.priority) +
            " displaced by higher-priority work)"));
  }
}

SampleService::SampleService(ModelHost& host, ServiceConfig cfg)
    : host_(host), cfg_(cfg), latency_(cfg.latency_window) {
  if (cfg_.chunk_rows == 0) {
    throw std::invalid_argument("sample service: chunk_rows must be positive");
  }
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  // latency_window == 0 is clamped to 1 by LatencyWindow itself.
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

SampleService::~SampleService() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();  // blocked submitters fail out, not hang
  if (dispatcher_.joinable()) dispatcher_.join();
  // A submitter parked on backpressure woke above, but destroying the
  // members while it is still between the wake-up and its throw would be
  // a use-after-free on mutex_/cv_space_. Wait until every such waiter
  // has left submit_job (each decrements the count and notifies, all
  // under the lock, before unwinding).
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return submit_waiters_ == 0; });
}

bool SampleService::over_bounds_locked(std::size_t rows) const {
  // An empty queue always admits — even a single job bigger than
  // max_queued_rows — so no job is unserveable by configuration.
  if (queue_.empty()) return false;
  if (cfg_.max_queue_depth != 0 && queue_.size() >= cfg_.max_queue_depth) {
    return true;
  }
  return cfg_.max_queued_rows != 0 &&
         queued_rows_ + rows > cfg_.max_queued_rows;
}

Submitted SampleService::submit_job(SampleJob job) {
  Pending pending;
  pending.job = std::move(job);
  pending.cancel_flag = std::make_shared<std::atomic<bool>>(false);
  Submitted out;
  out.future = pending.promise.get_future();
  std::vector<Pending> victims;  // shed-policy evictions, failed post-unlock
  {
    std::unique_lock lock(mutex_);
    if (stop_) {
      throw std::logic_error("sample service: submit after shutdown");
    }
    if (over_bounds_locked(pending.job.rows)) {
      switch (cfg_.admission) {
        case AdmissionPolicy::kBlock: {
          ++blocked_;
          ++submit_waiters_;
          // The id is assigned and the cancel flag published in live_
          // *before* parking, so cancel() can reach a submitter that is
          // still waiting for queue space.
          pending.seq = seq_++;
          out.job_id = pending.seq;
          live_.emplace(pending.seq, pending.cancel_flag);
          cv_space_.wait(lock, [&] {
            return stop_ ||
                   pending.cancel_flag->load(std::memory_order_relaxed) ||
                   !over_bounds_locked(pending.job.rows);
          });
          --submit_waiters_;
          if (stop_) {
            // The destructor may be waiting for this thread to leave.
            live_.erase(pending.seq);
            cv_idle_.notify_all();
            throw std::logic_error("sample service: submit after shutdown");
          }
          if (pending.cancel_flag->load(std::memory_order_relaxed)) {
            // Cancelled while blocked at admission: the job resolves with
            // kCancelled on its future — it never hangs and is never
            // misfiled as an overload outcome. It was admitted as far as
            // the caller can tell (it has an id), so it counts as
            // submitted + cancelled, keeping the outcome partition intact.
            live_.erase(pending.seq);
            ++submitted_;
            ++cancelled_;
            lock.unlock();
            cv_idle_.notify_all();
            pending.promise.set_exception(service_error(
                ServiceError::Code::kCancelled,
                "sample service: job cancelled while blocked at admission"));
            return out;
          }
          break;
        }
        case AdmissionPolicy::kReject: {
          ++rejected_;
          throw ServiceError(
              ServiceError::Code::kOverloaded,
              "sample service: admission queue full (" +
                  std::to_string(queue_.size()) + " jobs, " +
                  std::to_string(queued_rows_) + " rows queued)");
        }
        case AdmissionPolicy::kShed: {
          while (over_bounds_locked(pending.job.rows)) {
            // Weakest queued job: lowest priority, ties drop the newest.
            auto weakest = queue_.begin();
            for (auto it = std::next(queue_.begin()); it != queue_.end();
                 ++it) {
              if (it->job.priority < weakest->job.priority ||
                  (it->job.priority == weakest->job.priority &&
                   it->seq > weakest->seq)) {
                weakest = it;
              }
            }
            if (weakest->job.priority >= pending.job.priority) {
              // The incoming job is the weakest (ties shed the newcomer):
              // an admission refusal, counted like a rejection — `shed_`
              // stays the count of *admitted* jobs dropped, preserving
              // the ServiceStats outcome partition. Victims already
              // pulled from the queue in earlier iterations must still
              // get their promised kShed outcome — unwinding past them
              // would break their promises.
              ++rejected_;
              lock.unlock();
              fail_victims(victims);
              throw ServiceError(
                  ServiceError::Code::kShed,
                  "sample service: shed at admission (queue full of >= "
                  "priority work)");
            }
            queued_rows_ -= weakest->job.rows;
            live_.erase(weakest->seq);
            ++shed_;
            victims.push_back(std::move(*weakest));
            queue_.erase(weakest);
          }
          break;
        }
      }
    }
    if (pending.seq == 0) {  // not pre-assigned by the kBlock branch
      pending.seq = seq_++;
      out.job_id = pending.seq;
      live_.emplace(pending.seq, pending.cancel_flag);
    }
    pending.submitted_at = clock_.seconds();
    pending.deadline_at = pending.job.deadline_ms > 0.0
                              ? pending.submitted_at +
                                    pending.job.deadline_ms * 1e-3
                              : INFINITY;
    ++submitted_;
    queued_rows_ += pending.job.rows;
    queue_.push_back(std::move(pending));
    // Notified under the lock: after releasing it this thread touches no
    // service member, so a destructor that has drained the blocked
    // waiters cannot race a submitter's tail (victims are locals).
    cv_work_.notify_one();
  }
  fail_victims(victims);
  return out;
}

bool SampleService::cancel(std::uint64_t job_id) {
  Pending removed;
  bool was_queued = false;
  {
    const std::lock_guard lock(mutex_);
    const auto it = live_.find(job_id);
    if (it == live_.end()) return false;  // unknown or already resolved
    // In-flight jobs observe the flag at their next chunk boundary; a
    // still-queued job is pulled out right here so it never dispatches.
    it->second->store(true, std::memory_order_relaxed);
    for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
      if (qit->seq == job_id) {
        removed = std::move(*qit);
        queue_.erase(qit);
        was_queued = true;
        queued_rows_ -= removed.job.rows;
        live_.erase(job_id);
        ++cancelled_;
        break;
      }
    }
  }
  if (was_queued) {
    cv_space_.notify_all();
    cv_idle_.notify_all();
    removed.promise.set_exception(service_error(
        ServiceError::Code::kCancelled,
        "sample service: job cancelled while queued"));
  } else {
    // Not in the queue: in flight (chunk workers poll the flag), or a
    // submitter parked on backpressure — wake those so they re-check it.
    cv_space_.notify_all();
  }
  return true;
}

void SampleService::drain() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void SampleService::pause() {
  const std::lock_guard lock(mutex_);
  paused_ = true;
}

void SampleService::resume() {
  {
    const std::lock_guard lock(mutex_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

void SampleService::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    {
      std::unique_lock lock(mutex_);
      // stop_ overrides paused_: shutdown drains whatever is queued.
      cv_work_.wait(lock, [this] {
        return stop_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      // Expire queued jobs whose deadline already passed before they cost
      // batch capacity. (Mid-flight expiry is the chunk-boundary check.)
      const double now = clock_.seconds();
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (now > it->deadline_at) {
          queued_rows_ -= it->job.rows;
          live_.erase(it->seq);
          ++deadline_missed_;
          expired.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      if (!queue_.empty()) {
        batch = pop_batch_locked();
        in_flight_ += batch.size();
        ++batches_;
        batched_jobs_ += batch.size();
      }
    }
    // Queue space freed the moment jobs left the queue — wake blocked
    // submitters *before* the (long) batch execution, and wake drain()
    // in case expiry emptied the service.
    cv_space_.notify_all();
    if (!expired.empty()) {
      cv_idle_.notify_all();
      for (auto& pending : expired) {
        pending.promise.set_exception(service_error(
            ServiceError::Code::kDeadline,
            "sample service: deadline passed while queued"));
      }
    }
    if (!batch.empty()) {
      run_batch(std::move(batch));
      cv_idle_.notify_all();
    }
  }
}

std::vector<SampleService::Pending> SampleService::pop_batch_locked() {
  // Dispatch order: priority descending, then submission order. The head
  // job picks the batch's model; compatible queued jobs (same model key)
  // ride along, again in priority/submission order, up to max_batch.
  const auto before = [](const Pending& a, const Pending& b) {
    if (a.job.priority != b.job.priority) {
      return a.job.priority > b.job.priority;
    }
    return a.seq < b.seq;
  };
  std::size_t head = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    if (before(queue_[i], queue_[head])) head = i;
  }
  const std::string key = queue_[head].job.model_key;

  std::vector<std::size_t> picked;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].job.model_key == key) picked.push_back(i);
  }
  std::sort(picked.begin(), picked.end(), [&](std::size_t a, std::size_t b) {
    return before(queue_[a], queue_[b]);
  });
  if (picked.size() > cfg_.max_batch) picked.resize(cfg_.max_batch);

  std::vector<Pending> batch;
  batch.reserve(picked.size());
  for (const std::size_t i : picked) {
    queued_rows_ -= queue_[i].job.rows;
    batch.push_back(std::move(queue_[i]));
  }
  std::sort(picked.begin(), picked.end());
  for (auto it = picked.rbegin(); it != picked.rend(); ++it) {
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  return batch;
}

void SampleService::record_done_locked(const BatchItem& item,
                                       Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk: {
      ++completed_;
      rows_emitted_ += item.pending.job.rows;
      latency_.record((clock_.seconds() - item.pending.submitted_at) * 1e3);
      break;
    }
    case Outcome::kFailed: ++failed_; break;
    case Outcome::kCancelled: ++cancelled_; break;
    case Outcome::kDeadline: ++deadline_missed_; break;
  }
  live_.erase(item.pending.seq);
  --in_flight_;
}

void SampleService::run_batch(std::vector<Pending> batch) {
  const double dispatched_at = clock_.seconds();
  const std::uint64_t batch_index = batches_;  // written by dispatcher only
  // Copied, not referenced: the Pendings are moved into BatchItems below.
  const std::string key = batch.front().job.model_key;

  std::vector<BatchItem> items;
  items.reserve(batch.size());
  for (auto& pending : batch) {
    BatchItem item;
    item.chunk_rows = pending.job.chunk_rows == 0 ? cfg_.chunk_rows
                                                  : pending.job.chunk_rows;
    item.pending = std::move(pending);
    items.push_back(std::move(item));
  }

  // Per-item life state shared by the chunk workers: 0 = alive, else the
  // Outcome that killed it. vector<atomic> is constructed in place
  // (atomics are immovable) and never resized.
  constexpr int kAlive = 0;
  constexpr int kKilledCancel = 1;
  constexpr int kKilledDeadline = 2;
  std::vector<std::atomic<int>> state(items.size());
  std::atomic<std::size_t> dead{0};
  util::TaskGroup group;
  const auto mark_dead = [&](std::size_t i, int cause) {
    int expected = kAlive;
    if (state[i].compare_exchange_strong(expected, cause,
                                         std::memory_order_relaxed)) {
      // Once every job in the batch is dead there is nothing left worth
      // sampling — tell the workers to fall out of their chunk loops.
      if (dead.fetch_add(1, std::memory_order_relaxed) + 1 == items.size()) {
        group.request_stop();
      }
    }
  };
  const auto sweep_dead = [&] {
    const double now = clock_.seconds();
    for (std::size_t i = 0; i < items.size(); ++i) {
      const auto& pending = items[i].pending;
      if (pending.cancel_flag->load(std::memory_order_relaxed)) {
        mark_dead(i, kKilledCancel);
      } else if (now > pending.deadline_at) {
        mark_dead(i, kKilledDeadline);
      }
    }
  };

  // An execution failure (chunk-slot allocation, model acquire) fails the
  // batch — but an item already dead keeps its promised cancel/deadline
  // outcome instead of being misfiled as an execution error.
  const auto outcome_for = [&](std::size_t i) {
    const int cause = state[i].load(std::memory_order_relaxed);
    return cause == kKilledCancel     ? Outcome::kCancelled
           : cause == kKilledDeadline ? Outcome::kDeadline
                                      : Outcome::kFailed;
  };
  const auto death_error = [&](std::size_t i) {
    return state[i].load(std::memory_order_relaxed) == kKilledCancel
               ? service_error(ServiceError::Code::kCancelled,
                               "sample service: job cancelled mid-sampling")
               : service_error(
                     ServiceError::Code::kDeadline,
                     "sample service: deadline passed at a chunk boundary");
  };
  const auto fail_all = [&](std::exception_ptr error) {
    {
      const std::lock_guard lock(mutex_);
      for (std::size_t i = 0; i < items.size(); ++i) {
        record_done_locked(items[i], outcome_for(i));
      }
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
      items[i].pending.promise.set_exception(
          outcome_for(i) == Outcome::kFailed ? error : death_error(i));
    }
  };

  bool was_resident = false;
  std::shared_ptr<models::TabularGenerator> model;
  try {
    // Chunk-slot allocation happens inside the guarded region: an absurd
    // rows value must fail this batch's futures, not the dispatcher.
    for (auto& item : items) {
      item.chunks.resize((item.pending.job.rows + item.chunk_rows - 1) /
                         item.chunk_rows);
    }
    // Jobs cancelled or expired between pop and dispatch never sample; if
    // that is the whole batch, skip the model acquire outright.
    sweep_dead();
    if (dead.load(std::memory_order_relaxed) < items.size()) {
      was_resident = host_.resident(key);
      model = host_.acquire(key);

      // One flat chunk list across the whole batch: worker w owns chunks
      // w, w+T, w+2T, ... of the *batch*, so coalesced jobs share one set
      // of per-worker replicas instead of paying a clone per job. Chunk
      // seeds stay per-job (derive_chunk_seed(job.seed, chunk-within-job)),
      // which keeps every job's bytes independent of how it was batched.
      struct ChunkRef {
        std::size_t item;
        std::size_t chunk;
        std::size_t rows;
        std::uint64_t seed;
      };
      std::vector<ChunkRef> refs;
      for (std::size_t i = 0; i < items.size(); ++i) {
        const auto& job = items[i].pending.job;
        for (std::size_t c = 0; c < items[i].chunks.size(); ++c) {
          const std::size_t lo = c * items[i].chunk_rows;
          refs.push_back({i, c, std::min(items[i].chunk_rows, job.rows - lo),
                          models::derive_chunk_seed(job.seed, c)});
        }
      }

      auto& pool = util::ThreadPool::global();
      std::size_t threads = 0;  // 0 = whole pool until resolved below
      for (const auto& item : items) {
        const std::size_t want = item.pending.job.threads != 0
                                     ? item.pending.job.threads
                                     : cfg_.sample_threads;
        if (want == 0) {
          threads = pool.size();
          break;
        }
        threads = std::max(threads, want);
      }
      if (threads == 0) threads = pool.size();
      threads = std::min(threads, std::max<std::size_t>(refs.size(), 1));

      std::mutex progress_mutex;
      // The chunk boundary is where cancellation and deadlines bite: a
      // dead job's remaining chunks are skipped (its partial chunks are
      // simply dropped at assembly), and live jobs in the same batch are
      // untouched — that is the clean unwind of a partially-sampled batch.
      const auto run_chunk = [&](models::TabularGenerator& sampler,
                                 const ChunkRef& ref) {
        BatchItem& item = items[ref.item];
        if (state[ref.item].load(std::memory_order_relaxed) != kAlive) {
          return;
        }
        if (item.pending.cancel_flag->load(std::memory_order_relaxed)) {
          mark_dead(ref.item, kKilledCancel);
          return;
        }
        if (clock_.seconds() > item.pending.deadline_at) {
          mark_dead(ref.item, kKilledDeadline);
          return;
        }
        item.chunks[ref.chunk] = sampler.sample_chunk(ref.rows, ref.seed);
        if (item.pending.job.on_progress) {
          const std::lock_guard lock(progress_mutex);
          item.rows_done += ref.rows;
          item.pending.job.on_progress(item.rows_done,
                                       item.pending.job.rows);
        }
      };

      if (threads <= 1) {
        for (const auto& ref : refs) {
          if (group.stop_requested()) break;
          run_chunk(*model, ref);
        }
      } else {
        const bool share = model->concurrent_sampling();
        for (std::size_t w = 0; w < threads; ++w) {
          pool.submit(group, [&, w, share] {
            std::unique_ptr<models::TabularGenerator> replica;
            if (!share) replica = model->clone();
            models::TabularGenerator& sampler = share ? *model : *replica;
            for (std::size_t r = w; r < refs.size(); r += threads) {
              if (group.stop_requested()) break;
              run_chunk(sampler, refs[r]);
            }
          });
        }
        pool.wait(group);
      }
    }
  } catch (...) {
    fail_all(std::current_exception());
    return;
  }

  for (auto& item : items) {
    const std::size_t index = static_cast<std::size_t>(&item - items.data());
    const int cause = state[index].load(std::memory_order_relaxed);
    if (cause != kAlive) {
      {
        const std::lock_guard lock(mutex_);
        record_done_locked(item, outcome_for(index));
      }
      item.pending.promise.set_exception(death_error(index));
      continue;
    }
    try {
      SampleResult result;
      for (auto& chunk : item.chunks) {
        if (result.table.num_columns() == 0) {
          result.table = std::move(chunk);
        } else {
          result.table.append_table(chunk);
        }
      }
      result.model_key = key;
      result.queue_seconds = dispatched_at - item.pending.submitted_at;
      result.batch_jobs = items.size();
      result.batch_index = batch_index;
      result.cache_hit = was_resident;
      {
        const std::lock_guard lock(mutex_);
        record_done_locked(item, Outcome::kOk);
      }
      result.total_seconds = clock_.seconds() - item.pending.submitted_at;
      result.sample_seconds = result.total_seconds - result.queue_seconds;
      item.pending.promise.set_value(std::move(result));
    } catch (...) {
      // Assembly failure (e.g. allocation) fails this job's future; it
      // must never escape into the dispatcher thread.
      {
        const std::lock_guard lock(mutex_);
        record_done_locked(item, Outcome::kFailed);
      }
      item.pending.promise.set_exception(std::current_exception());
    }
  }
}

std::size_t SampleService::queue_depth() const {
  const std::lock_guard lock(mutex_);
  return queue_.size() + in_flight_;
}

std::vector<double> SampleService::latency_snapshot() const {
  const std::lock_guard lock(mutex_);
  return latency_.snapshot();
}

ServiceStats SampleService::stats() const {
  ServiceStats s;
  std::vector<double> window;
  {
    const std::lock_guard lock(mutex_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.rejected = rejected_;
    s.shed = shed_;
    s.cancelled = cancelled_;
    s.deadline_missed = deadline_missed_;
    s.blocked = blocked_;
    s.queue_depth = queue_.size() + in_flight_;
    s.queued_rows = queued_rows_;
    s.batches = batches_;
    s.mean_batch_jobs =
        batches_ == 0 ? 0.0
                      : static_cast<double>(batched_jobs_) /
                            static_cast<double>(batches_);
    s.uptime_seconds = clock_.seconds();
    s.rows_per_sec = s.uptime_seconds > 0.0
                         ? static_cast<double>(rows_emitted_) /
                               s.uptime_seconds
                         : 0.0;
    s.qps = s.uptime_seconds > 0.0
                ? static_cast<double>(completed_) / s.uptime_seconds
                : 0.0;
    window = latency_.snapshot();  // raw copy: the sort stays outside
  }                                // the lock (stats() is polled hot)
  std::sort(window.begin(), window.end());
  s.p50_latency_ms = LatencyWindow::percentile(window, 0.50);
  s.p95_latency_ms = LatencyWindow::percentile(window, 0.95);
  s.p99_latency_ms = LatencyWindow::percentile(window, 0.99);
  s.host = host_.stats();
  s.pool = util::ThreadPool::global().counters();
  return s;
}

// ---------------------------------------------------------- global stack --

namespace {
HostConfig pipeline_host_config() {
  // Touch the global pool before the host/service members construct, so
  // static destruction tears the service down while the pool still runs.
  (void)util::ThreadPool::global();
  HostConfig cfg;
  cfg.capacity = 64;  // pipelines pin their models; generous headroom
  return cfg;
}
}  // namespace

ServingStack::ServingStack() : host(pipeline_host_config()), service(host) {}

ServingStack& global_serving() {
  static ServingStack stack;
  return stack;
}

}  // namespace surro::serve
