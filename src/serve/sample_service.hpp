#pragma once
// SampleService: the asynchronous, batched consumption API of the serving
// layer. Callers submit SampleJobs (model key, rows, seed, priority) and get
// futures back; a dispatcher thread coalesces compatible jobs — same model
// key — into batches, acquires the model once per batch from the ModelHost,
// and fans every batch's chunks out over util::ThreadPool with per-worker
// sampling replicas. ServiceStats reports qps, p50/p95 latency, rows/sec,
// queue depth, batching effectiveness, and the host's cache hit rate.
//
// Determinism contract (inherited from TabularGenerator::sample_into and
// preserved end to end): a job's output bytes depend only on
// (model, rows, seed, chunk_rows). The chunk partition is computed per job
// — chunk c draws from models::derive_chunk_seed(seed, c) — so batching,
// client concurrency, worker count, priority order, and cache
// eviction/reload cycles never change what a given job returns.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/model_host.hpp"
#include "tabular/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace surro::serve {

struct ServiceConfig {
  /// Worker fan-out per batch (0 = every pool worker). Scheduling only:
  /// output bytes are identical for any value.
  std::size_t sample_threads = 0;
  /// Default chunk grain for jobs that leave SampleJob::chunk_rows at 0.
  /// Part of the determinism key — changing it changes the chunk partition.
  std::size_t chunk_rows = 4096;
  /// Maximum jobs coalesced into one batch.
  std::size_t max_batch = 8;
  /// Completed-job latencies retained for the percentile window.
  std::size_t latency_window = 4096;
};

/// One sampling request. Higher `priority` dispatches first; ties dispatch
/// in submission order.
struct SampleJob {
  std::string model_key;
  std::size_t rows = 0;
  std::uint64_t seed = 1234;
  /// 0 = ServiceConfig::chunk_rows. Determines the chunk partition (and
  /// therefore the output bytes), exactly like SampleRequest::chunk_rows.
  std::size_t chunk_rows = 0;
  /// 0 = ServiceConfig::sample_threads. Scheduling only. When jobs with
  /// different values share a batch, the largest request wins.
  std::size_t threads = 0;
  int priority = 0;
  /// Called after each completed chunk with (rows_done, rows_total) for
  /// this job. Invoked under a lock from a worker thread — keep it cheap.
  std::function<void(std::size_t, std::size_t)> on_progress;
};

/// What a fulfilled future carries back.
struct SampleResult {
  tabular::Table table;
  std::string model_key;
  double queue_seconds = 0.0;   ///< submit → batch dispatch
  double sample_seconds = 0.0;  ///< batch dispatch → job assembled
  double total_seconds = 0.0;   ///< submit → job assembled
  std::size_t batch_jobs = 0;   ///< jobs coalesced into this job's batch
  std::uint64_t batch_index = 0;  ///< dispatch sequence number of the batch
  bool cache_hit = false;       ///< model was resident when dispatched
};

/// Rolled-up service health, cheap enough to poll every request.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< futures fulfilled with a table
  std::uint64_t failed = 0;      ///< futures fulfilled with an exception
  std::size_t queue_depth = 0;   ///< submitted jobs not yet finished
  std::uint64_t batches = 0;     ///< batches dispatched
  double mean_batch_jobs = 0.0;  ///< completed jobs per batch
  double uptime_seconds = 0.0;
  double qps = 0.0;              ///< completed / uptime
  double rows_per_sec = 0.0;     ///< rows emitted / uptime
  /// Percentiles over the latency window; +infinity when no job completed
  /// yet (degrades to null in the JSON artifact).
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  HostStats host;                ///< cache hit rate & friends
  util::PoolCounters pool;       ///< thread-pool load underneath the service
};

class SampleService {
 public:
  /// The host must outlive the service.
  explicit SampleService(ModelHost& host, ServiceConfig cfg = {});
  /// Drains already-queued jobs, then stops the dispatcher.
  ~SampleService();

  SampleService(const SampleService&) = delete;
  SampleService& operator=(const SampleService&) = delete;

  /// Enqueue a job. Execution errors (unknown model key, archive load
  /// failure) surface on the future; submitting after shutdown throws
  /// std::logic_error immediately. A rows == 0 job is valid and resolves
  /// to an empty table (mirroring sample_into, which leaves its output
  /// untouched).
  [[nodiscard]] std::future<SampleResult> submit(SampleJob job);

  /// Blocking convenience: submit + wait, returning just the table.
  [[nodiscard]] tabular::Table sample(SampleJob job);

  /// Block until every submitted job has been fulfilled.
  void drain();

  /// Hold/resume dispatching. While paused, submit() still queues; used to
  /// stage a burst so batching and priority order are deterministic (tests,
  /// replay warm-up).
  void pause();
  void resume();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] ModelHost& host() noexcept { return host_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

 private:
  struct Pending {
    SampleJob job;
    std::promise<SampleResult> promise;
    std::uint64_t seq = 0;
    double submitted_at = 0.0;  // seconds on the service clock
  };
  /// One job's slice of a dispatched batch.
  struct BatchItem {
    Pending pending;
    std::size_t chunk_rows = 0;           // resolved grain
    std::vector<tabular::Table> chunks;   // per-chunk outputs, in order
    std::size_t rows_done = 0;            // progress accounting
  };

  void dispatcher_loop();
  /// Pop the next batch (caller holds the lock): the highest-priority job
  /// plus up to max_batch-1 more jobs with the same model key.
  [[nodiscard]] std::vector<Pending> pop_batch_locked();
  void run_batch(std::vector<Pending> batch);
  void record_done_locked(const BatchItem& item, bool ok);

  ModelHost& host_;
  ServiceConfig cfg_;
  util::Stopwatch clock_;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;  // dispatcher: job queued / stop
  std::condition_variable cv_idle_;  // drain(): a job finished
  std::deque<Pending> queue_;
  std::size_t in_flight_ = 0;  // jobs popped but not yet fulfilled
  bool paused_ = false;
  bool stop_ = false;

  // Tallies (guarded by mutex_).
  std::uint64_t seq_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_jobs_ = 0;
  std::uint64_t rows_emitted_ = 0;
  std::vector<double> latency_ms_;  // ring buffer, cfg_.latency_window cap
  std::size_t latency_next_ = 0;

  std::thread dispatcher_;  // last member: starts after everything exists
};

/// The process-wide serving stack: one ModelHost + one SampleService over
/// the global ThreadPool, shared by every core::SurrogatePipeline (which
/// registers its fitted model here and samples through the service).
/// Constructed lazily on first use; the global ThreadPool is constructed
/// first so it outlives the service's dispatcher.
struct ServingStack {
  ServingStack();
  ModelHost host;
  SampleService service;
};
[[nodiscard]] ServingStack& global_serving();

}  // namespace surro::serve
