#pragma once
// SampleService: the asynchronous, batched consumption API of the serving
// layer. Callers submit SampleJobs (model key, rows, seed, priority) and get
// futures back; a dispatcher thread coalesces compatible jobs — same model
// key — into batches, acquires the model once per batch from the ModelHost,
// and fans every batch's chunks out over util::ThreadPool with per-worker
// sampling replicas. ServiceStats reports qps, p50/p95 latency, rows/sec,
// queue depth, batching effectiveness, and the host's cache hit rate.
//
// Determinism contract (inherited from TabularGenerator::sample_into and
// preserved end to end): a job's output bytes depend only on
// (model, rows, seed, chunk_rows). The chunk partition is computed per job
// — chunk c draws from models::derive_chunk_seed(seed, c) — so batching,
// client concurrency, worker count, priority order, and cache
// eviction/reload cycles never change what a given job returns.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/latency_window.hpp"
#include "serve/model_host.hpp"
#include "tabular/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace surro::util {
class JsonWriter;
}

namespace surro::serve {

/// Typed failure surfaced by the overload-control layer: thrown
/// synchronously from submit() on admission rejection, or set on a job's
/// future when the job was shed, missed its deadline, or was cancelled.
/// Execution errors (unknown key, archive load failure) keep their original
/// exception types — ServiceError is strictly "the service chose not to
/// finish this job", never "the job broke".
class ServiceError : public std::runtime_error {
 public:
  enum class Code {
    kOverloaded,  ///< admission rejected the submit (reject policy)
    kShed,        ///< queued job dropped to admit higher-priority work
    kDeadline,    ///< deadline passed while queued or at a chunk boundary
    kCancelled,   ///< cancelled via SampleService::cancel()
  };
  ServiceError(Code code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] Code code() const noexcept { return code_; }

 private:
  Code code_;
};

/// What submit() does when the admission queue is at its configured bound.
enum class AdmissionPolicy {
  /// Block the submitting thread until space frees (backpressure). The
  /// default: no job is ever dropped, clients are simply slowed to the
  /// service's pace.
  kBlock,
  /// Fail fast: submit() throws ServiceError{kOverloaded} and the job
  /// never enters the queue.
  kReject,
  /// Admit the new job by dropping the lowest-priority queued job (ties
  /// drop the newest). When the *incoming* job is the weakest, it is the
  /// one refused — submit() throws ServiceError{kShed}, counted under
  /// `rejected` (it was never admitted). Shed *queued* jobs fail their
  /// futures with ServiceError{kShed} and count under `shed`.
  kShed,
};

[[nodiscard]] const char* admission_policy_name(
    AdmissionPolicy policy) noexcept;
/// Parse "block" | "reject" | "shed"; throws std::invalid_argument.
[[nodiscard]] AdmissionPolicy parse_admission_policy(const std::string& name);

struct ServiceConfig {
  /// Worker fan-out per batch (0 = every pool worker). Scheduling only:
  /// output bytes are identical for any value.
  std::size_t sample_threads = 0;
  /// Default chunk grain for jobs that leave SampleJob::chunk_rows at 0.
  /// Part of the determinism key — changing it changes the chunk partition.
  std::size_t chunk_rows = 4096;
  /// Maximum jobs coalesced into one batch.
  std::size_t max_batch = 8;
  /// Completed-job latencies retained for the percentile window.
  std::size_t latency_window = 4096;
  /// Admission control. Bounds apply to the *queued* backlog (jobs not yet
  /// dispatched); 0 = unbounded, which preserves the pre-overload-control
  /// behavior. An empty queue always admits — even a job larger than
  /// max_queued_rows — so no job is unserveable by configuration.
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  std::size_t max_queue_depth = 0;  ///< max queued jobs (0 = unbounded)
  std::size_t max_queued_rows = 0;  ///< max queued rows (0 = unbounded)
};

/// One sampling request. Higher `priority` dispatches first; ties dispatch
/// in submission order.
struct SampleJob {
  std::string model_key;
  std::size_t rows = 0;
  std::uint64_t seed = 1234;
  /// 0 = ServiceConfig::chunk_rows. Determines the chunk partition (and
  /// therefore the output bytes), exactly like SampleRequest::chunk_rows.
  std::size_t chunk_rows = 0;
  /// 0 = ServiceConfig::sample_threads. Scheduling only. When jobs with
  /// different values share a batch, the largest request wins.
  std::size_t threads = 0;
  int priority = 0;
  /// Soft deadline in milliseconds from submission (0 = none). Checked
  /// when the job is dispatched and again at every chunk boundary: a job
  /// whose deadline passes while queued or mid-sampling fails its future
  /// with ServiceError{kDeadline} and its partial chunks are discarded. A
  /// job whose final chunk finishes before the check is delivered — the
  /// deadline bounds *work spent past the limit*, not delivery time.
  double deadline_ms = 0.0;
  /// Called after each completed chunk with (rows_done, rows_total) for
  /// this job. Invoked under a lock from a worker thread — keep it cheap.
  std::function<void(std::size_t, std::size_t)> on_progress;
};

/// What a fulfilled future carries back.
struct SampleResult {
  tabular::Table table;
  std::string model_key;
  double queue_seconds = 0.0;   ///< submit → batch dispatch
  double sample_seconds = 0.0;  ///< batch dispatch → job assembled
  double total_seconds = 0.0;   ///< submit → job assembled
  std::size_t batch_jobs = 0;   ///< jobs coalesced into this job's batch
  std::uint64_t batch_index = 0;  ///< dispatch sequence number of the batch
  bool cache_hit = false;       ///< model was resident when dispatched
};

/// Rolled-up service health, cheap enough to poll every request.
/// Every admitted job resolves to exactly one of completed / failed /
/// shed / cancelled / deadline_missed; `rejected` counts submits the
/// admission gate refused outright (those never increment `submitted`).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< futures fulfilled with a table
  std::uint64_t failed = 0;      ///< futures failed with an execution error
  std::size_t queue_depth = 0;   ///< submitted jobs not yet finished
  std::size_t queued_rows = 0;   ///< rows in not-yet-dispatched jobs
  std::uint64_t batches = 0;     ///< batches dispatched
  double mean_batch_jobs = 0.0;  ///< completed jobs per batch
  double uptime_seconds = 0.0;
  double qps = 0.0;              ///< completed / uptime
  double rows_per_sec = 0.0;     ///< rows emitted / uptime
  // Overload-control outcomes.
  std::uint64_t rejected = 0;  ///< submits refused at admission (reject
                               ///< policy, or an incoming job the shed
                               ///< policy declined to admit)
  std::uint64_t shed = 0;      ///< admitted jobs dropped by the shed policy
  std::uint64_t cancelled = 0;        ///< jobs cancelled via cancel()
  std::uint64_t deadline_missed = 0;  ///< jobs that blew their deadline
  std::uint64_t blocked = 0;          ///< submits that had to wait for space
  /// Percentiles over the latency window; +infinity when no job completed
  /// yet (degrades to null in the JSON artifact).
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  HostStats host;                ///< cache hit rate & friends
  util::PoolCounters pool;       ///< thread-pool load underneath the service
};

/// A submitted job's handle: the future plus the id cancel() takes.
struct Submitted {
  std::uint64_t job_id = 0;
  std::future<SampleResult> future;
};

/// The abstract submission surface of the serving tier. SampleService is
/// the single-worker implementation; ShardPool routes over many of them.
/// Everything above this layer — the REST API, the replay/soak harnesses,
/// the CLI — programs against SampleBackend, so a sharded tier drops in
/// wherever a single service used to sit. The determinism contract is part
/// of the interface: a job's bytes depend only on
/// (model, rows, seed, chunk_rows), never on which backend ran it.
class SampleBackend {
 public:
  virtual ~SampleBackend() = default;

  /// Enqueue a job through the admission gate. Execution errors (unknown
  /// model key, archive load failure) surface on the future; submitting
  /// after shutdown throws std::logic_error immediately. When the queue is
  /// at its configured bound, the admission policy decides: block (wait
  /// for space), reject (throw ServiceError{kOverloaded}), or shed (drop
  /// the lowest-priority queued job; ServiceError{kShed} if that is this
  /// one). A rows == 0 job is valid and resolves to an empty table
  /// (mirroring sample_into, which leaves its output untouched).
  [[nodiscard]] virtual Submitted submit_job(SampleJob job) = 0;

  /// Cooperatively cancel a job by id. A still-queued job is removed
  /// immediately; an in-flight job stops at its next chunk boundary and
  /// its partial chunks are discarded. Either way its future fails with
  /// ServiceError{kCancelled}. Returns false when the id is unknown or the
  /// job already resolved (cancellation raced completion — the future then
  /// holds whatever outcome won).
  virtual bool cancel(std::uint64_t job_id) = 0;

  /// Block until every submitted job has been fulfilled.
  virtual void drain() = 0;

  [[nodiscard]] virtual ServiceStats stats() const = 0;
  /// Cheap depth poll — no percentile sort (see SampleService::queue_depth).
  [[nodiscard]] virtual std::size_t queue_depth() const = 0;
  /// The effective service configuration (per-shard config for a pool).
  [[nodiscard]] virtual const ServiceConfig& config() const noexcept = 0;

  /// Model registry surface (what /v1/models renders).
  [[nodiscard]] virtual std::vector<std::string> model_keys() const = 0;
  [[nodiscard]] virtual bool has_model(const std::string& key) const = 0;
  /// True when at least one replica of `key` is resident in memory.
  [[nodiscard]] virtual bool model_resident(const std::string& key) const = 0;

  /// Append backend-specific keys to a stats JSON object (the REST layer
  /// calls this inside its /v1/stats object). Default: nothing.
  virtual void append_stats_json(util::JsonWriter& w) const;

  /// submit_job without the cancellation handle.
  [[nodiscard]] std::future<SampleResult> submit(SampleJob job) {
    return submit_job(std::move(job)).future;
  }

  /// Blocking convenience: submit + wait, returning just the table.
  [[nodiscard]] tabular::Table sample(SampleJob job) {
    return submit(std::move(job)).get().table;
  }
};

class SampleService : public SampleBackend {
 public:
  /// The host must outlive the service.
  explicit SampleService(ModelHost& host, ServiceConfig cfg = {});
  /// Drains already-queued jobs, then stops the dispatcher.
  ~SampleService() override;

  SampleService(const SampleService&) = delete;
  SampleService& operator=(const SampleService&) = delete;

  /// Kept as a nested alias — call sites predating SampleBackend spell
  /// this SampleService::Submitted.
  using Submitted = serve::Submitted;

  [[nodiscard]] Submitted submit_job(SampleJob job) override;
  bool cancel(std::uint64_t job_id) override;
  void drain() override;

  /// Hold/resume dispatching. While paused, submit() still queues; used to
  /// stage a burst so batching and priority order are deterministic (tests,
  /// replay warm-up).
  void pause();
  void resume();

  [[nodiscard]] ServiceStats stats() const override;
  /// Just queue_.size() + in-flight jobs — for hot pollers (the soak
  /// queue-depth monitor) that must not pay stats()'s percentile sort.
  [[nodiscard]] std::size_t queue_depth() const override;
  [[nodiscard]] ModelHost& host() noexcept { return host_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept override {
    return cfg_;
  }
  [[nodiscard]] std::vector<std::string> model_keys() const override {
    return host_.keys();
  }
  [[nodiscard]] bool has_model(const std::string& key) const override {
    return host_.contains(key);
  }
  [[nodiscard]] bool model_resident(const std::string& key) const override {
    return host_.resident(key);
  }
  /// Unsorted copy of the completed-latency window, so an aggregator (the
  /// shard pool) can merge windows before computing percentiles.
  [[nodiscard]] std::vector<double> latency_snapshot() const;

 private:
  struct Pending {
    SampleJob job;
    std::promise<SampleResult> promise;
    std::uint64_t seq = 0;      // doubles as the public job id
    double submitted_at = 0.0;  // seconds on the service clock
    double deadline_at = 0.0;   // service-clock seconds; +inf = none
    /// Set by cancel(); chunk workers poll it at chunk boundaries.
    std::shared_ptr<std::atomic<bool>> cancel_flag;
  };
  /// One job's slice of a dispatched batch.
  struct BatchItem {
    Pending pending;
    std::size_t chunk_rows = 0;           // resolved grain
    std::vector<tabular::Table> chunks;   // per-chunk outputs, in order
    std::size_t rows_done = 0;            // progress accounting
  };
  /// How an admitted job resolved (record_done_locked bookkeeping).
  enum class Outcome { kOk, kFailed, kCancelled, kDeadline };

  void dispatcher_loop();
  /// Pop the next batch (caller holds the lock): the highest-priority job
  /// plus up to max_batch-1 more jobs with the same model key.
  [[nodiscard]] std::vector<Pending> pop_batch_locked();
  void run_batch(std::vector<Pending> batch);
  void record_done_locked(const BatchItem& item, Outcome outcome);
  /// True when the queued backlog is at a configured bound for a job of
  /// `rows` more rows (caller holds the lock; empty queue always admits).
  [[nodiscard]] bool over_bounds_locked(std::size_t rows) const;

  ModelHost& host_;
  ServiceConfig cfg_;
  util::Stopwatch clock_;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;   // dispatcher: job queued / stop
  std::condition_variable cv_idle_;   // drain(): a job finished
  std::condition_variable cv_space_;  // blocked submit(): queue shrank
  std::deque<Pending> queue_;
  std::size_t queued_rows_ = 0;  // rows in queue_ (admission accounting)
  std::size_t in_flight_ = 0;  // jobs popped but not yet fulfilled
  std::size_t submit_waiters_ = 0;  // submits parked on backpressure
  bool paused_ = false;
  bool stop_ = false;
  /// Cancel flags of every unresolved job (queued or in flight), by id;
  /// entries are erased when the job resolves.
  std::map<std::uint64_t, std::shared_ptr<std::atomic<bool>>> live_;

  // Tallies (guarded by mutex_).
  std::uint64_t seq_ = 1;  // job ids start at 1 so 0 can be a sentinel
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t deadline_missed_ = 0;
  std::uint64_t blocked_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_jobs_ = 0;
  std::uint64_t rows_emitted_ = 0;
  LatencyWindow latency_;

  std::thread dispatcher_;  // last member: starts after everything exists
};

/// The process-wide serving stack: one ModelHost + one SampleService over
/// the global ThreadPool, shared by every core::SurrogatePipeline (which
/// registers its fitted model here and samples through the service).
/// Constructed lazily on first use; the global ThreadPool is constructed
/// first so it outlives the service's dispatcher.
struct ServingStack {
  ServingStack();
  ModelHost host;
  SampleService service;
};
[[nodiscard]] ServingStack& global_serving();

}  // namespace surro::serve
