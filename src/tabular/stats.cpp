#include "tabular/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "util/mathx.hpp"

namespace surro::tabular {

NumericalSummary summarize_numerical(const Table& table, std::size_t col) {
  NumericalSummary s;
  s.name = table.schema().column(col).name;
  const auto data = table.numerical(col);
  s.count = data.size();
  if (data.empty()) return s;

  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = util::mean(data);
  s.stddev = util::stddev(data);
  s.p50 = util::quantile_sorted(sorted, 0.50);
  s.p95 = util::quantile_sorted(sorted, 0.95);
  s.num_unique = 1;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] != sorted[i - 1]) ++s.num_unique;
  }
  return s;
}

CategoricalSummary summarize_categorical(const Table& table, std::size_t col,
                                         std::size_t top_k) {
  CategoricalSummary s;
  s.name = table.schema().column(col).name;
  const auto codes = table.categorical(col);
  const auto& vocab = table.vocabulary(col);
  s.count = codes.size();

  std::vector<std::uint64_t> counts(vocab.size(), 0);
  for (const std::int32_t c : codes) counts[static_cast<std::size_t>(c)]++;
  s.cardinality = 0;
  for (const std::uint64_t c : counts) {
    if (c > 0) ++s.cardinality;
  }

  std::vector<std::size_t> order(vocab.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (counts[a] != counts[b]) return counts[a] > counts[b];
    return vocab[a] < vocab[b];
  });
  for (std::size_t i = 0; i < std::min(top_k, order.size()); ++i) {
    if (counts[order[i]] == 0) break;
    s.top_counts.emplace_back(vocab[order[i]], counts[order[i]]);
  }
  return s;
}

std::vector<double> category_frequencies(const Table& table,
                                         std::size_t col) {
  const auto codes = table.categorical(col);
  std::vector<double> freq(table.cardinality(col), 0.0);
  if (codes.empty()) return freq;
  for (const std::int32_t c : codes) freq[static_cast<std::size_t>(c)] += 1.0;
  for (double& f : freq) f /= static_cast<double>(codes.size());
  return freq;
}

std::vector<std::string> profile_lines(const Table& table) {
  std::vector<std::string> lines;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-16s %-12s %10s %14s", "feature", "kind",
                "# unique", "range/top");
  lines.emplace_back(buf);
  const auto& schema = table.schema();
  for (std::size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).kind == ColumnKind::kNumerical) {
      const auto s = summarize_numerical(table, c);
      std::snprintf(buf, sizeof(buf), "%-16s %-12s %10zu [%.4g, %.4g]",
                    s.name.c_str(), "numerical", s.num_unique, s.min, s.max);
    } else {
      const auto s = summarize_categorical(table, c, 1);
      const std::string top =
          s.top_counts.empty() ? "-" : s.top_counts.front().first;
      std::snprintf(buf, sizeof(buf), "%-16s %-12s %10zu top=%s",
                    s.name.c_str(), "categorical", s.cardinality, top.c_str());
    }
    lines.emplace_back(buf);
  }
  return lines;
}

}  // namespace surro::tabular
