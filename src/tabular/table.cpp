#include "tabular/table.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace surro::tabular {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  const std::size_t n = schema_.num_columns();
  slot_map_.resize(n);
  kinds_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    kinds_[i] = schema_.column(i).kind;
    if (kinds_[i] == ColumnKind::kNumerical) {
      slot_map_[i] = num_cols_.size();
      num_cols_.emplace_back();
    } else {
      slot_map_[i] = cat_cols_.size();
      cat_cols_.emplace_back();
      vocabs_.emplace_back();
    }
  }
}

std::size_t Table::slot_of(std::size_t col, ColumnKind kind) const {
  if (col >= kinds_.size()) {
    throw std::out_of_range("table: column index out of range");
  }
  if (kinds_[col] != kind) {
    throw std::invalid_argument("table: column '" + schema_.column(col).name +
                                "' has the wrong kind for this access");
  }
  return slot_map_[col];
}

std::span<const double> Table::numerical(std::size_t col) const {
  return num_cols_[slot_of(col, ColumnKind::kNumerical)];
}
std::span<double> Table::numerical_mut(std::size_t col) {
  return num_cols_[slot_of(col, ColumnKind::kNumerical)];
}
std::span<const std::int32_t> Table::categorical(std::size_t col) const {
  return cat_cols_[slot_of(col, ColumnKind::kCategorical)];
}
std::span<std::int32_t> Table::categorical_mut(std::size_t col) {
  return cat_cols_[slot_of(col, ColumnKind::kCategorical)];
}
const std::vector<std::string>& Table::vocabulary(std::size_t col) const {
  return vocabs_[slot_of(col, ColumnKind::kCategorical)];
}
std::size_t Table::cardinality(std::size_t col) const {
  return vocabulary(col).size();
}

std::optional<std::int32_t> Table::code_of(std::size_t col,
                                           const std::string& label) const {
  const auto& vocab = vocabs_[slot_of(col, ColumnKind::kCategorical)];
  for (std::size_t i = 0; i < vocab.size(); ++i) {
    if (vocab[i] == label) return static_cast<std::int32_t>(i);
  }
  return std::nullopt;
}

std::int32_t Table::intern(std::size_t col, const std::string& label) {
  auto& vocab = vocabs_[slot_of(col, ColumnKind::kCategorical)];
  for (std::size_t i = 0; i < vocab.size(); ++i) {
    if (vocab[i] == label) return static_cast<std::int32_t>(i);
  }
  vocab.push_back(label);
  return static_cast<std::int32_t>(vocab.size() - 1);
}

Table::RowBuilder::RowBuilder(Table& t) : table_(&t) {
  num_.assign(t.num_cols_.size(), 0.0);
  cat_.assign(t.cat_cols_.size(), 0);
  filled_.assign(t.schema_.num_columns(), false);
}

Table::RowBuilder& Table::RowBuilder::set(std::size_t col, double v) {
  num_[table_->slot_of(col, ColumnKind::kNumerical)] = v;
  filled_[col] = true;
  return *this;
}

Table::RowBuilder& Table::RowBuilder::set(std::size_t col,
                                          const std::string& label) {
  cat_[table_->slot_of(col, ColumnKind::kCategorical)] =
      table_->intern(col, label);
  filled_[col] = true;
  return *this;
}

Table::RowBuilder& Table::RowBuilder::set_code(std::size_t col,
                                               std::int32_t code) {
  const std::size_t slot = table_->slot_of(col, ColumnKind::kCategorical);
  if (code < 0 ||
      static_cast<std::size_t>(code) >= table_->vocabs_[slot].size()) {
    throw std::out_of_range("table: categorical code out of vocabulary");
  }
  cat_[slot] = code;
  filled_[col] = true;
  return *this;
}

void Table::append_row(const RowBuilder& row) {
  if (row.table_ != this) {
    throw std::invalid_argument("table: row built for a different table");
  }
  for (std::size_t c = 0; c < row.filled_.size(); ++c) {
    if (!row.filled_[c]) {
      throw std::invalid_argument("table: unset column '" +
                                  schema_.column(c).name + "' in row");
    }
  }
  for (std::size_t s = 0; s < num_cols_.size(); ++s) {
    num_cols_[s].push_back(row.num_[s]);
  }
  for (std::size_t s = 0; s < cat_cols_.size(); ++s) {
    cat_cols_[s].push_back(row.cat_[s]);
  }
  ++num_rows_;
}

void Table::append_row_values(std::span<const double> numerical_values,
                              std::span<const std::int32_t> categorical_codes) {
  if (numerical_values.size() != num_cols_.size() ||
      categorical_codes.size() != cat_cols_.size()) {
    throw std::invalid_argument("table: value-array arity mismatch");
  }
  for (std::size_t s = 0; s < num_cols_.size(); ++s) {
    num_cols_[s].push_back(numerical_values[s]);
  }
  for (std::size_t s = 0; s < cat_cols_.size(); ++s) {
    const std::int32_t code = categorical_codes[s];
    if (code < 0 || static_cast<std::size_t>(code) >= vocabs_[s].size()) {
      throw std::out_of_range("table: categorical code out of vocabulary");
    }
    cat_cols_[s].push_back(code);
  }
  ++num_rows_;
}

Table Table::select_rows(std::span<const std::size_t> indices) const {
  Table out(schema_);
  out.vocabs_ = vocabs_;
  for (auto& col : out.num_cols_) col.reserve(indices.size());
  for (auto& col : out.cat_cols_) col.reserve(indices.size());
  for (const std::size_t idx : indices) {
    if (idx >= num_rows_) throw std::out_of_range("table: row index");
    for (std::size_t s = 0; s < num_cols_.size(); ++s) {
      out.num_cols_[s].push_back(num_cols_[s][idx]);
    }
    for (std::size_t s = 0; s < cat_cols_.size(); ++s) {
      out.cat_cols_[s].push_back(cat_cols_[s][idx]);
    }
  }
  out.num_rows_ = indices.size();
  return out;
}

Table Table::head(std::size_t n) const {
  n = std::min(n, num_rows_);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return select_rows(idx);
}

void Table::append_table(const Table& other) {
  if (!(schema_ == other.schema_)) {
    throw std::invalid_argument("table: append with mismatched schema");
  }
  for (std::size_t s = 0; s < num_cols_.size(); ++s) {
    num_cols_[s].insert(num_cols_[s].end(), other.num_cols_[s].begin(),
                        other.num_cols_[s].end());
  }
  for (std::size_t s = 0; s < cat_cols_.size(); ++s) {
    // Merge vocabularies: build a remap from other's codes to ours.
    std::vector<std::int32_t> remap(other.vocabs_[s].size());
    for (std::size_t c = 0; c < other.vocabs_[s].size(); ++c) {
      const auto& label = other.vocabs_[s][c];
      std::int32_t code = -1;
      for (std::size_t i = 0; i < vocabs_[s].size(); ++i) {
        if (vocabs_[s][i] == label) {
          code = static_cast<std::int32_t>(i);
          break;
        }
      }
      if (code < 0) {
        vocabs_[s].push_back(label);
        code = static_cast<std::int32_t>(vocabs_[s].size() - 1);
      }
      remap[c] = code;
    }
    for (const std::int32_t c : other.cat_cols_[s]) {
      cat_cols_[s].push_back(remap[static_cast<std::size_t>(c)]);
    }
  }
  num_rows_ += other.num_rows_;
}

void Table::adopt_vocabulary(std::size_t col,
                             std::vector<std::string> vocab) {
  const std::size_t slot = slot_of(col, ColumnKind::kCategorical);
  const auto& current = vocabs_[slot];
  if (vocab.size() < current.size()) {
    throw std::invalid_argument("table: adopted vocabulary is smaller");
  }
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (current[i] != vocab[i]) {
      throw std::invalid_argument(
          "table: adopted vocabulary is not prefix-compatible");
    }
  }
  vocabs_[slot] = std::move(vocab);
}

const std::string& Table::label_at(std::size_t col, std::size_t row) const {
  const std::size_t slot = slot_of(col, ColumnKind::kCategorical);
  const std::int32_t code = cat_cols_[slot].at(row);
  return vocabs_[slot].at(static_cast<std::size_t>(code));
}

}  // namespace surro::tabular
