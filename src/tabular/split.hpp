#pragma once
// Row shuffling and train/test splitting (the paper's 80/20 split).

#include "tabular/table.hpp"
#include "util/rng.hpp"

namespace surro::tabular {

struct TrainTestSplit {
  Table train;
  Table test;
};

/// Random permutation of the table's rows.
[[nodiscard]] Table shuffled(const Table& table, util::Rng& rng);

/// Shuffled split with `train_fraction` of rows in train (paper: 0.8).
/// Throws std::invalid_argument unless 0 < train_fraction < 1.
[[nodiscard]] TrainTestSplit train_test_split(const Table& table,
                                              double train_fraction,
                                              util::Rng& rng);

/// Deterministic k-fold boundaries for cross-validation utilities.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> fold_ranges(
    std::size_t num_rows, std::size_t k);

}  // namespace surro::tabular
