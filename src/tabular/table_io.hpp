#pragma once
// CSV persistence for Tables. Numerical cells are written with full
// round-trip precision ("%.17g"); categorical cells are written as labels.
// Loading takes an explicit schema (type inference is deliberately avoided:
// PanDA columns like computing-site names can look numeric).

#include <string>

#include "tabular/table.hpp"

namespace surro::tabular {

/// Serialize to CSV text (header row = column names).
[[nodiscard]] std::string to_csv(const Table& table);

/// Write to a file; throws std::runtime_error on I/O failure.
void write_csv(const Table& table, const std::string& path);

/// Parse CSV text into a table with the given schema. The CSV header must
/// contain every schema column (extra CSV columns are ignored). Throws
/// std::runtime_error on missing columns or unparseable numerical cells.
[[nodiscard]] Table from_csv(const Schema& schema, const std::string& text);

/// Read a CSV file with the given schema.
[[nodiscard]] Table read_csv(const Schema& schema, const std::string& path);

}  // namespace surro::tabular
