#pragma once
// Column schema for mixed-type tables. Mirrors the paper's Fig. 3(a): each
// column is either Numerical (double) or Categorical (dictionary-encoded
// int32 codes with a per-column vocabulary).

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace surro::tabular {

enum class ColumnKind { kNumerical, kCategorical };

struct ColumnSpec {
  std::string name;
  ColumnKind kind = ColumnKind::kNumerical;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns);

  [[nodiscard]] std::size_t num_columns() const noexcept {
    return columns_.size();
  }
  [[nodiscard]] const ColumnSpec& column(std::size_t i) const {
    return columns_.at(i);
  }
  [[nodiscard]] const std::vector<ColumnSpec>& columns() const noexcept {
    return columns_;
  }

  /// Index by name; throws std::out_of_range for unknown names.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const noexcept;

  [[nodiscard]] std::vector<std::size_t> numerical_indices() const;
  [[nodiscard]] std::vector<std::size_t> categorical_indices() const;

  friend bool operator==(const Schema& a, const Schema& b) noexcept;

 private:
  std::vector<ColumnSpec> columns_;
};

}  // namespace surro::tabular
