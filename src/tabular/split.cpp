#include "tabular/split.hpp"

#include <stdexcept>

namespace surro::tabular {

Table shuffled(const Table& table, util::Rng& rng) {
  const auto perm = rng.permutation(table.num_rows());
  return table.select_rows(perm);
}

TrainTestSplit train_test_split(const Table& table, double train_fraction,
                                util::Rng& rng) {
  if (!(train_fraction > 0.0 && train_fraction < 1.0)) {
    throw std::invalid_argument("split: train_fraction must be in (0,1)");
  }
  const auto perm = rng.permutation(table.num_rows());
  const auto n_train = static_cast<std::size_t>(
      static_cast<double>(table.num_rows()) * train_fraction);
  const std::vector<std::size_t> train_idx(perm.begin(),
                                           perm.begin() + n_train);
  const std::vector<std::size_t> test_idx(perm.begin() + n_train, perm.end());
  return {table.select_rows(train_idx), table.select_rows(test_idx)};
}

std::vector<std::pair<std::size_t, std::size_t>> fold_ranges(
    std::size_t num_rows, std::size_t k) {
  if (k == 0) throw std::invalid_argument("split: k must be positive");
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(k);
  const std::size_t base = num_rows / k;
  const std::size_t extra = num_rows % k;
  std::size_t start = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    out.emplace_back(start, start + len);
    start += len;
  }
  return out;
}

}  // namespace surro::tabular
