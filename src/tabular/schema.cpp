#include "tabular/schema.hpp"

#include <unordered_set>

namespace surro::tabular {

Schema::Schema(std::vector<ColumnSpec> columns) : columns_(std::move(columns)) {
  std::unordered_set<std::string> seen;
  for (const auto& c : columns_) {
    if (c.name.empty()) {
      throw std::invalid_argument("schema: empty column name");
    }
    if (!seen.insert(c.name).second) {
      throw std::invalid_argument("schema: duplicate column name '" + c.name +
                                  "'");
    }
  }
}

std::size_t Schema::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  throw std::out_of_range("schema: unknown column '" + name + "'");
}

bool Schema::contains(const std::string& name) const noexcept {
  for (const auto& c : columns_) {
    if (c.name == name) return true;
  }
  return false;
}

std::vector<std::size_t> Schema::numerical_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].kind == ColumnKind::kNumerical) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Schema::categorical_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].kind == ColumnKind::kCategorical) out.push_back(i);
  }
  return out;
}

bool operator==(const Schema& a, const Schema& b) noexcept {
  if (a.columns_.size() != b.columns_.size()) return false;
  for (std::size_t i = 0; i < a.columns_.size(); ++i) {
    if (a.columns_[i].name != b.columns_[i].name ||
        a.columns_[i].kind != b.columns_[i].kind) {
      return false;
    }
  }
  return true;
}

}  // namespace surro::tabular
