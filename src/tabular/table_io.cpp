#include "tabular/table_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/stringx.hpp"

namespace surro::tabular {

std::string to_csv(const Table& table) {
  util::CsvDocument doc;
  const auto& schema = table.schema();
  doc.header.reserve(schema.num_columns());
  for (const auto& col : schema.columns()) doc.header.push_back(col.name);

  doc.rows.resize(table.num_rows());
  for (auto& row : doc.rows) row.resize(schema.num_columns());

  for (std::size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).kind == ColumnKind::kNumerical) {
      const auto col = table.numerical(c);
      for (std::size_t r = 0; r < col.size(); ++r) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", col[r]);
        doc.rows[r][c] = buf;
      }
    } else {
      for (std::size_t r = 0; r < table.num_rows(); ++r) {
        doc.rows[r][c] = table.label_at(c, r);
      }
    }
  }
  return util::to_csv(doc);
}

void write_csv(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("table_io: cannot write " + path);
  out << to_csv(table);
  if (!out) throw std::runtime_error("table_io: write failed for " + path);
}

Table from_csv(const Schema& schema, const std::string& text) {
  const util::CsvDocument doc = util::parse_csv(text, /*has_header=*/true);

  std::vector<std::size_t> csv_col(schema.num_columns());
  for (std::size_t c = 0; c < schema.num_columns(); ++c) {
    const std::size_t idx = doc.column_index(schema.column(c).name);
    if (idx == util::CsvDocument::npos) {
      throw std::runtime_error("table_io: CSV is missing column '" +
                               schema.column(c).name + "'");
    }
    csv_col[c] = idx;
  }

  Table table(schema);
  for (std::size_t r = 0; r < doc.num_rows(); ++r) {
    auto row = table.make_row();
    for (std::size_t c = 0; c < schema.num_columns(); ++c) {
      const std::string& cell = doc.rows[r][csv_col[c]];
      if (schema.column(c).kind == ColumnKind::kNumerical) {
        double v = 0.0;
        if (!util::parse_double(cell, v)) {
          throw std::runtime_error("table_io: bad numerical cell '" + cell +
                                   "' in column '" + schema.column(c).name +
                                   "' row " + std::to_string(r));
        }
        row.set(c, v);
      } else {
        row.set(c, cell);
      }
    }
    table.append_row(row);
  }
  return table;
}

Table read_csv(const Schema& schema, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("table_io: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_csv(schema, buf.str());
}

}  // namespace surro::tabular
