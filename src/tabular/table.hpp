#pragma once
// Columnar mixed-type table: the in-memory representation of PanDA job
// records (and of every synthetic sample). Numerical columns store doubles;
// categorical columns store dictionary codes with a per-column vocabulary so
// metric code can work on dense int codes while I/O round-trips strings.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tabular/schema.hpp"

namespace surro::tabular {

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  [[nodiscard]] const Schema& schema() const noexcept { return schema_; }
  [[nodiscard]] std::size_t num_rows() const noexcept { return num_rows_; }
  [[nodiscard]] std::size_t num_columns() const noexcept {
    return schema_.num_columns();
  }

  // --- column access (by schema column index) -------------------------------
  /// Numerical column data; throws std::invalid_argument for wrong kind.
  [[nodiscard]] std::span<const double> numerical(std::size_t col) const;
  [[nodiscard]] std::span<double> numerical_mut(std::size_t col);
  /// Categorical codes; throws for wrong kind.
  [[nodiscard]] std::span<const std::int32_t> categorical(
      std::size_t col) const;
  [[nodiscard]] std::span<std::int32_t> categorical_mut(std::size_t col);
  /// Vocabulary of a categorical column (code -> label).
  [[nodiscard]] const std::vector<std::string>& vocabulary(
      std::size_t col) const;
  /// Number of distinct categories of a categorical column.
  [[nodiscard]] std::size_t cardinality(std::size_t col) const;

  /// Lookup / intern a label for a categorical column. Interning may grow
  /// the vocabulary; lookup returns nullopt for unknown labels.
  [[nodiscard]] std::optional<std::int32_t> code_of(
      std::size_t col, const std::string& label) const;
  std::int32_t intern(std::size_t col, const std::string& label);

  // --- row building ----------------------------------------------------------
  /// A row under construction; values are keyed by schema column order.
  class RowBuilder {
   public:
    RowBuilder& set(std::size_t col, double v);
    RowBuilder& set(std::size_t col, const std::string& label);
    RowBuilder& set_code(std::size_t col, std::int32_t code);

   private:
    friend class Table;
    explicit RowBuilder(Table& t);
    Table* table_;
    std::vector<double> num_;
    std::vector<std::int32_t> cat_;
    std::vector<bool> filled_;
  };

  [[nodiscard]] RowBuilder make_row() { return RowBuilder(*this); }
  /// Commit a fully-populated row; throws if any column is unset.
  void append_row(const RowBuilder& row);

  /// Append a row given parallel per-kind value arrays in *schema order of
  /// that kind* (fast path for generators).
  void append_row_values(std::span<const double> numerical_values,
                         std::span<const std::int32_t> categorical_codes);

  // --- whole-table operations ------------------------------------------------
  /// Rows selected by index list, preserving vocabularies.
  [[nodiscard]] Table select_rows(std::span<const std::size_t> indices) const;
  /// First n rows (n clamped to size).
  [[nodiscard]] Table head(std::size_t n) const;
  /// Append all rows of another table with an identical schema; vocabularies
  /// are merged (codes are re-mapped as needed).
  void append_table(const Table& other);

  /// Force a categorical column's vocabulary (e.g., to share label coding
  /// between real and synthetic tables). Existing codes must remain valid
  /// (current vocabulary must be a prefix-compatible subset).
  void adopt_vocabulary(std::size_t col, std::vector<std::string> vocab);

  /// Human-readable label of a cell in a categorical column.
  [[nodiscard]] const std::string& label_at(std::size_t col,
                                            std::size_t row) const;

 private:
  [[nodiscard]] std::size_t slot_of(std::size_t col, ColumnKind kind) const;

  Schema schema_;
  std::size_t num_rows_ = 0;
  // slot_map_[col] -> index into the per-kind storage vectors.
  std::vector<std::size_t> slot_map_;
  std::vector<ColumnKind> kinds_;
  std::vector<std::vector<double>> num_cols_;
  std::vector<std::vector<std::int32_t>> cat_cols_;
  std::vector<std::vector<std::string>> vocabs_;
};

}  // namespace surro::tabular
