#pragma once
// Per-column summaries used by the Fig. 3(a) dataset profile and by tests.

#include <cstdint>
#include <string>
#include <vector>

#include "tabular/table.hpp"

namespace surro::tabular {

struct NumericalSummary {
  std::string name;
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  /// Number of distinct values (exact; the Fig. 3(a) "# unique" column).
  std::size_t num_unique = 0;
};

struct CategoricalSummary {
  std::string name;
  std::size_t count = 0;
  std::size_t cardinality = 0;
  /// (label, count) sorted by descending count.
  std::vector<std::pair<std::string, std::uint64_t>> top_counts;
};

[[nodiscard]] NumericalSummary summarize_numerical(const Table& table,
                                                   std::size_t col);
[[nodiscard]] CategoricalSummary summarize_categorical(const Table& table,
                                                       std::size_t col,
                                                       std::size_t top_k = 5);

/// Normalized frequency of each category code (length = cardinality).
[[nodiscard]] std::vector<double> category_frequencies(const Table& table,
                                                       std::size_t col);

/// Fig. 3(a)-style profile of the whole table, as printable lines.
[[nodiscard]] std::vector<std::string> profile_lines(const Table& table);

}  // namespace surro::tabular
