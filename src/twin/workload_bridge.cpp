#include "twin/workload_bridge.hpp"

#include <algorithm>
#include <stdexcept>

#include "panda/filters.hpp"
#include "serve/sample_service.hpp"
#include "util/rng.hpp"

namespace surro::twin {

namespace {
// FNV-1a over a label string (for the unknown-site scatter: stable in the
// label bytes alone, never in vocabulary order).
std::uint64_t label_hash(const std::string& label) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char ch : label) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

std::uint64_t row_derive(std::uint64_t seed, std::uint64_t row,
                         std::uint64_t salt) noexcept {
  std::uint64_t state = seed ^ (row * 0x9E3779B97F4A7C15ULL) ^
                        (salt * 0xBF58476D1CE4E5B9ULL);
  return util::splitmix64(state);
}

double row_uniform(std::uint64_t seed, std::uint64_t row,
                   std::uint64_t salt) noexcept {
  return static_cast<double>(row_derive(seed, row, salt) >> 11) * 0x1.0p-53;
}

WorkloadBridge::WorkloadBridge(const panda::SiteCatalog& catalog,
                               BridgeConfig cfg)
    : catalog_(&catalog), cfg_(cfg) {
  if (catalog.size() == 0) {
    throw std::invalid_argument("bridge: empty site catalog");
  }
}

std::vector<sched::SimJob> WorkloadBridge::jobs(
    const tabular::Table& table) const {
  const auto& schema = table.schema();
  const std::size_t c_time = schema.index_of(panda::features::kCreationTime);
  const std::size_t c_site = schema.index_of(panda::features::kComputingSite);
  const std::size_t c_bytes =
      schema.index_of(panda::features::kInputFileBytes);
  const std::size_t c_workload = schema.index_of(panda::features::kWorkload);

  const auto times = table.numerical(c_time);
  const auto bytes = table.numerical(c_bytes);
  const auto workloads = table.numerical(c_workload);
  const auto site_codes = table.categorical(c_site);
  const auto& site_vocab = table.vocabulary(c_site);

  // Vocab entry -> catalog index. Unknown labels scatter by label hash,
  // so the mapping is a pure function of the label string.
  std::vector<std::size_t> site_map(site_vocab.size());
  for (std::size_t v = 0; v < site_vocab.size(); ++v) {
    try {
      site_map[v] = catalog_->index_of(site_vocab[v]);
    } catch (const std::out_of_range&) {
      site_map[v] = static_cast<std::size_t>(label_hash(site_vocab[v]) %
                                             catalog_->size());
    }
  }

  std::vector<sched::SimJob> out;
  out.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    sched::SimJob j;
    j.submit_time = times[r];
    j.home_site = site_map[static_cast<std::size_t>(site_codes[r])];
    j.input_bytes = std::max(bytes[r], 0.0);
    j.cores = row_uniform(cfg_.seed, r, 0) < cfg_.p_eight_core ? 8 : 1;
    const double gflops = catalog_->site(j.home_site).gflops_per_core;
    j.cpu_hours = std::max(workloads[r], 0.0) / std::max(gflops, 1.0);
    out.push_back(j);
  }
  return out;
}

tabular::Table sample_via_backend(serve::SampleBackend& backend,
                                  const std::string& model_key,
                                  std::size_t rows, std::uint64_t seed,
                                  std::size_t chunk_rows) {
  serve::SampleJob job;
  job.model_key = model_key;
  job.rows = rows;
  job.seed = seed;
  job.chunk_rows = chunk_rows;
  return backend.sample(std::move(job));
}

}  // namespace surro::twin
