#pragma once
// Disruption scenarios for the digital twin — the scenario axis that grows
// the evaluation matrix beyond feature-space drift (src/stream/drift) into
// *operational* stress, the regimes a data-placement/job-allocation policy
// actually has to survive:
//
//   * none           — the stream as sampled;
//   * site_outage    — the most popular K sites go dark for a window of the
//                      collection span (a multi-site availability mask fed
//                      to sched::ClusterSimulator as Outage windows);
//   * campaign_burst — a fraction of arrivals compresses into a narrow
//                      burst window (a user campaign landing all at once);
//   * anomaly_storm  — rows inside a storm window are corrupted with the
//                      failure signatures of anomaly::inject_anomalies at
//                      high density (anomalies correlated in time, not the
//                      uniform sprinkle the eval matrix injects).
//
// Every scenario is deterministic in (table bytes, config): per-row
// decisions derive from twin::row_derive, outage windows derive from the
// real stream's time span, and the anomaly storm re-seeds
// anomaly::inject on the storm sub-window. Identical outage masks are
// applied to the real and the surrogate stream of a twin cell — the
// disruption is environmental, so both streams must face the same world.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "panda/site_catalog.hpp"
#include "sched/simulator.hpp"
#include "tabular/table.hpp"

namespace surro::twin {

enum class DisruptionKind {
  kNone,
  kSiteOutage,
  kCampaignBurst,
  kAnomalyStorm,
};

/// Stable axis-value spelling ("none", "site_outage", ...).
[[nodiscard]] const char* disruption_kind_name(DisruptionKind kind) noexcept;
/// Inverse of disruption_kind_name; throws std::invalid_argument.
[[nodiscard]] DisruptionKind parse_disruption_kind(std::string_view name);
/// Every scenario kind, in declaration order (CLI listings, tests).
[[nodiscard]] std::vector<DisruptionKind> all_disruption_kinds();

struct DisruptionConfig {
  DisruptionKind kind = DisruptionKind::kNone;
  /// Scenario strength: affected-row fraction (campaign_burst), corrupted
  /// in-window fraction (anomaly_storm). Ignored by site_outage, which is
  /// sized by `outage_sites`.
  double intensity = 0.3;
  std::uint64_t seed = 7;
  /// site_outage: the K most popular catalog sites go dark together...
  std::size_t outage_sites = 2;
  /// ...between these fractions of the stream's [min, max] creation span.
  double outage_start_frac = 0.25;
  double outage_end_frac = 0.55;
  /// campaign_burst: affected rows land inside a window this wide (days),
  /// centred at this fraction of the stream span.
  double burst_center_frac = 0.5;
  double burst_width_days = 0.25;
  /// anomaly_storm: the storm window, as fractions of the stream span.
  double storm_start_frac = 0.4;
  double storm_end_frac = 0.6;
};

/// The [min, max] creation-time span of a job table (0,0 when empty) — the
/// clock the window fractions are anchored to. Always taken from the twin
/// cell's *real* stream so real and surrogate face identical windows.
struct TimeSpan {
  double t0 = 0.0;
  double t1 = 0.0;
  [[nodiscard]] double length() const noexcept { return t1 - t0; }
};
[[nodiscard]] TimeSpan table_time_span(const tabular::Table& table);

/// The outage mask a scenario imposes (empty for every kind but
/// site_outage). Pure planning — no table involved — so the same mask can
/// be applied to both streams of a twin cell.
[[nodiscard]] std::vector<sched::Outage> plan_outages(
    const TimeSpan& span, const panda::SiteCatalog& catalog,
    const DisruptionConfig& cfg);

struct DisruptionResult {
  tabular::Table table;           // perturbed copy of the stream
  std::size_t affected_rows = 0;  // rows moved (burst) or corrupted (storm)
};

/// Apply the table-perturbing half of a scenario (burst reshuffles
/// creation times, storm corrupts feature rows; none/site_outage copy the
/// table unchanged). Deterministic in (table bytes, span, cfg).
[[nodiscard]] DisruptionResult apply_disruption(const tabular::Table& table,
                                                const TimeSpan& span,
                                                const DisruptionConfig& cfg);

}  // namespace surro::twin
