#pragma once
// ScenarioTwin — the closed-loop digital twin of the PanDA scheduler. It
// streams a real and a surrogate job table through sched::ClusterSimulator
// under every (disruption scenario × drift family) cell and every
// allocation policy, and scores two things the fidelity metrics (WD / JSD /
// DCR) cannot see:
//
//   * policy outcomes — mean/p95 queue wait, utilization, transferred
//     bytes, and the per-site starvation index — as first-class metrics;
//   * decision fidelity — run the *same* policies over the real and the
//     surrogate stream and measure whether the surrogate would have led to
//     the same scheduling decision: the pairwise rank agreement of the
//     policy ordering plus the per-policy outcome gap. A surrogate can
//     match every marginal and still rank policies differently; this is
//     the number the paper's Sec. VI use case actually depends on.
//
// Determinism contract (ARCHITECTURE.md invariant): every TwinResult —
// including the outcome digest — depends only on (model bytes, rows, seed,
// policy set, scenario axes). Cells fan out over util::ThreadPool but each
// writes its own slot, the simulator is deterministic per run, and the
// digest folds cells in canonical expansion order, so any thread count
// (and two same-seed processes) produce bitwise-identical outcomes.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/policies.hpp"
#include "sched/simulator.hpp"
#include "stream/drift.hpp"
#include "twin/scenario.hpp"
#include "twin/workload_bridge.hpp"

namespace surro::twin {

struct TwinConfig {
  sched::SimConfig sim;
  /// Policy names, each resolved via make_policy (fresh instance per
  /// simulator run, so concurrent cells never share mutable state).
  std::vector<std::string> policies{"random", "locality", "least-loaded",
                                    "hybrid"};
  /// Scenario axes: every disruption × drift pair becomes one twin cell.
  std::vector<DisruptionKind> disruptions = all_disruption_kinds();
  std::vector<stream::DriftKind> drifts{stream::DriftKind::kNone};
  /// Per-cell templates; `kind` is overwritten by the axis value.
  DisruptionConfig disruption;
  stream::DriftConfig drift;
  /// Window index handed to stream::apply_drift — the default reaches full
  /// ramp strength so a drift cell realizes `drift.intensity` exactly.
  std::size_t drift_window_index = 5;
  /// Per-row derivation seed of the workload bridge.
  BridgeConfig bridge;
  /// Seed of every simulator run (policies with stochastic choices draw
  /// from Rng(sim_seed) per run).
  std::uint64_t sim_seed = 7;
  /// Cell fan-out cap: 0 = every pool worker, 1 = serial. Outcome bytes
  /// are identical for any value.
  std::size_t threads = 0;
  bool verbose = false;
};

/// One policy's paired outcome inside a cell.
struct PolicyOutcome {
  std::string policy;
  sched::SimMetrics real;
  sched::SimMetrics synth;
  /// Mean relative gap over (mean wait, p95 wait, utilization,
  /// transferred bytes, starvation index): 0 = surrogate reproduces the
  /// real stream's outcome exactly.
  double outcome_gap = 0.0;
};

/// Relative-gap arithmetic shared with tests: mean over the five headline
/// metrics of |real − synth| / max(|real|, |synth|, eps).
[[nodiscard]] double outcome_gap(const sched::SimMetrics& real,
                                 const sched::SimMetrics& synth);

/// One (disruption, drift) scenario cell.
struct TwinCell {
  std::string id;  ///< e.g. "site_outage|none"
  DisruptionKind disruption = DisruptionKind::kNone;
  stream::DriftKind drift = stream::DriftKind::kNone;
  std::vector<sched::Outage> outages;      ///< shared by both streams
  std::size_t affected_rows_real = 0;      ///< disruption + drift touches
  std::size_t affected_rows_synth = 0;
  std::vector<PolicyOutcome> outcomes;     ///< policy order = config order
  /// Pairwise rank agreement (Kendall-style, ties concordant) of the
  /// policy ordering by mean queue wait, real vs surrogate, in [0, 1].
  double decision_fidelity = 0.0;
  bool top1_match = false;  ///< same winning policy on both streams
  std::string best_policy_real;
  std::string best_policy_synth;
};

/// Rank-agreement arithmetic shared with tests.
[[nodiscard]] double rank_agreement(const std::vector<double>& real,
                                    const std::vector<double>& synth);

struct TwinResult {
  std::vector<TwinCell> cells;  ///< disruption-major, drift-minor order
  double mean_decision_fidelity = 0.0;
  double mean_outcome_gap = 0.0;
  double wall_seconds = 0.0;
  /// FNV-1a fold of every cell's metrics_digest pairs in canonical order —
  /// the cross-run / cross-thread determinism probe.
  std::uint64_t outcome_digest = 0;
};

/// Resolve a policy name ("random" | "locality" | "least-loaded" |
/// "hybrid[:threshold]") to a fresh instance; throws std::invalid_argument
/// for unknown names.
[[nodiscard]] std::unique_ptr<sched::AllocationPolicy> make_policy(
    const std::string& name);

class ScenarioTwin {
 public:
  ScenarioTwin(const panda::SiteCatalog& catalog, TwinConfig cfg);

  /// Run every (disruption × drift) cell over the paired streams. `real`
  /// and `synth` must share the 9-column job schema.
  [[nodiscard]] TwinResult run(const tabular::Table& real,
                               const tabular::Table& synth) const;

  [[nodiscard]] const TwinConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const panda::SiteCatalog& catalog() const noexcept {
    return *catalog_;
  }

 private:
  [[nodiscard]] TwinCell run_cell(DisruptionKind disruption,
                                  stream::DriftKind drift,
                                  const tabular::Table& real,
                                  const tabular::Table& synth,
                                  const TimeSpan& span) const;

  const panda::SiteCatalog* catalog_;
  TwinConfig cfg_;
};

/// Machine-readable twin artifact (kind "twin_matrix"): config echo, every
/// cell with per-policy real/synth outcomes and gaps, decision-fidelity
/// scores, and the outcome digest as a 16-hex-digit string.
[[nodiscard]] std::string twin_to_json(const TwinConfig& cfg,
                                       const TwinResult& result,
                                       const std::string& model_key,
                                       std::size_t real_rows,
                                       std::size_t synth_rows);

/// Compact ASCII summary (one block per cell, one line per policy).
[[nodiscard]] std::string render_twin(const TwinResult& result);

}  // namespace surro::twin
