#pragma once
// WorkloadBridge — the surrogate→simulator half of the closed loop (Fig. 2's
// data-placement / job-allocation loop, Sec. VI's "more realistic workload
// inputs to calibrate large-scale event-based simulations"). It converts
// sampled job-table rows back into sched::SimJob streams with the serving
// tier's determinism discipline: every per-row random decision (the core
// count, the catalog slot of an invented site label) is drawn from a stream
// derived from (bridge seed, row index) or hashed from the label itself —
// never from a shared sequential RNG — so the resulting jobs depend only on
// (table bytes, seed). Bridging a prefix of a table yields exactly the
// prefix of the bridged jobs, and no amount of threading, chunking, or
// placement upstream (the SampleBackend invariant) can change the stream.

#include <cstdint>
#include <vector>

#include "panda/site_catalog.hpp"
#include "sched/simulator.hpp"
#include "tabular/table.hpp"

namespace surro::serve {
class SampleBackend;
}

namespace surro::twin {

struct BridgeConfig {
  /// Seed of the per-row derived streams (part of the twin determinism
  /// key: outcomes depend only on model/rows/seed/policy/scenario).
  std::uint64_t seed = 1;
  /// Probability a bridged job requests an 8-core slot (the simulator's
  /// multi-core mix; matches the legacy jobs_from_table default).
  double p_eight_core = 0.4;
};

/// Stateless per-row hash: splitmix64 over (seed, index, salt). Exposed so
/// disruption scenarios share the same derivation discipline.
[[nodiscard]] std::uint64_t row_derive(std::uint64_t seed, std::uint64_t row,
                                       std::uint64_t salt) noexcept;
/// row_derive mapped to a uniform double in [0, 1).
[[nodiscard]] double row_uniform(std::uint64_t seed, std::uint64_t row,
                                 std::uint64_t salt) noexcept;

class WorkloadBridge {
 public:
  WorkloadBridge(const panda::SiteCatalog& catalog, BridgeConfig cfg = {});

  /// Convert every row of a 9-column job table into a SimJob. Site labels
  /// unknown to the catalog scatter deterministically by label hash (the
  /// same invented label always lands on the same catalog slot, whatever
  /// the vocabulary order). Workload (GFLOP-hours) converts to CPU-hours
  /// at the home site's per-core GFLOP rate.
  [[nodiscard]] std::vector<sched::SimJob> jobs(
      const tabular::Table& table) const;

  [[nodiscard]] const panda::SiteCatalog& catalog() const noexcept {
    return *catalog_;
  }
  [[nodiscard]] const BridgeConfig& config() const noexcept { return cfg_; }

 private:
  const panda::SiteCatalog* catalog_;
  BridgeConfig cfg_;
};

/// Pull a synthetic table out of the serving tier: submits one SampleJob to
/// the backend (a single SampleService or a whole ShardPool — bytes are
/// identical either way) and waits for the table. The twin's way of closing
/// the loop against the production serving path instead of an in-process
/// generator.
[[nodiscard]] tabular::Table sample_via_backend(serve::SampleBackend& backend,
                                                const std::string& model_key,
                                                std::size_t rows,
                                                std::uint64_t seed,
                                                std::size_t chunk_rows = 0);

}  // namespace surro::twin
