#include "twin/twin.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "linalg/simd.hpp"
#include "util/json.hpp"
#include "util/stringx.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace surro::twin {

namespace {
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
}

int sign_of(double d) noexcept { return (d > 0.0) - (d < 0.0); }
}  // namespace

double outcome_gap(const sched::SimMetrics& real,
                   const sched::SimMetrics& synth) {
  const auto rel = [](double a, double b) {
    const double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
    return std::fabs(a - b) / scale;
  };
  return (rel(real.mean_wait_hours, synth.mean_wait_hours) +
          rel(real.p95_wait_hours, synth.p95_wait_hours) +
          rel(real.mean_utilization, synth.mean_utilization) +
          rel(real.transferred_bytes, synth.transferred_bytes) +
          rel(real.starvation_index, synth.starvation_index)) /
         5.0;
}

double rank_agreement(const std::vector<double>& real,
                      const std::vector<double>& synth) {
  if (real.size() != synth.size()) {
    throw std::invalid_argument("rank_agreement: length mismatch");
  }
  const std::size_t n = real.size();
  if (n < 2) return 1.0;
  std::size_t concordant = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      concordant += sign_of(real[i] - real[j]) == sign_of(synth[i] - synth[j]);
      ++pairs;
    }
  }
  return static_cast<double>(concordant) / static_cast<double>(pairs);
}

std::unique_ptr<sched::AllocationPolicy> make_policy(const std::string& name) {
  if (name == "random") return std::make_unique<sched::RandomPolicy>();
  if (name == "locality") {
    return std::make_unique<sched::DataLocalityPolicy>();
  }
  if (name == "least-loaded" || name == "least") {
    return std::make_unique<sched::LeastLoadedPolicy>();
  }
  if (name == "hybrid") return std::make_unique<sched::HybridPolicy>();
  if (name.starts_with("hybrid:")) {
    double threshold = 0.0;
    if (!util::parse_double(name.substr(7), threshold) ||
        !(threshold > 0.0)) {
      throw std::invalid_argument("bad hybrid threshold in '" + name + "'");
    }
    return std::make_unique<sched::HybridPolicy>(threshold);
  }
  throw std::invalid_argument(
      "unknown policy '" + name +
      "' (have: random|locality|least-loaded|hybrid[:threshold])");
}

ScenarioTwin::ScenarioTwin(const panda::SiteCatalog& catalog, TwinConfig cfg)
    : catalog_(&catalog), cfg_(std::move(cfg)) {
  if (cfg_.policies.empty()) {
    throw std::invalid_argument("twin: no policies configured");
  }
  if (cfg_.disruptions.empty() || cfg_.drifts.empty()) {
    throw std::invalid_argument("twin: empty scenario axis");
  }
  for (const auto& name : cfg_.policies) {
    (void)make_policy(name);  // fail fast on typos, before any cell runs
  }
}

TwinCell ScenarioTwin::run_cell(DisruptionKind disruption,
                                stream::DriftKind drift,
                                const tabular::Table& real,
                                const tabular::Table& synth,
                                const TimeSpan& span) const {
  TwinCell cell;
  cell.disruption = disruption;
  cell.drift = drift;
  cell.id = std::string(disruption_kind_name(disruption)) + "|" +
            stream::drift_kind_name(drift);

  // Feature-space drift first (the stream moved away from the fitted
  // distribution), then the operational disruption on top.
  const auto drifted = [&](const tabular::Table& t, std::size_t* affected) {
    if (drift == stream::DriftKind::kNone) return t.head(t.num_rows());
    stream::DriftConfig dc = cfg_.drift;
    dc.kind = drift;
    auto result = stream::apply_drift(t, cfg_.drift_window_index, dc);
    *affected += result.affected_rows;
    return std::move(result.table);
  };
  DisruptionConfig disrupt = cfg_.disruption;
  disrupt.kind = disruption;
  cell.outages = plan_outages(span, *catalog_, disrupt);

  const auto disrupted_jobs = [&](const tabular::Table& t,
                                  std::size_t* affected) {
    const auto table = drifted(t, affected);
    auto result = apply_disruption(table, span, disrupt);
    *affected += result.affected_rows;
    const WorkloadBridge bridge(*catalog_, cfg_.bridge);
    return bridge.jobs(result.table);
  };
  const auto real_jobs = disrupted_jobs(real, &cell.affected_rows_real);
  const auto synth_jobs = disrupted_jobs(synth, &cell.affected_rows_synth);

  sched::ClusterSimulator sim(*catalog_, cfg_.sim);
  std::vector<double> real_waits;
  std::vector<double> synth_waits;
  for (const auto& name : cfg_.policies) {
    PolicyOutcome outcome;
    outcome.policy = name;
    // Fresh policy instance per run: no shared mutable state between the
    // two streams or between concurrently running cells.
    outcome.real =
        sim.run(real_jobs, *make_policy(name), cfg_.sim_seed, cell.outages);
    outcome.synth =
        sim.run(synth_jobs, *make_policy(name), cfg_.sim_seed, cell.outages);
    outcome.outcome_gap = twin::outcome_gap(outcome.real, outcome.synth);
    real_waits.push_back(outcome.real.mean_wait_hours);
    synth_waits.push_back(outcome.synth.mean_wait_hours);
    cell.outcomes.push_back(std::move(outcome));
  }

  cell.decision_fidelity = rank_agreement(real_waits, synth_waits);
  const auto argmin = [](const std::vector<double>& v) {
    return static_cast<std::size_t>(
        std::min_element(v.begin(), v.end()) - v.begin());
  };
  cell.best_policy_real = cfg_.policies[argmin(real_waits)];
  cell.best_policy_synth = cfg_.policies[argmin(synth_waits)];
  cell.top1_match = cell.best_policy_real == cell.best_policy_synth;
  return cell;
}

TwinResult ScenarioTwin::run(const tabular::Table& real,
                             const tabular::Table& synth) const {
  const util::Stopwatch clock;
  const TimeSpan span = table_time_span(real);

  struct CellSpec {
    DisruptionKind disruption;
    stream::DriftKind drift;
  };
  std::vector<CellSpec> specs;
  for (const DisruptionKind d : cfg_.disruptions) {
    for (const stream::DriftKind f : cfg_.drifts) {
      specs.push_back({d, f});
    }
  }

  TwinResult result;
  result.cells.resize(specs.size());
  // Every cell writes its own slot; the simulator is single-threaded and
  // deterministic per run, so the fan-out cap is scheduling-only.
  util::parallel_for_each(
      0, specs.size(),
      [&](std::size_t i) {
        result.cells[i] =
            run_cell(specs[i].disruption, specs[i].drift, real, synth, span);
        if (cfg_.verbose) {
          std::fprintf(stderr, "  twin cell %-28s fidelity %.2f\n",
                       result.cells[i].id.c_str(),
                       result.cells[i].decision_fidelity);
        }
      },
      /*grain=*/1, cfg_.threads);

  // Canonical-order fold: bitwise identical for any thread count.
  std::uint64_t digest = kFnvOffset;
  double fidelity_sum = 0.0;
  double gap_sum = 0.0;
  std::size_t gap_count = 0;
  for (const TwinCell& cell : result.cells) {
    fnv_mix(digest, static_cast<std::uint64_t>(cell.disruption));
    fnv_mix(digest, static_cast<std::uint64_t>(cell.drift));
    for (const PolicyOutcome& o : cell.outcomes) {
      fnv_mix(digest, sched::metrics_digest(o.real));
      fnv_mix(digest, sched::metrics_digest(o.synth));
      gap_sum += o.outcome_gap;
      ++gap_count;
    }
    fidelity_sum += cell.decision_fidelity;
  }
  result.outcome_digest = digest;
  result.mean_decision_fidelity =
      result.cells.empty()
          ? 0.0
          : fidelity_sum / static_cast<double>(result.cells.size());
  result.mean_outcome_gap =
      gap_count == 0 ? 0.0 : gap_sum / static_cast<double>(gap_count);
  result.wall_seconds = clock.seconds();
  return result;
}

namespace {
void append_metrics_json(util::JsonWriter& w, const sched::SimMetrics& m) {
  w.begin_object();
  w.kv("mean_wait_hours", m.mean_wait_hours);
  w.kv("p95_wait_hours", m.p95_wait_hours);
  w.kv("utilization", m.mean_utilization);
  w.kv("transferred_bytes", m.transferred_bytes);
  w.kv("makespan_days", m.makespan_days);
  w.kv("completed_jobs", m.completed_jobs);
  w.kv("starvation_index", m.starvation_index);
  w.kv("max_site_mean_wait_hours", m.max_site_mean_wait_hours);
  w.kv("redirected_jobs", m.redirected_jobs);
  w.kv("clamped_jobs", m.clamped_jobs);
  w.end_object();
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}
}  // namespace

std::string twin_to_json(const TwinConfig& cfg, const TwinResult& result,
                         const std::string& model_key, std::size_t real_rows,
                         std::size_t synth_rows) {
  util::JsonWriter w;
  w.begin_object();
  w.kv("kind", "twin_matrix");
  w.kv("version", 1);
  w.kv("simd_backend", linalg::simd::active_backend_name());
  w.kv("model", model_key);
  w.kv("real_rows", real_rows);
  w.kv("synth_rows", synth_rows);
  // 64-bit seeds ride as decimal strings (the REST precedent: JSON numbers
  // are doubles on the wire).
  w.kv("sim_seed", std::to_string(cfg.sim_seed));
  w.kv("bridge_seed", std::to_string(cfg.bridge.seed));
  w.kv("capacity_scale", cfg.sim.capacity_scale);
  w.kv("disruption_intensity", cfg.disruption.intensity);
  w.key("policies").begin_array();
  for (const auto& p : cfg.policies) w.value(p);
  w.end_array();
  w.key("disruptions").begin_array();
  for (const DisruptionKind d : cfg.disruptions) {
    w.value(disruption_kind_name(d));
  }
  w.end_array();
  w.key("drifts").begin_array();
  for (const stream::DriftKind d : cfg.drifts) {
    w.value(stream::drift_kind_name(d));
  }
  w.end_array();

  w.key("cells").begin_array();
  for (const TwinCell& cell : result.cells) {
    w.begin_object();
    w.kv("id", cell.id);
    w.kv("disruption", disruption_kind_name(cell.disruption));
    w.kv("drift", stream::drift_kind_name(cell.drift));
    w.kv("affected_rows_real", cell.affected_rows_real);
    w.kv("affected_rows_synth", cell.affected_rows_synth);
    w.key("outages").begin_array();
    for (const sched::Outage& o : cell.outages) {
      w.begin_object();
      w.kv("site", o.site);
      w.kv("start_day", o.start_day);
      w.kv("end_day", o.end_day);
      w.end_object();
    }
    w.end_array();
    w.kv("decision_fidelity", cell.decision_fidelity);
    w.kv("top1_match", cell.top1_match);
    w.kv("best_policy_real", cell.best_policy_real);
    w.kv("best_policy_synth", cell.best_policy_synth);
    w.key("policies").begin_array();
    for (const PolicyOutcome& o : cell.outcomes) {
      w.begin_object();
      w.kv("policy", o.policy);
      w.key("real");
      append_metrics_json(w, o.real);
      w.key("synth");
      append_metrics_json(w, o.synth);
      w.kv("outcome_gap", o.outcome_gap);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.kv("mean_decision_fidelity", result.mean_decision_fidelity);
  w.kv("mean_outcome_gap", result.mean_outcome_gap);
  w.kv("wall_seconds", result.wall_seconds);
  w.kv("outcome_digest", hex16(result.outcome_digest));
  w.end_object();
  return w.str();
}

std::string render_twin(const TwinResult& result) {
  std::string out;
  char buf[256];
  for (const TwinCell& cell : result.cells) {
    std::snprintf(buf, sizeof(buf),
                  "%s  (fidelity %.2f, best real=%s synth=%s%s)\n",
                  cell.id.c_str(), cell.decision_fidelity,
                  cell.best_policy_real.c_str(),
                  cell.best_policy_synth.c_str(),
                  cell.top1_match ? "" : " MISMATCH");
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  %-14s %11s %11s %11s %11s %8s\n", "policy",
                  "real wait h", "syn wait h", "real starve", "syn starve",
                  "gap");
    out += buf;
    for (const PolicyOutcome& o : cell.outcomes) {
      std::snprintf(buf, sizeof(buf),
                    "  %-14s %11.2f %11.2f %11.2f %11.2f %8.3f\n",
                    o.policy.c_str(), o.real.mean_wait_hours,
                    o.synth.mean_wait_hours, o.real.starvation_index,
                    o.synth.starvation_index, o.outcome_gap);
      out += buf;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "mean decision fidelity %.3f, mean outcome gap %.3f, "
                "digest %s\n",
                result.mean_decision_fidelity, result.mean_outcome_gap,
                hex16(result.outcome_digest).c_str());
  out += buf;
  return out;
}

}  // namespace surro::twin
