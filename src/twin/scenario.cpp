#include "twin/scenario.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "anomaly/inject.hpp"
#include "panda/filters.hpp"
#include "twin/workload_bridge.hpp"

namespace surro::twin {

const char* disruption_kind_name(DisruptionKind kind) noexcept {
  switch (kind) {
    case DisruptionKind::kSiteOutage: return "site_outage";
    case DisruptionKind::kCampaignBurst: return "campaign_burst";
    case DisruptionKind::kAnomalyStorm: return "anomaly_storm";
    case DisruptionKind::kNone: break;
  }
  return "none";
}

DisruptionKind parse_disruption_kind(std::string_view name) {
  for (const DisruptionKind kind : all_disruption_kinds()) {
    if (name == disruption_kind_name(kind)) return kind;
  }
  // CLI-friendly short aliases.
  if (name == "outage") return DisruptionKind::kSiteOutage;
  if (name == "burst") return DisruptionKind::kCampaignBurst;
  if (name == "storm") return DisruptionKind::kAnomalyStorm;
  throw std::invalid_argument("unknown disruption scenario '" +
                              std::string(name) + "'");
}

std::vector<DisruptionKind> all_disruption_kinds() {
  return {DisruptionKind::kNone, DisruptionKind::kSiteOutage,
          DisruptionKind::kCampaignBurst, DisruptionKind::kAnomalyStorm};
}

TimeSpan table_time_span(const tabular::Table& table) {
  TimeSpan span;
  if (table.num_rows() == 0) return span;
  const auto times = table.numerical(
      table.schema().index_of(panda::features::kCreationTime));
  span.t0 = *std::min_element(times.begin(), times.end());
  span.t1 = *std::max_element(times.begin(), times.end());
  return span;
}

std::vector<sched::Outage> plan_outages(const TimeSpan& span,
                                        const panda::SiteCatalog& catalog,
                                        const DisruptionConfig& cfg) {
  if (cfg.kind != DisruptionKind::kSiteOutage) return {};
  if (cfg.outage_end_frac <= cfg.outage_start_frac) {
    throw std::invalid_argument("disruption: outage window is empty");
  }
  // The K most popular sites go dark together: the disruption that hurts
  // most, since popularity is where the data (and the jobs) live.
  std::vector<std::size_t> order(catalog.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&catalog](std::size_t a, std::size_t b) {
                     return catalog.site(a).popularity >
                            catalog.site(b).popularity;
                   });
  const std::size_t k = std::min(cfg.outage_sites, catalog.size());
  const double start = span.t0 + cfg.outage_start_frac * span.length();
  const double end = span.t0 + cfg.outage_end_frac * span.length();
  std::vector<sched::Outage> outages;
  outages.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    outages.push_back({order[i], start, end});
  }
  return outages;
}

namespace {

DisruptionResult copy_table(const tabular::Table& table) {
  DisruptionResult out;
  std::vector<std::size_t> all(table.num_rows());
  std::iota(all.begin(), all.end(), std::size_t{0});
  out.table = table.select_rows(all);
  return out;
}

DisruptionResult apply_burst(const tabular::Table& table,
                             const TimeSpan& span,
                             const DisruptionConfig& cfg) {
  DisruptionResult out = copy_table(table);
  const std::size_t c_time =
      out.table.schema().index_of(panda::features::kCreationTime);
  auto times = out.table.numerical_mut(c_time);
  const double center = span.t0 + cfg.burst_center_frac * span.length();
  const double width = std::max(cfg.burst_width_days, 1e-6);
  for (std::size_t r = 0; r < times.size(); ++r) {
    if (row_uniform(cfg.seed, r, 1) >= cfg.intensity) continue;
    // Affected arrivals re-land uniformly inside the burst window.
    times[r] = center + (row_uniform(cfg.seed, r, 2) - 0.5) * width;
    ++out.affected_rows;
  }
  return out;
}

DisruptionResult apply_storm(const tabular::Table& table,
                             const TimeSpan& span,
                             const DisruptionConfig& cfg) {
  DisruptionResult out = copy_table(table);
  if (cfg.storm_end_frac <= cfg.storm_start_frac) {
    throw std::invalid_argument("disruption: storm window is empty");
  }
  const auto& schema = out.table.schema();
  const std::size_t c_time = schema.index_of(panda::features::kCreationTime);
  const double start = span.t0 + cfg.storm_start_frac * span.length();
  const double end = span.t0 + cfg.storm_end_frac * span.length();

  // Rows inside the storm window, in row order.
  std::vector<std::size_t> in_window;
  {
    const auto times = out.table.numerical(c_time);
    for (std::size_t r = 0; r < times.size(); ++r) {
      if (times[r] >= start && times[r] <= end) in_window.push_back(r);
    }
  }
  const double fraction = std::clamp(cfg.intensity, 0.0, 0.95);
  if (in_window.empty() || fraction <= 0.0) return out;

  // Corrupt the sub-window at storm density with the standard failure
  // signatures, then write the corrupted columns back by position
  // (select_rows preserves vocabularies, so codes map 1:1).
  anomaly::InjectionConfig inject;
  inject.fraction = fraction;
  inject.seed = cfg.seed ^ 0x5702f61cf1a51a5bULL;
  const auto injected =
      anomaly::inject_anomalies(out.table.select_rows(in_window), inject);

  const std::size_t c_workload = schema.index_of(panda::features::kWorkload);
  const std::size_t c_bytes =
      schema.index_of(panda::features::kInputFileBytes);
  const std::size_t c_nfiles =
      schema.index_of(panda::features::kNInputDataFiles);
  const std::size_t c_site =
      schema.index_of(panda::features::kComputingSite);

  auto workload = out.table.numerical_mut(c_workload);
  auto bytes = out.table.numerical_mut(c_bytes);
  auto nfiles = out.table.numerical_mut(c_nfiles);
  auto sites = out.table.categorical_mut(c_site);
  const auto inj_workload = injected.table.numerical(c_workload);
  const auto inj_bytes = injected.table.numerical(c_bytes);
  const auto inj_nfiles = injected.table.numerical(c_nfiles);
  const auto inj_sites = injected.table.categorical(c_site);

  for (std::size_t i = 0; i < in_window.size(); ++i) {
    if (injected.labels[i] == 0) continue;
    const std::size_t r = in_window[i];
    workload[r] = inj_workload[i];
    bytes[r] = inj_bytes[i];
    nfiles[r] = inj_nfiles[i];
    sites[r] = inj_sites[i];
    ++out.affected_rows;
  }
  return out;
}

}  // namespace

DisruptionResult apply_disruption(const tabular::Table& table,
                                  const TimeSpan& span,
                                  const DisruptionConfig& cfg) {
  switch (cfg.kind) {
    case DisruptionKind::kCampaignBurst:
      return apply_burst(table, span, cfg);
    case DisruptionKind::kAnomalyStorm:
      return apply_storm(table, span, cfg);
    case DisruptionKind::kNone:
    case DisruptionKind::kSiteOutage:
      break;
  }
  return copy_table(table);
}

}  // namespace surro::twin
