#include "knn/kdtree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "linalg/simd.hpp"
#include "util/thread_pool.hpp"

namespace surro::knn {

namespace {
inline float dist_sq(const float* a, const float* b, std::size_t d) noexcept {
  return linalg::simd::kernels().sq_l2_f32(a, b, d);
}
}  // namespace

KdTree::KdTree(const linalg::Matrix& data, std::size_t leaf_size)
    : n_(data.rows()), d_(data.cols()), leaf_size_(std::max<std::size_t>(leaf_size, 1)) {
  if (n_ == 0 || d_ == 0) throw std::invalid_argument("kdtree: empty data");
  points_.assign(data.data(), data.data() + n_ * d_);
  index_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) index_[i] = i;
  nodes_.reserve(2 * n_ / leaf_size_ + 2);
  root_ = build(0, n_, 0);
}

std::int32_t KdTree::build(std::size_t begin, std::size_t end,
                           std::size_t depth) {
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({});
  Node node;
  node.begin = begin;
  node.end = end;
  if (end - begin <= leaf_size_) {
    nodes_[static_cast<std::size_t>(id)] = node;
    return id;
  }
  // Split along the dimension with the largest spread at this depth band
  // (cheap heuristic: cycle dims, but pick the better of the cycled dim and
  // the max-spread dim over a sample).
  std::size_t dim = depth % d_;
  {
    float best_spread = -1.0f;
    for (std::size_t cand = 0; cand < d_; ++cand) {
      float lo = points_[begin * d_ + cand];
      float hi = lo;
      const std::size_t stride = std::max<std::size_t>((end - begin) / 64, 1);
      for (std::size_t i = begin; i < end; i += stride) {
        const float v = points_[i * d_ + cand];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      if (hi - lo > best_spread) {
        best_spread = hi - lo;
        dim = cand;
      }
    }
  }
  const std::size_t mid = begin + (end - begin) / 2;

  // nth_element over interleaved storage: sort index ranges by building a
  // permutation of positions. We swap whole rows to keep points_ contiguous.
  std::vector<std::size_t> order(end - begin);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = begin + i;
  std::nth_element(order.begin(), order.begin() + (mid - begin), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return points_[a * d_ + dim] < points_[b * d_ + dim];
                   });
  // Apply permutation to rows and index_ (cycle-following apply).
  {
    std::vector<float> tmp_rows((end - begin) * d_);
    std::vector<std::size_t> tmp_idx(end - begin);
    for (std::size_t i = 0; i < order.size(); ++i) {
      std::copy_n(points_.data() + order[i] * d_, d_,
                  tmp_rows.data() + i * d_);
      tmp_idx[i] = index_[order[i]];
    }
    std::copy(tmp_rows.begin(), tmp_rows.end(),
              points_.begin() + begin * d_);
    std::copy(tmp_idx.begin(), tmp_idx.end(), index_.begin() + begin);
  }

  node.split_dim = dim;
  node.split_val = points_[mid * d_ + dim];
  node.left = build(begin, mid, depth + 1);
  node.right = build(mid, end, depth + 1);
  nodes_[static_cast<std::size_t>(id)] = node;
  return id;
}

void KdTree::search(std::size_t node_id, std::span<const float> point,
                    std::size_t k, std::ptrdiff_t exclude,
                    std::vector<Neighbor>& heap) const {
  const auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.dist_sq < b.dist_sq;
  };
  const Node& node = nodes_[node_id];
  if (node.is_leaf()) {
    for (std::size_t i = node.begin; i < node.end; ++i) {
      const std::size_t orig = index_[i];
      if (exclude >= 0 && orig == static_cast<std::size_t>(exclude)) continue;
      const float d = dist_sq(points_.data() + i * d_, point.data(), d_);
      if (heap.size() < k) {
        heap.push_back({orig, d});
        std::push_heap(heap.begin(), heap.end(), cmp);
      } else if (d < heap.front().dist_sq) {
        std::pop_heap(heap.begin(), heap.end(), cmp);
        heap.back() = {orig, d};
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
    return;
  }
  const float diff = point[node.split_dim] - node.split_val;
  const auto near = static_cast<std::size_t>(diff < 0.0f ? node.left
                                                         : node.right);
  const auto far = static_cast<std::size_t>(diff < 0.0f ? node.right
                                                        : node.left);
  search(near, point, k, exclude, heap);
  // Prune the far side when the splitting plane is farther than the worst
  // current neighbour.
  if (heap.size() < k || diff * diff < heap.front().dist_sq) {
    search(far, point, k, exclude, heap);
  }
}

std::vector<Neighbor> KdTree::query(std::span<const float> point,
                                    std::size_t k,
                                    std::ptrdiff_t exclude) const {
  if (point.size() != d_) {
    throw std::invalid_argument("kdtree: query dimension mismatch");
  }
  k = std::min(k, n_ - (exclude >= 0 ? 1 : 0));
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  if (k > 0) search(static_cast<std::size_t>(root_), point, k, exclude, heap);
  std::sort_heap(heap.begin(), heap.end(),
                 [](const Neighbor& a, const Neighbor& b) {
                   return a.dist_sq < b.dist_sq;
                 });
  return heap;
}

float KdTree::nearest_distance(std::span<const float> point,
                               std::ptrdiff_t exclude) const {
  const auto nn = query(point, 1, exclude);
  return nn.empty() ? 0.0f : std::sqrt(nn.front().dist_sq);
}

std::vector<float> KdTree::nearest_distances(const linalg::Matrix& queries,
                                             std::size_t threads,
                                             std::size_t chunk_rows) const {
  if (queries.cols() != d_) {
    throw std::invalid_argument("kdtree: query dimension mismatch");
  }
  std::vector<float> out(queries.rows(), 0.0f);
  util::parallel_for(
      0, queries.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t q = lo; q < hi; ++q) {
          out[q] = nearest_distance(queries.row(q));
        }
      },
      std::max<std::size_t>(chunk_rows, 1), threads);
  return out;
}

}  // namespace surro::knn
