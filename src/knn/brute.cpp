#include "knn/brute.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "linalg/simd.hpp"
#include "util/thread_pool.hpp"

namespace surro::knn {

namespace {
inline float dist_sq(const float* a, const float* b, std::size_t d) noexcept {
  return linalg::simd::kernels().sq_l2_f32(a, b, d);
}
}  // namespace

std::vector<Neighbor> brute_knn(const linalg::Matrix& data,
                                std::span<const float> query, std::size_t k,
                                std::ptrdiff_t exclude) {
  if (data.rows() == 0) throw std::invalid_argument("knn: empty data");
  if (query.size() != data.cols()) {
    throw std::invalid_argument("knn: query dimension mismatch");
  }
  k = std::min(k, data.rows() - (exclude >= 0 ? 1 : 0));
  // Max-heap of the current best k, keyed by distance.
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  const auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.dist_sq < b.dist_sq;
  };
  for (std::size_t i = 0; i < data.rows(); ++i) {
    if (exclude >= 0 && i == static_cast<std::size_t>(exclude)) continue;
    const float d = dist_sq(data.data() + i * data.cols(), query.data(),
                            data.cols());
    if (heap.size() < k) {
      heap.push_back({i, d});
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (k > 0 && d < heap.front().dist_sq) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = {i, d};
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

std::vector<std::vector<Neighbor>> brute_knn_batch(
    const linalg::Matrix& data, const linalg::Matrix& queries, std::size_t k,
    bool self_mode) {
  if (queries.cols() != data.cols()) {
    throw std::invalid_argument("knn: dimension mismatch");
  }
  std::vector<std::vector<Neighbor>> out(queries.rows());
  util::parallel_for_each(
      0, queries.rows(),
      [&](std::size_t q) {
        out[q] = brute_knn(data, queries.row(q), k,
                           self_mode ? static_cast<std::ptrdiff_t>(q) : -1);
      },
      /*grain=*/16);
  return out;
}

std::vector<float> nearest_distances(const linalg::Matrix& data,
                                     const linalg::Matrix& queries) {
  if (queries.cols() != data.cols()) {
    throw std::invalid_argument("knn: dimension mismatch");
  }
  if (data.rows() == 0) throw std::invalid_argument("knn: empty data");
  std::vector<float> out(queries.rows(), 0.0f);
  const std::size_t d = data.cols();
  util::parallel_for(
      0, queries.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t q = lo; q < hi; ++q) {
          const float* qp = queries.data() + q * d;
          float best = dist_sq(data.data(), qp, d);
          for (std::size_t i = 1; i < data.rows(); ++i) {
            const float dd = dist_sq(data.data() + i * d, qp, d);
            best = std::min(best, dd);
          }
          out[q] = std::sqrt(best);
        }
      },
      /*grain=*/8);
  return out;
}

}  // namespace surro::knn
