#pragma once
// Exact k-nearest-neighbour search, brute force, parallel over queries.
// Distances are squared Euclidean over float rows. Used by SMOTE (k=5
// neighbourhoods) and by the DCR privacy metric (1-NN from synthetic to
// train).

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace surro::knn {

struct Neighbor {
  std::size_t index = 0;
  float dist_sq = 0.0f;
};

/// k nearest rows of `data` to `query` (k clamped to data rows). Ascending
/// by distance. `exclude` (optional) is a row index to skip — pass the query
/// row itself for self-neighbourhoods.
[[nodiscard]] std::vector<Neighbor> brute_knn(
    const linalg::Matrix& data, std::span<const float> query, std::size_t k,
    std::ptrdiff_t exclude = -1);

/// All-queries variant: result[i] = k nearest rows of `data` to `queries`
/// row i. When `self_mode` is true, data and queries are the same matrix and
/// each query excludes its own row.
[[nodiscard]] std::vector<std::vector<Neighbor>> brute_knn_batch(
    const linalg::Matrix& data, const linalg::Matrix& queries, std::size_t k,
    bool self_mode = false);

/// 1-NN distances (not squared) from every query row to the data set —
/// exactly what DCR needs. Parallel over queries.
[[nodiscard]] std::vector<float> nearest_distances(
    const linalg::Matrix& data, const linalg::Matrix& queries);

}  // namespace surro::knn
