#pragma once
// KD-tree for exact nearest-neighbour queries in the moderate-dimensional
// encoded space. Faster than brute force when dimensionality is small (the
// numerical-only slice used for DCR's heavy sweeps); the metric layer picks
// between KD-tree and brute force based on dimensionality.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "knn/brute.hpp"
#include "linalg/matrix.hpp"

namespace surro::knn {

class KdTree {
 public:
  /// Builds over the rows of `data` (copied). Throws on empty input.
  explicit KdTree(const linalg::Matrix& data, std::size_t leaf_size = 16);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t dims() const noexcept { return d_; }

  /// k nearest rows (ascending by distance), optionally excluding one index.
  [[nodiscard]] std::vector<Neighbor> query(std::span<const float> point,
                                            std::size_t k,
                                            std::ptrdiff_t exclude = -1) const;

  /// Distance (not squared) to the single nearest row.
  [[nodiscard]] float nearest_distance(std::span<const float> point,
                                       std::ptrdiff_t exclude = -1) const;

  /// Nearest-neighbour distance for every row of `queries`, fanned out in
  /// `chunk_rows`-sized chunks over util::ThreadPool (`threads` 0 = every
  /// pool worker, 1 = serial). Traversal is read-only and each query writes
  /// its own slot, so results are bitwise identical for any thread count.
  [[nodiscard]] std::vector<float> nearest_distances(
      const linalg::Matrix& queries, std::size_t threads = 0,
      std::size_t chunk_rows = 64) const;

 private:
  struct Node {
    std::size_t begin = 0;
    std::size_t end = 0;           // leaf: points_[begin, end)
    std::size_t split_dim = 0;
    float split_val = 0.0f;
    std::int32_t left = -1;        // children as node indices
    std::int32_t right = -1;
    [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
  };

  std::int32_t build(std::size_t begin, std::size_t end, std::size_t depth);
  void search(std::size_t node, std::span<const float> point, std::size_t k,
              std::ptrdiff_t exclude, std::vector<Neighbor>& heap) const;

  std::size_t n_ = 0;
  std::size_t d_ = 0;
  std::size_t leaf_size_;
  std::vector<float> points_;        // permuted row storage
  std::vector<std::size_t> index_;   // permuted -> original row index
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace surro::knn
