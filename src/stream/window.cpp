#include "stream/window.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace surro::stream {

WindowStream::WindowStream(const tabular::Table& source, WindowConfig cfg)
    : source_(&source), cfg_(std::move(cfg)) {
  if (!(cfg_.window_days > 0.0)) {
    throw std::invalid_argument("window stream: window_days must be > 0");
  }
  if (!(cfg_.stride_days > 0.0)) {
    throw std::invalid_argument("window stream: stride_days must be > 0");
  }
  const std::size_t time_col = source.schema().index_of(cfg_.time_column);
  const auto times = source.numerical(time_col);

  // Event order: by (time, source row) so overlapping timestamps tie-break
  // deterministically and window row lists are reproducible.
  std::vector<std::size_t> order(times.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&times](std::size_t a, std::size_t b) {
              return times[a] != times[b] ? times[a] < times[b] : a < b;
            });
  for (const std::size_t r : order) {
    horizon_ = std::max(horizon_, times[r]);
  }

  // Window w covers [w·stride, w·stride + window). The last window is the
  // first whose (half-open) end strictly passes the horizon, so every
  // event — including one landing exactly on a window boundary — falls in
  // at least one window, and empty sources still yield one (empty) window.
  std::size_t num_windows = 1;
  while (static_cast<double>(num_windows - 1) * cfg_.stride_days +
             cfg_.window_days <=
         horizon_) {
    ++num_windows;
  }

  windows_.reserve(num_windows);
  double prev_end = 0.0;
  for (std::size_t w = 0; w < num_windows; ++w) {
    CollectionWindow win;
    win.index = w;
    win.t_begin = static_cast<double>(w) * cfg_.stride_days;
    win.t_end = win.t_begin + cfg_.window_days;
    for (const std::size_t r : order) {
      const double t = times[r];
      if (t < win.t_begin || t >= win.t_end) continue;
      win.rows.push_back(r);
      // The delta is everything that arrived after the previous window
      // closed — a suffix of the time-sorted row list.
      if (w == 0 || t >= prev_end) win.delta_rows.push_back(r);
    }
    prev_end = win.t_end;
    windows_.push_back(std::move(win));
  }
}

tabular::Table WindowStream::materialize(
    std::span<const std::size_t> rows) const {
  return source_->select_rows(rows);
}

}  // namespace surro::stream
