#pragma once
// Streaming collection windows — the paper's setting is a *continuously
// growing* data collection, but the batch experiment pipeline treats one
// collection window as a static table. WindowStream models the stream: it
// slides (stride < window) or tumbles (stride == window) a fixed-length
// window over a temporal table's creation-time column and, for every
// window, exposes both the full row set and the *delta* — the rows that
// arrived since the previous window closed. The delta is what an
// incremental model refresh (TabularGenerator::warm_fit) consumes; the
// full window is what a cold refit consumes, which is exactly the
// cost asymmetry the stream evaluation measures.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tabular/table.hpp"

namespace surro::stream {

struct WindowConfig {
  /// Window length in days (must be > 0).
  double window_days = 7.0;
  /// Forward step between consecutive windows in days (must be > 0).
  /// stride == window tumbles; stride < window slides with overlap.
  double stride_days = 7.0;
  /// Name of the numerical column holding event times in days.
  std::string time_column = "creationtime";
};

/// One position of the window over the stream. Row index lists refer to the
/// source table and are sorted by (time, row index), so `delta_rows` is
/// always a suffix of `rows`.
struct CollectionWindow {
  std::size_t index = 0;
  double t_begin = 0.0;  // window covers [t_begin, t_end)
  double t_end = 0.0;
  std::vector<std::size_t> rows;        // all source rows in the window
  std::vector<std::size_t> delta_rows;  // rows that arrived after the
                                        // previous window closed (first
                                        // window: every row)
};

/// Precomputed window positions over one temporal table. The source table
/// must outlive the stream.
class WindowStream {
 public:
  /// Throws std::invalid_argument for non-positive window/stride and
  /// std::out_of_range when the time column is missing.
  WindowStream(const tabular::Table& source, WindowConfig cfg);

  [[nodiscard]] std::size_t num_windows() const noexcept {
    return windows_.size();
  }
  [[nodiscard]] const CollectionWindow& window(std::size_t i) const {
    return windows_.at(i);
  }
  [[nodiscard]] const std::vector<CollectionWindow>& windows() const noexcept {
    return windows_;
  }

  /// Horizon covered by the stream: the last event time (0 for an empty
  /// source).
  [[nodiscard]] double horizon_days() const noexcept { return horizon_; }
  [[nodiscard]] const WindowConfig& config() const noexcept { return cfg_; }

  /// Copy the given source rows into a standalone table (schema and
  /// vocabularies preserved).
  [[nodiscard]] tabular::Table materialize(
      std::span<const std::size_t> rows) const;

 private:
  const tabular::Table* source_;
  WindowConfig cfg_;
  double horizon_ = 0.0;
  std::vector<CollectionWindow> windows_;
};

}  // namespace surro::stream
