#include "stream/stream_eval.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <set>
#include <stdexcept>
#include <tuple>

#include "linalg/simd.hpp"
#include "metrics/correlation.hpp"
#include "metrics/dcr.hpp"
#include "metrics/jsd.hpp"
#include "metrics/wasserstein.hpp"
#include "panda/filters.hpp"
#include "panda/generator.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace surro::stream {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::string scenario_id(double stride, DriftKind drift, RefreshMode mode) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "s%g_%s_%s", stride,
                drift_kind_name(drift), refresh_mode_name(mode));
  return buf;
}

std::vector<std::string> resolve_models(const eval::ExperimentConfig& base,
                                        const StreamAxes& axes) {
  const auto& keys =
      axes.model_keys.empty() ? base.model_keys : axes.model_keys;
  if (keys.empty()) {
    throw std::invalid_argument("stream matrix: empty model set");
  }
  auto& registry = models::GeneratorRegistry::instance();
  for (const auto& key : keys) {
    if (!registry.contains(key)) {
      throw std::invalid_argument("stream matrix: unknown model '" + key +
                                  "'");
    }
  }
  return keys;
}

}  // namespace

std::vector<StreamScenario> expand_stream_scenarios(const StreamAxes& axes,
                                                    const StreamOptions& opts) {
  if (!(opts.window_days > 0.0)) {
    throw std::invalid_argument("stream matrix: window_days must be > 0");
  }
  const std::vector<double> strides =
      axes.stride_days.empty() ? std::vector<double>{opts.window_days}
                               : axes.stride_days;
  const std::vector<DriftKind> drifts =
      axes.drifts.empty() ? std::vector<DriftKind>{DriftKind::kNone}
                          : axes.drifts;
  const std::vector<RefreshMode> modes =
      axes.refresh.empty()
          ? std::vector<RefreshMode>{RefreshMode::kCold, RefreshMode::kWarm}
          : axes.refresh;

  std::vector<StreamScenario> out;
  std::set<std::tuple<double, int, int>> seen;
  for (const double stride : strides) {
    if (!(stride > 0.0)) {
      throw std::invalid_argument("stream matrix: stride must be > 0");
    }
    for (const DriftKind drift : drifts) {
      for (const RefreshMode mode : modes) {
        if (!seen.insert({stride, static_cast<int>(drift),
                          static_cast<int>(mode)})
                 .second) {
          continue;
        }
        StreamScenario s;
        s.id = scenario_id(stride, drift, mode);
        s.stride_days = stride;
        s.drift = drift;
        s.refresh = mode;
        out.push_back(std::move(s));
      }
    }
  }
  return out;
}

StreamMatrixResult run_stream_matrix(const eval::ExperimentConfig& base,
                                     const StreamAxes& axes,
                                     const StreamOptions& opts) {
  util::Stopwatch total_watch;
  StreamMatrixResult result;
  result.model_keys = resolve_models(base, axes);
  const auto scenarios = expand_stream_scenarios(axes, opts);
  auto& registry = models::GeneratorRegistry::instance();
  auto& pool = util::ThreadPool::global();

  // The simulated collection stream is generated once and shared by every
  // scenario — scenarios differ in how they window, drift, and refresh it,
  // never in the underlying arrivals.
  panda::RecordGenerator generator(base.data);
  const tabular::Table source =
      panda::build_job_table(generator.generate(), generator.catalog());
  result.source_rows = source.num_rows();

  // Window prep depends on (stride, drift) only — the refresh axis is the
  // innermost expansion dimension, so cold/warm scenario pairs reuse the
  // same materialized + drifted tables instead of rebuilding them.
  std::optional<WindowStream> windows;
  std::vector<tabular::Table> window_tables;
  std::vector<tabular::Table> delta_tables;
  std::vector<std::size_t> drifted_rows;
  std::vector<double> severities;
  double cached_stride = 0.0;
  DriftKind cached_drift = DriftKind::kNone;

  for (const auto& scenario : scenarios) {
    util::Stopwatch scenario_watch;
    StreamRun run;
    run.scenario = scenario;

    if (!windows.has_value() || scenario.stride_days != cached_stride ||
        scenario.drift != cached_drift) {
      cached_stride = scenario.stride_days;
      cached_drift = scenario.drift;
      WindowConfig wcfg;
      wcfg.window_days = opts.window_days;
      wcfg.stride_days = scenario.stride_days;
      windows.emplace(source, wcfg);

      // Materialize + drift each window once; every model (and every
      // refresh regime) shares the result.
      DriftConfig dcfg;
      dcfg.kind = scenario.drift;
      dcfg.intensity = opts.drift_intensity;
      dcfg.seed = base.seed ^ 0xD21F7ULL;
      const std::size_t n = windows->num_windows();
      window_tables.assign(n, {});
      delta_tables.assign(n, {});
      drifted_rows.assign(n, 0);
      severities.assign(n, 0.0);
      for (std::size_t w = 0; w < n; ++w) {
        const CollectionWindow& win = windows->window(w);
        auto drifted = apply_drift(windows->materialize(win.rows), w, dcfg);
        drifted_rows[w] = drifted.affected_rows;
        severities[w] = drifted.severity;
        // The delta is the time-sorted suffix of the window plus anything
        // a rate ramp appended: fresh arrivals either way, drifted exactly
        // as the full window copy is.
        const std::size_t delta_start =
            win.rows.size() - win.delta_rows.size();
        std::vector<std::size_t> delta_idx;
        delta_idx.reserve(drifted.table.num_rows() - delta_start);
        for (std::size_t i = delta_start; i < drifted.table.num_rows();
             ++i) {
          delta_idx.push_back(i);
        }
        delta_tables[w] = drifted.table.select_rows(delta_idx);
        window_tables[w] = std::move(drifted.table);
      }
    }
    result.horizon_days = windows->horizon_days();
    run.num_windows = windows->num_windows();
    const std::size_t n_windows = windows->num_windows();

    for (const auto& key : result.model_keys) {
      StreamModelTrack track;
      track.model_key = key;
      track.model_name = registry.info(key).display_name;
      track.windows.resize(n_windows);

      RefresherConfig rcfg;
      rcfg.model_key = key;
      rcfg.budget = base.budget;
      rcfg.seed = base.seed;
      rcfg.mode = scenario.refresh;
      ModelRefresher refresher(rcfg);

      // Synthetic tables must outlive the concurrent scoring tasks.
      std::vector<tabular::Table> synths(n_windows);
      util::TaskGroup scoring;
      try {
        for (std::size_t w = 0; w < n_windows; ++w) {
          StreamWindowCell& cell = track.windows[w];
          const CollectionWindow& win = windows->window(w);
          cell.window_index = w;
          cell.t_begin = win.t_begin;
          cell.t_end = win.t_end;
          cell.window_rows = window_tables[w].num_rows();
          cell.delta_rows = delta_tables[w].num_rows();
          cell.drifted_rows = drifted_rows[w];
          cell.drift_severity = severities[w];
          cell.wd = cell.jsd = cell.diff_corr = cell.dcr = kNaN;
          if (cell.window_rows < 2) {
            // Too small to train on; the refresh chain pauses here and
            // resumes (or cold-starts) at the next populated window.
            cell.skipped = true;
            continue;
          }

          cell.refresh =
              refresher.refresh(window_tables[w], delta_tables[w], w);
          track.total_refresh_seconds += cell.refresh.seconds;

          models::SampleRequest request;
          request.rows =
              opts.synth_rows > 0 ? opts.synth_rows : cell.window_rows;
          request.seed = models::derive_chunk_seed(base.seed ^ 0x57A3ULL, w);
          request.chunk_rows = base.sample_chunk_rows;
          request.threads = base.sample_threads;
          util::Stopwatch sample_watch;
          refresher.model().sample_into(synths[w], request);
          cell.sample_seconds = sample_watch.seconds();
          cell.synth_rows = synths[w].num_rows();
          cell.sample_rows_per_sec =
              cell.sample_seconds > 0.0
                  ? static_cast<double>(cell.synth_rows) / cell.sample_seconds
                  : 0.0;
          track.total_sample_seconds += cell.sample_seconds;

          // Fidelity vs the drifted window this model was (or should have
          // been) tracking. Each cell writes only its own slot, so the
          // concurrent fan-out is the serial computation reordered.
          const auto score_cell = [&base, &opts, &cell,
                                   window = &window_tables[w],
                                   synth = &synths[w]] {
            util::Stopwatch score_watch;
            cell.wd = metrics::mean_wasserstein(*window, *synth,
                                                base.metric_threads);
            cell.jsd = metrics::mean_jsd(*window, *synth,
                                         base.metric_threads);
            cell.diff_corr = metrics::diff_corr(*window, *synth,
                                                base.metric_threads);
            if (opts.score_dcr) {
              metrics::DcrConfig dcr = base.dcr;
              if (dcr.threads == 0) dcr.threads = base.metric_threads;
              cell.dcr = metrics::mean_dcr(*window, *synth, dcr);
            }
            cell.score_seconds = score_watch.seconds();
          };
          if (opts.concurrent_scoring) {
            pool.submit(scoring, score_cell);
          } else {
            score_cell();
          }
        }
      } catch (...) {
        // In-flight scoring tasks reference this scope; drain them before
        // unwinding. The original exception wins.
        try {
          pool.wait(scoring);
        } catch (...) {
        }
        throw;
      }
      pool.wait(scoring);

      if (opts.verbose) {
        util::log_info(
            "stream %s %s: %zu windows, refresh %.2fs, sample %.2fs",
            scenario.id.c_str(), track.model_name.c_str(), n_windows,
            track.total_refresh_seconds, track.total_sample_seconds);
      }
      run.tracks.push_back(std::move(track));
    }
    run.wall_seconds = scenario_watch.seconds();
    result.runs.push_back(std::move(run));
  }
  result.wall_seconds = total_watch.seconds();
  return result;
}

std::string stream_to_json(const eval::ExperimentConfig& base,
                           const StreamOptions& opts,
                           const StreamMatrixResult& result) {
  util::JsonWriter w;
  w.begin_object();
  w.kv("schema_version", 1);
  w.kv("kind", "stream_matrix");
  w.kv("simd_backend", linalg::simd::active_backend_name());
  w.key("config").begin_object();
  w.kv("window_days", opts.window_days);
  w.kv("drift_intensity", opts.drift_intensity);
  w.kv("synth_rows", opts.synth_rows);
  w.kv("score_dcr", opts.score_dcr);
  w.kv("horizon_days", base.data.model.days);
  w.kv("base_jobs_per_day", base.data.model.base_jobs_per_day);
  w.kv("epochs", base.budget.epochs);
  w.kv("seed", base.seed);
  w.kv("sample_threads", base.sample_threads);
  w.kv("metric_threads", base.metric_threads);
  w.end_object();
  w.key("models").begin_array();
  for (const auto& key : result.model_keys) w.value(key);
  w.end_array();
  w.kv("source_rows", result.source_rows);
  w.kv("stream_horizon_days", result.horizon_days);
  w.key("scenarios").begin_array();
  for (const auto& run : result.runs) {
    w.begin_object();
    w.kv("id", run.scenario.id);
    w.kv("stride_days", run.scenario.stride_days);
    w.kv("drift", drift_kind_name(run.scenario.drift));
    w.kv("refresh", refresh_mode_name(run.scenario.refresh));
    w.kv("num_windows", run.num_windows);
    w.kv("wall_seconds", run.wall_seconds);
    w.key("tracks").begin_array();
    for (const auto& track : run.tracks) {
      w.begin_object();
      w.kv("model_key", track.model_key);
      w.kv("model", track.model_name);
      w.kv("total_refresh_seconds", track.total_refresh_seconds);
      w.kv("total_sample_seconds", track.total_sample_seconds);
      w.key("windows").begin_array();
      for (const auto& cell : track.windows) {
        w.begin_object();
        w.kv("index", cell.window_index);
        w.kv("t_begin", cell.t_begin);
        w.kv("t_end", cell.t_end);
        w.kv("window_rows", cell.window_rows);
        w.kv("delta_rows", cell.delta_rows);
        w.kv("drifted_rows", cell.drifted_rows);
        w.kv("drift_severity", cell.drift_severity);
        w.kv("skipped", cell.skipped);
        w.kv("cold_start", cell.refresh.cold_start);
        w.kv("trained_rows", cell.refresh.trained_rows);
        w.kv("refresh_seconds", cell.refresh.seconds);
        w.kv("refresh_rows_per_sec", cell.refresh.rows_per_sec);
        w.kv("synth_rows", cell.synth_rows);
        w.kv("sample_seconds", cell.sample_seconds);
        w.kv("sample_rows_per_sec", cell.sample_rows_per_sec);
        w.kv("score_seconds", cell.score_seconds);
        w.kv("wd", cell.wd);
        w.kv("jsd", cell.jsd);
        w.kv("diff_corr", cell.diff_corr);
        w.kv("dcr", cell.dcr);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.kv("wall_seconds", result.wall_seconds);
  w.end_object();
  return w.str();
}

std::string render_stream(const StreamMatrixResult& result) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-24s %-10s %4s %9s %9s %9s %9s %9s\n", "scenario", "model",
                "win", "refr s", "rows/s", "WD first", "WD last",
                "JSD last");
  out += buf;
  out += std::string(92, '-');
  out += '\n';
  for (const auto& run : result.runs) {
    for (const auto& track : run.tracks) {
      const StreamWindowCell* first = nullptr;
      const StreamWindowCell* last = nullptr;
      double trained = 0.0;
      for (const auto& cell : track.windows) {
        if (cell.skipped) continue;
        if (first == nullptr) first = &cell;
        last = &cell;
        trained += static_cast<double>(cell.refresh.trained_rows);
      }
      const double rows_per_sec = track.total_refresh_seconds > 0.0
                                      ? trained / track.total_refresh_seconds
                                      : 0.0;
      std::snprintf(buf, sizeof(buf),
                    "%-24s %-10s %4zu %9.3f %9.0f %9.3f %9.3f %9.3f\n",
                    run.scenario.id.c_str(), track.model_name.c_str(),
                    run.num_windows, track.total_refresh_seconds,
                    rows_per_sec, first != nullptr ? first->wd : 0.0,
                    last != nullptr ? last->wd : 0.0,
                    last != nullptr ? last->jsd : 0.0);
      out += buf;
    }
  }
  return out;
}

}  // namespace surro::stream
