#include "stream/refresh.hpp"

#include <stdexcept>

#include "util/timer.hpp"

namespace surro::stream {

const char* refresh_mode_name(RefreshMode mode) noexcept {
  return mode == RefreshMode::kWarm ? "warm" : "cold";
}

RefreshMode parse_refresh_mode(std::string_view name) {
  if (name == "cold") return RefreshMode::kCold;
  if (name == "warm") return RefreshMode::kWarm;
  throw std::invalid_argument("unknown refresh mode '" + std::string(name) +
                              "' (have: cold, warm)");
}

ModelRefresher::ModelRefresher(RefresherConfig cfg) : cfg_(std::move(cfg)) {
  // Validate the key eagerly so a bad axis fails before any training runs.
  (void)models::GeneratorRegistry::instance().info(cfg_.model_key);
}

RefreshStats ModelRefresher::refresh(const tabular::Table& window,
                                     const tabular::Table& delta,
                                     std::size_t window_index) {
  RefreshStats stats;
  stats.window_index = window_index;
  stats.mode = cfg_.mode;

  const bool cold =
      cfg_.mode == RefreshMode::kCold || model_ == nullptr;
  util::Stopwatch watch;
  if (cold) {
    // A fresh instance per window keeps cold refreshes independent and
    // deterministic in (seed, window content) — exactly the batch pipeline
    // replayed at this window.
    model_ = models::make_generator(cfg_.model_key, cfg_.budget, cfg_.seed);
    model_->fit(window, cfg_.warm.fit);
    stats.cold_start = true;
    stats.trained_rows = window.num_rows();
  } else {
    model_->warm_fit(delta, cfg_.warm);
    stats.trained_rows = delta.num_rows();
  }
  stats.seconds = watch.seconds();
  stats.rows_per_sec =
      stats.seconds > 0.0
          ? static_cast<double>(stats.trained_rows) / stats.seconds
          : 0.0;
  return stats;
}

}  // namespace surro::stream
