#pragma once
// ModelRefresher: keeps one surrogate current as collection windows stream
// past, in one of two regimes —
//
//   cold — every window trains a brand-new model on the full window (the
//          batch pipeline's behaviour, replayed per window);
//   warm — the first window cold-starts, every later window feeds only the
//          *delta* rows to TabularGenerator::warm_fit, resuming from the
//          retained weights and optimizer moments (the ParK-style
//          partition-then-refresh lever: incremental per-partition updates
//          instead of a global refit).
//
// Every refresh is timed; RefreshStats is the refresh-seconds / rows-per-
// second evidence the stream evaluation and its JSON artifact report.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "models/generator.hpp"

namespace surro::stream {

enum class RefreshMode { kCold, kWarm };

/// Stable axis-value spelling ("cold" / "warm").
[[nodiscard]] const char* refresh_mode_name(RefreshMode mode) noexcept;
/// Inverse of refresh_mode_name; throws std::invalid_argument.
[[nodiscard]] RefreshMode parse_refresh_mode(std::string_view name);

struct RefresherConfig {
  /// Registry key of the surrogate to keep fresh.
  std::string model_key = "smote";
  models::TrainBudget budget;
  std::uint64_t seed = 42;
  RefreshMode mode = RefreshMode::kCold;
  /// Warm-path knobs (refresh epochs, learning-rate scale).
  models::RefreshOptions warm;
};

/// Wall-clock accounting of one refresh step.
struct RefreshStats {
  std::size_t window_index = 0;
  RefreshMode mode = RefreshMode::kCold;
  /// True when this step ran a full fit (every cold step; warm window 0).
  bool cold_start = false;
  /// Rows the refresh consumed: the full window (cold) or the delta (warm).
  std::size_t trained_rows = 0;
  double seconds = 0.0;
  double rows_per_sec = 0.0;
};

class ModelRefresher {
 public:
  /// Throws std::invalid_argument for unknown model keys.
  explicit ModelRefresher(RefresherConfig cfg);

  /// Absorb one window: `window` is the full (possibly drifted) window
  /// table, `delta` the rows that arrived since the previous refresh. Cold
  /// mode refits on `window`; warm mode resumes on `delta` (window 0 cold-
  /// starts, an empty delta is a timed no-op).
  RefreshStats refresh(const tabular::Table& window,
                       const tabular::Table& delta,
                       std::size_t window_index);

  /// The current model (fitted after the first refresh).
  [[nodiscard]] models::TabularGenerator& model() { return *model_; }
  [[nodiscard]] const models::TabularGenerator& model() const {
    return *model_;
  }
  [[nodiscard]] const RefresherConfig& config() const noexcept {
    return cfg_;
  }

 private:
  RefresherConfig cfg_;
  std::unique_ptr<models::TabularGenerator> model_;
};

}  // namespace surro::stream
