#pragma once
// Per-window drift scenario families for the streaming workload. Each
// family perturbs a collection window with a severity that ramps with the
// window index, modelling the ways a production stream actually moves away
// from the distribution a surrogate was fitted on:
//
//   * mean_shift      — numerical features drift upward by a growing
//                       multiple of their per-window standard deviation
//                       (e.g. jobs gradually getting heavier);
//   * category_churn  — a growing fraction of rows has categorical codes
//                       rotated inside the fitted vocabulary (site/project
//                       popularity shifting);
//   * rate_ramp       — the arrival rate ramps up: extra rows are drawn
//                       with replacement from the window (a campaign surge;
//                       stresses refresh cost rather than the feature
//                       distribution);
//   * anomaly_burst   — a growing fraction of rows is corrupted with the
//                       failure signatures of anomaly::inject_anomalies
//                       (layered directly on src/anomaly/inject).
//
// Every family is deterministic in (config seed, window index).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tabular/table.hpp"

namespace surro::stream {

enum class DriftKind {
  kNone,
  kMeanShift,
  kCategoryChurn,
  kRateRamp,
  kAnomalyBurst,
};

/// Stable axis-value spelling ("none", "mean_shift", ...).
[[nodiscard]] const char* drift_kind_name(DriftKind kind) noexcept;
/// Inverse of drift_kind_name; throws std::invalid_argument.
[[nodiscard]] DriftKind parse_drift_kind(std::string_view name);
/// Every family, in declaration order (CLI listings, tests).
[[nodiscard]] std::vector<DriftKind> all_drift_kinds();

struct DriftConfig {
  DriftKind kind = DriftKind::kNone;
  /// Severity at full strength: std-dev multiples (mean_shift), affected
  /// row fraction (category_churn, anomaly_burst), or extra-row fraction
  /// (rate_ramp).
  double intensity = 0.15;
  /// Windows until the ramp reaches full strength (>= 1); severity at
  /// window w is intensity · min(1, (w + 1) / full_strength_window).
  std::size_t full_strength_window = 6;
  std::uint64_t seed = 99;
};

struct DriftResult {
  tabular::Table table;            // drifted copy of the window
  std::size_t affected_rows = 0;   // rows perturbed / appended
  double severity = 0.0;           // realized severity at this window
};

/// Realized severity of `cfg` at a window index (exposed for tests/JSON).
[[nodiscard]] double drift_severity(const DriftConfig& cfg,
                                    std::size_t window_index);

/// Apply the configured family to one materialized window. kNone returns
/// an unmodified copy. The creation-time column (when present) is never
/// perturbed, so windowing semantics survive every family.
[[nodiscard]] DriftResult apply_drift(const tabular::Table& window,
                                      std::size_t window_index,
                                      const DriftConfig& cfg);

}  // namespace surro::stream
