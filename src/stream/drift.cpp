#include "stream/drift.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "anomaly/inject.hpp"
#include "panda/filters.hpp"
#include "util/rng.hpp"

namespace surro::stream {

namespace {

/// Per-(seed, window) RNG stream, decorrelated via SplitMix64.
util::Rng window_rng(std::uint64_t seed, std::size_t window_index) {
  std::uint64_t state = seed ^ (0xD1F7C0DEULL + window_index);
  (void)util::splitmix64(state);
  return util::Rng(util::splitmix64(state));
}

/// Numerical columns eligible for feature drift: everything except the
/// creation-time axis the window stream slices on.
std::vector<std::size_t> drifting_numericals(const tabular::Table& t) {
  std::vector<std::size_t> out;
  for (const std::size_t c : t.schema().numerical_indices()) {
    if (t.schema().column(c).name == panda::features::kCreationTime) continue;
    out.push_back(c);
  }
  return out;
}

void apply_mean_shift(tabular::Table& t, double severity, util::Rng& rng,
                      std::size_t& affected) {
  for (const std::size_t c : drifting_numericals(t)) {
    auto col = t.numerical_mut(c);
    const std::size_t n = col.size();
    if (n == 0) continue;
    double mean = 0.0;
    for (const double v : col) mean += v;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (const double v : col) var += (v - mean) * (v - mean);
    const double sd = std::sqrt(var / static_cast<double>(n));
    if (sd <= 0.0) continue;
    const double shift = severity * sd;
    // Jitter keeps the shift from being a pure translation the quantile
    // transform could absorb exactly.
    for (double& v : col) v += shift * (0.75 + 0.5 * rng.uniform());
  }
  affected = t.num_rows();
}

void apply_category_churn(tabular::Table& t, double severity,
                          std::size_t window_index, util::Rng& rng,
                          std::size_t& affected) {
  const auto cats = t.schema().categorical_indices();
  const std::size_t n = t.num_rows();
  for (std::size_t r = 0; r < n; ++r) {
    if (!rng.bernoulli(std::min(severity, 1.0))) continue;
    ++affected;
    for (const std::size_t c : cats) {
      const auto card = static_cast<std::int32_t>(t.cardinality(c));
      if (card < 2) continue;
      // Window-dependent rotation inside the existing vocabulary: labels
      // survive (no unseen categories), popularity shifts.
      const auto rot =
          static_cast<std::int32_t>(1 + window_index % (card - 1));
      auto codes = t.categorical_mut(c);
      codes[r] = (codes[r] + rot) % card;
    }
  }
}

void apply_rate_ramp(tabular::Table& t, double severity, util::Rng& rng,
                     std::size_t& affected) {
  const std::size_t n = t.num_rows();
  if (n == 0) return;
  const auto extra = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * severity));
  if (extra == 0) return;
  std::vector<std::size_t> picks(extra);
  for (auto& p : picks) {
    p = static_cast<std::size_t>(rng.uniform_index(n));
  }
  t.append_table(t.select_rows(picks));
  affected = extra;
}

void apply_anomaly_burst(tabular::Table& t, double severity,
                         std::uint64_t seed, std::size_t window_index,
                         std::size_t& affected) {
  if (t.num_rows() == 0) return;
  anomaly::InjectionConfig icfg;
  icfg.fraction = std::min(severity, 0.5);
  icfg.seed = seed ^ (0xB0057ULL + window_index);
  auto injected = anomaly::inject_anomalies(t, icfg);
  affected = injected.num_anomalies;
  t = std::move(injected.table);
}

}  // namespace

const char* drift_kind_name(DriftKind kind) noexcept {
  switch (kind) {
    case DriftKind::kNone: return "none";
    case DriftKind::kMeanShift: return "mean_shift";
    case DriftKind::kCategoryChurn: return "category_churn";
    case DriftKind::kRateRamp: return "rate_ramp";
    case DriftKind::kAnomalyBurst: return "anomaly_burst";
  }
  return "none";
}

DriftKind parse_drift_kind(std::string_view name) {
  for (const DriftKind kind : all_drift_kinds()) {
    if (name == drift_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown drift kind '" + std::string(name) +
                              "' (have: none, mean_shift, category_churn, "
                              "rate_ramp, anomaly_burst)");
}

std::vector<DriftKind> all_drift_kinds() {
  return {DriftKind::kNone, DriftKind::kMeanShift, DriftKind::kCategoryChurn,
          DriftKind::kRateRamp, DriftKind::kAnomalyBurst};
}

double drift_severity(const DriftConfig& cfg, std::size_t window_index) {
  if (cfg.kind == DriftKind::kNone) return 0.0;
  const auto full = static_cast<double>(
      std::max<std::size_t>(cfg.full_strength_window, 1));
  const double ramp =
      std::min(1.0, static_cast<double>(window_index + 1) / full);
  return cfg.intensity * ramp;
}

DriftResult apply_drift(const tabular::Table& window,
                        std::size_t window_index, const DriftConfig& cfg) {
  DriftResult out;
  out.table = window;  // all families perturb a copy
  out.severity = drift_severity(cfg, window_index);
  if (cfg.kind == DriftKind::kNone || out.severity <= 0.0 ||
      window.num_rows() == 0) {
    return out;
  }
  util::Rng rng = window_rng(cfg.seed, window_index);
  switch (cfg.kind) {
    case DriftKind::kNone:
      break;
    case DriftKind::kMeanShift:
      apply_mean_shift(out.table, out.severity, rng, out.affected_rows);
      break;
    case DriftKind::kCategoryChurn:
      apply_category_churn(out.table, out.severity, window_index, rng,
                           out.affected_rows);
      break;
    case DriftKind::kRateRamp:
      apply_rate_ramp(out.table, out.severity, rng, out.affected_rows);
      break;
    case DriftKind::kAnomalyBurst:
      apply_anomaly_burst(out.table, out.severity, cfg.seed, window_index,
                          out.affected_rows);
      break;
  }
  return out;
}

}  // namespace surro::stream
