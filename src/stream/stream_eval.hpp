#pragma once
// Stream-matrix evaluation: the scenario engine's axes extended to the
// streaming workload. A scenario here is (stride, drift family, refresh
// regime); every scenario replays the same simulated collection stream
// through a WindowStream, drifts each window with the scenario's family,
// keeps every model current with a ModelRefresher (cold refit vs warm
// delta refresh), samples per window, and scores per-window fidelity —
// the *fidelity decay curve* — through the existing metric stack on the
// thread pool. Refresh wall-clock and rows/sec land next to the scores,
// so one JSON artifact answers both "how fast does fidelity decay under
// drift?" and "what does keeping the model fresh cost, cold vs warm?".

#include <cstdint>
#include <string>
#include <vector>

#include "eval/experiment.hpp"
#include "stream/drift.hpp"
#include "stream/refresh.hpp"
#include "stream/window.hpp"

namespace surro::stream {

/// One operating point expanded from StreamAxes.
struct StreamScenario {
  std::string id;  // e.g. "t7_mean_shift_warm"
  double stride_days = 7.0;
  DriftKind drift = DriftKind::kNone;
  RefreshMode refresh = RefreshMode::kCold;
};

/// Axis values swept by the stream matrix. Empty axes pin defaults:
/// stride = the window length (tumbling), drift = none, refresh = both
/// regimes, models = the base config's model set.
struct StreamAxes {
  std::vector<double> stride_days;
  std::vector<DriftKind> drifts;
  std::vector<RefreshMode> refresh;
  std::vector<std::string> model_keys;
};

struct StreamOptions {
  /// Window length in days (every scenario shares it; strides sweep).
  double window_days = 7.0;
  /// Drift severity at full strength (see DriftConfig::intensity).
  double drift_intensity = 0.15;
  /// Synthetic rows per window (0 = match the window's row count).
  std::size_t synth_rows = 0;
  /// Score DCR per window (off by default: the nearest-neighbour sweep is
  /// the most expensive per-window metric).
  bool score_dcr = false;
  /// Score window cells concurrently via TaskGroup (results are bitwise
  /// identical to serial scoring — every cell writes its own slot).
  bool concurrent_scoring = true;
  bool verbose = false;
};

/// Cartesian expansion (strides × drifts × refresh), duplicates removed
/// while preserving first-seen order. Throws on invalid values or (via the
/// registry) unknown model keys.
[[nodiscard]] std::vector<StreamScenario> expand_stream_scenarios(
    const StreamAxes& axes, const StreamOptions& opts);

/// One (scenario, model, window) cell of the stream matrix.
struct StreamWindowCell {
  std::size_t window_index = 0;
  double t_begin = 0.0;
  double t_end = 0.0;
  std::size_t window_rows = 0;   // after drift
  std::size_t delta_rows = 0;    // rows handed to a warm refresh
  std::size_t drifted_rows = 0;  // rows the drift family touched/appended
  double drift_severity = 0.0;
  RefreshStats refresh;          // zeroed when the window was skipped
  bool skipped = false;          // window too small to train on
  std::size_t synth_rows = 0;
  double sample_seconds = 0.0;
  double sample_rows_per_sec = 0.0;
  double score_seconds = 0.0;
  // Per-window fidelity vs the drifted window (NaN when skipped; dcr also
  // NaN when StreamOptions::score_dcr is off).
  double wd = 0.0;
  double jsd = 0.0;
  double diff_corr = 0.0;
  double dcr = 0.0;
};

/// One model's trajectory through one scenario.
struct StreamModelTrack {
  std::string model_key;
  std::string model_name;
  std::vector<StreamWindowCell> windows;
  double total_refresh_seconds = 0.0;
  double total_sample_seconds = 0.0;
};

/// One scenario's full result: one track per model, in model-set order.
struct StreamRun {
  StreamScenario scenario;
  std::size_t num_windows = 0;
  double wall_seconds = 0.0;
  std::vector<StreamModelTrack> tracks;
};

struct StreamMatrixResult {
  std::vector<std::string> model_keys;  // the resolved model set
  std::size_t source_rows = 0;          // the simulated stream's row count
  double horizon_days = 0.0;
  std::vector<StreamRun> runs;          // expansion order
  double wall_seconds = 0.0;
};

/// Run every scenario × model × window cell. The base config supplies the
/// stream simulation (data model + seed), training budgets, sampling grain,
/// and metric thread caps; axes/opts supply the streaming dimensions.
[[nodiscard]] StreamMatrixResult run_stream_matrix(
    const eval::ExperimentConfig& base, const StreamAxes& axes,
    const StreamOptions& opts = {});

/// Machine-readable artifact (kind "stream_matrix"; see docs/CLI.md).
[[nodiscard]] std::string stream_to_json(const eval::ExperimentConfig& base,
                                         const StreamOptions& opts,
                                         const StreamMatrixResult& result);

/// Compact ASCII summary (one line per scenario × model, plus decay curve
/// end-points).
[[nodiscard]] std::string render_stream(const StreamMatrixResult& result);

}  // namespace surro::stream
