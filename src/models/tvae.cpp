#include "models/tvae.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/losses.hpp"
#include "util/logging.hpp"
#include "util/serialize.hpp"

namespace surro::models {

Tvae::Tvae(TvaeConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

void Tvae::fit(const tabular::Table& train, const FitOptions& opts) {
  if (fitted_) throw std::logic_error("tvae: fit called twice");
  encoder_map_.fit(train, cfg_.num_quantiles);
  const std::size_t width = encoder_map_.encoded_width();
  const std::size_t latent = cfg_.latent_dim;

  encoder_ = nn::make_mlp(width, cfg_.hidden, 2 * latent,
                          nn::Activation::kReLU, rng_);
  decoder_ = nn::make_mlp(latent, cfg_.hidden, width,
                          nn::Activation::kReLU, rng_);

  const linalg::Matrix data = encoder_map_.encode(train);
  const std::size_t n = data.rows();
  const std::size_t batch =
      std::min<std::size_t>(cfg_.budget.batch_size, n);
  const std::size_t steps_per_epoch = (n + batch - 1) / batch;

  opt_ = std::make_unique<nn::Adam>(cfg_.budget.learning_rate);
  opt_->add_params(encoder_.params());
  opt_->add_params(decoder_.params());
  opt_steps_ = 0;
  const nn::CosineSchedule schedule(cfg_.budget.learning_rate,
                                    cfg_.budget.epochs * steps_per_epoch);
  train_epochs(data, cfg_.budget.epochs, schedule, opts);
  fitted_ = true;
}

void Tvae::warm_fit(const tabular::Table& delta, const RefreshOptions& opts) {
  if (!fitted_) throw std::logic_error("tvae: warm_fit before fit");
  if (!warm_startable()) {
    throw std::logic_error("tvae: training state not retained");
  }
  if (delta.num_rows() == 0) return;
  const linalg::Matrix data = encoder_map_.encode(delta);
  const nn::ConstantSchedule schedule(cfg_.budget.learning_rate *
                                      opts.learning_rate_scale);
  train_epochs(data, opts.resolve_epochs(cfg_.budget.epochs), schedule,
               opts.fit);
}

void Tvae::train_epochs(const linalg::Matrix& data, std::size_t epochs,
                        const nn::LrSchedule& schedule,
                        const FitOptions& opts) {
  const std::size_t latent = cfg_.latent_dim;
  const std::size_t n = data.rows();
  const std::size_t batch =
      std::min<std::size_t>(cfg_.budget.batch_size, n);

  linalg::Matrix xb;
  linalg::Matrix mu(batch, latent);
  linalg::Matrix logvar(batch, latent);
  linalg::Matrix eps(batch, latent);
  linalg::Matrix z(batch, latent);
  linalg::Matrix grad_recon;
  linalg::Matrix grad_mu_kl;
  linalg::Matrix grad_lv_kl;
  linalg::Matrix grad_h;

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    if (opts.cancelled()) throw FitCancelled(name());
    const auto perm = rng_.permutation(n);
    double epoch_loss = 0.0;
    std::size_t epoch_batches = 0;
    for (std::size_t off = 0; off < n; off += batch) {
      const std::size_t cur = std::min(batch, n - off);
      const std::span<const std::size_t> idx(perm.data() + off, cur);
      linalg::gather_rows(data, idx, xb);

      // Encoder forward: H = [mu | logvar].
      const linalg::Matrix& h = encoder_.forward(xb, /*train=*/true);
      mu.resize(cur, latent);
      logvar.resize(cur, latent);
      for (std::size_t r = 0; r < cur; ++r) {
        for (std::size_t j = 0; j < latent; ++j) {
          mu(r, j) = h(r, j);
          logvar(r, j) =
              std::clamp(h(r, latent + j), -8.0f, 8.0f);
        }
      }

      // Reparameterize.
      eps.resize(cur, latent);
      z.resize(cur, latent);
      for (std::size_t i = 0; i < eps.size(); ++i) {
        eps.flat()[i] = static_cast<float>(rng_.normal());
      }
      for (std::size_t r = 0; r < cur; ++r) {
        for (std::size_t j = 0; j < latent; ++j) {
          z(r, j) = mu(r, j) +
                    eps(r, j) * std::exp(0.5f * logvar(r, j));
        }
      }

      // Decode and compute losses.
      const linalg::Matrix& y = decoder_.forward(z, /*train=*/true);
      const float recon = nn::mixed_reconstruction_loss(
          y, xb, encoder_map_.blocks(), encoder_map_.num_numerical(),
          grad_recon);
      const float kl =
          nn::gaussian_kl(mu, logvar, grad_mu_kl, grad_lv_kl);

      // Backprop: decoder -> z -> (mu, logvar) -> encoder.
      const linalg::Matrix& grad_z = decoder_.backward(grad_recon);
      grad_h.resize(cur, 2 * latent);
      for (std::size_t r = 0; r < cur; ++r) {
        for (std::size_t j = 0; j < latent; ++j) {
          const float gz = grad_z(r, j);
          const float sigma = std::exp(0.5f * logvar(r, j));
          grad_h(r, j) = gz + cfg_.kl_weight * grad_mu_kl(r, j);
          grad_h(r, latent + j) =
              gz * eps(r, j) * 0.5f * sigma +
              cfg_.kl_weight * grad_lv_kl(r, j);
        }
      }
      encoder_.backward(grad_h);

      opt_->clip_grad_norm(cfg_.grad_clip);
      opt_->set_learning_rate(schedule.at(opt_steps_++));
      opt_->step();

      epoch_loss += recon + cfg_.kl_weight * kl;
      ++epoch_batches;
    }
    last_epoch_loss_ =
        static_cast<float>(epoch_loss / static_cast<double>(epoch_batches));
    if (cfg_.budget.log_every_epochs > 0 &&
        (epoch + 1) % cfg_.budget.log_every_epochs == 0) {
      util::log_info("tvae: epoch %zu/%zu loss %.4f", epoch + 1, epochs,
                     static_cast<double>(last_epoch_loss_));
    }
    if (opts.on_progress) {
      opts.on_progress({epoch + 1, epochs, last_epoch_loss_});
    }
  }
}

tabular::Table Tvae::sample_chunk(std::size_t n, std::uint64_t seed) {
  if (!fitted_) throw std::logic_error("tvae: sample before fit");
  util::Rng rng(seed);
  const std::size_t latent = cfg_.latent_dim;
  const std::size_t chunk = 2048;

  tabular::Table out = encoder_map_.make_empty_table();
  linalg::Matrix z;
  for (std::size_t off = 0; off < n; off += chunk) {
    const std::size_t cur = std::min(chunk, n - off);
    z.resize(cur, latent);
    for (float& v : z.flat()) v = static_cast<float>(rng.normal());
    linalg::Matrix y = decoder_.forward(z, /*train=*/false);
    // Turn categorical logits into probabilities; decode() then samples.
    for (const auto& b : encoder_map_.blocks()) {
      linalg::softmax_rows(y, b.offset, b.offset + b.cardinality);
    }
    out.append_table(encoder_map_.decode(y, &rng));
  }
  return out;
}

void Tvae::save(std::ostream& os) const { save_impl(os, true); }

void Tvae::save_impl(std::ostream& os, bool include_train_state) const {
  if (!fitted_) throw std::logic_error("tvae: save before fit");
  util::io::write_tag(os, "TVAE");
  util::io::write_u32(os, 2);  // payload version
  util::io::write_u64(os, cfg_.latent_dim);
  encoder_map_.save(os);
  nn::save_mlp(os, decoder_);
  // v2: optional training state so a reloaded model can warm_fit — the
  // encoder net, the optimizer moments + step clock, and the training RNG.
  const bool train_state = include_train_state && opt_ != nullptr;
  util::io::write_u32(os, train_state ? 1 : 0);
  if (train_state) {
    // Fit-time budget: warm_fit derives its epoch count and LR from it.
    util::io::write_f32(os, cfg_.budget.learning_rate);
    util::io::write_u64(os, cfg_.budget.epochs);
    util::io::write_u64(os, cfg_.budget.batch_size);
    nn::save_mlp(os, encoder_);
    opt_->save(os);
    util::io::write_u64(os, opt_steps_);
    rng_.save(os);
  }
}

void Tvae::load(std::istream& is) {
  if (fitted_) throw std::logic_error("tvae: load into fitted model");
  util::io::expect_tag(is, "TVAE");
  const std::uint32_t version = util::io::read_u32(is);
  if (version != 1 && version != 2) {
    throw std::runtime_error("tvae: unsupported payload");
  }
  cfg_.latent_dim = static_cast<std::size_t>(util::io::read_u64(is));
  encoder_map_.load(is);
  decoder_ = nn::load_mlp(is);
  if (version >= 2 && util::io::read_u32(is) != 0) {
    cfg_.budget.learning_rate = util::io::read_f32(is);
    cfg_.budget.epochs = static_cast<std::size_t>(util::io::read_u64(is));
    cfg_.budget.batch_size = static_cast<std::size_t>(util::io::read_u64(is));
    encoder_ = nn::load_mlp(is);
    opt_ = std::make_unique<nn::Adam>(cfg_.budget.learning_rate);
    opt_->add_params(encoder_.params());  // fit-time registration order
    opt_->add_params(decoder_.params());
    opt_->load(is);
    opt_steps_ = static_cast<std::size_t>(util::io::read_u64(is));
    rng_.load(is);
  }
  fitted_ = true;
}

namespace {
const RegisterGenerator kRegisterTvae{{
    "tvae",
    "TVAE",
    "Variational autoencoder for mixed-type tables (Xu et al., 2019)",
    [](const TrainBudget& budget, std::uint64_t seed) {
      TvaeConfig cfg;
      cfg.budget = budget;
      cfg.seed = seed;
      return std::make_unique<Tvae>(cfg);
    },
}};
}  // namespace

std::unique_ptr<TabularGenerator> Tvae::clone() const {
  std::stringstream buffer;
  save_impl(buffer, /*include_train_state=*/false);
  auto copy = std::make_unique<Tvae>(cfg_);
  copy->load(buffer);
  return copy;
}

}  // namespace surro::models
