#pragma once
// TVAE (Xu et al., 2019): variational autoencoder for mixed-type tabular
// data. Encoder maps an encoded row to a Gaussian posterior N(mu, sigma²);
// decoder reconstructs the mixed layout (linear numericals + per-block
// categorical logits). Training minimizes reconstruction loss + beta·KL;
// synthesis decodes z ~ N(0, I).

#include "models/generator.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/schedule.hpp"
#include "preprocess/mixed_encoder.hpp"

namespace surro::models {

struct TvaeConfig {
  std::size_t latent_dim = 16;
  std::vector<std::size_t> hidden = {128, 128};
  float kl_weight = 1.0f;
  float grad_clip = 5.0f;
  std::size_t num_quantiles = 1000;
  TrainBudget budget;
  std::uint64_t seed = 1;
};

class Tvae final : public TabularGenerator {
 public:
  explicit Tvae(TvaeConfig cfg = {});

  using TabularGenerator::fit;
  void fit(const tabular::Table& train, const FitOptions& opts) override;
  using TabularGenerator::warm_fit;
  void warm_fit(const tabular::Table& delta,
                const RefreshOptions& opts) override;
  [[nodiscard]] bool warm_startable() const noexcept override {
    return fitted_ && opt_ != nullptr;
  }
  [[nodiscard]] bool fitted() const noexcept override { return fitted_; }
  [[nodiscard]] tabular::Table sample_chunk(std::size_t n,
                                            std::uint64_t seed) override;
  [[nodiscard]] std::string key() const override { return "tvae"; }
  [[nodiscard]] std::string name() const override { return "TVAE"; }

  void save(std::ostream& os) const override;
  void load(std::istream& is) override;
  [[nodiscard]] std::unique_ptr<TabularGenerator> clone() const override;

  /// Mean total loss of the last training epoch (diagnostics/tests).
  [[nodiscard]] float last_epoch_loss() const noexcept {
    return last_epoch_loss_;
  }

 private:
  /// Run `epochs` training epochs over encoded rows, advancing the shared
  /// optimizer clock (opt_steps_). Shared by cold fit (cosine schedule) and
  /// warm refresh (flat reduced LR).
  void train_epochs(const linalg::Matrix& data, std::size_t epochs,
                    const nn::LrSchedule& schedule, const FitOptions& opts);
  /// save() with or without the training-only state (encoder net, optimizer
  /// moments, RNG): clone() drops it — sampling replicas never train.
  void save_impl(std::ostream& os, bool include_train_state) const;

  TvaeConfig cfg_;
  bool fitted_ = false;
  preprocess::MixedEncoder encoder_map_;
  util::Rng rng_;
  nn::Mlp encoder_;  // width -> ... -> 2·latent (mu | logvar)
  nn::Mlp decoder_;  // latent -> ... -> width
  // Training state retained for warm_fit (absent after a state-less load).
  std::unique_ptr<nn::Adam> opt_;
  std::size_t opt_steps_ = 0;
  float last_epoch_loss_ = 0.0f;
};

}  // namespace surro::models
