#pragma once
// CTABGAN+ (Zhao et al., 2024), simplified to the parts that matter for a
// 9-column mixed table: a conditional GAN with
//   * training-by-sampling — each step conditions on a (column, category)
//     pair drawn with log-frequency weighting, and the real batch is drawn
//     from rows matching the condition, which rebalances rare categories;
//   * Gumbel-softmax categorical heads on the generator (soft one-hots flow
//     to the discriminator, gradients flow back through the softmax);
//   * an auxiliary generator cross-entropy pushing the conditioned block to
//     produce the requested category;
//   * non-saturating GAN losses with one-sided label smoothing.
//
// Substitution note (DESIGN.md): the original uses WGAN-GP and CNN feature
// extractors; for a 9-column table MLPs are the faithful backbone, and the
// documented failure modes (mode amplification, weak cross-column
// correlation) are preserved.

#include "models/generator.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/schedule.hpp"
#include "preprocess/mixed_encoder.hpp"

namespace surro::models {

struct CtabganConfig {
  std::size_t noise_dim = 64;
  std::vector<std::size_t> gen_hidden = {128, 128};
  std::vector<std::size_t> disc_hidden = {128, 128};
  float gumbel_tau = 0.2f;
  float label_smoothing = 0.1f;
  float cond_loss_weight = 1.0f;
  std::size_t disc_steps_per_gen = 1;
  float grad_clip = 5.0f;
  std::size_t num_quantiles = 1000;
  TrainBudget budget;
  std::uint64_t seed = 2;
};

class CtabganPlus final : public TabularGenerator {
 public:
  explicit CtabganPlus(CtabganConfig cfg = {});

  using TabularGenerator::fit;
  void fit(const tabular::Table& train, const FitOptions& opts) override;
  using TabularGenerator::warm_fit;
  void warm_fit(const tabular::Table& delta,
                const RefreshOptions& opts) override;
  [[nodiscard]] bool warm_startable() const noexcept override {
    return fitted_ && g_opt_ != nullptr;
  }
  [[nodiscard]] bool fitted() const noexcept override { return fitted_; }
  [[nodiscard]] tabular::Table sample_chunk(std::size_t n,
                                            std::uint64_t seed) override;
  [[nodiscard]] std::string key() const override { return "ctabgan"; }
  [[nodiscard]] std::string name() const override { return "CTABGAN+"; }

  void save(std::ostream& os) const override;
  void load(std::istream& is) override;
  [[nodiscard]] std::unique_ptr<TabularGenerator> clone() const override;

  [[nodiscard]] float last_disc_loss() const noexcept { return last_d_; }
  [[nodiscard]] float last_gen_loss() const noexcept { return last_g_; }

 private:
  struct Condition {
    std::size_t block = 0;
    std::size_t category = 0;
  };

  /// Draw a batch of conditions (training-by-sampling).
  void draw_conditions(util::Rng& rng, std::size_t batch,
                       std::vector<Condition>& out) const;
  /// One-hot condition matrix (batch, cond_width).
  void conditions_to_matrix(const std::vector<Condition>& conds,
                            linalg::Matrix& out) const;
  /// Generator forward: noise+cond -> soft mixed rows. Returns the head
  /// output; raw pre-softmax logits stay cached for backward_heads().
  const linalg::Matrix& generator_forward(const linalg::Matrix& z_cond,
                                          util::Rng& rng, bool train);
  /// Backward through the Gumbel-softmax heads into the generator body.
  void generator_backward(const linalg::Matrix& grad_soft);

  /// (Re)build the per-category row pools from `table` and fold its
  /// category counts into the cumulative totals (reset first when
  /// `accumulate` is false). The sampling-time condition distribution
  /// (category_log_freq_) follows the cumulative counts, so a warm refresh
  /// shifts it toward the stream's current mix instead of forgetting
  /// history.
  void index_training_rows(const tabular::Table& table, bool accumulate);

  /// Run `total_steps` adversarial steps against encoded rows `data` with
  /// the retained optimizers. Shared by cold fit and warm refresh.
  void train_steps(const linalg::Matrix& data, std::size_t total_steps,
                   std::size_t steps_per_epoch, const nn::LrSchedule& schedule,
                   const FitOptions& opts);
  /// save() with or without the training-only state (discriminator,
  /// optimizer moments, counts, RNG): clone() drops it.
  void save_impl(std::ostream& os, bool include_train_state) const;

  CtabganConfig cfg_;
  bool fitted_ = false;
  preprocess::MixedEncoder encoder_;
  util::Rng rng_;
  nn::Mlp gen_;
  nn::Mlp disc_;
  std::size_t cond_width_ = 0;
  // Training-by-sampling state: per block, per category, matching row ids
  // (into the table last indexed), cumulative category counts, and the
  // log-frequency weights derived from them.
  std::vector<std::vector<std::vector<std::size_t>>> rows_by_category_;
  std::vector<std::vector<double>> category_counts_;
  std::vector<std::vector<double>> category_log_freq_;
  // Training state retained for warm_fit (absent after a state-less load).
  std::unique_ptr<nn::Adam> g_opt_;
  std::unique_ptr<nn::Adam> d_opt_;
  std::size_t opt_steps_ = 0;
  // Head caches for backward.
  linalg::Matrix head_out_;
  linalg::Matrix head_grad_;
  float last_d_ = 0.0f;
  float last_g_ = 0.0f;
};

}  // namespace surro::models
