#include "models/smote.hpp"

#include <stdexcept>

namespace surro::models {

Smote::Smote(SmoteConfig cfg) : cfg_(cfg) {
  if (cfg_.k_neighbors == 0) {
    throw std::invalid_argument("smote: k_neighbors must be positive");
  }
}

void Smote::fit(const tabular::Table& train) {
  if (train.num_rows() < 2) {
    throw std::invalid_argument("smote: need at least two training rows");
  }
  encoder_.fit(train, cfg_.num_quantiles);

  const auto& num_cols = encoder_.numerical_columns();
  const std::size_t n = train.num_rows();
  numerical_.resize(n, num_cols.size());
  for (std::size_t k = 0; k < num_cols.size(); ++k) {
    const auto col = train.numerical(num_cols[k]);
    const auto& qt = encoder_.transformer(k);
    for (std::size_t r = 0; r < n; ++r) {
      numerical_(r, k) = static_cast<float>(qt.transform_one(col[r]));
    }
  }

  cat_codes_.clear();
  for (const auto& block : encoder_.blocks()) {
    const auto codes = train.categorical(block.column);
    cat_codes_.emplace_back(codes.begin(), codes.end());
  }

  tree_ = std::make_unique<knn::KdTree>(numerical_);
  fitted_ = true;
}

tabular::Table Smote::sample(std::size_t n, std::uint64_t seed) {
  if (!fitted_) throw std::logic_error("smote: sample before fit");
  util::Rng rng(seed);

  tabular::Table out = encoder_.make_empty_table();
  const std::size_t m = numerical_.cols();
  const std::size_t train_n = numerical_.rows();
  std::vector<double> num_vals(m);
  std::vector<std::int32_t> cat_vals(cat_codes_.size());

  for (std::size_t s = 0; s < n; ++s) {
    const auto base = static_cast<std::size_t>(rng.uniform_index(train_n));
    const auto neighbors = tree_->query(numerical_.row(base),
                                        cfg_.k_neighbors,
                                        static_cast<std::ptrdiff_t>(base));
    const std::size_t other =
        neighbors.empty()
            ? base
            : neighbors[rng.uniform_index(neighbors.size())].index;
    const double u = rng.uniform();

    for (std::size_t k = 0; k < m; ++k) {
      const double a = static_cast<double>(numerical_(base, k));
      const double b = static_cast<double>(numerical_(other, k));
      const double z = a + u * (b - a);
      num_vals[k] = encoder_.transformer(k).inverse_one(z);
    }
    for (std::size_t bi = 0; bi < cat_codes_.size(); ++bi) {
      const std::size_t donor = rng.uniform() < u ? other : base;
      cat_vals[bi] = cat_codes_[bi][donor];
    }
    out.append_row_values(num_vals, cat_vals);
  }
  return out;
}

}  // namespace surro::models
