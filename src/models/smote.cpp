#include "models/smote.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/serialize.hpp"

namespace surro::models {

Smote::Smote(SmoteConfig cfg) : cfg_(cfg) {
  if (cfg_.k_neighbors == 0) {
    throw std::invalid_argument("smote: k_neighbors must be positive");
  }
}

void Smote::fit(const tabular::Table& train, const FitOptions& opts) {
  if (fitted_) throw std::logic_error("smote: fit called twice");
  if (train.num_rows() < 2) {
    throw std::invalid_argument("smote: need at least two training rows");
  }
  if (opts.cancelled()) throw FitCancelled(name());
  encoder_.fit(train, cfg_.num_quantiles);

  const auto& num_cols = encoder_.numerical_columns();
  const std::size_t n = train.num_rows();
  numerical_.resize(n, num_cols.size());
  for (std::size_t k = 0; k < num_cols.size(); ++k) {
    const auto col = train.numerical(num_cols[k]);
    const auto& qt = encoder_.transformer(k);
    for (std::size_t r = 0; r < n; ++r) {
      numerical_(r, k) = static_cast<float>(qt.transform_one(col[r]));
    }
  }

  cat_codes_.clear();
  for (const auto& block : encoder_.blocks()) {
    const auto codes = train.categorical(block.column);
    cat_codes_.emplace_back(codes.begin(), codes.end());
  }

  tree_ = std::make_unique<knn::KdTree>(numerical_);
  indexed_rows_ = numerical_.rows();
  fitted_ = true;
  // SMOTE "trains" in a single pass; report it as one completed epoch.
  if (opts.on_progress) opts.on_progress({1, 1, 0.0f});
}

void Smote::warm_fit(const tabular::Table& delta,
                     const RefreshOptions& /*opts*/) {
  if (!fitted_) throw std::logic_error("smote: warm_fit before fit");
  const std::size_t d = delta.num_rows();
  if (d == 0) return;

  // Validate the whole delta before mutating anything: a rejected refresh
  // must leave the fitted state exactly as it was (numerical_ and
  // cat_codes_ row counts must never diverge).
  for (std::size_t bi = 0; bi < cat_codes_.size(); ++bi) {
    const auto cardinality =
        static_cast<std::int32_t>(encoder_.blocks()[bi].cardinality);
    for (const std::int32_t code :
         delta.categorical(encoder_.blocks()[bi].column)) {
      if (code < 0 || code >= cardinality) {
        throw std::invalid_argument(
            "smote: delta code outside the fitted vocabulary");
      }
    }
  }

  // Transform the delta through the frozen fit-time quantile maps and grow
  // the numerical slice (the matrix is dense row-major, so growing is one
  // copy — still O(n) instead of the O(n log n) transform refit).
  const auto& num_cols = encoder_.numerical_columns();
  const std::size_t old_n = numerical_.rows();
  linalg::Matrix grown(old_n + d, num_cols.size());
  std::copy_n(numerical_.data(), numerical_.size(), grown.data());
  for (std::size_t k = 0; k < num_cols.size(); ++k) {
    const auto col = delta.numerical(num_cols[k]);
    const auto& qt = encoder_.transformer(k);
    for (std::size_t r = 0; r < d; ++r) {
      grown(old_n + r, k) = static_cast<float>(qt.transform_one(col[r]));
    }
  }
  numerical_ = std::move(grown);

  for (std::size_t bi = 0; bi < cat_codes_.size(); ++bi) {
    const auto codes = delta.categorical(encoder_.blocks()[bi].column);
    cat_codes_[bi].insert(cat_codes_[bi].end(), codes.begin(), codes.end());
  }

  // Consolidate once the brute-force tail would dominate query time.
  if (numerical_.rows() - indexed_rows_ > indexed_rows_) {
    tree_ = std::make_unique<knn::KdTree>(numerical_);
    indexed_rows_ = numerical_.rows();
  }
}

std::vector<knn::Neighbor> Smote::neighbors_of(std::size_t base) const {
  auto neighbors = tree_->query(
      numerical_.row(base), cfg_.k_neighbors,
      base < indexed_rows_ ? static_cast<std::ptrdiff_t>(base) : -1);
  const std::size_t n = numerical_.rows();
  if (indexed_rows_ < n) {
    const auto point = numerical_.row(base);
    const std::size_t m = numerical_.cols();
    for (std::size_t r = indexed_rows_; r < n; ++r) {
      if (r == base) continue;
      const auto row = numerical_.row(r);
      float dist_sq = 0.0f;
      for (std::size_t k = 0; k < m; ++k) {
        const float diff = point[k] - row[k];
        dist_sq += diff * diff;
      }
      neighbors.push_back({r, dist_sq});
    }
    std::sort(neighbors.begin(), neighbors.end(),
              [](const knn::Neighbor& a, const knn::Neighbor& b) {
                return a.dist_sq != b.dist_sq ? a.dist_sq < b.dist_sq
                                              : a.index < b.index;
              });
    if (neighbors.size() > cfg_.k_neighbors) {
      neighbors.resize(cfg_.k_neighbors);
    }
  }
  return neighbors;
}

tabular::Table Smote::sample_chunk(std::size_t n, std::uint64_t seed) {
  if (!fitted_) throw std::logic_error("smote: sample before fit");
  util::Rng rng(seed);

  tabular::Table out = encoder_.make_empty_table();
  const std::size_t m = numerical_.cols();
  const std::size_t train_n = numerical_.rows();
  std::vector<double> num_vals(m);
  std::vector<std::int32_t> cat_vals(cat_codes_.size());

  for (std::size_t s = 0; s < n; ++s) {
    const auto base = static_cast<std::size_t>(rng.uniform_index(train_n));
    const auto neighbors = neighbors_of(base);
    const std::size_t other =
        neighbors.empty()
            ? base
            : neighbors[rng.uniform_index(neighbors.size())].index;
    const double u = rng.uniform();

    for (std::size_t k = 0; k < m; ++k) {
      const double a = static_cast<double>(numerical_(base, k));
      const double b = static_cast<double>(numerical_(other, k));
      const double z = a + u * (b - a);
      num_vals[k] = encoder_.transformer(k).inverse_one(z);
    }
    for (std::size_t bi = 0; bi < cat_codes_.size(); ++bi) {
      const std::size_t donor = rng.uniform() < u ? other : base;
      cat_vals[bi] = cat_codes_[bi][donor];
    }
    out.append_row_values(num_vals, cat_vals);
  }
  return out;
}

void Smote::save(std::ostream& os) const {
  if (!fitted_) throw std::logic_error("smote: save before fit");
  util::io::write_tag(os, "SMOT");
  util::io::write_u32(os, 1);  // payload version
  util::io::write_u64(os, cfg_.k_neighbors);
  util::io::write_u64(os, cfg_.num_quantiles);
  encoder_.save(os);
  linalg::save_matrix(os, numerical_);
  util::io::write_u64(os, cat_codes_.size());
  for (const auto& codes : cat_codes_) util::io::write_vec_i32(os, codes);
}

void Smote::load(std::istream& is) {
  if (fitted_) throw std::logic_error("smote: load into fitted model");
  util::io::expect_tag(is, "SMOT");
  const std::uint32_t version = util::io::read_u32(is);
  if (version != 1) throw std::runtime_error("smote: unsupported payload");
  cfg_.k_neighbors = static_cast<std::size_t>(util::io::read_u64(is));
  cfg_.num_quantiles = static_cast<std::size_t>(util::io::read_u64(is));
  encoder_.load(is);
  numerical_ = linalg::load_matrix(is);
  cat_codes_.resize(util::io::read_count(is));
  for (auto& codes : cat_codes_) codes = util::io::read_vec_i32(is);

  // Cross-field validation so corrupt archives fail here rather than as
  // out-of-range donor lookups during sampling.
  if (cfg_.k_neighbors == 0 || numerical_.rows() < 2 ||
      numerical_.cols() != encoder_.num_numerical() ||
      cat_codes_.size() != encoder_.blocks().size()) {
    throw std::runtime_error("smote: corrupt fitted state");
  }
  for (std::size_t bi = 0; bi < cat_codes_.size(); ++bi) {
    const auto cardinality =
        static_cast<std::int32_t>(encoder_.blocks()[bi].cardinality);
    if (cat_codes_[bi].size() != numerical_.rows()) {
      throw std::runtime_error("smote: corrupt categorical codes");
    }
    for (const std::int32_t code : cat_codes_[bi]) {
      if (code < 0 || code >= cardinality) {
        throw std::runtime_error("smote: code outside vocabulary");
      }
    }
  }
  // The k-d tree is a pure function of the numerical slice — rebuild it
  // instead of shipping its internals (any warm-appended tail consolidates
  // into the tree here as a side effect).
  tree_ = std::make_unique<knn::KdTree>(numerical_);
  indexed_rows_ = numerical_.rows();
  fitted_ = true;
}

std::unique_ptr<TabularGenerator> Smote::clone() const {
  std::stringstream buffer;
  save(buffer);
  auto copy = std::make_unique<Smote>(cfg_);
  copy->load(buffer);
  return copy;
}

namespace {
const RegisterGenerator kRegisterSmote{{
    "smote",
    "SMOTE",
    "k-NN interpolation baseline (Chawla et al., 2002); no training, "
    "near-memorization privacy profile",
    [](const TrainBudget& /*budget*/, std::uint64_t /*seed*/) {
      return std::make_unique<Smote>();
    },
}};
}  // namespace

}  // namespace surro::models
