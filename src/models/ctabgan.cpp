#include "models/ctabgan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/losses.hpp"
#include "util/logging.hpp"
#include "util/serialize.hpp"

namespace surro::models {

namespace {
/// Concatenate two matrices column-wise into out (same row count).
void hconcat(const linalg::Matrix& a, const linalg::Matrix& b,
             linalg::Matrix& out) {
  const std::size_t rows = a.rows();
  out.resize(rows, a.cols() + b.cols());
  for (std::size_t r = 0; r < rows; ++r) {
    std::copy_n(a.data() + r * a.cols(), a.cols(),
                out.data() + r * out.cols());
    std::copy_n(b.data() + r * b.cols(), b.cols(),
                out.data() + r * out.cols() + a.cols());
  }
}
}  // namespace

CtabganPlus::CtabganPlus(CtabganConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

void CtabganPlus::draw_conditions(util::Rng& rng, std::size_t batch,
                                  std::vector<Condition>& out) const {
  out.resize(batch);
  for (auto& c : out) {
    c.block = static_cast<std::size_t>(
        rng.uniform_index(category_log_freq_.size()));
    c.category = rng.categorical(category_log_freq_[c.block]);
  }
}

void CtabganPlus::conditions_to_matrix(const std::vector<Condition>& conds,
                                       linalg::Matrix& out) const {
  out.resize(conds.size(), cond_width_);
  out.zero();
  const auto& blocks = encoder_.blocks();
  const std::size_t base = encoder_.num_numerical();
  for (std::size_t i = 0; i < conds.size(); ++i) {
    const auto& b = blocks[conds[i].block];
    out(i, b.offset - base + conds[i].category) = 1.0f;
  }
}

const linalg::Matrix& CtabganPlus::generator_forward(
    const linalg::Matrix& z_cond, util::Rng& rng, bool train) {
  const linalg::Matrix& raw = gen_.forward(z_cond, train);
  head_out_ = raw;
  // Gumbel-softmax per categorical block; numerical slice passes through.
  const float tau = cfg_.gumbel_tau;
  for (const auto& b : encoder_.blocks()) {
    for (std::size_t r = 0; r < head_out_.rows(); ++r) {
      float* row = head_out_.data() + r * head_out_.cols() + b.offset;
      float peak = -1e30f;
      for (std::size_t j = 0; j < b.cardinality; ++j) {
        const double u = std::max(rng.uniform(), 1e-12);
        const float g = static_cast<float>(-std::log(-std::log(u)));
        row[j] = (row[j] + g) / tau;
        peak = std::max(peak, row[j]);
      }
      float denom = 0.0f;
      for (std::size_t j = 0; j < b.cardinality; ++j) {
        row[j] = std::exp(row[j] - peak);
        denom += row[j];
      }
      for (std::size_t j = 0; j < b.cardinality; ++j) row[j] /= denom;
    }
  }
  return head_out_;
}

void CtabganPlus::generator_backward(const linalg::Matrix& grad_soft) {
  // Chain dL/d(soft) through each block's softmax (the Gumbel noise is an
  // additive constant, the temperature a fixed scale).
  head_grad_ = grad_soft;
  const float inv_tau = 1.0f / cfg_.gumbel_tau;
  for (const auto& b : encoder_.blocks()) {
    for (std::size_t r = 0; r < head_grad_.rows(); ++r) {
      const float* p = head_out_.data() + r * head_out_.cols() + b.offset;
      float* g = head_grad_.data() + r * head_grad_.cols() + b.offset;
      float dot = 0.0f;
      for (std::size_t j = 0; j < b.cardinality; ++j) dot += p[j] * g[j];
      for (std::size_t j = 0; j < b.cardinality; ++j) {
        g[j] = inv_tau * p[j] * (g[j] - dot);
      }
    }
  }
  gen_.backward(head_grad_);
}

void CtabganPlus::index_training_rows(const tabular::Table& table,
                                      bool accumulate) {
  const auto& blocks = encoder_.blocks();
  // Validate every block before mutating any indexing state: a mid-loop
  // throw must not leave a fitted model with half-reset frequency tables
  // (draw_conditions over an empty table is undefined).
  for (const auto& block : blocks) {
    for (const auto code : table.categorical(block.column)) {
      if (code < 0 ||
          static_cast<std::size_t>(code) >= block.cardinality) {
        throw std::invalid_argument(
            "ctabgan: row code outside the fitted vocabulary");
      }
    }
  }
  rows_by_category_.assign(blocks.size(), {});
  if (!accumulate) category_counts_.assign(blocks.size(), {});
  category_log_freq_.assign(blocks.size(), {});
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const auto codes = table.categorical(blocks[bi].column);
    rows_by_category_[bi].assign(blocks[bi].cardinality, {});
    if (!accumulate) category_counts_[bi].assign(blocks[bi].cardinality, 0.0);
    for (std::size_t r = 0; r < codes.size(); ++r) {
      const auto code = static_cast<std::size_t>(codes[r]);
      rows_by_category_[bi][code].push_back(r);
      category_counts_[bi][code] += 1.0;
    }
    category_log_freq_[bi].assign(blocks[bi].cardinality, 0.0);
    for (std::size_t c = 0; c < blocks[bi].cardinality; ++c) {
      category_log_freq_[bi][c] = std::log1p(category_counts_[bi][c]);
    }
  }
}

void CtabganPlus::fit(const tabular::Table& train, const FitOptions& opts) {
  if (fitted_) throw std::logic_error("ctabgan: fit called twice");
  encoder_.fit(train, cfg_.num_quantiles);
  const std::size_t width = encoder_.encoded_width();
  const auto& blocks = encoder_.blocks();
  if (blocks.empty()) {
    throw std::invalid_argument("ctabgan: needs categorical columns");
  }
  cond_width_ = width - encoder_.num_numerical();

  gen_ = nn::make_mlp(cfg_.noise_dim + cond_width_, cfg_.gen_hidden, width,
                      nn::Activation::kReLU, rng_);
  disc_ = nn::make_mlp(width + cond_width_, cfg_.disc_hidden, 1,
                       nn::Activation::kLeakyReLU, rng_);

  index_training_rows(train, /*accumulate=*/false);

  const linalg::Matrix data = encoder_.encode(train);
  const std::size_t n = data.rows();
  const std::size_t batch = std::min<std::size_t>(cfg_.budget.batch_size, n);
  const std::size_t steps_per_epoch = (n + batch - 1) / batch;
  const std::size_t total_steps = cfg_.budget.epochs * steps_per_epoch;

  g_opt_ = std::make_unique<nn::Adam>(cfg_.budget.learning_rate, 0.5f, 0.9f);
  g_opt_->add_params(gen_.params());
  d_opt_ = std::make_unique<nn::Adam>(cfg_.budget.learning_rate, 0.5f, 0.9f);
  d_opt_->add_params(disc_.params());
  opt_steps_ = 0;
  const nn::CosineSchedule schedule(cfg_.budget.learning_rate, total_steps);
  train_steps(data, total_steps, steps_per_epoch, schedule, opts);
  fitted_ = true;
}

void CtabganPlus::warm_fit(const tabular::Table& delta,
                           const RefreshOptions& opts) {
  if (!fitted_) throw std::logic_error("ctabgan: warm_fit before fit");
  if (!warm_startable()) {
    throw std::logic_error("ctabgan: training state not retained");
  }
  if (delta.num_rows() == 0) return;
  // Re-point the real-batch pools at the delta (the rows being absorbed)
  // while the cumulative counts keep the sampling distribution anchored on
  // everything seen so far.
  index_training_rows(delta, /*accumulate=*/true);
  const linalg::Matrix data = encoder_.encode(delta);
  const std::size_t n = data.rows();
  const std::size_t batch = std::min<std::size_t>(cfg_.budget.batch_size, n);
  const std::size_t steps_per_epoch = (n + batch - 1) / batch;
  const std::size_t total_steps =
      opts.resolve_epochs(cfg_.budget.epochs) * steps_per_epoch;
  const nn::ConstantSchedule schedule(cfg_.budget.learning_rate *
                                      opts.learning_rate_scale);
  train_steps(data, total_steps, steps_per_epoch, schedule, opts.fit);
}

void CtabganPlus::train_steps(const linalg::Matrix& data,
                              std::size_t total_steps,
                              std::size_t steps_per_epoch,
                              const nn::LrSchedule& schedule,
                              const FitOptions& opts) {
  const std::size_t width = encoder_.encoded_width();
  const std::size_t n = data.rows();
  const std::size_t batch = std::min<std::size_t>(cfg_.budget.batch_size, n);
  const std::size_t total_epochs = total_steps / steps_per_epoch;

  std::vector<Condition> conds;
  linalg::Matrix cond_mat;
  linalg::Matrix z(batch, cfg_.noise_dim);
  linalg::Matrix z_cond;
  linalg::Matrix real(batch, width);
  linalg::Matrix real_cond;
  linalg::Matrix fake_cond;
  linalg::Matrix grad_real;
  linalg::Matrix grad_fake;
  linalg::Matrix grad_gen_head;

  for (std::size_t step = 0; step < total_steps; ++step) {
    if (step % steps_per_epoch == 0 && opts.cancelled()) {
      throw FitCancelled(name());
    }
    const float lr = schedule.at(opt_steps_++);
    g_opt_->set_learning_rate(lr);
    d_opt_->set_learning_rate(lr);

    for (std::size_t d_iter = 0; d_iter < cfg_.disc_steps_per_gen; ++d_iter) {
      // --- Discriminator step -------------------------------------------
      draw_conditions(rng_, batch, conds);
      conditions_to_matrix(conds, cond_mat);

      // Real rows matching the conditions.
      real.resize(batch, width);
      for (std::size_t i = 0; i < batch; ++i) {
        const auto& pool =
            rows_by_category_[conds[i].block][conds[i].category];
        const std::size_t row =
            pool.empty()
                ? static_cast<std::size_t>(rng_.uniform_index(n))
                : pool[rng_.uniform_index(pool.size())];
        std::copy_n(data.data() + row * width, width,
                    real.data() + i * width);
      }

      // Fake rows under the same conditions.
      z.resize(batch, cfg_.noise_dim);
      for (float& v : z.flat()) v = static_cast<float>(rng_.normal());
      hconcat(z, cond_mat, z_cond);
      const linalg::Matrix fake = generator_forward(z_cond, rng_, true);

      hconcat(real, cond_mat, real_cond);
      const linalg::Matrix real_logits = disc_.forward(real_cond, true);
      linalg::Matrix real_logits_copy = real_logits;
      hconcat(fake, cond_mat, fake_cond);
      const linalg::Matrix& fake_logits = disc_.forward(fake_cond, true);

      last_d_ = nn::gan_discriminator_loss(real_logits_copy, fake_logits,
                                           grad_real, grad_fake,
                                           cfg_.label_smoothing);
      // Two separate passes share cached activations only for the last
      // forward, so backprop each half in its own forward/backward pair.
      disc_.backward(grad_fake);
      disc_.forward(real_cond, true);
      disc_.backward(grad_real);
      d_opt_->clip_grad_norm(cfg_.grad_clip);
      d_opt_->step();
    }

    // --- Generator step ---------------------------------------------------
    draw_conditions(rng_, batch, conds);
    conditions_to_matrix(conds, cond_mat);
    z.resize(batch, cfg_.noise_dim);
    for (float& v : z.flat()) v = static_cast<float>(rng_.normal());
    hconcat(z, cond_mat, z_cond);
    const linalg::Matrix& fake = generator_forward(z_cond, rng_, true);

    hconcat(fake, cond_mat, fake_cond);
    const linalg::Matrix& fake_logits = disc_.forward(fake_cond, true);
    linalg::Matrix grad_logits;
    const float g_loss = nn::gan_generator_loss(fake_logits, grad_logits);
    const linalg::Matrix& grad_disc_in = disc_.backward(grad_logits);

    // Slice off the gradient w.r.t. the generated row (drop cond columns),
    // and add the auxiliary condition cross-entropy on the selected block.
    grad_gen_head.resize(batch, width);
    for (std::size_t r = 0; r < batch; ++r) {
      std::copy_n(grad_disc_in.data() + r * (width + cond_width_), width,
                  grad_gen_head.data() + r * width);
    }
    float cond_ce = 0.0f;
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (std::size_t r = 0; r < batch; ++r) {
      const auto& b = encoder_.blocks()[conds[r].block];
      const float* p = fake.data() + r * width + b.offset;
      float* g = grad_gen_head.data() + r * width + b.offset;
      const float p_target = std::max(p[conds[r].category], 1e-6f);
      cond_ce -= std::log(p_target) * inv_batch;
      // d(-log p_c)/dp_j = -1/p_c at j=c else 0.
      g[conds[r].category] -=
          cfg_.cond_loss_weight * inv_batch / p_target;
    }
    generator_backward(grad_gen_head);
    g_opt_->clip_grad_norm(cfg_.grad_clip);
    g_opt_->step();
    // The generator pass accumulated gradients into D as a side effect.
    disc_.zero_grad();
    last_g_ = g_loss + cfg_.cond_loss_weight * cond_ce;

    if (cfg_.budget.log_every_epochs > 0 &&
        (step + 1) % (cfg_.budget.log_every_epochs * steps_per_epoch) == 0) {
      util::log_info("ctabgan: step %zu/%zu d_loss %.4f g_loss %.4f",
                     step + 1, total_steps, static_cast<double>(last_d_),
                     static_cast<double>(last_g_));
    }
    if (opts.on_progress && (step + 1) % steps_per_epoch == 0) {
      opts.on_progress({(step + 1) / steps_per_epoch, total_epochs,
                        last_g_ + last_d_});
    }
  }
}

tabular::Table CtabganPlus::sample_chunk(std::size_t n, std::uint64_t seed) {
  if (!fitted_) throw std::logic_error("ctabgan: sample before fit");
  util::Rng rng(seed);
  tabular::Table out = encoder_.make_empty_table();
  const std::size_t width = encoder_.encoded_width();
  const std::size_t chunk = 2048;

  std::vector<Condition> conds;
  linalg::Matrix cond_mat;
  linalg::Matrix z;
  linalg::Matrix z_cond;
  for (std::size_t off = 0; off < n; off += chunk) {
    const std::size_t cur = std::min(chunk, n - off);
    draw_conditions(rng, cur, conds);
    conditions_to_matrix(conds, cond_mat);
    z.resize(cur, cfg_.noise_dim);
    for (float& v : z.flat()) v = static_cast<float>(rng.normal());
    hconcat(z, cond_mat, z_cond);
    linalg::Matrix soft = generator_forward(z_cond, rng, false);
    (void)width;
    out.append_table(encoder_.decode(soft, &rng));
  }
  return out;
}

void CtabganPlus::save(std::ostream& os) const { save_impl(os, true); }

void CtabganPlus::save_impl(std::ostream& os,
                            bool include_train_state) const {
  if (!fitted_) throw std::logic_error("ctabgan: save before fit");
  util::io::write_tag(os, "CTGN");
  util::io::write_u32(os, 2);  // payload version
  util::io::write_u64(os, cfg_.noise_dim);
  util::io::write_f32(os, cfg_.gumbel_tau);
  util::io::write_u64(os, cond_width_);
  encoder_.save(os);
  nn::save_mlp(os, gen_);
  // Training-by-sampling frequency tables drive the condition draws during
  // synthesis; the row index pools are training-only and stay behind.
  util::io::write_u64(os, category_log_freq_.size());
  for (const auto& freqs : category_log_freq_) {
    util::io::write_vec_f64(os, freqs);
  }
  // v2: optional training state so a reloaded model can warm_fit — the
  // discriminator, both optimizers, cumulative category counts, and the
  // training RNG.
  const bool train_state = include_train_state && g_opt_ != nullptr;
  util::io::write_u32(os, train_state ? 1 : 0);
  if (train_state) {
    util::io::write_f32(os, cfg_.budget.learning_rate);
    util::io::write_u64(os, cfg_.budget.epochs);
    util::io::write_u64(os, cfg_.budget.batch_size);
    nn::save_mlp(os, disc_);
    g_opt_->save(os);
    d_opt_->save(os);
    util::io::write_u64(os, opt_steps_);
    util::io::write_u64(os, category_counts_.size());
    for (const auto& counts : category_counts_) {
      util::io::write_vec_f64(os, counts);
    }
    rng_.save(os);
  }
}

void CtabganPlus::load(std::istream& is) {
  if (fitted_) throw std::logic_error("ctabgan: load into fitted model");
  util::io::expect_tag(is, "CTGN");
  const std::uint32_t version = util::io::read_u32(is);
  if (version != 1 && version != 2) {
    throw std::runtime_error("ctabgan: unsupported payload");
  }
  cfg_.noise_dim = static_cast<std::size_t>(util::io::read_u64(is));
  cfg_.gumbel_tau = util::io::read_f32(is);
  cond_width_ = static_cast<std::size_t>(util::io::read_u64(is));
  encoder_.load(is);
  gen_ = nn::load_mlp(is);
  category_log_freq_.resize(util::io::read_count(is));
  for (auto& freqs : category_log_freq_) freqs = util::io::read_vec_f64(is);
  if (version >= 2 && util::io::read_u32(is) != 0) {
    cfg_.budget.learning_rate = util::io::read_f32(is);
    cfg_.budget.epochs = static_cast<std::size_t>(util::io::read_u64(is));
    cfg_.budget.batch_size = static_cast<std::size_t>(util::io::read_u64(is));
    disc_ = nn::load_mlp(is);
    g_opt_ = std::make_unique<nn::Adam>(cfg_.budget.learning_rate, 0.5f,
                                        0.9f);
    g_opt_->add_params(gen_.params());
    d_opt_ = std::make_unique<nn::Adam>(cfg_.budget.learning_rate, 0.5f,
                                        0.9f);
    d_opt_->add_params(disc_.params());
    g_opt_->load(is);
    d_opt_->load(is);
    opt_steps_ = static_cast<std::size_t>(util::io::read_u64(is));
    category_counts_.resize(util::io::read_count(is));
    for (auto& counts : category_counts_) {
      counts = util::io::read_vec_f64(is);
    }
    rng_.load(is);
  }
  fitted_ = true;
}

std::unique_ptr<TabularGenerator> CtabganPlus::clone() const {
  std::stringstream buffer;
  save_impl(buffer, /*include_train_state=*/false);
  auto copy = std::make_unique<CtabganPlus>(cfg_);
  copy->load(buffer);
  return copy;
}

namespace {
const RegisterGenerator kRegisterCtabgan{{
    "ctabgan",
    "CTABGAN+",
    "Conditional GAN with training-by-sampling and Gumbel-softmax heads "
    "(Zhao et al., 2024)",
    [](const TrainBudget& budget, std::uint64_t seed) {
      CtabganConfig cfg;
      cfg.budget = budget;
      cfg.seed = seed;
      return std::make_unique<CtabganPlus>(cfg);
    },
}};
}  // namespace

}  // namespace surro::models
