#pragma once
// The common interface of the paper's four surrogate models (Sec. IV-A).
// Every model consumes a mixed-type Table, learns its joint distribution,
// and emits synthetic Tables with the same schema and vocabularies.

#include <memory>
#include <string>

#include "tabular/table.hpp"

namespace surro::models {

class TabularGenerator {
 public:
  virtual ~TabularGenerator() = default;

  /// Learn from a training table. May be called once per instance.
  virtual void fit(const tabular::Table& train) = 0;

  /// Draw n synthetic rows. Deterministic for a given seed after fit.
  [[nodiscard]] virtual tabular::Table sample(std::size_t n,
                                              std::uint64_t seed) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

enum class GeneratorKind { kTvae, kCtabganPlus, kSmote, kTabDdpm };

[[nodiscard]] std::string to_string(GeneratorKind kind);

/// Training-scale preset shared by the neural models so experiment harnesses
/// can trade fidelity for wall-clock uniformly.
struct TrainBudget {
  std::size_t epochs = 60;
  std::size_t batch_size = 256;
  float learning_rate = 2e-4f;  // paper Sec. V-A
  std::size_t log_every_epochs = 0;  // 0: silent
};

/// Factory with per-kind default configurations (see each model's header
/// for fine-grained knobs).
[[nodiscard]] std::unique_ptr<TabularGenerator> make_generator(
    GeneratorKind kind, const TrainBudget& budget, std::uint64_t seed);

}  // namespace surro::models
