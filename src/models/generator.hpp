#pragma once
// Surrogate Model API v2 — the common interface of the paper's surrogate
// models (Sec. IV-A) plus the service-facing machinery around it.
//
// Every model consumes a mixed-type Table, learns its joint distribution,
// and emits synthetic Tables with the same schema and vocabularies. On top
// of that the v2 API adds:
//
//   * GeneratorRegistry — a string-keyed registry the four built-in models
//     (and any future surrogate) self-register with, so new models plug in
//     without touching core and CLIs enumerate models dynamically;
//   * fit(train, FitOptions) — per-epoch progress reporting and cooperative
//     cancellation;
//   * sample_into(out, SampleRequest) — chunked synthesis with per-chunk
//     seed derivation, optionally fanned out over util::ThreadPool. The
//     chunk partition depends only on (rows, seed, chunk_rows), never on
//     the thread count, so output is bitwise identical however many workers
//     run it (the ParK-style partition-and-parallelize lever,
//     arXiv:2106.12231, applied to synthetic-row generation);
//   * save(ostream)/load(istream) — persistence of fitted state, so a model
//     trains once and serves many sampling calls (see save_model/load_model
//     for the self-describing archive format).

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "tabular/table.hpp"

namespace surro::models {

/// Training-scale preset shared by the neural models so experiment harnesses
/// can trade fidelity for wall-clock uniformly.
struct TrainBudget {
  std::size_t epochs = 60;            ///< full passes over the training set
  std::size_t batch_size = 256;       ///< rows per gradient step
  float learning_rate = 2e-4f;        ///< base LR (paper Sec. V-A)
  std::size_t log_every_epochs = 0;   ///< progress log cadence (0 = silent)
};

/// Snapshot handed to FitOptions::on_progress after every training epoch.
struct FitProgress {
  std::size_t epoch = 0;         // 1-based, counts completed epochs
  std::size_t total_epochs = 0;
  float loss = 0.0f;             // model-specific scalar (0 when undefined)
};

/// Thrown by fit() when FitOptions::cancel flips to true mid-training.
class FitCancelled : public std::runtime_error {
 public:
  explicit FitCancelled(const std::string& model)
      : std::runtime_error(model + ": fit cancelled") {}
};

/// Optional observation/cancellation hooks for fit().
struct FitOptions {
  /// Called after each completed epoch (never concurrently).
  std::function<void(const FitProgress&)> on_progress;
  /// Cooperative cancellation token, polled between epochs; when it reads
  /// true, fit() throws FitCancelled and the model stays unfitted.
  const std::atomic<bool>* cancel = nullptr;

  [[nodiscard]] bool cancelled() const noexcept {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
};

/// How a fitted model absorbs a batch of newly collected rows (the
/// streaming collection-window workload, src/stream/). Warm refresh
/// continues training from the retained state — frozen encoder
/// vocabularies, current weights, saved optimizer moments — instead of
/// rebuilding from scratch, so it costs a fraction of a cold fit.
struct RefreshOptions {
  /// Gradient epochs over the delta (0 = auto: max(1, budget.epochs / 4)).
  /// Ignored by non-gradient models (SMOTE).
  std::size_t epochs = 0;
  /// Warm learning rate = budget.learning_rate × this scale, held flat (no
  /// cosine restart): refreshes are a continuation, not a new run.
  float learning_rate_scale = 0.5f;
  /// Progress/cancellation hooks, forwarded like fit().
  FitOptions fit;

  /// The epoch count a model with `budget_epochs` cold epochs should run.
  [[nodiscard]] std::size_t resolve_epochs(std::size_t budget_epochs) const {
    if (epochs > 0) return epochs;
    return budget_epochs >= 4 ? budget_epochs / 4 : std::size_t{1};
  }
};

/// A sampling job: how many rows, from which seed, in what chunk grain, on
/// how many threads. Determinism contract: the synthetic table depends on
/// (rows, seed, chunk_rows) only — `threads` is purely a scheduling choice.
struct SampleRequest {
  std::size_t rows = 0;
  std::uint64_t seed = 1234;
  /// Rows per chunk; each chunk samples from an independent derived stream.
  std::size_t chunk_rows = 4096;
  /// Worker count: 1 = serial in the calling thread, 0 = global pool size.
  std::size_t threads = 1;
  /// Called after each completed chunk with (rows_done, rows_total).
  /// Invoked under a lock — keep it cheap.
  std::function<void(std::size_t, std::size_t)> on_progress;
};

/// Stable derivation of chunk seeds: SplitMix64 over (seed, chunk index) so
/// streams are decorrelated and reproducible across runs and machines.
[[nodiscard]] std::uint64_t derive_chunk_seed(std::uint64_t seed,
                                              std::uint64_t chunk_index);

/// The common interface of every surrogate model (paper Sec. IV-A): learn
/// a mixed-type Table's joint distribution (fit / warm_fit), synthesize
/// schema-identical rows (sample_into — chunked, parallel, bitwise
/// thread-count independent), and persist/restore fitted state
/// (save/load). Concrete models register with GeneratorRegistry and are
/// addressed by string key.
class TabularGenerator {
 public:
  virtual ~TabularGenerator() = default;

  /// Learn from a training table. May be called once per instance.
  virtual void fit(const tabular::Table& train, const FitOptions& opts) = 0;
  void fit(const tabular::Table& train) { fit(train, FitOptions{}); }

  /// True once fit() (or load()) completed and the model can sample.
  [[nodiscard]] virtual bool fitted() const noexcept = 0;

  /// Incrementally absorb `delta` — rows that arrived since the last
  /// fit/warm_fit — into the fitted state (the streaming collection-window
  /// workload). The delta must share the training table's schema and
  /// vocabularies (true for any window cut from the same source table);
  /// encoder transforms and vocabularies stay frozen at cold-fit state.
  /// Gradient models resume from their retained optimizer moments at a
  /// reduced flat learning rate; SMOTE appends to its neighbour index.
  /// Throws std::logic_error when unfitted or when the training state was
  /// not retained (see warm_startable()).
  virtual void warm_fit(const tabular::Table& delta,
                        const RefreshOptions& opts);
  void warm_fit(const tabular::Table& delta) { warm_fit(delta, {}); }

  /// True when this instance can warm_fit right now: it is fitted and its
  /// training-time state (optimizer moments, training RNG, auxiliary nets)
  /// is present. Models restored from archives saved with training state
  /// keep it; pre-v2 archives load as sample-only models.
  [[nodiscard]] virtual bool warm_startable() const noexcept { return false; }

  /// Registry key ("tabddpm") and human-facing name ("TabDDPM").
  [[nodiscard]] virtual std::string key() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Sampling primitive: n rows drawn from the stream seeded with `seed`.
  /// Each call is independent and deterministic for a given seed after fit.
  [[nodiscard]] virtual tabular::Table sample_chunk(std::size_t n,
                                                    std::uint64_t seed) = 0;

  /// Persistence of fitted state. save() requires a fitted model; load()
  /// leaves the instance fitted and ready to sample (training-only state is
  /// not preserved, so re-fitting a loaded model is rejected like any
  /// double fit). The payload is model-specific; prefer the free
  /// save_model()/load_model() helpers, which add a self-describing header.
  virtual void save(std::ostream& os) const = 0;
  virtual void load(std::istream& is) = 0;

  /// Deep copy of the fitted *sampling* state (used for per-worker replicas
  /// during parallel sampling; implemented via save/load round-trip).
  /// Training-only state (optimizer moments, training RNG) is not copied —
  /// replicas sample, they never train.
  [[nodiscard]] virtual std::unique_ptr<TabularGenerator> clone() const = 0;

  /// True when sample_chunk() only reads shared state, letting sample_into
  /// run chunks concurrently on this instance instead of paying for
  /// per-worker clones. Models whose forward passes reuse internal buffers
  /// (the neural ones) keep the default false.
  [[nodiscard]] virtual bool concurrent_sampling() const noexcept {
    return false;
  }

  /// Chunked synthesis appended to `out` (which must be empty or share the
  /// training schema). Splits the request into chunk_rows-sized chunks with
  /// derived per-chunk seeds and runs them on util::ThreadPool when
  /// request.threads != 1; output is bitwise identical for every thread
  /// count.
  void sample_into(tabular::Table& out, const SampleRequest& request);

  /// Convenience wrapper over sample_into with default chunking, serial.
  [[nodiscard]] tabular::Table sample(std::size_t n, std::uint64_t seed);
};

/// Everything the registry knows about one surrogate family.
struct GeneratorInfo {
  std::string key;           // stable lookup key, e.g. "tabddpm"
  std::string display_name;  // e.g. "TabDDPM"
  std::string description;   // one-liner for CLI/API listings
  /// Build an untrained instance from a budget + seed.
  std::function<std::unique_ptr<TabularGenerator>(const TrainBudget&,
                                                  std::uint64_t seed)>
      factory;
};

/// String-keyed catalogue of surrogate models. Models self-register from
/// their own translation units at static-initialization time (see
/// RegisterGenerator), so linking a new model .cpp is all it takes to make
/// it reachable from the CLI, the experiment harness, and load_model().
class GeneratorRegistry {
 public:
  static GeneratorRegistry& instance();

  /// Throws std::invalid_argument on duplicate keys.
  void register_generator(GeneratorInfo info);

  [[nodiscard]] bool contains(const std::string& key) const;
  /// Sorted list of registered keys.
  [[nodiscard]] std::vector<std::string> keys() const;
  /// Metadata lookup; throws std::invalid_argument for unknown keys.
  [[nodiscard]] const GeneratorInfo& info(const std::string& key) const;

  /// Instantiate an untrained model; throws for unknown keys.
  [[nodiscard]] std::unique_ptr<TabularGenerator> create(
      const std::string& key, const TrainBudget& budget,
      std::uint64_t seed) const;

 private:
  GeneratorRegistry() = default;
  std::map<std::string, GeneratorInfo> infos_;
};

/// Static registrar: `static RegisterGenerator reg{{...}};` in a model's
/// .cpp self-registers it with GeneratorRegistry::instance().
struct RegisterGenerator {
  explicit RegisterGenerator(GeneratorInfo info) {
    GeneratorRegistry::instance().register_generator(std::move(info));
  }
};

/// Convenience: registry lookup + construction.
[[nodiscard]] std::unique_ptr<TabularGenerator> make_generator(
    const std::string& key, const TrainBudget& budget, std::uint64_t seed);

/// Self-describing fitted-model archive: header (magic, format version,
/// model key) + the model's own save() payload. load_model() reads the key
/// and dispatches through the registry, so callers need not know the model
/// type in advance.
void save_model(const TabularGenerator& model, std::ostream& os);
[[nodiscard]] std::unique_ptr<TabularGenerator> load_model(std::istream& is);

/// File-path convenience wrappers (binary mode, throws on I/O failure).
void save_model_file(const TabularGenerator& model, const std::string& path);
[[nodiscard]] std::unique_ptr<TabularGenerator> load_model_file(
    const std::string& path);

}  // namespace surro::models
