#pragma once
// TabDDPM (Kotelnikov et al., 2023): denoising diffusion for mixed-type
// tabular data — the paper's recommended surrogate.
//
//   * Numerical features (quantile-normalized): Gaussian DDPM. Forward
//     q(x_t|x_0) = N(√ᾱ_t·x_0, (1−ᾱ_t)I); the MLP predicts the noise ε and
//     sampling runs the standard ancestral reverse chain.
//   * Categorical features: multinomial diffusion (Hoogeboom et al.).
//     Forward q(x_t|x_0) = Cat(ᾱ_t·onehot(x_0) + (1−ᾱ_t)/K); the MLP
//     predicts x̂_0 logits per block and sampling uses the posterior
//     q(x_{t-1}|x_t, x̂_0) ∝ (α_t·x_t + (1−α_t)/K) ⊙ (ᾱ_{t-1}·x̂_0 +
//     (1−ᾱ_{t-1})/K).
//
// One MLP denoiser consumes [x_t numericals | x_t one-hots | sinusoidal
// timestep embedding] and emits [ε̂ | x̂_0 logits]; losses are MSE on ε plus
// cross-entropy on x̂_0 (the simplified multinomial objective).

#include "models/generator.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/schedule.hpp"
#include "preprocess/mixed_encoder.hpp"

namespace surro::models {

struct TabDdpmConfig {
  std::size_t timesteps = 100;
  std::vector<std::size_t> hidden = {256, 256};
  std::size_t time_embed_dim = 32;
  /// Weight of the categorical CE term relative to the Gaussian MSE.
  float categorical_loss_weight = 1.0f;
  float grad_clip = 5.0f;
  std::size_t num_quantiles = 1000;
  TrainBudget budget;
  std::uint64_t seed = 3;
};

class TabDdpm final : public TabularGenerator {
 public:
  explicit TabDdpm(TabDdpmConfig cfg = {});

  using TabularGenerator::fit;
  void fit(const tabular::Table& train, const FitOptions& opts) override;
  using TabularGenerator::warm_fit;
  void warm_fit(const tabular::Table& delta,
                const RefreshOptions& opts) override;
  [[nodiscard]] bool warm_startable() const noexcept override {
    return fitted_ && opt_ != nullptr;
  }
  [[nodiscard]] bool fitted() const noexcept override { return fitted_; }
  [[nodiscard]] tabular::Table sample_chunk(std::size_t n,
                                            std::uint64_t seed) override;
  [[nodiscard]] std::string key() const override { return "tabddpm"; }
  [[nodiscard]] std::string name() const override { return "TabDDPM"; }

  void save(std::ostream& os) const override;
  void load(std::istream& is) override;
  [[nodiscard]] std::unique_ptr<TabularGenerator> clone() const override;

  [[nodiscard]] float last_epoch_loss() const noexcept {
    return last_epoch_loss_;
  }
  [[nodiscard]] const std::vector<double>& alpha_bar() const noexcept {
    return alpha_bar_;
  }

  /// Per-row denoising error — the diffusion anomaly score (Sec. VI: "this
  /// characteristic of diffusion models makes it a competent detector for
  /// anomalies"). Each row is noised at `probes` evenly spaced timesteps
  /// (with `draws` noise draws each); the score averages the ε-prediction
  /// MSE plus the categorical cross-entropy of the true categories. Rows
  /// far from the learned manifold denoise poorly and score high.
  [[nodiscard]] std::vector<double> anomaly_scores(
      const tabular::Table& rows, std::size_t probes = 4,
      std::size_t draws = 4, std::uint64_t seed = 97);

 private:
  /// Write the sinusoidal embedding of timestep t into out[row, offset..).
  void embed_time(std::size_t t, linalg::Matrix& out, std::size_t row,
                  std::size_t offset) const;

  /// (Re)compute the cosine beta/alpha schedule from cfg_.timesteps — a
  /// pure function of the config, shared by fit() and load().
  void build_schedule();

  /// Run `epochs` denoising epochs over encoded rows, advancing the shared
  /// optimizer clock (opt_steps_). Shared by cold fit (cosine LR schedule)
  /// and warm refresh (flat reduced LR).
  void train_epochs(const linalg::Matrix& data, std::size_t epochs,
                    const nn::LrSchedule& schedule, const FitOptions& opts);
  /// save() with or without the training-only state (optimizer moments,
  /// RNG): clone() drops it — sampling replicas never train.
  void save_impl(std::ostream& os, bool include_train_state) const;

  TabDdpmConfig cfg_;
  bool fitted_ = false;
  preprocess::MixedEncoder encoder_;
  util::Rng rng_;
  nn::Mlp net_;
  std::vector<double> betas_;
  std::vector<double> alphas_;
  std::vector<double> alpha_bar_;
  // Training state retained for warm_fit (absent after a state-less load).
  std::unique_ptr<nn::AdamW> opt_;
  std::size_t opt_steps_ = 0;
  float last_epoch_loss_ = 0.0f;
};

}  // namespace surro::models
