#pragma once
// SMOTE (Chawla et al., 2002) as a tabular generator — the paper's only
// non-learning baseline. A synthetic row interpolates a random training row
// toward one of its k nearest neighbours:
//   numericals:  x = x_i + u · (x_j − x_i),  u ~ U(0,1)
//   categoricals: copied from x_i with prob (1−u), else from x_j
// (the SMOTE-NC treatment of nominal features). Neighbourhoods are found in
// the Gaussian-quantile-transformed numerical space so distances are
// comparable across features.
//
// Because samples live on segments between real records, SMOTE nearly
// memorizes the training set: excellent marginals/correlations but a DCR
// close to zero — exactly the privacy trade-off Table I reports.

#include "knn/kdtree.hpp"
#include "models/generator.hpp"
#include "preprocess/mixed_encoder.hpp"

namespace surro::models {

struct SmoteConfig {
  std::size_t k_neighbors = 5;  // the classic SMOTE k
  std::size_t num_quantiles = 1000;
};

class Smote final : public TabularGenerator {
 public:
  explicit Smote(SmoteConfig cfg = {});

  using TabularGenerator::fit;
  void fit(const tabular::Table& train, const FitOptions& opts) override;
  /// Streaming append: delta rows are transformed through the *frozen*
  /// quantile transforms and joined to the neighbour index as a brute-force
  /// tail; the k-d tree is only rebuilt once the tail outgrows the indexed
  /// base (amortized O(delta) per refresh instead of an O(n log n) refit).
  using TabularGenerator::warm_fit;
  void warm_fit(const tabular::Table& delta,
                const RefreshOptions& opts) override;
  [[nodiscard]] bool warm_startable() const noexcept override {
    return fitted_;
  }
  [[nodiscard]] bool fitted() const noexcept override { return fitted_; }
  [[nodiscard]] tabular::Table sample_chunk(std::size_t n,
                                            std::uint64_t seed) override;
  [[nodiscard]] std::string key() const override { return "smote"; }
  [[nodiscard]] std::string name() const override { return "SMOTE"; }

  void save(std::ostream& os) const override;
  void load(std::istream& is) override;
  [[nodiscard]] std::unique_ptr<TabularGenerator> clone() const override;

  /// sample_chunk only reads the fitted state (k-d tree queries are const),
  /// so chunks can run concurrently on one instance.
  [[nodiscard]] bool concurrent_sampling() const noexcept override {
    return true;
  }

  [[nodiscard]] const SmoteConfig& config() const noexcept { return cfg_; }

 private:
  /// Exact k-NN of row `base` over all rows: k-d tree over the indexed
  /// prefix [0, indexed_rows_) merged with a linear scan of the appended
  /// tail [indexed_rows_, n). Ascending by (distance, index).
  [[nodiscard]] std::vector<knn::Neighbor> neighbors_of(
      std::size_t base) const;

  SmoteConfig cfg_;
  bool fitted_ = false;
  preprocess::MixedEncoder encoder_;
  linalg::Matrix numerical_;   // (n, m) transformed numerical slice
  std::vector<std::vector<std::int32_t>> cat_codes_;  // per block, per row
  std::unique_ptr<knn::KdTree> tree_;  // covers rows [0, indexed_rows_)
  std::size_t indexed_rows_ = 0;
};

}  // namespace surro::models
