#include "models/tabddpm.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/losses.hpp"
#include "util/logging.hpp"
#include "util/mathx.hpp"
#include "util/serialize.hpp"

namespace surro::models {

TabDdpm::TabDdpm(TabDdpmConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.timesteps < 2) {
    throw std::invalid_argument("tabddpm: need at least 2 timesteps");
  }
}

void TabDdpm::embed_time(std::size_t t, linalg::Matrix& out, std::size_t row,
                         std::size_t offset) const {
  // Transformer-style sinusoidal embedding of the (normalized) timestep.
  const std::size_t half = cfg_.time_embed_dim / 2;
  const double pos = static_cast<double>(t);
  for (std::size_t k = 0; k < half; ++k) {
    const double freq =
        std::exp(-std::log(10000.0) * static_cast<double>(k) /
                 static_cast<double>(std::max<std::size_t>(half - 1, 1)));
    out(row, offset + k) = static_cast<float>(std::sin(pos * freq));
    out(row, offset + half + k) = static_cast<float>(std::cos(pos * freq));
  }
}

void TabDdpm::build_schedule() {
  // Cosine ᾱ schedule (Nichol & Dhariwal), converted to per-step betas.
  const std::size_t T = cfg_.timesteps;
  alpha_bar_.resize(T + 1);
  const auto f = [](double u) {
    const double s = 0.008;
    const double v = std::cos((u + s) / (1.0 + s) * util::kPi / 2.0);
    return v * v;
  };
  for (std::size_t t = 0; t <= T; ++t) {
    alpha_bar_[t] = f(static_cast<double>(t) / static_cast<double>(T)) /
                    f(0.0);
  }
  betas_.resize(T);
  alphas_.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    const double beta =
        std::clamp(1.0 - alpha_bar_[t + 1] / alpha_bar_[t], 1e-5, 0.999);
    betas_[t] = beta;
    alphas_[t] = 1.0 - beta;
  }
}

void TabDdpm::fit(const tabular::Table& train, const FitOptions& opts) {
  if (fitted_) throw std::logic_error("tabddpm: fit called twice");
  encoder_.fit(train, cfg_.num_quantiles);
  const std::size_t width = encoder_.encoded_width();
  const std::size_t in_dim = width + cfg_.time_embed_dim;

  build_schedule();

  net_ = nn::make_mlp(in_dim, cfg_.hidden, width, nn::Activation::kSiLU,
                      rng_);

  const linalg::Matrix data = encoder_.encode(train);
  const std::size_t n = data.rows();
  const std::size_t batch = std::min<std::size_t>(cfg_.budget.batch_size, n);
  const std::size_t steps_per_epoch = (n + batch - 1) / batch;

  opt_ = std::make_unique<nn::AdamW>(cfg_.budget.learning_rate,
                                     /*weight_decay=*/1e-4f);
  opt_->add_params(net_.params());
  opt_steps_ = 0;
  const nn::CosineSchedule schedule(cfg_.budget.learning_rate,
                                    cfg_.budget.epochs * steps_per_epoch);
  train_epochs(data, cfg_.budget.epochs, schedule, opts);
  fitted_ = true;
}

void TabDdpm::warm_fit(const tabular::Table& delta,
                       const RefreshOptions& opts) {
  if (!fitted_) throw std::logic_error("tabddpm: warm_fit before fit");
  if (!warm_startable()) {
    throw std::logic_error("tabddpm: training state not retained");
  }
  if (delta.num_rows() == 0) return;
  const linalg::Matrix data = encoder_.encode(delta);
  const nn::ConstantSchedule schedule(cfg_.budget.learning_rate *
                                      opts.learning_rate_scale);
  train_epochs(data, opts.resolve_epochs(cfg_.budget.epochs), schedule,
               opts.fit);
}

void TabDdpm::train_epochs(const linalg::Matrix& data, std::size_t epochs,
                           const nn::LrSchedule& schedule,
                           const FitOptions& opts) {
  const std::size_t width = encoder_.encoded_width();
  const std::size_t m = encoder_.num_numerical();
  const std::size_t in_dim = width + cfg_.time_embed_dim;
  const std::size_t T = cfg_.timesteps;
  const std::size_t n = data.rows();
  const std::size_t batch = std::min<std::size_t>(cfg_.budget.batch_size, n);

  linalg::Matrix x0;
  linalg::Matrix input;
  linalg::Matrix eps;
  linalg::Matrix grad;
  std::vector<std::size_t> ts(batch);

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    if (opts.cancelled()) throw FitCancelled(name());
    const auto perm = rng_.permutation(n);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t off = 0; off < n; off += batch) {
      const std::size_t cur = std::min(batch, n - off);
      const std::span<const std::size_t> idx(perm.data() + off, cur);
      linalg::gather_rows(data, idx, x0);

      input.resize(cur, in_dim);
      input.zero();
      eps.resize(cur, m);
      for (std::size_t r = 0; r < cur; ++r) {
        const std::size_t t =
            static_cast<std::size_t>(rng_.uniform_index(T)) + 1;  // 1..T
        ts[r] = t;
        const double ab = alpha_bar_[t];
        const double sab = std::sqrt(ab);
        const double somb = std::sqrt(1.0 - ab);
        // Numerical forward: x_t = √ᾱ·x0 + √(1-ᾱ)·ε.
        for (std::size_t j = 0; j < m; ++j) {
          const float e = static_cast<float>(rng_.normal());
          eps(r, j) = e;
          input(r, j) = static_cast<float>(sab) * x0(r, j) +
                        static_cast<float>(somb) * e;
        }
        // Categorical forward: keep the one-hot with prob ᾱ, else uniform.
        for (const auto& b : encoder_.blocks()) {
          std::size_t cat = 0;
          for (std::size_t j = 0; j < b.cardinality; ++j) {
            if (x0(r, b.offset + j) > 0.5f) {
              cat = j;
              break;
            }
          }
          if (!rng_.bernoulli(ab)) {
            cat = static_cast<std::size_t>(
                rng_.uniform_index(b.cardinality));
          }
          input(r, b.offset + cat) = 1.0f;
        }
        embed_time(t, input, r, width);
      }

      const linalg::Matrix& out = net_.forward(input, /*train=*/true);

      // Loss: MSE(ε̂, ε) on the numerical slice + CE(x̂0, x0) per block.
      grad.resize(cur, width);
      grad.zero();
      double loss = 0.0;
      const float inv = 1.0f / static_cast<float>(cur * std::max(m, std::size_t{1}));
      for (std::size_t r = 0; r < cur; ++r) {
        for (std::size_t j = 0; j < m; ++j) {
          const float d = out(r, j) - eps(r, j);
          loss += static_cast<double>(d) * d / (cur * std::max(m, std::size_t{1}));
          grad(r, j) = 2.0f * d * inv;
        }
      }
      // Blockwise CE on the categorical slice.
      {
        linalg::Matrix ce_grad;
        const float ce = nn::blockwise_softmax_ce(
            out, x0, encoder_.blocks(), m, ce_grad);
        loss += cfg_.categorical_loss_weight * static_cast<double>(ce);
        for (std::size_t i = 0; i < grad.size(); ++i) {
          grad.flat()[i] +=
              cfg_.categorical_loss_weight * ce_grad.flat()[i];
        }
      }

      net_.backward(grad);
      opt_->clip_grad_norm(cfg_.grad_clip);
      opt_->set_learning_rate(schedule.at(opt_steps_++));
      opt_->step();
      epoch_loss += loss;
      ++batches;
    }
    last_epoch_loss_ =
        static_cast<float>(epoch_loss / static_cast<double>(batches));
    if (cfg_.budget.log_every_epochs > 0 &&
        (epoch + 1) % cfg_.budget.log_every_epochs == 0) {
      util::log_info("tabddpm: epoch %zu/%zu loss %.4f", epoch + 1, epochs,
                     static_cast<double>(last_epoch_loss_));
    }
    if (opts.on_progress) {
      opts.on_progress({epoch + 1, epochs, last_epoch_loss_});
    }
  }
}

tabular::Table TabDdpm::sample_chunk(std::size_t n, std::uint64_t seed) {
  if (!fitted_) throw std::logic_error("tabddpm: sample before fit");
  util::Rng rng(seed);
  const std::size_t width = encoder_.encoded_width();
  const std::size_t m = encoder_.num_numerical();
  const std::size_t T = cfg_.timesteps;
  const std::size_t chunk = 1024;

  tabular::Table out_table = encoder_.make_empty_table();
  linalg::Matrix x(chunk, width);          // current state (num + one-hot)
  linalg::Matrix input(chunk, width + cfg_.time_embed_dim);
  std::vector<double> post;

  for (std::size_t off = 0; off < n; off += chunk) {
    const std::size_t cur = std::min(chunk, n - off);
    x.resize(cur, width);
    // Init: numericals ~ N(0,1); categoricals ~ uniform one-hot.
    x.zero();
    for (std::size_t r = 0; r < cur; ++r) {
      for (std::size_t j = 0; j < m; ++j) {
        x(r, j) = static_cast<float>(rng.normal());
      }
      for (const auto& b : encoder_.blocks()) {
        const std::size_t cat =
            static_cast<std::size_t>(rng.uniform_index(b.cardinality));
        x(r, b.offset + cat) = 1.0f;
      }
    }

    for (std::size_t t = T; t >= 1; --t) {
      input.resize(cur, width + cfg_.time_embed_dim);
      input.zero();
      for (std::size_t r = 0; r < cur; ++r) {
        std::copy_n(x.data() + r * width, width,
                    input.data() + r * input.cols());
        embed_time(t, input, r, width);
      }
      const linalg::Matrix& pred = net_.forward(input, /*train=*/false);

      const double ab_t = alpha_bar_[t];
      const double ab_prev = alpha_bar_[t - 1];
      const double alpha_t = alphas_[t - 1];
      const double beta_t = betas_[t - 1];
      const double inv_sqrt_alpha = 1.0 / std::sqrt(alpha_t);
      const double eps_coef = beta_t / std::sqrt(1.0 - ab_t);
      const double sigma = std::sqrt(
          beta_t * (1.0 - ab_prev) / (1.0 - ab_t));

      for (std::size_t r = 0; r < cur; ++r) {
        // Gaussian ancestral step on the numerical slice.
        for (std::size_t j = 0; j < m; ++j) {
          const double mean =
              inv_sqrt_alpha *
              (static_cast<double>(x(r, j)) -
               eps_coef * static_cast<double>(pred(r, j)));
          const double noise = t > 1 ? rng.normal() * sigma : 0.0;
          x(r, j) = static_cast<float>(mean + noise);
        }
        // Multinomial posterior step per categorical block.
        for (const auto& b : encoder_.blocks()) {
          const std::size_t K = b.cardinality;
          // Current one-hot category of x_t.
          std::size_t cur_cat = 0;
          for (std::size_t j = 0; j < K; ++j) {
            if (x(r, b.offset + j) > 0.5f) {
              cur_cat = j;
              break;
            }
          }
          // x̂0 probabilities from predicted logits (stable softmax).
          post.assign(K, 0.0);
          float peak = pred(r, b.offset);
          for (std::size_t j = 1; j < K; ++j) {
            peak = std::max(peak, pred(r, b.offset + j));
          }
          double denom = 0.0;
          for (std::size_t j = 0; j < K; ++j) {
            post[j] = std::exp(
                static_cast<double>(pred(r, b.offset + j) - peak));
            denom += post[j];
          }
          const double unif = 1.0 / static_cast<double>(K);
          double norm = 0.0;
          for (std::size_t j = 0; j < K; ++j) {
            const double x0_prob = post[j] / denom;
            const double like =
                (j == cur_cat ? alpha_t : 0.0) + (1.0 - alpha_t) * unif;
            const double prior = ab_prev * x0_prob + (1.0 - ab_prev) * unif;
            post[j] = like * prior;
            norm += post[j];
          }
          std::size_t next_cat = cur_cat;
          if (norm > 0.0) {
            next_cat = rng.categorical(post);
          }
          for (std::size_t j = 0; j < K; ++j) {
            x(r, b.offset + j) = j == next_cat ? 1.0f : 0.0f;
          }
        }
      }
    }
    // x now holds x_0 estimates: numericals in quantile space, categoricals
    // as one-hots — decode with argmax (already hard).
    out_table.append_table(encoder_.decode(x, nullptr));
  }
  return out_table;
}

std::vector<double> TabDdpm::anomaly_scores(const tabular::Table& rows,
                                            std::size_t probes,
                                            std::size_t draws,
                                            std::uint64_t seed) {
  if (!fitted_) throw std::logic_error("tabddpm: anomaly_scores before fit");
  if (probes == 0 || draws == 0) {
    throw std::invalid_argument("tabddpm: probes/draws must be positive");
  }
  util::Rng rng(seed);
  const linalg::Matrix x0 = encoder_.encode(rows);
  const std::size_t n = x0.rows();
  const std::size_t width = encoder_.encoded_width();
  const std::size_t m = encoder_.num_numerical();
  const std::size_t T = cfg_.timesteps;

  std::vector<double> scores(n, 0.0);
  linalg::Matrix input(n, width + cfg_.time_embed_dim);
  linalg::Matrix eps(n, m);

  // Probe at evenly spaced mid-range timesteps: very small t is trivial to
  // denoise, very large t destroys all signal; the informative band is the
  // middle of the chain.
  for (std::size_t p = 0; p < probes; ++p) {
    const std::size_t t =
        1 + (T - 1) * (p + 1) / (probes + 1);
    const double ab = alpha_bar_[t];
    const double sab = std::sqrt(ab);
    const double somb = std::sqrt(1.0 - ab);
    for (std::size_t d = 0; d < draws; ++d) {
      input.zero();
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t j = 0; j < m; ++j) {
          const float e = static_cast<float>(rng.normal());
          eps(r, j) = e;
          input(r, j) = static_cast<float>(sab) * x0(r, j) +
                        static_cast<float>(somb) * e;
        }
        for (const auto& b : encoder_.blocks()) {
          std::size_t cat = 0;
          for (std::size_t j = 0; j < b.cardinality; ++j) {
            if (x0(r, b.offset + j) > 0.5f) {
              cat = j;
              break;
            }
          }
          if (!rng.bernoulli(ab)) {
            cat = static_cast<std::size_t>(
                rng.uniform_index(b.cardinality));
          }
          input(r, b.offset + cat) = 1.0f;
        }
        embed_time(t, input, r, width);
      }
      const linalg::Matrix& pred = net_.forward(input, /*train=*/false);
      for (std::size_t r = 0; r < n; ++r) {
        double err = 0.0;
        for (std::size_t j = 0; j < m; ++j) {
          const double d_eps =
              static_cast<double>(pred(r, j)) - eps(r, j);
          err += d_eps * d_eps;
        }
        if (m > 0) err /= static_cast<double>(m);
        // Cross-entropy of the *true* category under predicted x̂0 logits.
        for (const auto& b : encoder_.blocks()) {
          std::size_t true_cat = 0;
          float peak = pred(r, b.offset);
          for (std::size_t j = 0; j < b.cardinality; ++j) {
            if (x0(r, b.offset + j) > 0.5f) true_cat = j;
            peak = std::max(peak, pred(r, b.offset + j));
          }
          double denom = 0.0;
          for (std::size_t j = 0; j < b.cardinality; ++j) {
            denom += std::exp(
                static_cast<double>(pred(r, b.offset + j) - peak));
          }
          const double logp =
              static_cast<double>(pred(r, b.offset + true_cat) - peak) -
              std::log(denom);
          err -= logp / static_cast<double>(encoder_.blocks().size());
        }
        scores[r] += err;
      }
    }
  }
  const double norm = static_cast<double>(probes * draws);
  for (double& s : scores) s /= norm;
  return scores;
}

void TabDdpm::save(std::ostream& os) const { save_impl(os, true); }

void TabDdpm::save_impl(std::ostream& os, bool include_train_state) const {
  if (!fitted_) throw std::logic_error("tabddpm: save before fit");
  util::io::write_tag(os, "DDPM");
  util::io::write_u32(os, 2);  // payload version
  util::io::write_u64(os, cfg_.timesteps);
  util::io::write_u64(os, cfg_.time_embed_dim);
  encoder_.save(os);
  nn::save_mlp(os, net_);
  // v2: optional training state so a reloaded model can warm_fit.
  const bool train_state = include_train_state && opt_ != nullptr;
  util::io::write_u32(os, train_state ? 1 : 0);
  if (train_state) {
    // Fit-time budget: warm_fit derives its epoch count and LR from it.
    util::io::write_f32(os, cfg_.budget.learning_rate);
    util::io::write_u64(os, cfg_.budget.epochs);
    util::io::write_u64(os, cfg_.budget.batch_size);
    opt_->save(os);
    util::io::write_u64(os, opt_steps_);
    rng_.save(os);
  }
}

void TabDdpm::load(std::istream& is) {
  if (fitted_) throw std::logic_error("tabddpm: load into fitted model");
  util::io::expect_tag(is, "DDPM");
  const std::uint32_t version = util::io::read_u32(is);
  if (version != 1 && version != 2) {
    throw std::runtime_error("tabddpm: unsupported payload");
  }
  cfg_.timesteps = static_cast<std::size_t>(util::io::read_u64(is));
  cfg_.time_embed_dim = static_cast<std::size_t>(util::io::read_u64(is));
  encoder_.load(is);
  net_ = nn::load_mlp(is);
  if (version >= 2 && util::io::read_u32(is) != 0) {
    cfg_.budget.learning_rate = util::io::read_f32(is);
    cfg_.budget.epochs = static_cast<std::size_t>(util::io::read_u64(is));
    cfg_.budget.batch_size = static_cast<std::size_t>(util::io::read_u64(is));
    opt_ = std::make_unique<nn::AdamW>(cfg_.budget.learning_rate,
                                       /*weight_decay=*/1e-4f);
    opt_->add_params(net_.params());
    opt_->load(is);
    opt_steps_ = static_cast<std::size_t>(util::io::read_u64(is));
    rng_.load(is);
  }
  build_schedule();
  fitted_ = true;
}

std::unique_ptr<TabularGenerator> TabDdpm::clone() const {
  std::stringstream buffer;
  save_impl(buffer, /*include_train_state=*/false);
  auto copy = std::make_unique<TabDdpm>(cfg_);
  copy->load(buffer);
  return copy;
}

namespace {
const RegisterGenerator kRegisterTabDdpm{{
    "tabddpm",
    "TabDDPM",
    "Gaussian + multinomial denoising diffusion (Kotelnikov et al., 2023) "
    "— the paper's recommended surrogate",
    [](const TrainBudget& budget, std::uint64_t seed) {
      TabDdpmConfig cfg;
      cfg.budget = budget;
      // The diffusion model needs more gradient signal per wall-clock than
      // the VAE/GAN at our reduced epoch counts: the paper's 2e-4 over
      // 30k epochs scales to ~1.5e-3 at tens of epochs, and doubling the
      // epoch count keeps its optimization budget comparable to the
      // adversarial pair (which takes 2 passes per step).
      cfg.budget.learning_rate = budget.learning_rate * 7.5f;
      cfg.budget.epochs = budget.epochs * 2;
      cfg.timesteps = 50;
      cfg.seed = seed;
      return std::make_unique<TabDdpm>(cfg);
    },
}};
}  // namespace

}  // namespace surro::models
