#include "models/generator.hpp"

#include <stdexcept>

#include "models/ctabgan.hpp"
#include "models/smote.hpp"
#include "models/tabddpm.hpp"
#include "models/tvae.hpp"

namespace surro::models {

std::string to_string(GeneratorKind kind) {
  switch (kind) {
    case GeneratorKind::kTvae: return "TVAE";
    case GeneratorKind::kCtabganPlus: return "CTABGAN+";
    case GeneratorKind::kSmote: return "SMOTE";
    case GeneratorKind::kTabDdpm: return "TabDDPM";
  }
  throw std::invalid_argument("unknown generator kind");
}

std::unique_ptr<TabularGenerator> make_generator(GeneratorKind kind,
                                                 const TrainBudget& budget,
                                                 std::uint64_t seed) {
  switch (kind) {
    case GeneratorKind::kTvae: {
      TvaeConfig cfg;
      cfg.budget = budget;
      cfg.seed = seed;
      return std::make_unique<Tvae>(cfg);
    }
    case GeneratorKind::kCtabganPlus: {
      CtabganConfig cfg;
      cfg.budget = budget;
      cfg.seed = seed;
      return std::make_unique<CtabganPlus>(cfg);
    }
    case GeneratorKind::kSmote: {
      return std::make_unique<Smote>();
    }
    case GeneratorKind::kTabDdpm: {
      TabDdpmConfig cfg;
      cfg.budget = budget;
      // The diffusion model needs more gradient signal per wall-clock than
      // the VAE/GAN at our reduced epoch counts: the paper's 2e-4 over
      // 30k epochs scales to ~1.5e-3 at tens of epochs, and doubling the
      // epoch count keeps its optimization budget comparable to the
      // adversarial pair (which takes 2 passes per step).
      cfg.budget.learning_rate = budget.learning_rate * 7.5f;
      cfg.budget.epochs = budget.epochs * 2;
      cfg.timesteps = 50;
      cfg.seed = seed;
      return std::make_unique<TabDdpm>(cfg);
    }
  }
  throw std::invalid_argument("unknown generator kind");
}

}  // namespace surro::models
