#include "models/generator.hpp"

#include <fstream>
#include <mutex>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/thread_pool.hpp"

namespace surro::models {

namespace {
constexpr std::uint32_t kModelArchiveVersion = 1;
}  // namespace

std::uint64_t derive_chunk_seed(std::uint64_t seed,
                                std::uint64_t chunk_index) {
  // SplitMix64 over a mix of the base seed and the chunk index; two rounds
  // keep adjacent chunks statistically decorrelated.
  std::uint64_t state = seed ^ (chunk_index * 0x9E3779B97F4A7C15ULL +
                                0xD1B54A32D192ED03ULL);
  (void)util::splitmix64(state);
  return util::splitmix64(state);
}

// ------------------------------------------------------- TabularGenerator --

void TabularGenerator::warm_fit(const tabular::Table& /*delta*/,
                                const RefreshOptions& /*opts*/) {
  throw std::logic_error(name() + ": warm_fit not supported");
}

void TabularGenerator::sample_into(tabular::Table& out,
                                   const SampleRequest& request) {
  if (!fitted()) {
    throw std::logic_error(name() + ": sample before fit");
  }
  if (request.chunk_rows == 0) {
    throw std::invalid_argument(name() + ": chunk_rows must be positive");
  }
  if (request.rows == 0) return;

  const std::size_t num_chunks =
      (request.rows + request.chunk_rows - 1) / request.chunk_rows;
  std::size_t threads = request.threads == 0
                            ? util::ThreadPool::global().size()
                            : request.threads;
  threads = std::min(threads, num_chunks);

  std::vector<tabular::Table> chunks(num_chunks);
  std::mutex progress_mutex;
  std::size_t rows_done = 0;
  const auto run_chunk = [&](TabularGenerator& model, std::size_t c) {
    const std::size_t lo = c * request.chunk_rows;
    const std::size_t n = std::min(request.chunk_rows, request.rows - lo);
    chunks[c] = model.sample_chunk(n, derive_chunk_seed(request.seed, c));
    if (request.on_progress) {
      const std::lock_guard lock(progress_mutex);
      rows_done += n;
      request.on_progress(rows_done, request.rows);
    }
  };

  if (threads <= 1) {
    for (std::size_t c = 0; c < num_chunks; ++c) run_chunk(*this, c);
  } else {
    // Worker w owns chunks w, w+threads, w+2*threads, ... — the partition
    // and the per-chunk seeds are thread-count-independent, so so is the
    // output. Models that sample through shared mutable buffers (the
    // neural forward passes) get one fitted replica per worker, cloned
    // inside the worker task so replica construction itself runs in
    // parallel (save() only reads fitted state, so concurrent clones of
    // one source are safe); read-only samplers share this instance and
    // skip the clone cost entirely.
    const bool share_this = concurrent_sampling();
    auto& pool = util::ThreadPool::global();
    util::TaskGroup group;
    for (std::size_t w = 0; w < threads; ++w) {
      pool.submit(group, [&, share_this, w] {
        std::unique_ptr<TabularGenerator> replica;
        if (!share_this) replica = clone();
        TabularGenerator& model = share_this ? *this : *replica;
        for (std::size_t c = w; c < num_chunks; c += threads) {
          run_chunk(model, c);
        }
      });
    }
    pool.wait(group);
  }

  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (out.num_columns() == 0 && c == 0) {
      out = std::move(chunks[0]);
    } else {
      out.append_table(chunks[c]);
    }
  }
}

tabular::Table TabularGenerator::sample(std::size_t n, std::uint64_t seed) {
  tabular::Table out;
  SampleRequest request;
  request.rows = n;
  request.seed = seed;
  sample_into(out, request);
  return out;
}

// ------------------------------------------------------- GeneratorRegistry --

GeneratorRegistry& GeneratorRegistry::instance() {
  static GeneratorRegistry registry;
  return registry;
}

void GeneratorRegistry::register_generator(GeneratorInfo info) {
  if (info.key.empty() || !info.factory) {
    throw std::invalid_argument("registry: generator needs a key + factory");
  }
  const auto [it, inserted] = infos_.emplace(info.key, std::move(info));
  if (!inserted) {
    throw std::invalid_argument("registry: duplicate generator key '" +
                                it->first + "'");
  }
}

bool GeneratorRegistry::contains(const std::string& key) const {
  return infos_.contains(key);
}

std::vector<std::string> GeneratorRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(infos_.size());
  for (const auto& [key, _] : infos_) out.push_back(key);
  return out;  // std::map iterates in sorted order
}

const GeneratorInfo& GeneratorRegistry::info(const std::string& key) const {
  const auto it = infos_.find(key);
  if (it == infos_.end()) {
    throw std::invalid_argument("registry: unknown generator '" + key + "'");
  }
  return it->second;
}

std::unique_ptr<TabularGenerator> GeneratorRegistry::create(
    const std::string& key, const TrainBudget& budget,
    std::uint64_t seed) const {
  return info(key).factory(budget, seed);
}

std::unique_ptr<TabularGenerator> make_generator(const std::string& key,
                                                 const TrainBudget& budget,
                                                 std::uint64_t seed) {
  return GeneratorRegistry::instance().create(key, budget, seed);
}

// ---------------------------------------------------------- model archive --

void save_model(const TabularGenerator& model, std::ostream& os) {
  if (!model.fitted()) {
    throw std::logic_error(model.name() + ": save before fit");
  }
  util::io::write_tag(os, "SURM");
  util::io::write_u32(os, kModelArchiveVersion);
  util::io::write_string(os, model.key());
  model.save(os);
}

std::unique_ptr<TabularGenerator> load_model(std::istream& is) {
  util::io::expect_tag(is, "SURM");
  const std::uint32_t version = util::io::read_u32(is);
  if (version != kModelArchiveVersion) {
    throw std::runtime_error("model archive: unsupported version " +
                             std::to_string(version));
  }
  const std::string key = util::io::read_string(is);
  auto model = GeneratorRegistry::instance().create(key, TrainBudget{}, 1);
  model->load(is);
  return model;
}

void save_model_file(const TabularGenerator& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open '" + path + "' for writing");
  save_model(model, os);
}

std::unique_ptr<TabularGenerator> load_model_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open '" + path + "' for reading");
  return load_model(is);
}

}  // namespace surro::models
