#include "preprocess/quantile_transformer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/simd.hpp"
#include "util/mathx.hpp"
#include "util/serialize.hpp"

namespace surro::preprocess {

QuantileTransformer::QuantileTransformer(std::size_t num_quantiles)
    : num_quantiles_(std::max<std::size_t>(num_quantiles, 2)) {}

void QuantileTransformer::fit(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("quantile_transformer: empty fit data");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  const std::size_t n = std::min(num_quantiles_, sorted.size());
  const std::size_t grid_n = std::max<std::size_t>(n, 2);
  grid_ = util::linspace(0.0, 1.0, grid_n);
  quantiles_.resize(grid_n);
  for (std::size_t i = 0; i < grid_n; ++i) {
    quantiles_[i] = util::quantile_sorted(sorted, grid_[i]);
  }
  // Enforce monotonicity in the presence of repeated values.
  for (std::size_t i = 1; i < grid_n; ++i) {
    quantiles_[i] = std::max(quantiles_[i], quantiles_[i - 1]);
  }
}

double QuantileTransformer::cdf(double v) const {
  if (v <= quantiles_.front()) return 0.0;
  if (v >= quantiles_.back()) return 1.0;
  // Find the surrounding grid cell and interpolate linearly. With repeated
  // quantile values (ties), take the midpoint of the flat run, matching
  // scikit-learn's averaging of forward/backward interpolation.
  const auto lo_it =
      std::lower_bound(quantiles_.begin(), quantiles_.end(), v);
  const auto hi_it =
      std::upper_bound(quantiles_.begin(), quantiles_.end(), v);
  const auto lo = static_cast<std::size_t>(lo_it - quantiles_.begin());
  const auto hi = static_cast<std::size_t>(hi_it - quantiles_.begin());
  if (lo != hi) {
    // v lies exactly on a (possibly repeated) grid value.
    return 0.5 * (grid_[lo] + grid_[hi - 1]);
  }
  const std::size_t i = lo;  // first grid point > v; i >= 1 by the clamps
  const double x0 = quantiles_[i - 1];
  const double x1 = quantiles_[i];
  const double frac = x1 > x0 ? (v - x0) / (x1 - x0) : 0.0;
  return grid_[i - 1] + frac * (grid_[i] - grid_[i - 1]);
}

double QuantileTransformer::cdf_inverse(double p) const {
  // grid_ is uniform, so the kernel indexes cells directly (it also clamps
  // p to [0,1]). One element through the same code path as the batched
  // inverse() keeps the two bitwise consistent.
  double out;
  linalg::simd::kernels().interp_grid_f64(quantiles_.data(),
                                          quantiles_.size(), &p, &out, 1);
  return out;
}

double QuantileTransformer::transform_one(double v) const {
  if (!fitted()) {
    throw std::logic_error("quantile_transformer: transform before fit");
  }
  return util::normal_quantile(cdf(v));
}

std::vector<double> QuantileTransformer::transform(
    std::span<const double> values) const {
  if (!fitted()) {
    throw std::logic_error("quantile_transformer: transform before fit");
  }
  // SoA two-pass: the branchy empirical-CDF search and the polynomial
  // probit each sweep a contiguous column, instead of alternating per
  // element. Bitwise identical to transform_one in a loop.
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = cdf(values[i]);
  for (double& p : out) p = util::normal_quantile(p);
  return out;
}

double QuantileTransformer::inverse_one(double z) const {
  if (!fitted()) {
    throw std::logic_error("quantile_transformer: inverse before fit");
  }
  return cdf_inverse(util::normal_cdf(z));
}

std::vector<double> QuantileTransformer::inverse(
    std::span<const double> z) const {
  if (!fitted()) {
    throw std::logic_error("quantile_transformer: inverse before fit");
  }
  // SoA two-pass: normal CDF sweep, then one vectorized grid-interpolation
  // kernel call over the whole column (gather + lerp on AVX2).
  std::vector<double> p(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) p[i] = util::normal_cdf(z[i]);
  std::vector<double> out(z.size());
  linalg::simd::kernels().interp_grid_f64(quantiles_.data(),
                                          quantiles_.size(), p.data(),
                                          out.data(), p.size());
  return out;
}

void QuantileTransformer::save(std::ostream& os) const {
  util::io::write_tag(os, "QNTL");
  util::io::write_u64(os, num_quantiles_);
  util::io::write_vec_f64(os, quantiles_);
  util::io::write_vec_f64(os, grid_);
}

void QuantileTransformer::load(std::istream& is) {
  util::io::expect_tag(is, "QNTL");
  num_quantiles_ = static_cast<std::size_t>(util::io::read_u64(is));
  quantiles_ = util::io::read_vec_f64(is);
  grid_ = util::io::read_vec_f64(is);
}

}  // namespace surro::preprocess
