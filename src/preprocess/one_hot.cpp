#include "preprocess/one_hot.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace surro::preprocess {

OneHotEncoder::OneHotEncoder(std::size_t cardinality)
    : cardinality_(cardinality) {
  if (cardinality == 0) {
    throw std::invalid_argument("one_hot: zero cardinality");
  }
}

void OneHotEncoder::encode_into(std::int32_t code, std::span<float> out,
                                std::size_t offset) const {
  if (code < 0 || static_cast<std::size_t>(code) >= cardinality_) {
    throw std::out_of_range("one_hot: code out of range");
  }
  assert(offset + cardinality_ <= out.size());
  std::fill_n(out.begin() + offset, cardinality_, 0.0f);
  out[offset + static_cast<std::size_t>(code)] = 1.0f;
}

std::int32_t OneHotEncoder::decode(std::span<const float> block) const {
  if (block.size() != cardinality_) {
    throw std::invalid_argument("one_hot: block size != cardinality");
  }
  const auto it = std::max_element(block.begin(), block.end());
  return static_cast<std::int32_t>(it - block.begin());
}

linalg::Matrix OneHotEncoder::encode_column(
    std::span<const std::int32_t> codes) const {
  linalg::Matrix m(codes.size(), cardinality_, 0.0f);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    encode_into(codes[i], m.row(i));
  }
  return m;
}

}  // namespace surro::preprocess
