#pragma once
// One-hot encoding of dictionary-coded categorical columns (the paper
// represents every categorical entry as a one-hot vector).

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace surro::preprocess {

class OneHotEncoder {
 public:
  OneHotEncoder() = default;
  explicit OneHotEncoder(std::size_t cardinality);

  [[nodiscard]] std::size_t cardinality() const noexcept {
    return cardinality_;
  }

  /// Write the one-hot pattern of `code` into out[offset..offset+K).
  void encode_into(std::int32_t code, std::span<float> out,
                   std::size_t offset = 0) const;

  /// Argmax decode of a probability/logit block.
  [[nodiscard]] std::int32_t decode(std::span<const float> block) const;

  /// Encode a whole code column into a dense (n, K) matrix.
  [[nodiscard]] linalg::Matrix encode_column(
      std::span<const std::int32_t> codes) const;

 private:
  std::size_t cardinality_ = 0;
};

}  // namespace surro::preprocess
