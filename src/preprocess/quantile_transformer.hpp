#pragma once
// Gaussian quantile transformation — the paper normalizes every numerical
// feature with scikit-learn's QuantileTransformer(output_distribution=
// "normal"). fit() stores an evenly-spaced quantile grid of the training
// column; transform() maps a value through the empirical CDF and then the
// inverse normal CDF; inverse_transform() maps back. Monotone, robust to
// outliers, and exactly invertible on the training range up to grid
// resolution.

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

namespace surro::preprocess {

class QuantileTransformer {
 public:
  /// `num_quantiles` grid points (scikit-learn default is 1000); clamped to
  /// the sample size at fit time.
  explicit QuantileTransformer(std::size_t num_quantiles = 1000);

  /// Estimate the quantile grid. Throws std::invalid_argument when empty.
  void fit(std::span<const double> values);
  [[nodiscard]] bool fitted() const noexcept { return !quantiles_.empty(); }

  /// Data space -> approximately N(0,1). Values beyond the training range
  /// clamp to the extreme grid quantiles.
  [[nodiscard]] double transform_one(double v) const;
  [[nodiscard]] std::vector<double> transform(
      std::span<const double> values) const;

  /// N(0,1) space -> data space.
  [[nodiscard]] double inverse_one(double z) const;
  [[nodiscard]] std::vector<double> inverse(
      std::span<const double> z) const;

  [[nodiscard]] std::span<const double> quantiles() const noexcept {
    return quantiles_;
  }

  /// Binary persistence of the fitted quantile grid.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  [[nodiscard]] double cdf(double v) const;       // empirical CDF in [0,1]
  [[nodiscard]] double cdf_inverse(double p) const;

  std::size_t num_quantiles_;
  std::vector<double> quantiles_;   // values at the grid probabilities
  std::vector<double> grid_;        // probabilities in [0,1], ascending
};

}  // namespace surro::preprocess
