#pragma once
// MixedEncoder: the bridge between mixed-type Tables and the dense float
// matrices the neural models consume. Layout (per row):
//
//   [ z_1 ... z_m | onehot block 1 | onehot block 2 | ... ]
//
// where z_i are Gaussian-quantile-transformed numerical features (paper
// Sec. V-A) and each categorical column occupies a contiguous one-hot block.
// decode() inverts the layout: numericals through the inverse quantile
// transform, categoricals via argmax (or stochastic sampling of the
// probability block when an Rng is supplied — used by TVAE/CTABGAN+/TabDDPM
// heads that output per-block distributions).

#include <iosfwd>
#include <optional>

#include "linalg/matrix.hpp"
#include "preprocess/one_hot.hpp"
#include "preprocess/quantile_transformer.hpp"
#include "tabular/table.hpp"
#include "util/rng.hpp"

namespace surro::preprocess {

struct CategoricalBlock {
  std::size_t column = 0;       // schema column index
  std::size_t offset = 0;       // first matrix column of the block
  std::size_t cardinality = 0;  // block width
};

class MixedEncoder {
 public:
  MixedEncoder() = default;

  /// Learn transforms and layout from a training table. Vocabularies are
  /// frozen at fit time; rows with unseen labels cannot occur afterwards
  /// because codes come from the same vocabulary.
  void fit(const tabular::Table& table, std::size_t num_quantiles = 1000);
  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  [[nodiscard]] std::size_t encoded_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t num_numerical() const noexcept {
    return numerical_cols_.size();
  }
  [[nodiscard]] const std::vector<CategoricalBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] const std::vector<std::size_t>& numerical_columns()
      const noexcept {
    return numerical_cols_;
  }
  [[nodiscard]] const tabular::Schema& schema() const noexcept {
    return schema_;
  }
  [[nodiscard]] const QuantileTransformer& transformer(std::size_t i) const {
    return transformers_.at(i);
  }

  /// Encode a table (must have the fit schema) into an (n, width) matrix.
  [[nodiscard]] linalg::Matrix encode(const tabular::Table& table) const;

  /// Decode a matrix back into a table. When `rng` is non-null, categorical
  /// blocks are treated as unnormalized probabilities and sampled;
  /// otherwise argmax. Numerical columns go through the inverse transform.
  [[nodiscard]] tabular::Table decode(const linalg::Matrix& m,
                                      util::Rng* rng = nullptr) const;

  /// An empty table carrying the fit-time schema and vocabularies (useful
  /// for models that build output tables incrementally).
  [[nodiscard]] tabular::Table make_empty_table() const;

  /// Binary persistence of the fitted transforms, layout, and vocabularies.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  bool fitted_ = false;
  tabular::Schema schema_;
  std::vector<std::size_t> numerical_cols_;
  std::vector<QuantileTransformer> transformers_;
  std::vector<CategoricalBlock> blocks_;
  std::vector<std::vector<std::string>> vocabs_;  // per block
  std::size_t width_ = 0;
};

}  // namespace surro::preprocess
