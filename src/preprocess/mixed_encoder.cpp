#include "preprocess/mixed_encoder.hpp"

#include <cmath>
#include <stdexcept>

#include "util/serialize.hpp"

namespace surro::preprocess {

void MixedEncoder::fit(const tabular::Table& table,
                       std::size_t num_quantiles) {
  if (table.num_rows() == 0) {
    throw std::invalid_argument("mixed_encoder: empty fit table");
  }
  schema_ = table.schema();
  numerical_cols_ = schema_.numerical_indices();
  transformers_.clear();
  transformers_.reserve(numerical_cols_.size());
  for (const std::size_t col : numerical_cols_) {
    QuantileTransformer qt(num_quantiles);
    qt.fit(table.numerical(col));
    transformers_.push_back(std::move(qt));
  }

  blocks_.clear();
  vocabs_.clear();
  std::size_t offset = numerical_cols_.size();
  for (const std::size_t col : schema_.categorical_indices()) {
    CategoricalBlock b;
    b.column = col;
    b.offset = offset;
    b.cardinality = table.cardinality(col);
    if (b.cardinality == 0) {
      throw std::invalid_argument(
          "mixed_encoder: categorical column with empty vocabulary");
    }
    offset += b.cardinality;
    blocks_.push_back(b);
    vocabs_.push_back(table.vocabulary(col));
  }
  width_ = offset;
  fitted_ = true;
}

linalg::Matrix MixedEncoder::encode(const tabular::Table& table) const {
  if (!fitted_) throw std::logic_error("mixed_encoder: encode before fit");
  if (!(table.schema() == schema_)) {
    throw std::invalid_argument("mixed_encoder: schema mismatch");
  }
  const std::size_t n = table.num_rows();
  linalg::Matrix m(n, width_, 0.0f);

  for (std::size_t k = 0; k < numerical_cols_.size(); ++k) {
    const auto col = table.numerical(numerical_cols_[k]);
    // Batched SoA transform of the whole column (CDF sweep + probit sweep),
    // then scatter into the row-major matrix.
    const auto z = transformers_[k].transform(col);
    for (std::size_t r = 0; r < n; ++r) {
      m(r, k) = static_cast<float>(z[r]);
    }
  }
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    const auto& b = blocks_[bi];
    const auto codes = table.categorical(b.column);
    for (std::size_t r = 0; r < n; ++r) {
      const auto code = static_cast<std::size_t>(codes[r]);
      if (code >= b.cardinality) {
        throw std::out_of_range(
            "mixed_encoder: code outside fit-time vocabulary");
      }
      m(r, b.offset + code) = 1.0f;
    }
  }
  return m;
}

tabular::Table MixedEncoder::make_empty_table() const {
  if (!fitted_) throw std::logic_error("mixed_encoder: not fitted");
  tabular::Table t(schema_);
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    t.adopt_vocabulary(blocks_[bi].column, vocabs_[bi]);
  }
  return t;
}

tabular::Table MixedEncoder::decode(const linalg::Matrix& m,
                                    util::Rng* rng) const {
  if (!fitted_) throw std::logic_error("mixed_encoder: decode before fit");
  if (m.cols() != width_) {
    throw std::invalid_argument("mixed_encoder: matrix width mismatch");
  }
  tabular::Table t = make_empty_table();

  std::vector<double> num_vals(numerical_cols_.size());
  std::vector<std::int32_t> cat_vals(blocks_.size());
  std::vector<double> probs;

  // Gather each numerical column out of the row-major matrix and run the
  // batched SoA inverse (normal-CDF sweep + vectorized grid interpolation)
  // once per column instead of once per cell.
  std::vector<std::vector<double>> num_cols(numerical_cols_.size());
  {
    std::vector<double> zcol(m.rows());
    for (std::size_t k = 0; k < numerical_cols_.size(); ++k) {
      for (std::size_t r = 0; r < m.rows(); ++r) {
        zcol[r] = static_cast<double>(m(r, k));
      }
      num_cols[k] = transformers_[k].inverse(zcol);
    }
  }

  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t k = 0; k < numerical_cols_.size(); ++k) {
      num_vals[k] = num_cols[k][r];
    }
    for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
      const auto& b = blocks_[bi];
      if (rng != nullptr) {
        probs.assign(b.cardinality, 0.0);
        double total = 0.0;
        for (std::size_t j = 0; j < b.cardinality; ++j) {
          const double p =
              std::max(0.0, static_cast<double>(row[b.offset + j]));
          probs[j] = p;
          total += p;
        }
        if (total > 0.0) {
          cat_vals[bi] = static_cast<std::int32_t>(rng->categorical(probs));
          continue;
        }
        // Degenerate block: fall through to argmax.
      }
      std::size_t best = 0;
      for (std::size_t j = 1; j < b.cardinality; ++j) {
        if (row[b.offset + j] > row[b.offset + best]) best = j;
      }
      cat_vals[bi] = static_cast<std::int32_t>(best);
    }
    // Column order of append_row_values: numericals in schema order of
    // numerical columns, categoricals in schema order of categorical
    // columns — exactly how numerical_cols_ and blocks_ are built.
    t.append_row_values(num_vals, cat_vals);
  }
  return t;
}

void MixedEncoder::save(std::ostream& os) const {
  if (!fitted_) throw std::logic_error("mixed_encoder: save before fit");
  util::io::write_tag(os, "MENC");
  // Schema: column specs in order.
  util::io::write_u64(os, schema_.num_columns());
  for (const auto& spec : schema_.columns()) {
    util::io::write_string(os, spec.name);
    util::io::write_u32(os,
                        spec.kind == tabular::ColumnKind::kCategorical ? 1 : 0);
  }
  util::io::write_u64(os, numerical_cols_.size());
  for (const std::size_t c : numerical_cols_) util::io::write_u64(os, c);
  for (const auto& qt : transformers_) qt.save(os);
  util::io::write_u64(os, blocks_.size());
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    util::io::write_u64(os, blocks_[bi].column);
    util::io::write_u64(os, blocks_[bi].offset);
    util::io::write_u64(os, blocks_[bi].cardinality);
    util::io::write_vec_string(os, vocabs_[bi]);
  }
  util::io::write_u64(os, width_);
}

void MixedEncoder::load(std::istream& is) {
  util::io::expect_tag(is, "MENC");
  const std::size_t num_cols = util::io::read_count(is);
  std::vector<tabular::ColumnSpec> specs(num_cols);
  for (auto& spec : specs) {
    spec.name = util::io::read_string(is);
    spec.kind = util::io::read_u32(is) == 1 ? tabular::ColumnKind::kCategorical
                                            : tabular::ColumnKind::kNumerical;
  }
  schema_ = tabular::Schema(std::move(specs));

  numerical_cols_.resize(util::io::read_count(is));
  for (auto& c : numerical_cols_) {
    c = static_cast<std::size_t>(util::io::read_u64(is));
  }
  transformers_.assign(numerical_cols_.size(), QuantileTransformer(0));
  for (auto& qt : transformers_) qt.load(is);

  const std::size_t num_blocks = util::io::read_count(is);
  blocks_.resize(num_blocks);
  vocabs_.resize(num_blocks);
  for (std::size_t bi = 0; bi < num_blocks; ++bi) {
    blocks_[bi].column = static_cast<std::size_t>(util::io::read_u64(is));
    blocks_[bi].offset = static_cast<std::size_t>(util::io::read_u64(is));
    blocks_[bi].cardinality = static_cast<std::size_t>(util::io::read_u64(is));
    vocabs_[bi] = util::io::read_vec_string(is);
  }
  width_ = static_cast<std::size_t>(util::io::read_u64(is));

  // Cross-field validation: a corrupt archive must fail here, not as an
  // out-of-bounds read in encode()/decode() later.
  for (std::size_t k = 0; k < numerical_cols_.size(); ++k) {
    if (numerical_cols_[k] >= schema_.num_columns() ||
        !transformers_[k].fitted()) {
      throw std::runtime_error("mixed_encoder: corrupt numerical layout");
    }
  }
  std::size_t offset = numerical_cols_.size();
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    const auto& b = blocks_[bi];
    if (b.column >= schema_.num_columns() || b.offset != offset ||
        b.cardinality == 0 || vocabs_[bi].size() != b.cardinality) {
      throw std::runtime_error("mixed_encoder: corrupt block layout");
    }
    offset += b.cardinality;
  }
  if (width_ != offset) {
    throw std::runtime_error("mixed_encoder: corrupt encoded width");
  }
  fitted_ = true;
}

}  // namespace surro::preprocess
