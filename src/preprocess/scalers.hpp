#pragma once
// Standard and min-max scalers: baselines for the quantile transform in the
// ablation bench, and internal normalization for metrics (the WD metric is
// computed on min-max-scaled features so per-feature distances are
// comparable and averageable, following the CTAB-GAN/TabDDPM convention).

#include <span>
#include <vector>

namespace surro::preprocess {

class StandardScaler {
 public:
  void fit(std::span<const double> values);
  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  [[nodiscard]] double transform_one(double v) const noexcept;
  [[nodiscard]] double inverse_one(double z) const noexcept;
  [[nodiscard]] std::vector<double> transform(
      std::span<const double> values) const;
  [[nodiscard]] std::vector<double> inverse(std::span<const double> z) const;

  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return stddev_; }

 private:
  double mean_ = 0.0;
  double stddev_ = 1.0;
  bool fitted_ = false;
};

class MinMaxScaler {
 public:
  void fit(std::span<const double> values);
  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  /// Maps [min,max] -> [0,1]; constant columns map to 0.5.
  [[nodiscard]] double transform_one(double v) const noexcept;
  [[nodiscard]] double inverse_one(double u) const noexcept;
  [[nodiscard]] std::vector<double> transform(
      std::span<const double> values) const;
  [[nodiscard]] std::vector<double> inverse(std::span<const double> u) const;

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  double min_ = 0.0;
  double max_ = 1.0;
  bool fitted_ = false;
};

}  // namespace surro::preprocess
