#include "preprocess/scalers.hpp"

#include <algorithm>
#include <stdexcept>

#include "linalg/simd.hpp"
#include "util/mathx.hpp"

namespace surro::preprocess {

void StandardScaler::fit(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("standard_scaler: empty fit data");
  }
  mean_ = util::mean(values);
  stddev_ = util::stddev(values);
  if (stddev_ <= 0.0) stddev_ = 1.0;
  fitted_ = true;
}

double StandardScaler::transform_one(double v) const noexcept {
  return (v - mean_) / stddev_;
}
double StandardScaler::inverse_one(double z) const noexcept {
  return z * stddev_ + mean_;
}

std::vector<double> StandardScaler::transform(
    std::span<const double> values) const {
  // Batched SoA path: one normalize kernel sweep. Division is a correctly
  // rounded per-element op, so this is bitwise identical to transform_one
  // in a loop on every backend.
  std::vector<double> out(values.size());
  linalg::simd::kernels().normalize_f64(values.data(), mean_, stddev_,
                                        out.data(), values.size());
  return out;
}
std::vector<double> StandardScaler::inverse(
    std::span<const double> z) const {
  // out = z * stddev + mean; mul-then-add matches inverse_one bitwise.
  std::vector<double> out(z.size());
  linalg::simd::kernels().madd_f64(z.data(), stddev_, mean_, out.data(),
                                   z.size());
  return out;
}

void MinMaxScaler::fit(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("minmax_scaler: empty fit data");
  }
  min_ = *std::min_element(values.begin(), values.end());
  max_ = *std::max_element(values.begin(), values.end());
  fitted_ = true;
}

double MinMaxScaler::transform_one(double v) const noexcept {
  if (max_ <= min_) return 0.5;
  return (v - min_) / (max_ - min_);
}
double MinMaxScaler::inverse_one(double u) const noexcept {
  return min_ + u * (max_ - min_);
}

std::vector<double> MinMaxScaler::transform(
    std::span<const double> values) const {
  if (max_ <= min_) return std::vector<double>(values.size(), 0.5);
  std::vector<double> out(values.size());
  linalg::simd::kernels().normalize_f64(values.data(), min_, max_ - min_,
                                        out.data(), values.size());
  return out;
}
std::vector<double> MinMaxScaler::inverse(std::span<const double> u) const {
  // inverse_one computes min + u * range; madd computes u * range + min.
  // Addition is commutative (and correctly rounded), so the bytes match.
  std::vector<double> out(u.size());
  linalg::simd::kernels().madd_f64(u.data(), max_ - min_, min_, out.data(),
                                   u.size());
  return out;
}

}  // namespace surro::preprocess
